//! Serve the VCommand protocol over TCP — the visualizer-facing
//! endpoint of the paper's §4.2 message flow, backed by a
//! `vserve::Server` behind the evented `WirePump`.
//!
//! One listening socket serves both wire framings: a client that opens
//! with the binary hello (`WireClient::binary`) gets length-prefixed
//! frames after a version handshake; anything else is treated as the
//! legacy newline-delimited JSON. All connections are driven by a
//! single poll thread with per-client fair queuing — no thread per
//! connection.
//!
//! ```text
//! cargo run --example serve_tcp                        # smoke run, then exit
//! cargo run --example serve_tcp -- --hold 0.0.0.0:9000 # keep serving
//! ```
//!
//! With `--hold`, the legacy framing means you can still talk to it
//! from another terminal with nothing but netcat:
//!
//! ```text
//! printf '%s\n' '{"command":"vplot_request","viewcl":"..."}' | nc 127.0.0.1 9000
//! ```
//!
//! The run is self-demonstrating: after binding, the example connects
//! an in-process binary-framed smoke client over the same TCP surface,
//! requests a figure twice around a stop event, prints what came back
//! (a full plot, then a delta), then proves the newline-JSON path still
//! answers on the very same port. Without `--hold` it then shuts the
//! server down gracefully and exits, which is what the CI smoke run
//! relies on.

use std::net::{TcpListener, TcpStream};

use ksim::workload::{build, WorkloadConfig};
use vbridge::{CacheConfig, LatencyProfile};
use visualinux::proto::VCommand;
use visualinux::Session;
use vserve::{
    Replica, ReplicaEvent, ServeConfig, Server, SingleSession, StreamIo, WireClient,
    WireConfig, WirePump,
};

/// A nonblocking TCP stream as a pump lane / client codec substrate.
fn tcp_io(stream: TcpStream) -> std::io::Result<StreamIo<TcpStream>> {
    stream.set_nodelay(true)?;
    stream.set_nonblocking(true)?;
    Ok(StreamIo::new(stream))
}

fn main() -> std::io::Result<()> {
    let mut hold = false;
    let mut addr = "127.0.0.1:0".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--hold" {
            hold = true;
        } else {
            addr = arg;
        }
    }
    let listener = TcpListener::bind(&addr)?;
    let addr = listener.local_addr()?;
    println!(
        "vserve: listening on {addr} (binary framed wire v{}, newline-JSON auto-detected)",
        visualinux::proto::VERSION
    );

    let session = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::gdb_qemu())
        .cache(CacheConfig::default())
        .attach()
        .unwrap();
    let mut server = Server::new(
        session,
        ServeConfig {
            exit_when_idle: false, // keep serving between connections
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();

    // One evented pump drives every connection from a single thread.
    let pump = WirePump::new(
        Box::new(SingleSession::new(handle.clone())),
        WireConfig::default(),
    );
    let ph = pump.handle();
    let pump_thread = std::thread::spawn(move || pump.run());

    // Acceptor: hands sockets to the pump and goes back to accepting.
    let accept_handle = ph.clone();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let Ok(io) = tcp_io(stream) else { continue };
            if accept_handle.add(Box::new(io)).is_err() {
                break; // pump shut down
            }
        }
    });

    // Smoke client: prove the endpoint works end to end — handshake,
    // full plot, delta — over the binary framing.
    let smoke = std::thread::spawn(move || {
        let done = handle.clone();
        let fig = visualinux::figures::by_id("fig3-4").expect("figure exists");
        // The workload build is deterministic, so a fresh build yields
        // the same task addresses the server's image holds.
        let (_, _, roots) = build(&WorkloadConfig::default()).finish();
        let stream = TcpStream::connect(addr).expect("connect to ourselves");
        let io = tcp_io(stream).expect("nonblocking socket");
        let mut client = WireClient::binary(Box::new(io)).expect("wire handshake");
        println!("smoke: negotiated {} framing", client.framing_name());
        let mut replica = Replica::new();
        let request = VCommand::VplotRequest {
            viewcl: fig.viewcl.to_string(),
        };

        for round in 0..2u64 {
            client.send(&request).expect("send");
            let reply = client.recv().expect("recv").expect("reply");
            match replica.apply_line(&reply).expect("protocol") {
                ReplicaEvent::Full { .. } => {
                    println!(
                        "smoke: round {round}: full plot, {} boxes, {} bytes",
                        replica.graph(fig.viewcl).unwrap().len(),
                        reply.len()
                    );
                }
                ReplicaEvent::Delta { summary, .. } => {
                    println!(
                        "smoke: round {round}: delta, {} bytes ({} boxes changed, {} texts)",
                        reply.len(),
                        summary.boxes_changed,
                        summary.texts_changed
                    );
                }
                ReplicaEvent::Response(r) => println!("smoke: round {round}: {r:?}"),
            }
            if round == 0 {
                // Let the kernel "run" so the second request has a delta
                // worth shipping.
                let roots = roots.clone();
                handle
                    .stop_event(move |img| {
                        ksim::tick::tick(img, &roots, 1);
                    })
                    .expect("stop event");
            }
        }

        // The same port still answers the legacy newline-JSON framing:
        // no hello, first byte '{', auto-detected per connection.
        let stream = TcpStream::connect(addr).expect("connect (lines)");
        let io = tcp_io(stream).expect("nonblocking socket");
        let mut lines = WireClient::lines(Box::new(io));
        lines
            .send(&VCommand::VctrlFocus { addr: 0 })
            .expect("send over lines framing");
        let reply = lines.recv().expect("recv").expect("reply");
        println!("smoke: lines framing still answers: {reply}");

        if !hold {
            done.shutdown();
        }
    });

    // The engine owns the session and must run on this thread.
    server.run();
    smoke.join().expect("smoke client");
    ph.shutdown();
    let wire = pump_thread.join().expect("pump");
    println!(
        "wire: {} lanes ({} binary, {} lines), {} frames in / {} out, {} sweeps",
        wire.accepted, wire.hello_binary, wire.hello_lines, wire.frames_in, wire.frames_out,
        wire.sweeps
    );
    wire.reconcile().expect("wire books balance");
    Ok(())
}
