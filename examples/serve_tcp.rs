//! Serve the VCommand protocol over TCP: newline-delimited JSON, one
//! reply line per request line — the visualizer-facing endpoint of the
//! paper's §4.2 message flow, backed by a `vserve::Server`.
//!
//! ```text
//! cargo run --example serve_tcp                        # smoke run, then exit
//! cargo run --example serve_tcp -- --hold 0.0.0.0:9000 # keep serving
//! ```
//!
//! With `--hold`, talk to it from another terminal:
//!
//! ```text
//! printf '%s\n' '{"command":"vplot_request","viewcl":"..."}' | nc 127.0.0.1 9000
//! ```
//!
//! The run is self-demonstrating: after binding, the example connects an
//! in-process smoke client over the same TCP surface, requests a figure
//! twice around a stop event, and prints what came back (a full plot,
//! then a delta). Without `--hold` it then shuts the server down
//! gracefully and exits, which is what the CI smoke run relies on.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use ksim::workload::{build, WorkloadConfig};
use vbridge::{CacheConfig, LatencyProfile};
use visualinux::proto::VCommand;
use visualinux::Session;
use vserve::{serve_transport, Replica, ReplicaEvent, ServeConfig, Server, Transport};

/// Newline-delimited JSON over a socket.
struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpTransport {
    fn new(stream: TcpStream) -> std::io::Result<TcpTransport> {
        Ok(TcpTransport {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }
}

impl Transport for TcpTransport {
    fn recv(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        Ok((n > 0).then(|| line.trim_end_matches(['\r', '\n']).to_string()))
    }

    fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }
}

fn main() -> std::io::Result<()> {
    let mut hold = false;
    let mut addr = "127.0.0.1:0".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--hold" {
            hold = true;
        } else {
            addr = arg;
        }
    }
    let listener = TcpListener::bind(&addr)?;
    let addr = listener.local_addr()?;
    println!("vserve: listening on {addr} (newline-delimited VCommand JSON)");

    let session = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::gdb_qemu())
        .cache(CacheConfig::default())
        .attach()
        .unwrap();
    let mut server = Server::new(
        session,
        ServeConfig {
            exit_when_idle: false, // keep serving between connections
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();

    // Acceptor: one thread per connection, each pumping its socket
    // against a queue-backed Connection.
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let conn = handle.connect();
            std::thread::spawn(move || {
                if let Ok(mut t) = TcpTransport::new(stream) {
                    let _ = serve_transport(&conn, &mut t);
                }
            });
        }
    });

    // Smoke client: prove the endpoint works end to end, deltas included.
    let handle = server.handle();
    let smoke = std::thread::spawn(move || {
        let done = handle.clone();
        let fig = visualinux::figures::by_id("fig3-4").expect("figure exists");
        // The workload build is deterministic, so a fresh build yields
        // the same task addresses the server's image holds.
        let (_, _, roots) = build(&WorkloadConfig::default()).finish();
        let stream = TcpStream::connect(addr).expect("connect to ourselves");
        let mut t = TcpTransport::new(stream).expect("transport");
        let mut replica = Replica::new();
        let request = VCommand::VplotRequest {
            viewcl: fig.viewcl.to_string(),
        }
        .to_json();

        for round in 0..2u64 {
            t.send(&request).expect("send");
            let reply = t.recv().expect("recv").expect("reply");
            match replica.apply_line(&reply).expect("protocol") {
                ReplicaEvent::Full { .. } => {
                    println!(
                        "smoke: round {round}: full plot, {} boxes, {} bytes",
                        replica.graph(fig.viewcl).unwrap().len(),
                        reply.len()
                    );
                }
                ReplicaEvent::Delta { summary, .. } => {
                    println!(
                        "smoke: round {round}: delta, {} bytes ({} boxes changed, {} texts)",
                        reply.len(),
                        summary.boxes_changed,
                        summary.texts_changed
                    );
                }
                ReplicaEvent::Response(r) => println!("smoke: round {round}: {r:?}"),
            }
            if round == 0 {
                // Let the kernel "run" so the second request has a delta
                // worth shipping.
                let roots = roots.clone();
                handle
                    .stop_event(move |img| {
                        ksim::tick::tick(img, &roots, 1);
                    })
                    .expect("stop event");
            }
        }
        if !hold {
            done.shutdown();
        }
    });

    // The engine owns the session and must run on this thread.
    server.run();
    smoke.join().expect("smoke client");
    Ok(())
}
