//! Quickstart: plot the CFS run queue of CPU 0 — the paper's introductory
//! example — against a freshly built simulated kernel.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ksim::workload::{build, WorkloadConfig};
use vbridge::LatencyProfile;
use visualinux::{PlotSpec, Session};

fn main() {
    // 1. Build the simulated Linux 6.1 image: 5 processes x 2 threads
    //    exercising files, pipes, sockets, IPC, mmap (the paper's §5.4
    //    workload), then attach the debugger.
    let workload = build(&WorkloadConfig::default());
    let mut session = Session::builder(workload)
        .profile(LatencyProfile::gdb_qemu())
        .attach()
        .unwrap();

    // 2. vplot: the ViewCL program from the paper's introduction.
    let pane = session
        .plot(PlotSpec::Source(
            r#"
define Task as Box<task_struct> [
    Text pid, comm
    Text ppid: ${@this.parent != NULL ? @this.parent->pid : 0}
    Text<string> state: ${task_state(@this)}
    Text se.vruntime
]
root = ${cpu_rq(0)->cfs.tasks_timeline}
sched_tree = RBTree(@root).forEach |node| {
    yield Task<task_struct.se.run_node>(@node)
}
plot @sched_tree
"#,
        ))
        .expect("plot the run queue");

    println!("{}", session.render_text(pane).expect("render"));

    // 3. vctrl: focus on one process with ViewQL (§1's second listing).
    session
        .vctrl_refine(
            pane,
            r#"
task_all = SELECT task_struct FROM *
task_100 = SELECT task_struct FROM task_all WHERE pid == 100 OR ppid == 100
UPDATE task_all \ task_100 WITH collapsed: true
"#,
        )
        .expect("refine");
    println!("--- after ViewQL (focus on pid 100) ---\n");
    println!("{}", session.render_text(pane).expect("render"));

    let stats = session.plot_stats(pane).unwrap();
    println!(
        "extraction: {} objects, {} reads, {:.2} ms virtual time ({})",
        stats.graph.objects,
        stats.target.reads,
        stats.total_ms(),
        session.profile().name,
    );
}
