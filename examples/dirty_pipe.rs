//! The Dirty Pipe case study (CVE-2022-0847, paper §5.3 / Figure 7):
//! inject the bug state, plot page caches and pipe rings, and let ViewQL
//! isolate the one page illegally shared between a file and a pipe.
//!
//! ```text
//! cargo run --example dirty_pipe
//! ```

use vbridge::LatencyProfile;
use visualinux::casestudies;

fn main() {
    let report = casestudies::dirty_pipe(LatencyProfile::gdb_qemu()).expect("case study");

    println!("{}", report.session.render_text(report.pane).unwrap());
    println!(
        "ViewQL applied (paper §5.3):\n{}",
        casestudies::DIRTY_PIPE_VIEWQL
    );
    println!(
        "=> {} page(s) survive the trim; shared page {:#x} {} PIPE_BUF_FLAG_CAN_MERGE",
        report.visible_pages.len(),
        report.injected.shared_page,
        if report.can_merge_flagged {
            "carries"
        } else {
            "does NOT carry"
        },
    );
    assert_eq!(report.visible_pages, vec![report.injected.shared_page]);
    println!("\nThe CAN_MERGE-flagged buffer aliasing a page-cache page is the bug:");
    println!("writes through the pipe corrupt the shared file page (Dirty Pipe).");
}
