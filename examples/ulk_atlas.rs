//! Generate the full ULK atlas: every Table 2 figure rendered to
//! `target/atlas/<id>.{txt,svg}` — the "revived textbook" of §5.1.
//!
//! ```text
//! cargo run --example ulk_atlas
//! ```

use ksim::workload::{build, WorkloadConfig};
use vbridge::LatencyProfile;
use visualinux::{figures, PlotSpec, Session};

fn main() {
    let mut session = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::free())
        .attach()
        .unwrap();
    std::fs::create_dir_all("target/atlas").expect("mkdir");
    let mut toc = String::from("# ULK Atlas (simulated Linux 6.1)\n\n");
    for fig in figures::all() {
        let pane = session
            .plot(PlotSpec::Source(fig.viewcl))
            .unwrap_or_else(|e| {
                panic!("{}: {e}", fig.id);
            });
        // Apply the figure's Table 3 objective when it has one, so the
        // atlas shows the *simplified* plots.
        if let Some(obj) = &fig.objective {
            session
                .vctrl_refine(pane, obj.viewql)
                .expect("objective applies");
        }
        let stats = session.plot_stats(pane).unwrap();
        std::fs::write(
            format!("target/atlas/{}.txt", fig.id),
            session.render_text(pane).unwrap(),
        )
        .unwrap();
        std::fs::write(
            format!("target/atlas/{}.svg", fig.id),
            session.render_svg(pane).unwrap(),
        )
        .unwrap();
        toc.push_str(&format!(
            "- {} ({}): {} — {} objects, {} links\n",
            fig.id, fig.ulk, fig.title, stats.graph.objects, stats.graph.links
        ));
        println!(
            "rendered {:<12} {:>4} objects -> target/atlas/{}.svg",
            fig.id, stats.graph.objects, fig.id
        );
    }
    std::fs::write("target/atlas/README.md", toc).unwrap();
    println!("\natlas written to target/atlas/ (21 figures)");
}
