//! Live visualization of the maple tree (paper §3.1, Figures 3 & 4):
//! plot the current task's address space, switch the mm_struct to its
//! maple-tree view, then simplify with the paper's ViewQL.
//!
//! ```text
//! cargo run --example maple_tree
//! ```

use ksim::workload::{build, WorkloadConfig};
use vbridge::LatencyProfile;
use visualinux::{PlotSpec, Session};

fn main() {
    let mut session = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::gdb_qemu())
        .attach()
        .unwrap();

    // The Fig 9-2 library program contains the full maple-tree ViewCL of
    // the paper's Figure 3 (MapleNode switch over node types, tagged
    // pointer unwrapping, VMArea leaves).
    let pane = session.plot(PlotSpec::Figure("fig9-2")).expect("plot");
    session
        .vctrl_refine(
            pane,
            "m = SELECT mm_struct FROM *\nUPDATE m WITH view: show_mt",
        )
        .expect("switch view");

    println!(
        "--- raw maple tree ---\n{}",
        session.render_text(pane).unwrap()
    );

    // §3.1's ViewQL: collapse the slot pointer lists, hide writable VMAs
    // (assume the debugging objective concerns read-only areas).
    session
        .vctrl_refine(
            pane,
            r#"
slots = SELECT maple_node.slots FROM *
UPDATE slots WITH collapsed: true
writable_vmas = SELECT vm_area_struct FROM * WHERE is_writable == true
UPDATE writable_vmas WITH trimmed: true
"#,
        )
        .expect("simplify");
    println!(
        "--- simplified (Figure 4) ---\n{}",
        session.render_text(pane).unwrap()
    );

    // Or ask in natural language instead of ViewQL (§2.4 / §3.2).
    let out = session
        .vchat(pane, "shrink all writable vm_area_structs", false)
        .expect("synthesize");
    println!("vchat would synthesize:\n{}", out.viewql);
}
