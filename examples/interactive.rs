//! Interactive-debugger tour: panes, split, focus, vchat — the §2.4
//! workflow of the paper's Figure 2, scripted.
//!
//! ```text
//! cargo run --example interactive
//! ```

use ksim::workload::{build, WorkloadConfig};
use vbridge::LatencyProfile;
use visualinux::{PlotSpec, Session};

fn main() {
    let mut session = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::gdb_qemu())
        .attach()
        .unwrap();

    // Pane 0: the process parenthood tree.
    let parents = session
        .plot(PlotSpec::Figure("fig3-4"))
        .expect("plot parent tree");
    // Pane 1: the scheduler's red-black tree (split to the right).
    let sched = session
        .plot(PlotSpec::Figure("fig7-1"))
        .expect("plot sched tree");

    // "focus": find the same task in both panes (paper Figure 2).
    let leader = session.roots.leaders[0];
    let hits = session.focus(leader);
    println!(
        "focus {:#x} found the task in {} pane(s):",
        leader,
        hits.len()
    );
    for h in &hits {
        println!("  pane {:?}: box {:?} ({})", h.pane, h.boxid, h.label);
    }
    assert!(
        hits.len() >= 2,
        "the task is managed by two structures at once"
    );

    // Natural-language refinement on the parent tree.
    let out = session
        .vchat(parents, "shrink tasks that have no address space", true)
        .expect("vchat");
    println!("\nvchat applied:\n{}", out.viewql);

    // ViewQL refinement on the scheduler pane.
    session
        .vctrl_refine(
            sched,
            "a = SELECT task_struct FROM *\nUPDATE a WITH view: sched",
        )
        .expect("refine");

    println!("\n--- pane 0: parent tree (kthreads collapsed) ---\n");
    println!("{}", session.render_text(parents).unwrap());
    println!("--- pane 1: run queue (sched view) ---\n");
    println!("{}", session.render_text(sched).unwrap());

    // Sessions persist across debugging sessions (§4.2).
    let saved = session.save_panes().expect("panes exist");
    println!("session persisted: {} bytes of JSON", saved.len());
}
