//! ViewQL execution over a [`vgraph::Graph`].

use std::collections::HashMap;
use std::rc::Rc;

use vgraph::{BoxId, Graph, Item};
use vtrace::Tracer;

use crate::parse::{Cond, Op, SelExpr, SetExpr, Source, Stmt, ValueLit};
use crate::{Result, VqlError};

/// One selected entity: a whole box, or one member of a box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Entry {
    /// A box.
    Box(BoxId),
    /// A member item (by view-materialized name); the `u32` indexes into
    /// an interned member-name table kept by the engine.
    Member(BoxId, u32),
}

/// An ordered, deduplicated selection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Selection {
    /// Entries in selection order.
    pub entries: Vec<Entry>,
}

impl Selection {
    fn dedup(mut self) -> Self {
        let mut seen = std::collections::HashSet::new();
        self.entries.retain(|e| seen.insert(*e));
        self
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the selection is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The boxes covered by this selection (members resolve to their
    /// box), deduplicated, in first-appearance order.
    pub fn boxes(&self) -> Vec<BoxId> {
        let mut seen = std::collections::HashSet::new();
        self.entries
            .iter()
            .map(|e| match e {
                Entry::Box(b) | Entry::Member(b, _) => *b,
            })
            .filter(|b| seen.insert(*b))
            .collect()
    }
}

/// The ViewQL engine: binds selection variables, executes statements,
/// mutates graph display attributes.
#[derive(Debug, Default)]
pub struct Engine {
    vars: HashMap<String, Selection>,
    member_names: Vec<String>,
    member_index: HashMap<String, u32>,
    tracer: Option<Rc<Tracer>>,
}

impl Engine {
    /// Create an engine with no bound variables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one [`vtrace::SpanKind::Clause`] span per executed
    /// statement on `tracer`.
    pub fn set_tracer(&mut self, tracer: Rc<Tracer>) {
        self.tracer = Some(tracer);
    }

    fn intern_member(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.member_index.get(name) {
            return i;
        }
        let i = self.member_names.len() as u32;
        self.member_names.push(name.to_string());
        self.member_index.insert(name.to_string(), i);
        i
    }

    /// The interned member name for an [`Entry::Member`].
    pub fn member_name(&self, idx: u32) -> &str {
        &self.member_names[idx as usize]
    }

    /// A bound selection variable.
    pub fn var(&self, name: &str) -> Option<&Selection> {
        self.vars.get(name)
    }

    /// Parse and execute a whole program against `graph`.
    pub fn run(&mut self, graph: &mut Graph, src: &str) -> Result<()> {
        let stmts = crate::parse(src)?;
        for s in &stmts {
            let _sp = vtrace::span(
                self.tracer.as_ref(),
                vtrace::SpanKind::Clause,
                describe_stmt(s),
            );
            self.exec(graph, s)?;
        }
        Ok(())
    }

    /// Execute one statement.
    pub fn exec(&mut self, graph: &mut Graph, stmt: &Stmt) -> Result<()> {
        match stmt {
            Stmt::Select {
                var,
                expr,
                source,
                alias,
                cond,
            } => {
                let sel = self.select(graph, expr, source, alias.as_deref(), cond.as_ref())?;
                self.vars.insert(var.clone(), sel);
                Ok(())
            }
            Stmt::Update { target, attrs } => {
                let sel = self.eval_set(graph, target)?;
                for entry in &sel.entries {
                    for (name, value) in attrs {
                        let v = lit_to_json(value);
                        match entry {
                            Entry::Box(id) => graph.get_mut(*id).attrs.set(name, v),
                            Entry::Member(id, m) => {
                                let mname = self.member_names[*m as usize].clone();
                                apply_member_attr(graph, *id, &mname, name, v);
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn candidate_boxes(&self, graph: &Graph, source: &Source) -> Result<Vec<BoxId>> {
        Ok(match source {
            Source::All => graph.boxes().iter().map(|b| b.id).collect(),
            Source::Var(v) => self
                .vars
                .get(v)
                .ok_or_else(|| VqlError::Exec(format!("unknown selection `{v}`")))?
                .boxes(),
            Source::Reachable(v) => {
                let sel = self
                    .vars
                    .get(v)
                    .ok_or_else(|| VqlError::Exec(format!("unknown selection `{v}`")))?;
                let seeds = self.expand(graph, sel);
                graph.reachable(&seeds)
            }
        })
    }

    /// Expand a selection to boxes, resolving member entries to their
    /// link targets / container members (for closure seeds).
    fn expand(&self, graph: &Graph, sel: &Selection) -> Vec<BoxId> {
        let mut out = Vec::new();
        for e in &sel.entries {
            match e {
                Entry::Box(b) => out.push(*b),
                Entry::Member(b, m) => {
                    let name = &self.member_names[*m as usize];
                    if let Some(item) = graph.get(*b).item(name) {
                        match item {
                            Item::Link { target, .. } => out.push(*target),
                            Item::Container { members, .. } => out.extend(members.iter().copied()),
                            _ => out.push(*b),
                        }
                    }
                }
            }
        }
        out
    }

    fn select(
        &mut self,
        graph: &Graph,
        expr: &SelExpr,
        source: &Source,
        alias: Option<&str>,
        cond: Option<&Cond>,
    ) -> Result<Selection> {
        let candidates = self.candidate_boxes(graph, source)?;
        let mut entries = Vec::new();
        for id in candidates {
            let b = graph.get(id);
            // Type match: C type tag or ViewCL label (case-sensitive).
            if b.ctype != expr.type_name && b.label != expr.type_name {
                continue;
            }
            if let Some(c) = cond {
                let inside =
                    |var: &str, probe: BoxId| -> bool {
                        let Some(sel) = self.vars.get(var) else {
                            return false;
                        };
                        sel.boxes().iter().any(|holder| {
                            graph.get(*holder).views.iter().flat_map(|v| &v.items).any(
                                |i| match i {
                                    Item::Container { members, .. } => members.contains(&probe),
                                    _ => false,
                                },
                            )
                        })
                    };
                let hit = c
                    .disjuncts
                    .iter()
                    .any(|conj| conj.iter().all(|a| eval_atom(graph, id, alias, a, &inside)));
                if !hit {
                    continue;
                }
            }
            match &expr.member {
                None => entries.push(Entry::Box(id)),
                Some(m) => {
                    if b.item(m).is_some() {
                        let mi = self.intern_member(m);
                        entries.push(Entry::Member(id, mi));
                    }
                }
            }
        }
        Ok(Selection { entries }.dedup())
    }

    fn eval_set(&self, graph: &Graph, e: &SetExpr) -> Result<Selection> {
        Ok(match e {
            SetExpr::Var(v) => self
                .vars
                .get(v)
                .cloned()
                .ok_or_else(|| VqlError::Exec(format!("unknown selection `{v}`")))?,
            SetExpr::Reachable(v) => {
                let sel = self
                    .vars
                    .get(v)
                    .ok_or_else(|| VqlError::Exec(format!("unknown selection `{v}`")))?;
                let seeds = self.expand(graph, sel);
                Selection {
                    entries: graph
                        .reachable(&seeds)
                        .into_iter()
                        .map(Entry::Box)
                        .collect(),
                }
            }
            SetExpr::Diff(a, b) => {
                let a = self.eval_set(graph, a)?;
                let b = self.eval_set(graph, b)?;
                let bs: std::collections::HashSet<Entry> = b.entries.into_iter().collect();
                Selection {
                    entries: a.entries.into_iter().filter(|e| !bs.contains(e)).collect(),
                }
            }
            SetExpr::Inter(a, b) => {
                let a = self.eval_set(graph, a)?;
                let b = self.eval_set(graph, b)?;
                let bs: std::collections::HashSet<Entry> = b.entries.into_iter().collect();
                Selection {
                    entries: a.entries.into_iter().filter(|e| bs.contains(e)).collect(),
                }
            }
            SetExpr::Union(a, b) => {
                let mut a = self.eval_set(graph, a)?;
                let b = self.eval_set(graph, b)?;
                a.entries.extend(b.entries);
                a.dedup()
            }
        })
    }
}

/// A one-line label for a clause span (what `vtrace` shows per clause).
fn describe_stmt(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Select {
            var, expr, source, ..
        } => {
            let member = expr
                .member
                .as_deref()
                .map(|m| format!(".{m}"))
                .unwrap_or_default();
            let src = match source {
                Source::All => "*".to_string(),
                Source::Var(v) => v.clone(),
                Source::Reachable(v) => format!("REACHABLE({v})"),
            };
            format!("{var} = SELECT {}{member} FROM {src}", expr.type_name)
        }
        Stmt::Update { attrs, .. } => {
            let names: Vec<&str> = attrs.iter().map(|(n, _)| n.as_str()).collect();
            format!("UPDATE … WITH {}", names.join(", "))
        }
    }
}

fn lit_to_json(v: &ValueLit) -> serde_json::Value {
    match v {
        ValueLit::Int(n) => {
            // Attribute context: 0/1 read best as booleans.
            if *n == 0 || *n == 1 {
                serde_json::Value::Bool(*n == 1)
            } else {
                serde_json::json!(n)
            }
        }
        ValueLit::Str(s) => serde_json::json!(s),
    }
}

fn apply_member_attr(graph: &mut Graph, id: BoxId, member: &str, attr: &str, v: serde_json::Value) {
    // Container members carry their own attrs; link members forward to the
    // target box; texts fall back to the box itself.
    let mut link_target = None;
    {
        let b = graph.get_mut(id);
        for view in &mut b.views {
            for item in &mut view.items {
                if item.name() != member {
                    continue;
                }
                match item {
                    Item::Container { attrs, .. } => {
                        attrs.set(attr, v.clone());
                        return;
                    }
                    Item::Link { target, .. } => {
                        link_target = Some(*target);
                    }
                    _ => {}
                }
            }
        }
    }
    match link_target {
        Some(t) => graph.get_mut(t).attrs.set(attr, v),
        None => graph.get_mut(id).attrs.set(attr, v),
    }
}

fn eval_atom(
    graph: &Graph,
    id: BoxId,
    alias: Option<&str>,
    atom: &crate::parse::CondAtom,
    inside: &dyn Fn(&str, BoxId) -> bool,
) -> bool {
    let (member, op, value) = match atom {
        crate::parse::CondAtom::IsInside(var) => return inside(var, id),
        crate::parse::CondAtom::Cmp { member, op, value } => (member, *op, value),
    };
    let b = graph.get(id);
    // The alias (or the literal word `addr`) compares the box address.
    let lhs: Option<i64> = if Some(member.as_str()) == alias || member == "addr" {
        Some(b.addr as i64)
    } else {
        b.member_raw(member, graph)
    };
    match (value, lhs) {
        (ValueLit::Int(rhs), Some(l)) => cmp(op, l, *rhs),
        (ValueLit::Str(s), _) => {
            // String comparison against the rendered text.
            let text = b.item(member).and_then(|i| match i {
                Item::Text { value, .. } => Some(value.clone()),
                _ => None,
            });
            match (op, text) {
                (Op::Eq, Some(t)) => t == *s,
                (Op::Ne, Some(t)) => t != *s,
                (Op::Ne, None) => true,
                _ => false,
            }
        }
        (_, None) => matches!(op, Op::Ne),
    }
}

fn cmp(op: Op, l: i64, r: i64) -> bool {
    match op {
        Op::Eq => l == r,
        Op::Ne => l != r,
        // Addresses and sizes are unsigned; compare as such.
        Op::Lt => (l as u64) < (r as u64),
        Op::Gt => (l as u64) > (r as u64),
        Op::Le => (l as u64) <= (r as u64),
        Op::Ge => (l as u64) >= (r as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgraph::{Attrs, ContainerKind, ViewInst};

    /// A toy graph shaped like a process list with mms and a container.
    fn toy() -> Graph {
        let mut g = Graph::new();
        let mut tasks = Vec::new();
        for (i, (pid, ppid)) in [(1i64, 0i64), (2, 1), (3, 1), (4, 2)].iter().enumerate() {
            let (id, _) = g.intern(0x1000 + i as u64 * 0x100, "Task", "task_struct", 64);
            let mm = if *pid == 3 {
                None
            } else {
                let (m, _) = g.intern(0x9000 + i as u64 * 0x100, "MM", "mm_struct", 32);
                g.get_mut(m).views.push(ViewInst {
                    name: "default".into(),
                    items: vec![],
                });
                Some(m)
            };
            let mut items = vec![
                Item::Text {
                    name: "pid".into(),
                    value: pid.to_string(),
                    raw: Some(*pid),
                },
                Item::Text {
                    name: "ppid".into(),
                    value: ppid.to_string(),
                    raw: Some(*ppid),
                },
            ];
            match mm {
                Some(m) => items.push(Item::Link {
                    name: "mm".into(),
                    target: m,
                }),
                None => items.push(Item::NullLink { name: "mm".into() }),
            }
            g.get_mut(id).views.push(ViewInst {
                name: "default".into(),
                items,
            });
            tasks.push(id);
        }
        // A container on task 0.
        let members = tasks[1..].to_vec();
        let t0 = tasks[0];
        if let Some(view) = g.get_mut(t0).views.first_mut() {
            view.items.push(Item::Container {
                name: "children".into(),
                kind: ContainerKind::Sequence,
                members,
                attrs: Attrs::default(),
            });
        }
        g.roots.push(t0);
        g
    }

    #[test]
    fn select_where_or_and_update_difference() {
        let mut g = toy();
        let mut e = Engine::new();
        e.run(
            &mut g,
            r#"
task_all = SELECT task_struct FROM *
task_2 = SELECT task_struct FROM task_all WHERE pid == 2 OR ppid == 2
UPDATE task_all \ task_2 WITH collapsed: true
"#,
        )
        .unwrap();
        assert_eq!(e.var("task_all").unwrap().len(), 4);
        assert_eq!(e.var("task_2").unwrap().len(), 2);
        let collapsed: Vec<bool> = g
            .boxes()
            .iter()
            .filter(|b| b.label == "Task")
            .map(|b| b.attrs.collapsed)
            .collect();
        // pids 1 and 3 collapsed; 2 and 4 (ppid 2) stay.
        assert_eq!(collapsed, vec![true, false, true, false]);
    }

    #[test]
    fn where_null_checks_links() {
        let mut g = toy();
        let mut e = Engine::new();
        e.run(
            &mut g,
            "user = SELECT task_struct FROM * WHERE mm != NULL\nUPDATE user WITH view: show_mm",
        )
        .unwrap();
        assert_eq!(e.var("user").unwrap().len(), 3);
        let with_view = g
            .boxes()
            .iter()
            .filter(|b| b.attrs.view.as_deref() == Some("show_mm"))
            .count();
        assert_eq!(with_view, 3);
    }

    #[test]
    fn member_select_collapses_container_only() {
        let mut g = toy();
        let mut e = Engine::new();
        e.run(
            &mut g,
            "kids = SELECT task_struct.children FROM *\nUPDATE kids WITH collapsed: true",
        )
        .unwrap();
        assert_eq!(e.var("kids").unwrap().len(), 1);
        // The container item is collapsed, not the box.
        let t0 = g.roots[0];
        let b = g.get(t0);
        assert!(!b.attrs.collapsed);
        match b.item("children").unwrap() {
            Item::Container { attrs, .. } => assert!(attrs.collapsed),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reachable_closure_from_selection() {
        let mut g = toy();
        let mut e = Engine::new();
        e.run(
            &mut g,
            r#"
roots = SELECT task_struct FROM * WHERE pid == 1
everything = SELECT task_struct FROM REACHABLE(roots)
mms = SELECT mm_struct FROM REACHABLE(roots)
"#,
        )
        .unwrap();
        assert_eq!(e.var("everything").unwrap().len(), 4);
        assert_eq!(e.var("mms").unwrap().len(), 3);
    }

    #[test]
    fn member_link_select_targets_boxes() {
        let mut g = toy();
        let mut e = Engine::new();
        e.run(
            &mut g,
            r#"
task_mms = SELECT task_struct->mm FROM *
UPDATE task_mms WITH trimmed: true
"#,
        )
        .unwrap();
        // Updating the `mm` member forwards to the MM target boxes.
        let trimmed = g
            .boxes()
            .iter()
            .filter(|b| b.label == "MM" && b.attrs.trimmed)
            .count();
        assert_eq!(trimmed, 3);
    }

    #[test]
    fn alias_compares_addresses() {
        let mut g = toy();
        let keep = g.get(g.roots[0]).addr;
        let mut e = Engine::new();
        e.run(
            &mut g,
            &format!(
                "a = SELECT task_struct FROM * AS t WHERE t != {keep}\nUPDATE a WITH trimmed: true"
            ),
        )
        .unwrap();
        let trimmed: Vec<bool> = g
            .boxes()
            .iter()
            .filter(|b| b.label == "Task")
            .map(|b| b.attrs.trimmed)
            .collect();
        assert_eq!(trimmed, vec![false, true, true, true]);
    }

    #[test]
    fn set_union_and_intersection() {
        let mut g = toy();
        let mut e = Engine::new();
        e.run(
            &mut g,
            r#"
a = SELECT task_struct FROM * WHERE pid <= 2
b = SELECT task_struct FROM * WHERE pid >= 2
UPDATE a & b WITH view: only_two
UPDATE a | b WITH collapsed: true
"#,
        )
        .unwrap();
        let two = g
            .boxes()
            .iter()
            .filter(|b| b.attrs.view.as_deref() == Some("only_two"))
            .count();
        assert_eq!(two, 1);
        let all = g.boxes().iter().filter(|b| b.attrs.collapsed).count();
        assert_eq!(all, 4);
    }

    #[test]
    fn is_inside_tests_container_membership() {
        let mut g = toy();
        let mut e = Engine::new();
        e.run(
            &mut g,
            r#"
roots = SELECT task_struct FROM * WHERE pid == 1
kids = SELECT task_struct FROM * WHERE IS_INSIDE(roots)
UPDATE kids WITH collapsed: true
"#,
        )
        .unwrap();
        // pids 2, 3, 4 are members of task 1's `children` container.
        assert_eq!(e.var("kids").unwrap().len(), 3);
        let collapsed: Vec<bool> = g
            .boxes()
            .iter()
            .filter(|b| b.label == "Task")
            .map(|b| b.attrs.collapsed)
            .collect();
        assert_eq!(collapsed, vec![false, true, true, true]);
    }

    #[test]
    fn set_algebra_laws_hold() {
        let g = toy();
        let mut e = Engine::new();
        let mut g2 = g.clone();
        e.run(
            &mut g2,
            "a = SELECT task_struct FROM * WHERE pid <= 2
b = SELECT task_struct FROM * WHERE pid >= 2",
        )
        .unwrap();
        let a = e.var("a").unwrap().clone();
        let b = e.var("b").unwrap().clone();
        let inter = e
            .eval_set(
                &g2,
                &crate::parse::SetExpr::Inter(
                    Box::new(crate::parse::SetExpr::Var("a".into())),
                    Box::new(crate::parse::SetExpr::Var("b".into())),
                ),
            )
            .unwrap();
        let diff = e
            .eval_set(
                &g2,
                &crate::parse::SetExpr::Diff(
                    Box::new(crate::parse::SetExpr::Var("a".into())),
                    Box::new(crate::parse::SetExpr::Var("b".into())),
                ),
            )
            .unwrap();
        let union = e
            .eval_set(
                &g2,
                &crate::parse::SetExpr::Union(
                    Box::new(crate::parse::SetExpr::Var("a".into())),
                    Box::new(crate::parse::SetExpr::Var("b".into())),
                ),
            )
            .unwrap();
        // |A| = |A\B| + |A∩B|;  |A∪B| = |A| + |B| - |A∩B|;  A∩B ⊆ A.
        assert_eq!(a.len(), diff.len() + inter.len());
        assert_eq!(union.len(), a.len() + b.len() - inter.len());
        assert!(inter.entries.iter().all(|x| a.entries.contains(x)));
        assert!(diff.entries.iter().all(|x| !b.entries.contains(x)));
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let mut g = toy();
        let mut e = Engine::new();
        assert!(matches!(
            e.run(&mut g, "UPDATE nope WITH trimmed: true"),
            Err(VqlError::Exec(_))
        ));
    }
}
