//! ViewQL — the View Query Language (paper §2.3, §4.2).
//!
//! An SQL-like language for *last-mile* customization of an extracted
//! object graph. Deliberately tiny — only `SELECT` and `UPDATE`, no
//! nesting — which is what makes it practical for developers who have
//! never seen ViewCL, and synthesizable by LLMs (§2.4):
//!
//! ```text
//! task_all = SELECT task_struct FROM *
//! task_2   = SELECT task_struct FROM task_all WHERE pid == 2 OR ppid == 2
//! UPDATE task_all \ task_2 WITH collapsed: true
//! ```
//!
//! Selections are sets of boxes *or members* (`SELECT maple_node.slots`),
//! support set algebra (`\` difference, `&` intersection, `|` union) and
//! the `REACHABLE(v)` closure builtin.

mod exec;
mod parse;

pub use exec::{Engine, Entry, Selection};
pub use parse::{parse, Cond, CondAtom, Op, SelExpr, SetExpr, Source, Stmt, ValueLit};

/// Errors from parsing or executing ViewQL.
#[derive(Debug, Clone, PartialEq)]
pub enum VqlError {
    /// Syntax error, anchored at a byte offset into the program text.
    Parse {
        /// Byte offset of the offending token/character.
        pos: usize,
        /// What went wrong.
        msg: String,
    },
    /// Execution error (unknown variable, bad member, …).
    Exec(String),
}

impl VqlError {
    /// The byte offset of a parse error (`None` for execution errors).
    pub fn position(&self) -> Option<usize> {
        match self {
            VqlError::Parse { pos, .. } => Some(*pos),
            VqlError::Exec(_) => None,
        }
    }
}

impl std::fmt::Display for VqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VqlError::Parse { pos, msg } => {
                // Rendered through the shared position helper so ViewQL
                // and ViewCL diagnostics stay format-identical.
                f.write_str(&vtrace::diag::parse_error("viewql parse error", *pos, msg))
            }
            VqlError::Exec(m) => write!(f, "viewql execution error: {m}"),
        }
    }
}

impl std::error::Error for VqlError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, VqlError>;

/// Count non-blank, non-comment lines (Table 3's "<10 lines" metric).
pub fn loc_of(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}
