//! ViewQL grammar and parser.

use crate::{Result, VqlError};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

/// A literal in a `WHERE` condition or `WITH` attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueLit {
    /// Integer (also `NULL` → 0, `true` → 1, `false` → 0).
    Int(i64),
    /// Bare words and quoted strings.
    Str(String),
}

/// What to select: a type name, or a type member.
#[derive(Debug, Clone, PartialEq)]
pub struct SelExpr {
    /// Type name: a C tag (`task_struct`) or ViewCL label (`List`).
    pub type_name: String,
    /// Optional member (`maple_node.slots`, `file->pagecache`).
    pub member: Option<String>,
}

/// `FROM` source.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// `*` — every box in the graph.
    All,
    /// A previously bound selection variable.
    Var(String),
    /// `REACHABLE(var)`.
    Reachable(String),
}

/// Set expression over selection variables (UPDATE target).
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A variable.
    Var(String),
    /// `REACHABLE(var)`.
    Reachable(String),
    /// `a \ b`.
    Diff(Box<SetExpr>, Box<SetExpr>),
    /// `a & b`.
    Inter(Box<SetExpr>, Box<SetExpr>),
    /// `a | b`.
    Union(Box<SetExpr>, Box<SetExpr>),
}

/// One `WHERE` atom: `member op value`, or the `IS_INSIDE(var)` object-set
/// operator (§4.2) testing container membership in a prior selection.
#[derive(Debug, Clone, PartialEq)]
pub enum CondAtom {
    /// `member op value` comparison.
    Cmp {
        /// Member name, or the `AS` alias (compares the box address).
        member: String,
        /// Operator.
        op: Op,
        /// Right-hand literal.
        value: ValueLit,
    },
    /// `IS_INSIDE(var)` — the box is a container member of a box in `var`.
    IsInside(String),
}

/// A `WHERE` condition in disjunctive normal form: OR of ANDs of atoms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cond {
    /// Each inner vec is a conjunction.
    pub disjuncts: Vec<Vec<CondAtom>>,
}

/// A ViewQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var = SELECT expr FROM source [AS alias] [WHERE cond]`.
    Select {
        /// Target variable.
        var: String,
        /// Selection expression.
        expr: SelExpr,
        /// Source set.
        source: Source,
        /// `AS` alias usable in the condition.
        alias: Option<String>,
        /// Filter.
        cond: Option<Cond>,
    },
    /// `UPDATE setexpr WITH attr: value[, attr: value…]`.
    Update {
        /// Target selection.
        target: SetExpr,
        /// Attribute assignments.
        attrs: Vec<(String, ValueLit)>,
    },
}

// ------------------------------------------------------------------ lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Num(i64),
    Str(String),
    P(&'static str),
    Eof,
}

fn perr(pos: usize, msg: impl Into<String>) -> VqlError {
    VqlError::Parse {
        pos,
        msg: msg.into(),
    }
}

/// Lex into `(token, byte offset of its first character)` pairs.
fn lex(src: &str) -> Result<Vec<(Tok, usize)>> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let s = i;
                while i < b.len() && matches!(b[i] as char, 'a'..='z'|'A'..='Z'|'0'..='9'|'_') {
                    i += 1;
                }
                out.push((Tok::Word(src[s..i].to_string()), s));
            }
            '0'..='9' => {
                let s = i;
                if c == '0' && i + 1 < b.len() && (b[i + 1] | 32) == b'x' {
                    i += 2;
                    while i < b.len() && (b[i] as char).is_ascii_hexdigit() {
                        i += 1;
                    }
                    let v = u64::from_str_radix(&src[s + 2..i], 16)
                        .map_err(|_| perr(s, "bad hex literal"))?;
                    out.push((Tok::Num(v as i64), s));
                } else {
                    while i < b.len() && (b[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let v: u64 = src[s..i].parse().map_err(|_| perr(s, "bad literal"))?;
                    out.push((Tok::Num(v as i64), s));
                }
            }
            '"' | '\'' => {
                let quote = b[i];
                let open = i;
                i += 1;
                let s = i;
                while i < b.len() && b[i] != quote {
                    i += 1;
                }
                if i == b.len() {
                    return Err(perr(open, "unterminated string"));
                }
                out.push((Tok::Str(src[s..i].to_string()), open));
                i += 1;
            }
            '<' if i + 1 < b.len() && b[i + 1] != b'=' => {
                // `<placeholder>` — an address placeholder from a natural-
                // language template left unexpanded; treat as a parse error
                // with a good message (users must splice real addresses).
                if b[i + 1].is_ascii_alphabetic() {
                    return Err(perr(
                        i,
                        "unexpanded `<placeholder>`; splice a concrete value",
                    ));
                }
                out.push((Tok::P("<"), i));
                i += 1;
            }
            _ => {
                let two = if i + 1 < b.len() { &src[i..i + 2] } else { "" };
                let p2 = match two {
                    "==" => Some("=="),
                    "!=" => Some("!="),
                    "<=" => Some("<="),
                    ">=" => Some(">="),
                    "->" => Some("->"),
                    _ => None,
                };
                if let Some(p) = p2 {
                    out.push((Tok::P(p), i));
                    i += 2;
                    continue;
                }
                let p: &'static str = match c {
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    '.' => ".",
                    ',' => ",",
                    ':' => ":",
                    '(' => "(",
                    ')' => ")",
                    '*' => "*",
                    '\\' => "\\",
                    '&' => "&",
                    '|' => "|",
                    _ => return Err(perr(i, format!("unexpected `{c}`"))),
                };
                out.push((Tok::P(p), i));
                i += 1;
            }
        }
    }
    out.push((Tok::Eof, src.len()));
    Ok(out)
}

// ----------------------------------------------------------------- parser --

struct P {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    /// Byte offset of the current token (for error anchoring).
    fn cur_pos(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_p(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::P(q) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Word(w) if w.eq_ignore_ascii_case(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self) -> Result<String> {
        let pos = self.cur_pos();
        match self.bump() {
            Tok::Word(w) => Ok(w),
            t => Err(perr(pos, format!("expected identifier, got {t:?}"))),
        }
    }

    fn stmts(&mut self) -> Result<Vec<Stmt>> {
        let mut out = Vec::new();
        while !matches!(self.peek(), Tok::Eof) {
            if self.eat_kw("UPDATE") {
                out.push(self.update()?);
            } else {
                let var = self.expect_word()?;
                if !self.eat_p("=") {
                    return Err(perr(self.cur_pos(), format!("expected `=` after `{var}`")));
                }
                if !self.eat_kw("SELECT") {
                    let pos = self.cur_pos();
                    let msg = match self.peek() {
                        Tok::Word(w) => format!("unknown clause `{w}` (expected SELECT)"),
                        t => format!("expected SELECT, got {t:?}"),
                    };
                    return Err(perr(pos, msg));
                }
                out.push(self.select(var)?);
            }
        }
        Ok(out)
    }

    fn select(&mut self, var: String) -> Result<Stmt> {
        let tpos = self.cur_pos();
        let type_name = self.expect_word()?;
        // `SELECT FROM *` — the selector is missing, and the FROM keyword
        // was swallowed as the "type name". Report it where it happened.
        if type_name.eq_ignore_ascii_case("FROM") || type_name.eq_ignore_ascii_case("WHERE") {
            return Err(perr(
                tpos,
                format!("empty selector: expected a type name before `{type_name}`"),
            ));
        }
        let member = if self.eat_p(".") || self.eat_p("->") {
            Some(self.expect_word()?)
        } else {
            None
        };
        if !self.eat_kw("FROM") {
            return Err(perr(self.cur_pos(), "expected FROM"));
        }
        let source = if self.eat_p("*") {
            Source::All
        } else {
            let w = self.expect_word()?;
            if w.eq_ignore_ascii_case("REACHABLE") {
                if !self.eat_p("(") {
                    return Err(perr(self.cur_pos(), "expected `(` after REACHABLE"));
                }
                let v = self.expect_word()?;
                if !self.eat_p(")") {
                    return Err(perr(self.cur_pos(), "expected `)`"));
                }
                Source::Reachable(v)
            } else {
                Source::Var(w)
            }
        };
        let alias = if self.eat_kw("AS") {
            Some(self.expect_word()?)
        } else {
            None
        };
        let cond = if self.eat_kw("WHERE") {
            Some(self.cond()?)
        } else {
            None
        };
        Ok(Stmt::Select {
            var,
            expr: SelExpr { type_name, member },
            source,
            alias,
            cond,
        })
    }

    fn cond(&mut self) -> Result<Cond> {
        let mut disjuncts = vec![vec![self.atom()?]];
        loop {
            if self.eat_kw("AND") {
                disjuncts.last_mut().unwrap().push(self.atom()?);
            } else if self.eat_kw("OR") {
                disjuncts.push(vec![self.atom()?]);
            } else {
                break;
            }
        }
        Ok(Cond { disjuncts })
    }

    fn atom(&mut self) -> Result<CondAtom> {
        let mut member = self.expect_word()?;
        if member.eq_ignore_ascii_case("IS_INSIDE") && self.eat_p("(") {
            let var = self.expect_word()?;
            if !self.eat_p(")") {
                return Err(perr(self.cur_pos(), "expected `)` after IS_INSIDE"));
            }
            return Ok(CondAtom::IsInside(var));
        }
        while self.eat_p(".") || self.eat_p("->") {
            member.push('.');
            member.push_str(&self.expect_word()?);
        }
        let opos = self.cur_pos();
        let op = match self.bump() {
            Tok::P("==") => Op::Eq,
            Tok::P("!=") => Op::Ne,
            Tok::P("<") => Op::Lt,
            Tok::P(">") => Op::Gt,
            Tok::P("<=") => Op::Le,
            Tok::P(">=") => Op::Ge,
            t => return Err(perr(opos, format!("expected comparison, got {t:?}"))),
        };
        let value = self.value()?;
        Ok(CondAtom::Cmp { member, op, value })
    }

    fn value(&mut self) -> Result<ValueLit> {
        let vpos = self.cur_pos();
        Ok(match self.bump() {
            Tok::Num(n) => ValueLit::Int(n),
            Tok::Str(s) => ValueLit::Str(s),
            Tok::Word(w) if w == "NULL" => ValueLit::Int(0),
            Tok::Word(w) if w == "true" => ValueLit::Int(1),
            Tok::Word(w) if w == "false" => ValueLit::Int(0),
            Tok::Word(w) => ValueLit::Str(w),
            t => return Err(perr(vpos, format!("expected a value, got {t:?}"))),
        })
    }

    fn update(&mut self) -> Result<Stmt> {
        let target = self.set_expr()?;
        if !self.eat_kw("WITH") {
            return Err(perr(self.cur_pos(), "expected WITH"));
        }
        let mut attrs = Vec::new();
        loop {
            let name = self.expect_word()?;
            if !self.eat_p(":") {
                return Err(perr(
                    self.cur_pos(),
                    format!("expected `:` after attr `{name}`"),
                ));
            }
            attrs.push((name, self.value()?));
            if !self.eat_p(",") {
                break;
            }
        }
        Ok(Stmt::Update { target, attrs })
    }

    fn set_expr(&mut self) -> Result<SetExpr> {
        let mut lhs = self.set_term()?;
        loop {
            let op = if self.eat_p("\\") {
                "\\"
            } else if self.eat_p("&") {
                "&"
            } else if self.eat_p("|") {
                "|"
            } else {
                break;
            };
            let rhs = self.set_term()?;
            lhs = match op {
                "\\" => SetExpr::Diff(Box::new(lhs), Box::new(rhs)),
                "&" => SetExpr::Inter(Box::new(lhs), Box::new(rhs)),
                _ => SetExpr::Union(Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn set_term(&mut self) -> Result<SetExpr> {
        let w = self.expect_word()?;
        if w.eq_ignore_ascii_case("REACHABLE") {
            if !self.eat_p("(") {
                return Err(perr(self.cur_pos(), "expected `(` after REACHABLE"));
            }
            let v = self.expect_word()?;
            if !self.eat_p(")") {
                return Err(perr(self.cur_pos(), "expected `)`"));
            }
            return Ok(SetExpr::Reachable(v));
        }
        Ok(SetExpr::Var(w))
    }
}

/// Parse a ViewQL program into statements.
pub fn parse(src: &str) -> Result<Vec<Stmt>> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0 };
    p.stmts()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_select_where_or() {
        let s = parse("task_2 = SELECT task_struct FROM all_tasks WHERE pid == 2 OR ppid == 2")
            .unwrap();
        match &s[0] {
            Stmt::Select {
                var,
                expr,
                source,
                cond,
                ..
            } => {
                assert_eq!(var, "task_2");
                assert_eq!(expr.type_name, "task_struct");
                assert_eq!(source, &Source::Var("all_tasks".into()));
                let c = cond.as_ref().unwrap();
                assert_eq!(c.disjuncts.len(), 2);
                assert!(
                    matches!(&c.disjuncts[0][0], CondAtom::Cmp { member, .. } if member == "pid")
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_member_select_and_update_set_diff() {
        let s = parse(
            "slots = SELECT maple_node.slots FROM *\nUPDATE task_all \\ task_2 WITH collapsed: true",
        )
        .unwrap();
        match &s[0] {
            Stmt::Select { expr, .. } => assert_eq!(expr.member.as_deref(), Some("slots")),
            other => panic!("unexpected {other:?}"),
        }
        match &s[1] {
            Stmt::Update { target, attrs } => {
                assert!(matches!(target, SetExpr::Diff(..)));
                assert_eq!(attrs[0].0, "collapsed");
                assert_eq!(attrs[0].1, ValueLit::Int(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_reachable_and_arrow_member() {
        let s = parse(
            "file_pgc = SELECT file->pagecache FROM *\nfile_pgs = SELECT page FROM REACHABLE(file_pgc)",
        )
        .unwrap();
        match &s[1] {
            Stmt::Select { source, .. } => {
                assert_eq!(source, &Source::Reachable("file_pgc".into()))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_alias_and_null() {
        let s = parse("a = SELECT vm_area_struct FROM * AS vma WHERE vma != NULL").unwrap();
        match &s[0] {
            Stmt::Select { alias, cond, .. } => {
                assert_eq!(alias.as_deref(), Some("vma"));
                assert!(matches!(
                    &cond.as_ref().unwrap().disjuncts[0][0],
                    CondAtom::Cmp {
                        value: ValueLit::Int(0),
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_multiple_attrs_and_string_values() {
        let s = parse("UPDATE a WITH view: show_mm, direction: vertical").unwrap();
        match &s[0] {
            Stmt::Update { attrs, .. } => {
                assert_eq!(attrs.len(), 2);
                assert_eq!(attrs[0].1, ValueLit::Str("show_mm".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_unexpanded_placeholders() {
        assert!(matches!(
            parse("a = SELECT x FROM * WHERE vma != <fetched_node_address>"),
            Err(VqlError::Parse { .. })
        ));
    }

    #[test]
    fn unterminated_string_reports_opening_quote_position() {
        let src = "a = SELECT task_struct FROM * WHERE comm == \"swap";
        let err = parse(src).unwrap_err();
        match &err {
            VqlError::Parse { pos, msg } => {
                assert_eq!(*pos, src.find('"').unwrap());
                assert!(msg.contains("unterminated string"), "{msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(err.position(), Some(src.find('"').unwrap()));
        assert!(err
            .to_string()
            .contains(&format!("byte {}", err.position().unwrap())));
    }

    #[test]
    fn unknown_clause_reports_the_offending_word() {
        let src = "a = FETCH task_struct FROM *";
        let err = parse(src).unwrap_err();
        match &err {
            VqlError::Parse { pos, msg } => {
                assert_eq!(*pos, src.find("FETCH").unwrap());
                assert!(msg.contains("unknown clause `FETCH`"), "{msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_selector_reports_position_of_from() {
        let src = "a = SELECT FROM *";
        let err = parse(src).unwrap_err();
        match &err {
            VqlError::Parse { pos, msg } => {
                assert_eq!(*pos, src.find("FROM").unwrap());
                assert!(msg.contains("empty selector"), "{msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Execution errors carry no position.
        assert_eq!(VqlError::Exec("x".into()).position(), None);
    }

    #[test]
    fn loc_counts_code_lines() {
        assert_eq!(
            crate::loc_of("// c\n\na = SELECT x FROM *\nUPDATE a WITH t: true\n"),
            2
        );
    }
}
