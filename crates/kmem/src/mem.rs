//! The sparse, page-granular memory image.

use std::collections::HashMap;

use crate::{MemError, Result};

/// Page size of the simulated target (matches x86-64 Linux).
pub const PAGE_SIZE: u64 = 4096;

/// A sparse byte-addressed memory image.
///
/// Pages are materialized on first write; reading an address that was never
/// written faults with [`MemError::Unmapped`], which is how the debugger
/// bridge reports dangling pointers (e.g. a use-after-free probe touching a
/// truly freed object).
#[derive(Debug, Default)]
pub struct Mem {
    pages: HashMap<u64, Box<[u8]>>,
    /// When `Some`, every mutation appends the byte range it touched.
    /// Off by default: the workload build phase issues millions of
    /// writes nobody will ever diff against.
    dirty: Option<Vec<(u64, u64)>>,
}

impl Mem {
    /// Create an empty image.
    pub fn new() -> Self {
        Self::default()
    }

    fn page_of(addr: u64) -> (u64, usize) {
        (addr / PAGE_SIZE, (addr % PAGE_SIZE) as usize)
    }

    /// Start logging the byte range of every subsequent mutation
    /// ([`write`](Self::write), [`unmap`](Self::unmap), and fresh pages
    /// from [`map`](Self::map)). Call after the image is built so the
    /// log holds only stop-to-stop mutations.
    pub fn enable_dirty_tracking(&mut self) {
        if self.dirty.is_none() {
            self.dirty = Some(Vec::new());
        }
    }

    /// Whether mutations are currently being logged.
    pub fn dirty_tracking(&self) -> bool {
        self.dirty.is_some()
    }

    /// Drain the mutation log: the raw `(addr, len)` ranges touched
    /// since tracking was enabled or last drained, in write order,
    /// unmerged. `None` when tracking is off — callers must then assume
    /// anything may have changed.
    pub fn take_dirty(&mut self) -> Option<Vec<(u64, u64)>> {
        self.dirty.as_mut().map(std::mem::take)
    }

    fn note_dirty(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        if let Some(log) = &mut self.dirty {
            // Coalesce the common pattern of consecutive field writes.
            if let Some(last) = log.last_mut() {
                if last.0 + last.1 == addr {
                    last.1 += len;
                    return;
                }
            }
            log.push((addr, len));
        }
    }

    /// Map (zero-fill) the pages covering `[addr, addr + len)`.
    pub fn map(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        for p in first..=last {
            let mut fresh = false;
            self.pages.entry(p).or_insert_with(|| {
                fresh = true;
                vec![0u8; PAGE_SIZE as usize].into_boxed_slice()
            });
            if fresh {
                // A newly mapped page flips reads from faulting to zero.
                self.note_dirty(p * PAGE_SIZE, PAGE_SIZE);
            }
        }
    }

    /// Remove the mapping of every page fully covered by `[addr, addr+len)`,
    /// plus the partially covered edge pages.
    ///
    /// Used by bug-injection scenarios to simulate freed memory: subsequent
    /// reads fault like GDB reading a truly recycled page would misbehave.
    pub fn unmap(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        for p in first..=last {
            if self.pages.remove(&p).is_some() {
                self.note_dirty(p * PAGE_SIZE, PAGE_SIZE);
            }
        }
    }

    /// Whether `addr` lies on a mapped page.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.pages.contains_key(&(addr / PAGE_SIZE))
    }

    /// Read `out.len()` bytes starting at `addr`.
    pub fn read(&self, addr: u64, out: &mut [u8]) -> Result<()> {
        let mut addr = addr;
        let mut out = out;
        while !out.is_empty() {
            let (page, off) = Self::page_of(addr);
            let p = self.pages.get(&page).ok_or(MemError::Unmapped { addr })?;
            let n = (PAGE_SIZE as usize - off).min(out.len());
            out[..n].copy_from_slice(&p[off..off + n]);
            out = &mut out[n..];
            addr += n as u64;
        }
        Ok(())
    }

    /// Write `data` starting at `addr`, materializing pages as needed.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        self.note_dirty(addr, data.len() as u64);
        let mut addr = addr;
        let mut data = data;
        while !data.is_empty() {
            let (page, off) = Self::page_of(addr);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
            let n = (PAGE_SIZE as usize - off).min(data.len());
            p[off..off + n].copy_from_slice(&data[..n]);
            data = &data[n..];
            addr += n as u64;
        }
    }

    /// Read an unsigned little-endian integer of `size` bytes.
    pub fn read_uint(&self, addr: u64, size: usize) -> Result<u64> {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf[..size])?;
        Ok(ktypes::read_uint(&buf, size))
    }

    /// Read a signed little-endian integer of `size` bytes.
    pub fn read_int(&self, addr: u64, size: usize) -> Result<i64> {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf[..size])?;
        Ok(ktypes::read_int(&buf, size))
    }

    /// Write an integer of `size` bytes at `addr`.
    pub fn write_uint(&mut self, addr: u64, size: usize, value: u64) {
        let mut buf = [0u8; 8];
        ktypes::write_int(&mut buf, size, value);
        self.write(addr, &buf[..size]);
    }

    /// Read a NUL-terminated C string (capped at `max` bytes).
    pub fn read_cstr(&self, addr: u64, max: usize) -> Result<String> {
        let mut s = Vec::new();
        for i in 0..max as u64 {
            let mut b = [0u8];
            self.read(addr + i, &mut b)?;
            if b[0] == 0 {
                break;
            }
            s.push(b[0]);
        }
        Ok(String::from_utf8_lossy(&s).into_owned())
    }

    /// Write a NUL-terminated C string at `addr`.
    pub fn write_cstr(&mut self, addr: u64, s: &str) {
        self.write(addr, s.as_bytes());
        self.write(addr + s.len() as u64, &[0u8]);
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn read_unmapped_faults() {
        let m = Mem::new();
        let mut b = [0u8; 4];
        assert_eq!(
            m.read(0x1000, &mut b),
            Err(MemError::Unmapped { addr: 0x1000 })
        );
    }

    #[test]
    fn write_then_read_across_page_boundary() {
        let mut m = Mem::new();
        let addr = PAGE_SIZE - 3;
        m.write(addr, &[1, 2, 3, 4, 5, 6]);
        let mut out = [0u8; 6];
        m.read(addr, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4, 5, 6]);
        assert_eq!(m.mapped_pages(), 2);
    }

    #[test]
    fn unmap_makes_reads_fault_again() {
        let mut m = Mem::new();
        m.write(0x4000, &[9; 16]);
        assert!(m.is_mapped(0x4000));
        m.unmap(0x4000, 16);
        let mut b = [0u8];
        assert!(m.read(0x4000, &mut b).is_err());
    }

    #[test]
    fn map_zero_fills() {
        let mut m = Mem::new();
        m.map(0x2000, 64);
        assert_eq!(m.read_uint(0x2010, 8).unwrap(), 0);
    }

    #[test]
    fn cstr_round_trip() {
        let mut m = Mem::new();
        m.write_cstr(0x100, "swapper/0");
        assert_eq!(m.read_cstr(0x100, 16).unwrap(), "swapper/0");
        // Truncation at `max`.
        assert_eq!(m.read_cstr(0x100, 4).unwrap(), "swap");
    }

    #[test]
    fn uint_round_trip_all_sizes() {
        let mut m = Mem::new();
        for size in 1..=8 {
            let v = 0x1122_3344_5566_7788u64 & ((1u128 << (size * 8)) - 1) as u64;
            m.write_uint(0x900, size, v);
            assert_eq!(m.read_uint(0x900, size).unwrap(), v, "size {size}");
        }
    }

    #[test]
    fn dirty_tracking_logs_only_post_enable_mutations() {
        let mut m = Mem::new();
        m.write(0x1000, &[1; 16]);
        assert_eq!(m.take_dirty(), None, "off by default");
        m.enable_dirty_tracking();
        assert!(m.dirty_tracking());
        assert_eq!(m.take_dirty(), Some(Vec::new()), "nothing dirty yet");
        m.write_uint(0x2000, 8, 7);
        m.write_uint(0x2008, 8, 9); // adjacent: coalesces with the previous
        m.write_uint(0x3000, 4, 1);
        assert_eq!(m.take_dirty(), Some(vec![(0x2000, 16), (0x3000, 4)]));
        // Draining resets the log.
        assert_eq!(m.take_dirty(), Some(Vec::new()));
    }

    #[test]
    fn dirty_tracking_covers_map_and_unmap() {
        let mut m = Mem::new();
        m.write(0x5000, &[3; 8]);
        m.enable_dirty_tracking();
        m.unmap(0x5000, 8);
        m.map(0x9000, 8);
        m.map(0x9000, 8); // already mapped: not dirty again
        m.unmap(0x20000, 8); // never mapped: nothing changed
        assert_eq!(
            m.take_dirty(),
            Some(vec![(0x5000, PAGE_SIZE), (0x9000, PAGE_SIZE)])
        );
    }

    proptest! {
        #[test]
        fn prop_write_read_round_trip(addr in 0u64..1_000_000, data in proptest::collection::vec(any::<u8>(), 1..128)) {
            let mut m = Mem::new();
            m.write(addr, &data);
            let mut out = vec![0u8; data.len()];
            m.read(addr, &mut out).unwrap();
            prop_assert_eq!(out, data);
        }

        #[test]
        fn prop_disjoint_writes_do_not_interfere(
            a in 0u64..100_000,
            b in 200_000u64..300_000,
            da in proptest::collection::vec(any::<u8>(), 1..64),
            db in proptest::collection::vec(any::<u8>(), 1..64),
        ) {
            let mut m = Mem::new();
            m.write(a, &da);
            m.write(b, &db);
            let mut out = vec![0u8; da.len()];
            m.read(a, &mut out).unwrap();
            prop_assert_eq!(out, da);
        }
    }
}
