//! The symbol table of the simulated kernel image.

use std::collections::HashMap;

use ktypes::TypeId;

/// What a symbol denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolKind {
    /// A global object (e.g. `init_task`, `runqueues`).
    Object,
    /// A function entry point (used by the `FunPtr` text decorator).
    Function,
}

/// One entry of the simulated `System.map`.
#[derive(Debug, Clone)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Address in the image.
    pub addr: u64,
    /// Kind of symbol.
    pub kind: SymbolKind,
    /// Static type for object symbols (`None` for functions).
    pub ty: Option<TypeId>,
}

/// Bidirectional symbol table: name → symbol and address → name.
///
/// The reverse map is what lets Visualinux render a raw function pointer as
/// its name (paper §4.1, `FunPtr` decorator) and lets `container_of`-style
/// diagnostics name the enclosing object.
#[derive(Debug, Default)]
pub struct SymbolTable {
    by_name: HashMap<String, Symbol>,
    by_addr: HashMap<u64, String>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a global object symbol.
    pub fn define_object(&mut self, name: impl Into<String>, addr: u64, ty: TypeId) {
        self.insert(Symbol {
            name: name.into(),
            addr,
            kind: SymbolKind::Object,
            ty: Some(ty),
        });
    }

    /// Register a function symbol.
    pub fn define_function(&mut self, name: impl Into<String>, addr: u64) {
        self.insert(Symbol {
            name: name.into(),
            addr,
            kind: SymbolKind::Function,
            ty: None,
        });
    }

    fn insert(&mut self, sym: Symbol) {
        self.by_addr.insert(sym.addr, sym.name.clone());
        self.by_name.insert(sym.name.clone(), sym);
    }

    /// Look up a symbol by name.
    pub fn lookup(&self, name: &str) -> Option<&Symbol> {
        self.by_name.get(name)
    }

    /// Reverse-resolve an address to a symbol name (exact match).
    pub fn name_at(&self, addr: u64) -> Option<&str> {
        self.by_addr.get(&addr).map(|s| s.as_str())
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Iterate over all symbols in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.by_name.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktypes::{Prim, TypeRegistry};

    #[test]
    fn define_and_lookup_object() {
        let mut reg = TypeRegistry::new();
        let ty = reg.prim(Prim::U64);
        let mut t = SymbolTable::new();
        t.define_object("init_task", 0xffff_ffff_8300_0000, ty);
        let s = t.lookup("init_task").unwrap();
        assert_eq!(s.addr, 0xffff_ffff_8300_0000);
        assert_eq!(s.kind, SymbolKind::Object);
        assert!(s.ty.is_some());
    }

    #[test]
    fn reverse_lookup_names_function_pointers() {
        let mut t = SymbolTable::new();
        t.define_function("vmstat_update", 0xffff_ffff_8112_3400);
        assert_eq!(t.name_at(0xffff_ffff_8112_3400), Some("vmstat_update"));
        assert_eq!(t.name_at(0xdead), None);
    }

    #[test]
    fn redefinition_replaces() {
        let mut t = SymbolTable::new();
        t.define_function("f", 0x10);
        t.define_function("f", 0x20);
        assert_eq!(t.lookup("f").unwrap().addr, 0x20);
        assert_eq!(t.len(), 1);
    }
}
