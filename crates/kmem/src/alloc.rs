//! Bump allocators carving objects out of kernel-like address ranges.

use crate::mem::Mem;

/// A bump allocator over a fixed virtual-address range.
///
/// The kernel simulator uses one zone per kind of memory so that addresses
/// *look* like a real x86-64 kernel's: a text zone for function symbols, a
/// direct-map "heap" for slab objects, a percpu zone, and a vmemmap-style
/// zone for `struct page` arrays. Keeping kinds apart also makes plots and
/// test failures readable.
#[derive(Debug)]
pub struct Zone {
    name: &'static str,
    base: u64,
    end: u64,
    next: u64,
}

impl Zone {
    /// Create a zone spanning `[base, base + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range wraps the address space.
    pub fn new(name: &'static str, base: u64, len: u64) -> Self {
        let end = base.checked_add(len).expect("zone range overflows");
        Zone {
            name,
            base,
            end,
            next: base,
        }
    }

    /// The zone's name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Allocate `size` bytes aligned to `align`, mapping the backing pages.
    ///
    /// # Panics
    ///
    /// Panics on zone exhaustion — the simulated image is sized by the
    /// workload generator, so running out indicates a bug, not a runtime
    /// condition a caller could handle.
    pub fn alloc(&mut self, mem: &mut Mem, size: u64, align: u64) -> u64 {
        let align = align.max(1);
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.next + align - 1) & !(align - 1);
        let new_next = addr + size.max(1);
        assert!(
            new_next <= self.end,
            "zone `{}` exhausted: {} bytes requested at {:#x}",
            self.name,
            size,
            addr
        );
        self.next = new_next;
        mem.map(addr, size.max(1));
        addr
    }

    /// Bytes handed out so far.
    pub fn used(&self) -> u64 {
        self.next - self.base
    }

    /// Whether `addr` falls inside this zone's range.
    pub fn contains(&self, addr: u64) -> bool {
        (self.base..self.end).contains(&addr)
    }

    /// The zone's base address.
    pub fn base(&self) -> u64 {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut mem = Mem::new();
        let mut z = Zone::new("heap", 0xffff_8880_0000_0000, 1 << 20);
        let a = z.alloc(&mut mem, 1, 1);
        let b = z.alloc(&mut mem, 8, 8);
        assert_eq!(b % 8, 0);
        assert!(b > a);
    }

    #[test]
    fn alloc_maps_backing_pages() {
        let mut mem = Mem::new();
        let mut z = Zone::new("heap", 0x10_0000, 1 << 20);
        let a = z.alloc(&mut mem, 4096 * 2, 4096);
        assert!(mem.is_mapped(a));
        assert!(mem.is_mapped(a + 4096));
        assert_eq!(mem.read_uint(a, 8).unwrap(), 0);
    }

    #[test]
    fn contains_and_used() {
        let mut mem = Mem::new();
        let mut z = Zone::new("text", 0x1000, 0x1000);
        let a = z.alloc(&mut mem, 16, 16);
        assert!(z.contains(a));
        assert!(!z.contains(0x3000));
        assert_eq!(z.used(), 16);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut mem = Mem::new();
        let mut z = Zone::new("tiny", 0x1000, 32);
        z.alloc(&mut mem, 64, 1);
    }

    #[test]
    fn zero_size_alloc_still_advances() {
        let mut mem = Mem::new();
        let mut z = Zone::new("z", 0x1000, 0x1000);
        let a = z.alloc(&mut mem, 0, 8);
        let b = z.alloc(&mut mem, 0, 8);
        assert_ne!(a, b, "zero-sized objects must get distinct addresses");
    }
}
