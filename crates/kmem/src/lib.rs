//! Simulated kernel target memory.
//!
//! `kmem` provides the byte-addressed, sparse memory image that stands in
//! for the live kernel's RAM, plus the pieces a debugger needs around it:
//! zone allocators for placing objects at kernel-like virtual addresses, a
//! symbol table (the `System.map` of the simulated image), and a typed
//! object writer that encodes values according to [`ktypes`] layouts.
//!
//! The image is written once by the kernel simulator (`ksim`) and then read
//! through the debugger bridge (`vbridge`), exactly as GDB reads a stopped
//! kernel: nothing in the visualization stack ever sees Rust objects, only
//! raw bytes interpreted via type layouts.

mod alloc;
mod mem;
mod obj;
mod symbols;

pub use alloc::Zone;
pub use mem::{Mem, PAGE_SIZE};
pub use obj::ObjWriter;
pub use symbols::{Symbol, SymbolKind, SymbolTable};

/// Errors produced when accessing the simulated memory image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// An access touched an address with no mapped page.
    Unmapped {
        /// The faulting address.
        addr: u64,
    },
    /// A typed access failed at the type-system level.
    Type(ktypes::TypeError),
    /// A field path string could not be parsed.
    BadPath(String),
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemError::Type(e) => write!(f, "type error: {e}"),
            MemError::BadPath(p) => write!(f, "malformed field path `{p}`"),
        }
    }
}

impl std::error::Error for MemError {}

impl From<ktypes::TypeError> for MemError {
    fn from(e: ktypes::TypeError) -> Self {
        MemError::Type(e)
    }
}

/// Convenience result alias for memory operations.
pub type Result<T> = std::result::Result<T, MemError>;
