//! Typed object writer: encode struct fields into the memory image.

use ktypes::{TypeId, TypeKind, TypeRegistry};

use crate::mem::Mem;
use crate::{MemError, Result};

/// A cursor for writing fields of one object according to its C layout.
///
/// Field paths may traverse nested aggregates and index arrays, e.g.
/// `"se.run_node.rb_left"` or `"slot[3]"`. Bitfields are read-modified-
/// written within their storage unit, so sibling bitfields are preserved.
pub struct ObjWriter<'a> {
    mem: &'a mut Mem,
    reg: &'a TypeRegistry,
    addr: u64,
    ty: TypeId,
}

/// One parsed component of a field path: a name plus optional indices.
fn parse_path(path: &str) -> Result<Vec<(String, Vec<u64>)>> {
    let mut comps = Vec::new();
    for raw in path.split('.') {
        let raw = raw.trim();
        if raw.is_empty() {
            return Err(MemError::BadPath(path.to_string()));
        }
        let (name, rest) = match raw.find('[') {
            Some(i) => (&raw[..i], &raw[i..]),
            None => (raw, ""),
        };
        let mut idx = Vec::new();
        let mut rest = rest;
        while let Some(stripped) = rest.strip_prefix('[') {
            let close = stripped
                .find(']')
                .ok_or_else(|| MemError::BadPath(path.to_string()))?;
            let n: u64 = stripped[..close]
                .parse()
                .map_err(|_| MemError::BadPath(path.to_string()))?;
            idx.push(n);
            rest = &stripped[close + 1..];
        }
        if !rest.is_empty() {
            return Err(MemError::BadPath(path.to_string()));
        }
        comps.push((name.to_string(), idx));
    }
    Ok(comps)
}

/// Resolve a field path against a type, returning `(byte_offset, type,
/// bitfield)` of the leaf.
pub(crate) fn resolve_path(
    reg: &TypeRegistry,
    base: TypeId,
    path: &str,
) -> Result<(u64, TypeId, Option<ktypes::BitField>)> {
    let mut ty = base;
    let mut off = 0u64;
    let mut bit = None;
    for (name, indices) in parse_path(path)? {
        let def = reg
            .struct_def(ty)
            .ok_or_else(|| MemError::Type(ktypes::TypeError::NotAggregate(reg.display_name(ty))))?;
        let f = def.field(&name).ok_or_else(|| {
            MemError::Type(ktypes::TypeError::UnknownField {
                ty: def.name.clone(),
                field: name.clone(),
            })
        })?;
        off += f.offset;
        ty = f.ty;
        bit = f.bit;
        for i in indices {
            match &reg.get(ty).kind {
                TypeKind::Array { elem, len } => {
                    if i >= *len {
                        return Err(MemError::Type(ktypes::TypeError::IndexOutOfRange {
                            len: *len as usize,
                            index: i as usize,
                        }));
                    }
                    off += reg.size_of(*elem) * i;
                    ty = *elem;
                    bit = None;
                }
                _ => {
                    return Err(MemError::Type(ktypes::TypeError::NotAggregate(
                        reg.display_name(ty),
                    )))
                }
            }
        }
    }
    Ok((off, ty, bit))
}

impl<'a> ObjWriter<'a> {
    /// Start writing the object of type `ty` at `addr`.
    ///
    /// Maps the pages covering the object, so read-modify-write accesses
    /// (bitfields) work even before any field was written.
    pub fn new(mem: &'a mut Mem, reg: &'a TypeRegistry, addr: u64, ty: TypeId) -> Self {
        mem.map(addr, reg.size_of(ty).max(1));
        ObjWriter { mem, reg, addr, ty }
    }

    /// The object's base address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// The object's type.
    pub fn ty(&self) -> TypeId {
        self.ty
    }

    /// Write an integer (or pointer-sized) value at `path`.
    pub fn set(&mut self, path: &str, value: u64) -> Result<&mut Self> {
        let (off, ty, bit) = resolve_path(self.reg, self.ty, path)?;
        let addr = self.addr + off;
        match bit {
            Some(bf) => {
                let size = bf.storage_size as usize;
                let storage = self.mem.read_uint(addr, size)?;
                let new = bf.insert(storage, value as i64);
                self.mem.write_uint(addr, size, new);
            }
            None => {
                let size = self.reg.size_of(ty) as usize;
                let size = match &self.reg.get(ty).kind {
                    TypeKind::Pointer(_) => 8,
                    _ => size,
                };
                if size == 0 || size > 8 {
                    return Err(MemError::Type(ktypes::TypeError::NotInteger(
                        self.reg.display_name(ty),
                    )));
                }
                self.mem.write_uint(addr, size, value);
            }
        }
        Ok(self)
    }

    /// Write a signed integer at `path`.
    pub fn set_i64(&mut self, path: &str, value: i64) -> Result<&mut Self> {
        self.set(path, value as u64)
    }

    /// Write a fixed C string into a `char[N]` field at `path` (truncated
    /// and NUL-terminated to fit).
    pub fn set_str(&mut self, path: &str, value: &str) -> Result<&mut Self> {
        let (off, ty, _) = resolve_path(self.reg, self.ty, path)?;
        let cap = match &self.reg.get(ty).kind {
            TypeKind::Array { len, .. } => *len as usize,
            TypeKind::Pointer(_) => {
                return Err(MemError::BadPath(format!(
                    "`{path}` is a pointer; write a buffer and set the pointer instead"
                )))
            }
            _ => {
                return Err(MemError::Type(ktypes::TypeError::NotAggregate(
                    self.reg.display_name(ty),
                )))
            }
        };
        let bytes = value.as_bytes();
        let n = bytes.len().min(cap.saturating_sub(1));
        self.mem.write(self.addr + off, &bytes[..n]);
        self.mem.write(self.addr + off + n as u64, &[0]);
        Ok(self)
    }

    /// Address of the (possibly nested) field at `path` — the simulator's
    /// `&obj->field`, used to wire up embedded `list_head`s.
    pub fn field_addr(&self, path: &str) -> Result<u64> {
        let (off, _, _) = resolve_path(self.reg, self.ty, path)?;
        Ok(self.addr + off)
    }

    /// Read back an unsigned integer field (for read-modify-write wiring).
    pub fn get(&self, path: &str) -> Result<u64> {
        let (off, ty, bit) = resolve_path(self.reg, self.ty, path)?;
        let addr = self.addr + off;
        match bit {
            Some(bf) => {
                let storage = self.mem.read_uint(addr, bf.storage_size as usize)?;
                Ok(bf.extract(storage) as u64)
            }
            None => {
                let size = match &self.reg.get(ty).kind {
                    TypeKind::Pointer(_) => 8,
                    _ => self.reg.size_of(ty) as usize,
                };
                self.mem.read_uint(addr, size)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktypes::{Prim, StructBuilder};

    fn setup() -> (Mem, TypeRegistry, TypeId) {
        let mut reg = TypeRegistry::new();
        let u64_t = reg.prim(Prim::U64);
        let u32_t = reg.prim(Prim::U32);
        let char_t = reg.prim(Prim::Char);
        let comm = reg.array_of(char_t, 16);
        let node = StructBuilder::new("rb_node")
            .field("rb_parent_color", u64_t)
            .field("rb_right", u64_t)
            .field("rb_left", u64_t)
            .build(&mut reg);
        let slots = reg.array_of(u64_t, 4);
        let ty = StructBuilder::new("obj")
            .field("pid", u32_t)
            .bitfield("f_lo", u32_t, 4)
            .bitfield("f_hi", u32_t, 4)
            .field("comm", comm)
            .field("run_node", node)
            .field("slot", slots)
            .build(&mut reg);
        (Mem::new(), reg, ty)
    }

    #[test]
    fn set_and_get_scalar() {
        let (mut mem, reg, ty) = setup();
        let mut w = ObjWriter::new(&mut mem, &reg, 0x1000, ty);
        w.set("pid", 42).unwrap();
        assert_eq!(w.get("pid").unwrap(), 42);
    }

    #[test]
    fn bitfields_share_storage() {
        let (mut mem, reg, ty) = setup();
        let mut w = ObjWriter::new(&mut mem, &reg, 0x1000, ty);
        w.set("f_lo", 0xa).unwrap();
        w.set("f_hi", 0x5).unwrap();
        assert_eq!(w.get("f_lo").unwrap(), 0xa);
        assert_eq!(w.get("f_hi").unwrap(), 0x5);
    }

    #[test]
    fn nested_path_and_field_addr() {
        let (mut mem, reg, ty) = setup();
        let mut w = ObjWriter::new(&mut mem, &reg, 0x2000, ty);
        w.set("run_node.rb_left", 0xdead).unwrap();
        let (off, _, _) = resolve_path(&reg, ty, "run_node.rb_left").unwrap();
        assert_eq!(w.field_addr("run_node.rb_left").unwrap(), 0x2000 + off);
        assert_eq!(mem.read_uint(0x2000 + off, 8).unwrap(), 0xdead);
    }

    #[test]
    fn array_indexing() {
        let (mut mem, reg, ty) = setup();
        let mut w = ObjWriter::new(&mut mem, &reg, 0x3000, ty);
        w.set("slot[2]", 0xbeef).unwrap();
        assert_eq!(w.get("slot[2]").unwrap(), 0xbeef);
        assert_eq!(w.get("slot[1]").unwrap(), 0);
        assert!(w.set("slot[9]", 1).is_err());
    }

    #[test]
    fn string_field_truncates_and_terminates() {
        let (mut mem, reg, ty) = setup();
        let mut w = ObjWriter::new(&mut mem, &reg, 0x4000, ty);
        w.set_str("comm", "a-very-long-process-name").unwrap();
        let (off, _, _) = resolve_path(&reg, ty, "comm").unwrap();
        let s = mem.read_cstr(0x4000 + off, 16).unwrap();
        assert_eq!(s.len(), 15);
        assert!(s.starts_with("a-very-long"));
    }

    #[test]
    fn bad_paths_are_rejected() {
        let (mut mem, reg, ty) = setup();
        let w = ObjWriter::new(&mut mem, &reg, 0x1000, ty);
        assert!(w.get("nonexistent").is_err());
        assert!(w.get("pid.sub").is_err());
        assert!(w.get("slot[x]").is_err());
        assert!(w.get("").is_err());
    }
}
