//! Wiring for intrusive kernel data structures.
//!
//! These functions manipulate raw target memory the way the kernel's
//! `list_add_tail`, `hlist_add_head` and `rb_insert_color` leave it, so the
//! image is indistinguishable from a stopped live kernel to anything that
//! only reads memory.

use kmem::Mem;

/// Offset of `next` / `first` within `list_head` / `hlist_head`.
const NEXT: u64 = 0;
/// Offset of `prev` / `pprev` within `list_head` / `hlist_node`.
const PREV: u64 = 8;

/// `container_of`: recover the enclosing object address from the address of
/// an embedded member at byte `offset`.
pub fn container_of(member_addr: u64, offset: u64) -> u64 {
    member_addr.wrapping_sub(offset)
}

/// Initialize a `list_head` to the empty circular list (`next == prev ==
/// &head`).
pub fn list_init(mem: &mut Mem, head: u64) {
    mem.write_uint(head + NEXT, 8, head);
    mem.write_uint(head + PREV, 8, head);
}

/// Insert `node` at the tail of the circular list `head`
/// (kernel `list_add_tail`).
pub fn list_add_tail(mem: &mut Mem, node: u64, head: u64) {
    let prev = mem
        .read_uint(head + PREV, 8)
        .expect("list head must be mapped");
    // prev <-> node <-> head
    mem.write_uint(node + NEXT, 8, head);
    mem.write_uint(node + PREV, 8, prev);
    mem.write_uint(prev + NEXT, 8, node);
    mem.write_uint(head + PREV, 8, node);
}

/// Collect the node addresses of a circular list, excluding the head.
pub fn list_iter(mem: &Mem, head: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut cur = mem
        .read_uint(head + NEXT, 8)
        .expect("list head must be mapped");
    while cur != head && cur != 0 {
        out.push(cur);
        cur = mem
            .read_uint(cur + NEXT, 8)
            .expect("list node must be mapped");
        if out.len() > 1_000_000 {
            panic!("list at {head:#x} does not terminate");
        }
    }
    out
}

/// Initialize an `hlist_head` to empty.
pub fn hlist_init(mem: &mut Mem, head: u64) {
    mem.write_uint(head, 8, 0);
}

/// Insert `node` at the head of the hash list `head`
/// (kernel `hlist_add_head`).
pub fn hlist_add_head(mem: &mut Mem, node: u64, head: u64) {
    let first = mem.read_uint(head, 8).expect("hlist head must be mapped");
    mem.write_uint(node + NEXT, 8, first);
    if first != 0 {
        // first->pprev = &node->next
        mem.write_uint(first + PREV, 8, node + NEXT);
    }
    mem.write_uint(head, 8, node);
    // node->pprev = &head->first
    mem.write_uint(node + PREV, 8, head);
}

/// Collect the node addresses of an hlist.
pub fn hlist_iter(mem: &Mem, head: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut cur = mem.read_uint(head, 8).expect("hlist head must be mapped");
    while cur != 0 {
        out.push(cur);
        cur = mem
            .read_uint(cur + NEXT, 8)
            .expect("hlist node must be mapped");
        if out.len() > 1_000_000 {
            panic!("hlist at {head:#x} does not terminate");
        }
    }
    out
}

/// Offsets within `struct rb_node`.
const RB_PARENT_COLOR: u64 = 0;
/// `rb_right` offset.
const RB_RIGHT: u64 = 8;
/// `rb_left` offset.
const RB_LEFT: u64 = 16;
/// Color bit values packed into `__rb_parent_color` (kernel encoding).
pub const RB_RED: u64 = 0;
/// Black color bit.
pub const RB_BLACK: u64 = 1;

/// Build a valid red-black tree over `nodes` (addresses of embedded
/// `rb_node`s, already sorted by key ascending) and link it under
/// `root` (`struct rb_root`, i.e. a single `rb_node *` slot).
///
/// The shape is the balanced BST over the sorted sequence; nodes on the
/// deepest (incomplete) level are colored red, all others black, which
/// satisfies every red-black invariant. Returns the leftmost node (for
/// `rb_root_cached.rb_leftmost`), or 0 if empty.
pub fn rb_build(mem: &mut Mem, root: u64, nodes: &[u64]) -> u64 {
    fn depth_of(n: usize) -> u32 {
        // Depth of a complete balanced BST over n nodes.
        usize::BITS - n.leading_zeros()
    }
    fn build(mem: &mut Mem, nodes: &[u64], parent: u64, level: u32, max: u32) -> u64 {
        if nodes.is_empty() {
            return 0;
        }
        let mid = nodes.len() / 2;
        let node = nodes[mid];
        let color = if level == max { RB_RED } else { RB_BLACK };
        mem.write_uint(node + RB_PARENT_COLOR, 8, parent | color);
        let left = build(mem, &nodes[..mid], node, level + 1, max);
        let right = build(mem, &nodes[mid + 1..], node, level + 1, max);
        mem.write_uint(node + RB_LEFT, 8, left);
        mem.write_uint(node + RB_RIGHT, 8, right);
        node
    }
    let max = depth_of(nodes.len());
    let top = build(mem, nodes, 0, 1, max);
    mem.write_uint(root, 8, top);
    nodes.first().copied().unwrap_or(0)
}

/// In-order traversal of an rb-tree given its top node address.
pub fn rb_inorder(mem: &Mem, node: u64) -> Vec<u64> {
    let mut out = Vec::new();
    fn walk(mem: &Mem, n: u64, out: &mut Vec<u64>) {
        if n == 0 {
            return;
        }
        let left = mem.read_uint(n + RB_LEFT, 8).expect("rb node mapped");
        let right = mem.read_uint(n + RB_RIGHT, 8).expect("rb node mapped");
        walk(mem, left, out);
        out.push(n);
        walk(mem, right, out);
    }
    walk(mem, node, &mut out);
    out
}

/// The color of an rb node (RB_RED or RB_BLACK).
pub fn rb_color(mem: &Mem, node: u64) -> u64 {
    mem.read_uint(node + RB_PARENT_COLOR, 8)
        .expect("rb node mapped")
        & 1
}

/// The parent of an rb node (0 for the top node).
pub fn rb_parent(mem: &Mem, node: u64) -> u64 {
    mem.read_uint(node + RB_PARENT_COLOR, 8)
        .expect("rb node mapped")
        & !3
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mem_with(addrs: &[u64]) -> Mem {
        let mut m = Mem::new();
        for &a in addrs {
            m.map(a, 24);
        }
        m
    }

    #[test]
    fn empty_list_is_self_cycle() {
        let mut m = Mem::new();
        m.map(0x1000, 16);
        list_init(&mut m, 0x1000);
        assert_eq!(list_iter(&m, 0x1000), Vec::<u64>::new());
    }

    #[test]
    fn list_add_tail_preserves_order() {
        let mut m = mem_with(&[0x1000, 0x2000, 0x3000, 0x4000]);
        list_init(&mut m, 0x1000);
        for n in [0x2000, 0x3000, 0x4000] {
            list_add_tail(&mut m, n, 0x1000);
        }
        assert_eq!(list_iter(&m, 0x1000), vec![0x2000, 0x3000, 0x4000]);
        // Backward links are consistent.
        assert_eq!(m.read_uint(0x1000 + PREV, 8).unwrap(), 0x4000);
        assert_eq!(m.read_uint(0x3000 + PREV, 8).unwrap(), 0x2000);
    }

    #[test]
    fn hlist_add_head_reverses_order() {
        let mut m = mem_with(&[0x1000, 0x2000, 0x3000]);
        hlist_init(&mut m, 0x1000);
        hlist_add_head(&mut m, 0x2000, 0x1000);
        hlist_add_head(&mut m, 0x3000, 0x1000);
        assert_eq!(hlist_iter(&m, 0x1000), vec![0x3000, 0x2000]);
        // pprev of the first node points back at the head slot.
        assert_eq!(m.read_uint(0x3000 + PREV, 8).unwrap(), 0x1000);
        assert_eq!(m.read_uint(0x2000 + PREV, 8).unwrap(), 0x3000 + NEXT);
    }

    #[test]
    fn container_of_inverts_member_address() {
        assert_eq!(container_of(0x2010, 0x10), 0x2000);
    }

    fn black_height(mem: &Mem, n: u64) -> u32 {
        if n == 0 {
            return 1;
        }
        let l = mem.read_uint(n + RB_LEFT, 8).unwrap();
        let r = mem.read_uint(n + RB_RIGHT, 8).unwrap();
        let (hl, hr) = (black_height(mem, l), black_height(mem, r));
        assert_eq!(hl, hr, "black height must match at {n:#x}");
        hl + (rb_color(mem, n) == RB_BLACK) as u32
    }

    fn no_red_red(mem: &Mem, n: u64) {
        if n == 0 {
            return;
        }
        let l = mem.read_uint(n + RB_LEFT, 8).unwrap();
        let r = mem.read_uint(n + RB_RIGHT, 8).unwrap();
        if rb_color(mem, n) == RB_RED {
            for c in [l, r] {
                if c != 0 {
                    assert_eq!(rb_color(mem, c), RB_BLACK, "red node has red child");
                }
            }
        }
        no_red_red(mem, l);
        no_red_red(mem, r);
    }

    #[test]
    fn rb_build_small_trees_are_valid() {
        for n in 0..20u64 {
            let addrs: Vec<u64> = (0..n).map(|i| 0x1_0000 + i * 0x100).collect();
            let mut m = mem_with(&addrs);
            m.map(0x500, 8);
            let leftmost = rb_build(&mut m, 0x500, &addrs);
            let top = m.read_uint(0x500, 8).unwrap();
            assert_eq!(rb_inorder(&m, top), addrs, "inorder must equal input");
            if n > 0 {
                assert_eq!(leftmost, addrs[0]);
                assert_eq!(rb_parent(&m, top), 0);
            }
            black_height(&m, top);
            no_red_red(&m, top);
        }
    }

    proptest! {
        #[test]
        fn prop_rb_build_is_valid_red_black(n in 0usize..200) {
            let addrs: Vec<u64> = (0..n as u64).map(|i| 0x10_0000 + i * 0x40).collect();
            let mut m = mem_with(&addrs);
            m.map(0x500, 8);
            rb_build(&mut m, 0x500, &addrs);
            let top = m.read_uint(0x500, 8).unwrap();
            prop_assert_eq!(rb_inorder(&m, top), addrs);
            black_height(&m, top);
            no_red_red(&m, top);
        }

        #[test]
        fn prop_list_round_trip(n in 0usize..64) {
            let head = 0x8000u64;
            let nodes: Vec<u64> = (0..n as u64).map(|i| 0x9000 + i * 0x20).collect();
            let mut m = mem_with(&nodes);
            m.map(head, 16);
            list_init(&mut m, head);
            for &nd in &nodes {
                list_add_tail(&mut m, nd, head);
            }
            prop_assert_eq!(list_iter(&m, head), nodes);
        }
    }
}
