//! The buddy allocator: zones, free areas, and pages (ULK Fig 8-2).

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;
use crate::pagecache::{PageAllocator, PageTypes};
use crate::structops;

/// `MAX_ORDER` of the buddy system.
pub const MAX_ORDER: u64 = 11;
/// Migrate types per free area (simplified to the three hot ones).
pub const MIGRATE_TYPES: u64 = 3;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct BuddyTypes {
    /// `struct free_area`.
    pub free_area: TypeId,
    /// `struct zone`.
    pub zone: TypeId,
    /// `struct pglist_data`.
    pub pglist_data: TypeId,
}

/// Register buddy-system types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> BuddyTypes {
    let free_lists = reg.array_of(common.list_head, MIGRATE_TYPES);
    let free_area = StructBuilder::new("free_area")
        .field("free_list", free_lists)
        .field("nr_free", common.u64_t)
        .build(reg);

    let areas = reg.array_of(free_area, MAX_ORDER);
    let watermarks = reg.array_of(common.u64_t, 3);
    let zone = StructBuilder::new("zone")
        .field("_watermark", watermarks)
        .field("lowmem_reserve", common.u64_t)
        .field("zone_start_pfn", common.u64_t)
        .field("managed_pages", common.u64_t)
        .field("spanned_pages", common.u64_t)
        .field("present_pages", common.u64_t)
        .field("name", common.char_ptr)
        .field("free_area", areas)
        .field("lock", common.spinlock)
        .build(reg);

    let zones = reg.array_of(zone, 2);
    let pglist_data = StructBuilder::new("pglist_data")
        .field("node_zones", zones)
        .field("nr_zones", common.int_t)
        .field("node_id", common.int_t)
        .field("node_start_pfn", common.u64_t)
        .field("node_present_pages", common.u64_t)
        .build(reg);

    reg.define_const("MAX_ORDER", MAX_ORDER as i64);
    reg.define_const("MIGRATE_UNMOVABLE", 0);
    reg.define_const("MIGRATE_MOVABLE", 1);
    reg.define_const("MIGRATE_RECLAIMABLE", 2);

    BuddyTypes {
        free_area,
        zone,
        pglist_data,
    }
}

/// The built buddy state.
#[derive(Debug, Clone)]
pub struct BuddyState {
    /// `contig_page_data` / NODE_DATA(0) address.
    pub node_data: u64,
    /// The Normal zone address.
    pub zone_normal: u64,
    /// Free block head pages per order (for tests).
    pub free_blocks: Vec<(u64, u64)>,
}

/// Build NODE_DATA(0) with a DMA and a Normal zone; populate the Normal
/// zone's free lists with `blocks_per_order` buddy blocks per order.
pub fn create_buddy(
    kb: &mut KernelBuilder,
    bt: &BuddyTypes,
    pt: &PageTypes,
    pa: &mut PageAllocator,
    blocks_per_order: u64,
) -> BuddyState {
    let node_data = kb.alloc_global("contig_page_data", bt.pglist_data);
    {
        let mut w = kb.obj(node_data, bt.pglist_data);
        w.set_i64("nr_zones", 2).unwrap();
        w.set("node_present_pages", 1 << 18).unwrap();
    }
    let (zones_off, _) = kb.types.field_path(bt.pglist_data, "node_zones").unwrap();
    let zone_size = kb.types.size_of(bt.zone);

    let names = ["DMA", "Normal"];
    for (zi, zname) in names.iter().enumerate() {
        let zaddr = node_data + zones_off + zi as u64 * zone_size;
        let name_buf = kb.alloc_pagedata(zname.len() as u64 + 1);
        kb.mem.write_cstr(name_buf, zname);
        let mut w = kb.obj(zaddr, bt.zone);
        w.set("name", name_buf).unwrap();
        w.set("zone_start_pfn", (zi as u64) << 12).unwrap();
        w.set("managed_pages", 1 << 17).unwrap();
        w.set("_watermark[0]", 128).unwrap();
        w.set("_watermark[1]", 256).unwrap();
        w.set("_watermark[2]", 384).unwrap();
        drop(w);
        let (fa_off, _) = kb.types.field_path(bt.zone, "free_area").unwrap();
        let fa_size = kb.types.size_of(bt.free_area);
        for order in 0..MAX_ORDER {
            let fa = zaddr + fa_off + order * fa_size;
            for m in 0..MIGRATE_TYPES {
                structops::list_init(&mut kb.mem, fa + m * 16);
            }
        }
    }

    let zone_normal = node_data + zones_off + zone_size;
    let (fa_off, _) = kb.types.field_path(bt.zone, "free_area").unwrap();
    let fa_size = kb.types.size_of(bt.free_area);
    let (nr_free_off, _) = kb.types.field_path(bt.free_area, "nr_free").unwrap();
    let (lru_off, _) = kb.types.field_path(pt.page, "lru").unwrap();
    let (private_off, _) = kb.types.field_path(pt.page, "private").unwrap();

    let mut free_blocks = Vec::new();
    for order in 0..MAX_ORDER.min(5) {
        let fa = zone_normal + fa_off + order * fa_size;
        for b in 0..blocks_per_order {
            // Head page of a free 2^order block: buddy order in `private`.
            let pfn = pa.reserve(1 << order);
            let page = pa.pfn_to_page(pfn);
            kb.mem.map(page, pa.page_size());
            kb.obj(page, pt.page).set("flags", 1 << 10).unwrap(); // PG_buddy-ish
            kb.mem.write_uint(page + private_off, 8, order);
            let migrate = b % MIGRATE_TYPES;
            structops::list_add_tail(&mut kb.mem, page + lru_off, fa + migrate * 16);
            free_blocks.push((order, page));
        }
        kb.mem.write_uint(fa + nr_free_off, 8, blocks_per_order);
    }
    BuddyState {
        node_data,
        zone_normal,
        free_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagecache;

    #[test]
    fn free_lists_chain_head_pages_with_order_in_private() {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let pt = pagecache::register_types(&mut kb.types, &common);
        let bt = register_types(&mut kb.types, &common);
        let mut pa = PageAllocator::new(&kb, &pt);
        let st = create_buddy(&mut kb, &bt, &pt, &mut pa, 3);

        let (fa_off, _) = kb.types.field_path(bt.zone, "free_area").unwrap();
        let fa_size = kb.types.size_of(bt.free_area);
        let (lru_off, _) = kb.types.field_path(pt.page, "lru").unwrap();
        let (priv_off, _) = kb.types.field_path(pt.page, "private").unwrap();

        let mut seen = 0;
        for order in 0..5u64 {
            let fa = st.zone_normal + fa_off + order * fa_size;
            for m in 0..MIGRATE_TYPES {
                for node in structops::list_iter(&kb.mem, fa + m * 16) {
                    let page = structops::container_of(node, lru_off);
                    assert_eq!(kb.mem.read_uint(page + priv_off, 8).unwrap(), order);
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, 15, "3 blocks x 5 orders");
    }

    #[test]
    fn zone_names_resolve() {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let pt = pagecache::register_types(&mut kb.types, &common);
        let bt = register_types(&mut kb.types, &common);
        let mut pa = PageAllocator::new(&kb, &pt);
        let st = create_buddy(&mut kb, &bt, &pt, &mut pa, 1);
        let (name_off, _) = kb.types.field_path(bt.zone, "name").unwrap();
        let p = kb.mem.read_uint(st.zone_normal + name_off, 8).unwrap();
        assert_eq!(kb.mem.read_cstr(p, 16).unwrap(), "Normal");
    }
}
