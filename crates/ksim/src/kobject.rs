//! kobjects, ksets, devices and drivers (ULK Fig 13-3).

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;
use crate::structops;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct KobjTypes {
    /// `struct kobject`.
    pub kobject: TypeId,
    /// `struct kset`.
    pub kset: TypeId,
    /// `struct device`.
    pub device: TypeId,
    /// `struct device_driver`.
    pub device_driver: TypeId,
    /// `struct bus_type`.
    pub bus_type: TypeId,
}

/// Register the driver-model types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> KobjTypes {
    let kobj_fwd = reg.declare_struct("kobject");
    let kobj_ptr = reg.pointer_to(kobj_fwd);
    let kset_fwd = reg.declare_struct("kset");
    let kset_ptr = reg.pointer_to(kset_fwd);

    let kref = StructBuilder::new("kref")
        .field("refcount", common.refcount)
        .build(reg);

    let kobject = StructBuilder::new("kobject")
        .field("name", common.char_ptr)
        .field("entry", common.list_head)
        .field("parent", kobj_ptr)
        .field("kset", kset_ptr)
        .field("ktype", common.void_ptr)
        .field("sd", common.void_ptr)
        .field("kref", kref)
        .bitfield("state_initialized", common.u32_t, 1)
        .bitfield("state_in_sysfs", common.u32_t, 1)
        .bitfield("state_add_uevent_sent", common.u32_t, 1)
        .bitfield("state_remove_uevent_sent", common.u32_t, 1)
        .bitfield("uevent_suppress", common.u32_t, 1)
        .build(reg);

    let kset = StructBuilder::new("kset")
        .field("list", common.list_head)
        .field("list_lock", common.spinlock)
        .field("kobj", kobject)
        .build(reg);

    let bus_type = StructBuilder::new("bus_type")
        .field("name", common.char_ptr)
        .field("dev_name", common.char_ptr)
        .build(reg);
    let bus_ptr = reg.pointer_to(bus_type);

    let drv_fwd = reg.declare_struct("device_driver");
    let drv_ptr = reg.pointer_to(drv_fwd);
    let dev_fwd = reg.declare_struct("device");
    let dev_ptr = reg.pointer_to(dev_fwd);

    let device_driver = StructBuilder::new("device_driver")
        .field("name", common.char_ptr)
        .field("bus", bus_ptr)
        .field("owner", common.void_ptr)
        .field("mod_name", common.char_ptr)
        .build(reg);

    let device = StructBuilder::new("device")
        .field("kobj", kobject)
        .field("parent", dev_ptr)
        .field("init_name", common.char_ptr)
        .field("bus", bus_ptr)
        .field("driver", drv_ptr)
        .field("platform_data", common.void_ptr)
        .field("devt", common.u32_t)
        .build(reg);

    KobjTypes {
        kobject,
        kset,
        device,
        device_driver,
        bus_type,
    }
}

/// Allocate a kset named `name`, registering the symbol `sym` if nonempty.
pub fn create_kset(kb: &mut KernelBuilder, kt: &KobjTypes, name: &str, sym: &str) -> u64 {
    let ks = kb.alloc(kt.kset);
    if !sym.is_empty() {
        kb.symbols.define_object(sym, ks, kt.kset);
    }
    let name_buf = kb.alloc_pagedata(name.len() as u64 + 1);
    kb.mem.write_cstr(name_buf, name);
    let list;
    {
        let mut w = kb.obj(ks, kt.kset);
        w.set("kobj.name", name_buf).unwrap();
        w.set_i64("kobj.kref.refcount.refs.counter", 1).unwrap();
        w.set("kobj.state_initialized", 1).unwrap();
        list = w.field_addr("list").unwrap();
    }
    structops::list_init(&mut kb.mem, list);
    ks
}

/// Create a device named `name` on `bus`, bound to `driver`, joining
/// `kset` (its kobject chains into the kset list).
pub fn create_device(
    kb: &mut KernelBuilder,
    kt: &KobjTypes,
    name: &str,
    kset: u64,
    bus: u64,
    driver: u64,
    parent_dev: u64,
) -> u64 {
    let dev = kb.alloc(kt.device);
    let name_buf = kb.alloc_pagedata(name.len() as u64 + 1);
    kb.mem.write_cstr(name_buf, name);
    let (kset_kobj_off, _) = kb.types.field_path(kt.kset, "kobj").unwrap();
    let parent_kobj = if parent_dev != 0 {
        let (kobj_off, _) = kb.types.field_path(kt.device, "kobj").unwrap();
        parent_dev + kobj_off
    } else {
        kset + kset_kobj_off
    };
    let entry;
    {
        let mut w = kb.obj(dev, kt.device);
        w.set("kobj.name", name_buf).unwrap();
        w.set("kobj.parent", parent_kobj).unwrap();
        w.set("kobj.kset", kset).unwrap();
        w.set_i64("kobj.kref.refcount.refs.counter", 2).unwrap();
        w.set("kobj.state_initialized", 1).unwrap();
        w.set("kobj.state_in_sysfs", 1).unwrap();
        w.set("init_name", name_buf).unwrap();
        w.set("bus", bus).unwrap();
        w.set("driver", driver).unwrap();
        w.set("parent", parent_dev).unwrap();
        entry = w.field_addr("kobj.entry").unwrap();
    }
    let (list_off, _) = kb.types.field_path(kt.kset, "list").unwrap();
    structops::list_add_tail(&mut kb.mem, entry, kset + list_off);
    dev
}

/// Create a driver named `name` on `bus`.
pub fn create_driver(kb: &mut KernelBuilder, kt: &KobjTypes, name: &str, bus: u64) -> u64 {
    let drv = kb.alloc(kt.device_driver);
    let name_buf = kb.alloc_pagedata(name.len() as u64 + 1);
    kb.mem.write_cstr(name_buf, name);
    let mut w = kb.obj(drv, kt.device_driver);
    w.set("name", name_buf).unwrap();
    w.set("bus", bus).unwrap();
    drv
}

/// Create a bus named `name`.
pub fn create_bus(kb: &mut KernelBuilder, kt: &KobjTypes, name: &str) -> u64 {
    let bus = kb.alloc(kt.bus_type);
    let name_buf = kb.alloc_pagedata(name.len() as u64 + 1);
    kb.mem.write_cstr(name_buf, name);
    kb.obj(bus, kt.bus_type).set("name", name_buf).unwrap();
    bus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_hierarchy_through_kobjects() {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let kt = register_types(&mut kb.types, &common);
        let kset = create_kset(&mut kb, &kt, "devices", "devices_kset");
        let bus = create_bus(&mut kb, &kt, "pci");
        let drv = create_driver(&mut kb, &kt, "e1000e", bus);
        let root = create_device(&mut kb, &kt, "pci0000:00", kset, bus, 0, 0);
        let nic = create_device(&mut kb, &kt, "0000:00:1f.6", kset, bus, drv, root);

        // The kset list holds both devices' kobjects.
        let (list_off, _) = kb.types.field_path(kt.kset, "list").unwrap();
        let (entry_off, _) = kb.types.field_path(kt.device, "kobj.entry").unwrap();
        let devs: Vec<u64> = structops::list_iter(&kb.mem, kset + list_off)
            .into_iter()
            .map(|n| structops::container_of(n, entry_off))
            .collect();
        assert_eq!(devs, vec![root, nic]);

        // Child kobject's parent is the parent device's kobject.
        let (kp_off, _) = kb.types.field_path(kt.device, "kobj.parent").unwrap();
        let (kobj_off, _) = kb.types.field_path(kt.device, "kobj").unwrap();
        assert_eq!(kb.mem.read_uint(nic + kp_off, 8).unwrap(), root + kobj_off);

        // Driver binding readable.
        let (drv_off, _) = kb.types.field_path(kt.device, "driver").unwrap();
        assert_eq!(kb.mem.read_uint(nic + drv_off, 8).unwrap(), drv);
    }

    #[test]
    fn kobject_state_bitfields() {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let kt = register_types(&mut kb.types, &common);
        let kset = create_kset(&mut kb, &kt, "block", "block_kset");
        let dev = create_device(&mut kb, &kt, "sda", kset, 0, 0, 0);
        let w = kb.obj(dev, kt.device);
        assert_eq!(w.get("kobj.state_initialized").unwrap(), 1);
        assert_eq!(w.get("kobj.state_in_sysfs").unwrap(), 1);
        assert_eq!(w.get("kobj.uevent_suppress").unwrap(), 0);
    }
}
