//! SLUB caches and slabs (ULK Fig 8-4, ported to the 6.1 allocator).
//!
//! Linux 6.1 replaced SLAB with SLUB; Table 2 marks Fig 8-4 as "underlying
//! data structure underwent significant changes". We model the SLUB view:
//! `kmem_cache` → per-node partial `slab` list, with `inuse`/`objects`/
//! `frozen` packed as real bitfields and an in-slab freelist chain.

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;
use crate::structops;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct SlabTypes {
    /// `struct kmem_cache`.
    pub kmem_cache: TypeId,
    /// `struct kmem_cache_node`.
    pub kmem_cache_node: TypeId,
    /// `struct slab` (the page-overlay descriptor).
    pub slab: TypeId,
}

/// Register SLUB types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> SlabTypes {
    let kc_fwd = reg.declare_struct("kmem_cache");
    let kc_ptr = reg.pointer_to(kc_fwd);

    let slab = StructBuilder::new("slab")
        .field("__page_flags", common.u64_t)
        .field("slab_cache", kc_ptr)
        .field("slab_list", common.list_head)
        .field("freelist", common.void_ptr)
        .bitfield("inuse", common.u32_t, 16)
        .bitfield("objects", common.u32_t, 15)
        .bitfield("frozen", common.u32_t, 1)
        .build(reg);

    let kmem_cache_node = StructBuilder::new("kmem_cache_node")
        .field("list_lock", common.spinlock)
        .field("nr_partial", common.u64_t)
        .field("partial", common.list_head)
        .build(reg);
    let node_ptr = reg.pointer_to(kmem_cache_node);
    let nodes = reg.array_of(node_ptr, 1);

    let kmem_cache = StructBuilder::new("kmem_cache")
        .field("cpu_slab", common.void_ptr)
        .field("flags", common.u32_t)
        .field("min_partial", common.u64_t)
        .field("size", common.u32_t)
        .field("object_size", common.u32_t)
        .field("offset", common.u32_t)
        .field("oo", common.u32_t)
        .field("name", common.char_ptr)
        .field("list", common.list_head)
        .field("node", nodes)
        .build(reg);

    SlabTypes {
        kmem_cache,
        kmem_cache_node,
        slab,
    }
}

/// The global cache registry.
#[derive(Debug, Clone)]
pub struct SlabState {
    /// `slab_caches` list head address.
    pub slab_caches: u64,
    /// Created caches.
    pub caches: Vec<u64>,
}

/// Create the global `slab_caches` list.
pub fn create_slab_state(kb: &mut KernelBuilder, common: &CommonTypes) -> SlabState {
    let head = kb.alloc_global("slab_caches", common.list_head);
    structops::list_init(&mut kb.mem, head);
    SlabState {
        slab_caches: head,
        caches: Vec::new(),
    }
}

/// Create a `kmem_cache` named `name` with `nslabs` partial slabs, each
/// holding `objects` objects of `object_size` bytes with `inuse` used.
#[allow(clippy::too_many_arguments)] // Mirrors kmem_cache_create's shape.
pub fn create_cache(
    kb: &mut KernelBuilder,
    st: &SlabTypes,
    state: &mut SlabState,
    name: &str,
    object_size: u64,
    nslabs: u64,
    objects: u64,
    inuse: u64,
) -> u64 {
    let kc = kb.alloc(st.kmem_cache);
    let name_buf = kb.alloc_pagedata(name.len() as u64 + 1);
    kb.mem.write_cstr(name_buf, name);

    let node = kb.alloc(st.kmem_cache_node);
    let partial_head;
    {
        let mut w = kb.obj(node, st.kmem_cache_node);
        w.set("nr_partial", nslabs).unwrap();
        partial_head = w.field_addr("partial").unwrap();
    }
    structops::list_init(&mut kb.mem, partial_head);

    let list_node;
    {
        let mut w = kb.obj(kc, st.kmem_cache);
        w.set("name", name_buf).unwrap();
        w.set("object_size", object_size).unwrap();
        w.set("size", object_size.next_power_of_two().max(8))
            .unwrap();
        w.set("min_partial", 5).unwrap();
        w.set("node[0]", node).unwrap();
        list_node = w.field_addr("list").unwrap();
    }
    structops::list_add_tail(&mut kb.mem, list_node, state.slab_caches);

    let size = object_size.next_power_of_two().max(8);
    for _ in 0..nslabs {
        let slab = kb.alloc(st.slab);
        // Back the slab with a data page holding the freelist chain.
        let data = kb.alloc_pagedata(4096);
        let mut free_head = 0u64;
        for i in (inuse..objects).rev() {
            let obj = data + i * size;
            kb.mem.write_uint(obj, 8, free_head);
            free_head = obj;
        }
        let slab_node;
        {
            let mut w = kb.obj(slab, st.slab);
            w.set("slab_cache", kc).unwrap();
            w.set("freelist", free_head).unwrap();
            w.set("inuse", inuse).unwrap();
            w.set("objects", objects).unwrap();
            w.set("frozen", 0).unwrap();
            slab_node = w.field_addr("slab_list").unwrap();
        }
        structops::list_add_tail(&mut kb.mem, slab_node, partial_head);
    }

    state.caches.push(kc);
    kc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KernelBuilder, SlabTypes, SlabState) {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let st = register_types(&mut kb.types, &common);
        let state = create_slab_state(&mut kb, &common);
        (kb, st, state)
    }

    #[test]
    fn slab_bitfields_pack_into_one_word() {
        let (kb, st, _) = setup();
        let def = kb.types.struct_def(st.slab).unwrap();
        let inuse = def.field("inuse").unwrap();
        let objects = def.field("objects").unwrap();
        let frozen = def.field("frozen").unwrap();
        assert_eq!(inuse.offset, objects.offset);
        assert_eq!(objects.offset, frozen.offset);
        assert_eq!(inuse.bit.unwrap().shift, 0);
        assert_eq!(objects.bit.unwrap().shift, 16);
        assert_eq!(frozen.bit.unwrap().shift, 31);
    }

    #[test]
    fn freelist_chains_free_objects() {
        let (mut kb, st, mut state) = setup();
        let kc = create_cache(&mut kb, &st, &mut state, "kmalloc-64", 64, 1, 8, 3);
        let (node_off, _) = kb.types.field_path(st.kmem_cache, "node[0]").unwrap();
        let node = kb.mem.read_uint(kc + node_off, 8).unwrap();
        let (partial_off, _) = kb.types.field_path(st.kmem_cache_node, "partial").unwrap();
        let slabs = structops::list_iter(&kb.mem, node + partial_off);
        assert_eq!(slabs.len(), 1);
        let (sl_off, _) = kb.types.field_path(st.slab, "slab_list").unwrap();
        let slab = structops::container_of(slabs[0], sl_off);
        let (fl_off, _) = kb.types.field_path(st.slab, "freelist").unwrap();
        let mut cur = kb.mem.read_uint(slab + fl_off, 8).unwrap();
        let mut count = 0;
        while cur != 0 {
            cur = kb.mem.read_uint(cur, 8).unwrap();
            count += 1;
            assert!(count < 100);
        }
        assert_eq!(count, 5, "8 objects - 3 in use = 5 free");
    }

    #[test]
    fn caches_list_in_creation_order() {
        let (mut kb, st, mut state) = setup();
        let a = create_cache(&mut kb, &st, &mut state, "task_struct", 2048, 2, 16, 10);
        let b = create_cache(&mut kb, &st, &mut state, "maple_node", 256, 1, 16, 12);
        let (list_off, _) = kb.types.field_path(st.kmem_cache, "list").unwrap();
        let got: Vec<u64> = structops::list_iter(&kb.mem, state.slab_caches)
            .into_iter()
            .map(|n| structops::container_of(n, list_off))
            .collect();
        assert_eq!(got, vec![a, b]);
    }
}
