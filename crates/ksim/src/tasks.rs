//! `task_struct` and the process tree (ULK Fig 3-4 substrate).
//!
//! The simulated `task_struct` carries the subset of Linux 6.1's ~700
//! fields that the paper's figures display: identity, state, scheduling
//! entity, parent/children/sibling links, the global task list, and
//! pointers into every other subsystem (mm, files, fs, signal, pid).
//! Layout is computed with real C rules, so `container_of(ptr, task_struct,
//! tasks)` arithmetic works on raw addresses.

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;
use crate::structops;

/// Task state bits (`include/linux/sched.h`).
pub const TASK_RUNNING: u64 = 0x0000;
/// Interruptible sleep.
pub const TASK_INTERRUPTIBLE: u64 = 0x0001;
/// Uninterruptible sleep.
pub const TASK_UNINTERRUPTIBLE: u64 = 0x0002;
/// Stopped.
pub const TASK_STOPPED: u64 = 0x0004;
/// Kernel thread flag in `task_struct.flags` (`PF_KTHREAD`).
pub const PF_KTHREAD: u64 = 0x0020_0000;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct TaskTypes {
    /// `struct task_struct`.
    pub task_struct: TypeId,
    /// `struct sched_entity` (embedded in `task_struct`).
    pub sched_entity: TypeId,
    /// `struct load_weight`.
    pub load_weight: TypeId,
}

/// Register `task_struct` and its embedded types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> TaskTypes {
    let load_weight = StructBuilder::new("load_weight")
        .field("weight", common.u64_t)
        .field("inv_weight", common.u32_t)
        .build(reg);

    let sched_entity = StructBuilder::new("sched_entity")
        .field("load", load_weight)
        .field("run_node", common.rb_node)
        .field("group_node", common.list_head)
        .field("on_rq", common.u32_t)
        .field("exec_start", common.u64_t)
        .field("sum_exec_runtime", common.u64_t)
        .field("vruntime", common.u64_t)
        .field("prev_sum_exec_runtime", common.u64_t)
        .build(reg);

    // Forward declarations for the subsystems a task points into.
    let task_fwd = reg.declare_struct("task_struct");
    let task_ptr = reg.pointer_to(task_fwd);
    let mm = reg.declare_struct("mm_struct");
    let mm_ptr = reg.pointer_to(mm);
    let files = reg.declare_struct("files_struct");
    let files_ptr = reg.pointer_to(files);
    let fs = reg.declare_struct("fs_struct");
    let fs_ptr = reg.pointer_to(fs);
    let signal = reg.declare_struct("signal_struct");
    let signal_ptr = reg.pointer_to(signal);
    let sighand = reg.declare_struct("sighand_struct");
    let sighand_ptr = reg.pointer_to(sighand);
    let pid_s = reg.declare_struct("pid");
    let pid_ptr = reg.pointer_to(pid_s);

    let comm = reg.array_of(common.char_t, 16);
    let pid_links = reg.array_of(common.hlist_node, 4);

    let task_struct = StructBuilder::new("task_struct")
        .field("__state", common.u32_t)
        .field("stack", common.void_ptr)
        .field("flags", common.u32_t)
        .field("on_cpu", common.int_t)
        .field("cpu", common.int_t)
        .field("on_rq", common.int_t)
        .field("prio", common.int_t)
        .field("static_prio", common.int_t)
        .field("normal_prio", common.int_t)
        .field("se", sched_entity)
        .field("tasks", common.list_head)
        .field("mm", mm_ptr)
        .field("active_mm", mm_ptr)
        .field("exit_state", common.int_t)
        .field("exit_code", common.int_t)
        .field("pid", common.int_t)
        .field("tgid", common.int_t)
        .field("real_parent", task_ptr)
        .field("parent", task_ptr)
        .field("children", common.list_head)
        .field("sibling", common.list_head)
        .field("group_leader", task_ptr)
        .field("thread_group", common.list_head)
        .field("thread_pid", pid_ptr)
        .field("pid_links", pid_links)
        .field("utime", common.u64_t)
        .field("stime", common.u64_t)
        .field("start_time", common.u64_t)
        .field("comm", comm)
        .field("fs", fs_ptr)
        .field("files", files_ptr)
        .field("signal", signal_ptr)
        .field("sighand", sighand_ptr)
        .build(reg);

    reg.define_const("TASK_RUNNING", TASK_RUNNING as i64);
    reg.define_const("TASK_INTERRUPTIBLE", TASK_INTERRUPTIBLE as i64);
    reg.define_const("TASK_UNINTERRUPTIBLE", TASK_UNINTERRUPTIBLE as i64);
    reg.define_const("TASK_STOPPED", TASK_STOPPED as i64);
    reg.define_const("PF_KTHREAD", PF_KTHREAD as i64);

    TaskTypes {
        task_struct,
        sched_entity,
        load_weight,
    }
}

/// Parameters for creating one task.
#[derive(Debug, Clone)]
pub struct TaskParams {
    /// Process id.
    pub pid: i32,
    /// Thread-group id (equals `pid` for group leaders).
    pub tgid: i32,
    /// Command name (truncated to 15 bytes).
    pub comm: String,
    /// `__state` word.
    pub state: u64,
    /// `flags` word (e.g. [`PF_KTHREAD`]).
    pub flags: u64,
    /// Dynamic priority.
    pub prio: i32,
    /// CFS virtual runtime.
    pub vruntime: u64,
    /// CPU the task last ran on.
    pub cpu: i32,
}

impl Default for TaskParams {
    fn default() -> Self {
        TaskParams {
            pid: 0,
            tgid: 0,
            comm: "swapper/0".into(),
            state: TASK_RUNNING,
            flags: 0,
            prio: 120,
            vruntime: 0,
            cpu: 0,
        }
    }
}

/// Create a `task_struct` on the heap with empty child/thread lists.
pub fn create_task(kb: &mut KernelBuilder, tt: &TaskTypes, p: &TaskParams) -> u64 {
    let addr = kb.alloc(tt.task_struct);
    init_task_at(kb, tt, addr, p);
    addr
}

/// Initialize a `task_struct` at a fixed address (used for the `init_task`
/// global).
pub fn init_task_at(kb: &mut KernelBuilder, tt: &TaskTypes, addr: u64, p: &TaskParams) {
    let children;
    let sibling;
    let thread_group;
    let tasks;
    {
        let mut w = kb.obj(addr, tt.task_struct);
        w.set("__state", p.state).unwrap();
        w.set_i64("pid", p.pid as i64).unwrap();
        w.set_i64("tgid", p.tgid as i64).unwrap();
        w.set("flags", p.flags).unwrap();
        w.set_i64("prio", p.prio as i64).unwrap();
        w.set_i64("static_prio", 120).unwrap();
        w.set_i64("normal_prio", p.prio as i64).unwrap();
        w.set_i64("cpu", p.cpu as i64).unwrap();
        w.set("se.vruntime", p.vruntime).unwrap();
        w.set("se.load.weight", 1024 * 1024).unwrap();
        w.set_str("comm", &p.comm).unwrap();
        w.set("group_leader", addr).unwrap();
        children = w.field_addr("children").unwrap();
        sibling = w.field_addr("sibling").unwrap();
        thread_group = w.field_addr("thread_group").unwrap();
        tasks = w.field_addr("tasks").unwrap();
    }
    structops::list_init(&mut kb.mem, children);
    structops::list_init(&mut kb.mem, sibling);
    structops::list_init(&mut kb.mem, thread_group);
    structops::list_init(&mut kb.mem, tasks);
}

/// Make `child` a child of `parent`: set parent pointers and splice the
/// child's `sibling` node into the parent's `children` list.
pub fn adopt(kb: &mut KernelBuilder, tt: &TaskTypes, child: u64, parent: u64) {
    let children_head = kb
        .obj(parent, tt.task_struct)
        .field_addr("children")
        .unwrap();
    let sibling_node;
    {
        let mut w = kb.obj(child, tt.task_struct);
        w.set("parent", parent).unwrap();
        w.set("real_parent", parent).unwrap();
        sibling_node = w.field_addr("sibling").unwrap();
    }
    structops::list_add_tail(&mut kb.mem, sibling_node, children_head);
}

/// Add `thread` to `leader`'s thread group.
pub fn join_thread_group(kb: &mut KernelBuilder, tt: &TaskTypes, thread: u64, leader: u64) {
    let head = kb
        .obj(leader, tt.task_struct)
        .field_addr("thread_group")
        .unwrap();
    let node;
    {
        let mut w = kb.obj(thread, tt.task_struct);
        w.set("group_leader", leader).unwrap();
        node = w.field_addr("thread_group").unwrap();
    }
    structops::list_add_tail(&mut kb.mem, node, head);
}

/// Splice `task` into the global task list headed at `init_task.tasks`.
pub fn link_global(kb: &mut KernelBuilder, tt: &TaskTypes, task: u64, init_task: u64) {
    let head = kb
        .obj(init_task, tt.task_struct)
        .field_addr("tasks")
        .unwrap();
    let node = kb.obj(task, tt.task_struct).field_addr("tasks").unwrap();
    structops::list_add_tail(&mut kb.mem, node, head);
}

/// Read back a task's children addresses by walking the sibling list —
/// the same `container_of` walk `list_for_each_entry` compiles to.
pub fn children_of(kb: &KernelBuilder, tt: &TaskTypes, parent: u64) -> Vec<u64> {
    let reg = &kb.types;
    let (children_off, _) = reg.field_path(tt.task_struct, "children").unwrap();
    let (sibling_off, _) = reg.field_path(tt.task_struct, "sibling").unwrap();
    structops::list_iter(&kb.mem, parent + children_off)
        .into_iter()
        .map(|n| structops::container_of(n, sibling_off))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KernelBuilder, TaskTypes) {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let tt = register_types(&mut kb.types, &common);
        (kb, tt)
    }

    #[test]
    fn task_struct_layout_is_nontrivial() {
        let (kb, tt) = setup();
        let size = kb.types.size_of(tt.task_struct);
        assert!(
            size > 200,
            "task_struct should be a large object, got {size}"
        );
        let def = kb.types.struct_def(tt.task_struct).unwrap();
        // comm is a char[16] like the real kernel.
        let comm = def.field("comm").unwrap();
        assert_eq!(kb.types.size_of(comm.ty), 16);
    }

    #[test]
    fn create_and_read_back_through_memory() {
        let (mut kb, tt) = setup();
        let t = create_task(
            &mut kb,
            &tt,
            &TaskParams {
                pid: 42,
                tgid: 42,
                comm: "bash".into(),
                ..Default::default()
            },
        );
        let reg = &kb.types;
        let (pid_off, _) = reg.field_path(tt.task_struct, "pid").unwrap();
        let (comm_off, _) = reg.field_path(tt.task_struct, "comm").unwrap();
        assert_eq!(kb.mem.read_int(t + pid_off, 4).unwrap(), 42);
        assert_eq!(kb.mem.read_cstr(t + comm_off, 16).unwrap(), "bash");
    }

    #[test]
    fn parenthood_tree_walks_via_container_of() {
        let (mut kb, tt) = setup();
        let init = create_task(
            &mut kb,
            &tt,
            &TaskParams {
                pid: 1,
                ..Default::default()
            },
        );
        let mut kids = Vec::new();
        for pid in 2..6 {
            let c = create_task(
                &mut kb,
                &tt,
                &TaskParams {
                    pid,
                    ..Default::default()
                },
            );
            adopt(&mut kb, &tt, c, init);
            kids.push(c);
        }
        assert_eq!(children_of(&kb, &tt, init), kids);
        // Parent pointer is readable from raw memory.
        let (parent_off, _) = kb.types.field_path(tt.task_struct, "parent").unwrap();
        assert_eq!(kb.mem.read_uint(kids[0] + parent_off, 8).unwrap(), init);
    }

    #[test]
    fn thread_group_links() {
        let (mut kb, tt) = setup();
        let leader = create_task(
            &mut kb,
            &tt,
            &TaskParams {
                pid: 10,
                tgid: 10,
                ..Default::default()
            },
        );
        let t1 = create_task(
            &mut kb,
            &tt,
            &TaskParams {
                pid: 11,
                tgid: 10,
                ..Default::default()
            },
        );
        join_thread_group(&mut kb, &tt, t1, leader);
        let (tg_off, _) = kb.types.field_path(tt.task_struct, "thread_group").unwrap();
        let nodes = structops::list_iter(&kb.mem, leader + tg_off);
        assert_eq!(nodes, vec![t1 + tg_off]);
        let (gl_off, _) = kb.types.field_path(tt.task_struct, "group_leader").unwrap();
        assert_eq!(kb.mem.read_uint(t1 + gl_off, 8).unwrap(), leader);
    }

    #[test]
    fn global_task_list_collects_everyone() {
        let (mut kb, tt) = setup();
        let init = create_task(
            &mut kb,
            &tt,
            &TaskParams {
                pid: 1,
                ..Default::default()
            },
        );
        let mut expect = Vec::new();
        for pid in 2..8 {
            let t = create_task(
                &mut kb,
                &tt,
                &TaskParams {
                    pid,
                    ..Default::default()
                },
            );
            link_global(&mut kb, &tt, t, init);
            expect.push(t);
        }
        let (tasks_off, _) = kb.types.field_path(tt.task_struct, "tasks").unwrap();
        let got: Vec<u64> = structops::list_iter(&kb.mem, init + tasks_off)
            .into_iter()
            .map(|n| structops::container_of(n, tasks_off))
            .collect();
        assert_eq!(got, expect);
    }
}
