//! VFS objects: files, dentries, inodes, superblocks (ULK Fig 12/14/16,
//! the "from process to VFS" figure, and the Dirty Pipe case study).

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;
use crate::structops;

/// File mode bits (subset of `S_IFMT`).
pub const S_IFREG: u64 = 0o100000;
/// Directory.
pub const S_IFDIR: u64 = 0o040000;
/// FIFO (pipes).
pub const S_IFIFO: u64 = 0o010000;
/// Socket.
pub const S_IFSOCK: u64 = 0o140000;

/// `file.f_mode` bits.
pub const FMODE_READ: u64 = 0x1;
/// Writable file.
pub const FMODE_WRITE: u64 = 0x2;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct VfsTypes {
    /// `struct super_block`.
    pub super_block: TypeId,
    /// `struct inode`.
    pub inode: TypeId,
    /// `struct dentry`.
    pub dentry: TypeId,
    /// `struct file`.
    pub file: TypeId,
    /// `struct address_space`.
    pub address_space: TypeId,
    /// `struct xarray`.
    pub xarray: TypeId,
    /// `struct fs_struct`.
    pub fs_struct: TypeId,
    /// `struct path`.
    pub path: TypeId,
    /// `struct vfsmount`.
    pub vfsmount: TypeId,
    /// `struct file_system_type`.
    pub file_system_type: TypeId,
}

/// Register VFS types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> VfsTypes {
    let sb_fwd = reg.declare_struct("super_block");
    let sb_ptr = reg.pointer_to(sb_fwd);
    let inode_fwd = reg.declare_struct("inode");
    let inode_ptr = reg.pointer_to(inode_fwd);
    let dentry_fwd = reg.declare_struct("dentry");
    let dentry_ptr = reg.pointer_to(dentry_fwd);
    let bdev_fwd = reg.declare_struct("block_device");
    let bdev_ptr = reg.pointer_to(bdev_fwd);
    let as_fwd = reg.declare_struct("address_space");
    let as_ptr = reg.pointer_to(as_fwd);

    let xarray = StructBuilder::new("xarray")
        .field("xa_lock", common.spinlock)
        .field("xa_flags", common.u32_t)
        .field("xa_head", common.void_ptr)
        .build(reg);

    let address_space = StructBuilder::new("address_space")
        .field("host", inode_ptr)
        .field("i_pages", xarray)
        .field("invalidate_lock", common.atomic64)
        .field("gfp_mask", common.u32_t)
        .field("i_mmap_writable", common.atomic)
        .field("nrpages", common.u64_t)
        .field("writeback_index", common.u64_t)
        .field("a_ops", common.void_ptr)
        .field("flags", common.u64_t)
        .build(reg);

    let fst = StructBuilder::new("file_system_type")
        .field("name", common.char_ptr)
        .field("fs_flags", common.int_t)
        .field("next", common.void_ptr)
        .build(reg);
    let fst_ptr = reg.pointer_to(fst);

    let s_id_arr = reg.array_of(common.char_t, 32);
    let super_block = StructBuilder::new("super_block")
        .field("s_list", common.list_head)
        .field("s_dev", common.u32_t)
        .field("s_blocksize_bits", common.u8_t)
        .field("s_blocksize", common.u64_t)
        .field("s_maxbytes", common.long_t)
        .field("s_type", fst_ptr)
        .field("s_flags", common.u64_t)
        .field("s_magic", common.u64_t)
        .field("s_root", dentry_ptr)
        .field("s_count", common.int_t)
        .field("s_active", common.atomic)
        .field("s_bdev", bdev_ptr)
        .field("s_id", s_id_arr)
        .field("s_inodes", common.list_head)
        .build(reg);

    let inode = StructBuilder::new("inode")
        .field("i_mode", common.u16_t)
        .field("i_opflags", common.u16_t)
        .field("i_uid", common.u32_t)
        .field("i_gid", common.u32_t)
        .field("i_flags", common.u32_t)
        .field("i_ino", common.u64_t)
        .field("i_size", common.long_t)
        .field("i_blocks", common.u64_t)
        .field("i_count", common.atomic)
        .field("i_sb", sb_ptr)
        .field("i_mapping", as_ptr)
        .field("i_data", address_space)
        .field("i_sb_list", common.list_head)
        .field("i_private", common.void_ptr)
        .build(reg);

    let dname = reg.array_of(common.char_t, 32);
    let dentry = StructBuilder::new("dentry")
        .field("d_flags", common.u32_t)
        .field("d_parent", dentry_ptr)
        .field("d_name_hash", common.u32_t)
        .field("d_name_len", common.u32_t)
        .field("d_name", common.char_ptr)
        .field("d_inode", inode_ptr)
        .field("d_iname", dname)
        .field("d_sb", sb_ptr)
        .field("d_child", common.list_head)
        .field("d_subdirs", common.list_head)
        .build(reg);

    let vfsmount = StructBuilder::new("vfsmount")
        .field("mnt_root", dentry_ptr)
        .field("mnt_sb", sb_ptr)
        .field("mnt_flags", common.int_t)
        .build(reg);
    let vfsmount_ptr = reg.pointer_to(vfsmount);

    let path = StructBuilder::new("path")
        .field("mnt", vfsmount_ptr)
        .field("dentry", dentry_ptr)
        .build(reg);

    let file = StructBuilder::new("file")
        .field("f_lock", common.spinlock)
        .field("f_mode", common.u32_t)
        .field("f_count", common.atomic64)
        .field("f_pos", common.long_t)
        .field("f_flags", common.u32_t)
        .field("f_path", path)
        .field("f_inode", inode_ptr)
        .field("f_op", common.void_ptr)
        .field("f_mapping", as_ptr)
        .field("private_data", common.void_ptr)
        .build(reg);

    let fs_struct = StructBuilder::new("fs_struct")
        .field("users", common.int_t)
        .field("lock", common.spinlock)
        .field("umask", common.int_t)
        .field("in_exec", common.int_t)
        .field("root", path)
        .field("pwd", path)
        .build(reg);

    reg.define_const("S_IFREG", S_IFREG as i64);
    reg.define_const("S_IFDIR", S_IFDIR as i64);
    reg.define_const("S_IFIFO", S_IFIFO as i64);
    reg.define_const("S_IFSOCK", S_IFSOCK as i64);
    reg.define_const("FMODE_READ", FMODE_READ as i64);
    reg.define_const("FMODE_WRITE", FMODE_WRITE as i64);

    VfsTypes {
        super_block,
        inode,
        dentry,
        file,
        address_space,
        xarray,
        fs_struct,
        path,
        vfsmount,
        file_system_type: fst,
    }
}

/// The global `super_blocks` list plus registered filesystems.
#[derive(Debug, Clone)]
pub struct VfsState {
    /// Address of the `super_blocks` list head global.
    pub super_blocks: u64,
    /// Created superblocks.
    pub sbs: Vec<u64>,
}

/// Create the global `super_blocks` list head.
pub fn create_vfs_state(kb: &mut KernelBuilder, common: &CommonTypes) -> VfsState {
    let head = kb.alloc_global("super_blocks", common.list_head);
    structops::list_init(&mut kb.mem, head);
    VfsState {
        super_blocks: head,
        sbs: Vec::new(),
    }
}

/// Create a superblock for filesystem `fsname`, chained into
/// `super_blocks`; `bdev` is 0 for virtual filesystems.
pub fn create_super_block(
    kb: &mut KernelBuilder,
    vt: &VfsTypes,
    state: &mut VfsState,
    fsname: &str,
    s_id: &str,
    bdev: u64,
) -> u64 {
    let fst = kb.alloc(vt.file_system_type);
    let name_buf = kb.alloc_pagedata(fsname.len() as u64 + 1);
    kb.mem.write_cstr(name_buf, fsname);
    kb.obj(fst, vt.file_system_type)
        .set("name", name_buf)
        .unwrap();

    let sb = kb.alloc(vt.super_block);
    let (s_list, s_inodes);
    {
        let mut w = kb.obj(sb, vt.super_block);
        w.set("s_type", fst).unwrap();
        w.set("s_bdev", bdev).unwrap();
        w.set("s_blocksize", 4096).unwrap();
        w.set("s_blocksize_bits", 12).unwrap();
        w.set_i64("s_count", 1).unwrap();
        w.set_i64("s_active.counter", 1).unwrap();
        w.set_str("s_id", s_id).unwrap();
        s_list = w.field_addr("s_list").unwrap();
        s_inodes = w.field_addr("s_inodes").unwrap();
    }
    structops::list_init(&mut kb.mem, s_inodes);
    structops::list_add_tail(&mut kb.mem, s_list, state.super_blocks);
    state.sbs.push(sb);
    sb
}

/// Create an inode on `sb` with `i_mapping` pointing at its embedded
/// `i_data`, chained into `sb->s_inodes`.
pub fn create_inode(
    kb: &mut KernelBuilder,
    vt: &VfsTypes,
    sb: u64,
    ino: u64,
    mode: u64,
    size: i64,
) -> u64 {
    let inode = kb.alloc(vt.inode);
    let (i_data_off, _) = kb.types.field_path(vt.inode, "i_data").unwrap();
    let sb_list_node;
    {
        let mut w = kb.obj(inode, vt.inode);
        w.set("i_ino", ino).unwrap();
        w.set("i_mode", mode).unwrap();
        w.set_i64("i_size", size).unwrap();
        w.set_i64("i_count.counter", 1).unwrap();
        w.set("i_sb", sb).unwrap();
        w.set("i_mapping", inode + i_data_off).unwrap();
        w.set("i_data.host", inode).unwrap();
        sb_list_node = w.field_addr("i_sb_list").unwrap();
    }
    if sb != 0 {
        let (s_inodes_off, _) = kb.types.field_path(vt.super_block, "s_inodes").unwrap();
        structops::list_add_tail(&mut kb.mem, sb_list_node, sb + s_inodes_off);
    }
    inode
}

/// Create a dentry named `name` for `inode` under `parent` (0 for root).
pub fn create_dentry(
    kb: &mut KernelBuilder,
    vt: &VfsTypes,
    name: &str,
    inode: u64,
    parent: u64,
    sb: u64,
) -> u64 {
    let dentry = kb.alloc(vt.dentry);
    let (d_iname_off, _) = kb.types.field_path(vt.dentry, "d_iname").unwrap();
    let (d_child, d_subdirs);
    {
        let mut w = kb.obj(dentry, vt.dentry);
        w.set_str("d_iname", name).unwrap();
        w.set("d_name", dentry + d_iname_off).unwrap();
        w.set("d_name_len", name.len() as u64).unwrap();
        w.set("d_inode", inode).unwrap();
        w.set("d_sb", sb).unwrap();
        w.set("d_parent", if parent == 0 { dentry } else { parent })
            .unwrap();
        d_child = w.field_addr("d_child").unwrap();
        d_subdirs = w.field_addr("d_subdirs").unwrap();
    }
    structops::list_init(&mut kb.mem, d_child);
    structops::list_init(&mut kb.mem, d_subdirs);
    if parent != 0 {
        let (subdirs_off, _) = kb.types.field_path(vt.dentry, "d_subdirs").unwrap();
        structops::list_add_tail(&mut kb.mem, d_child, parent + subdirs_off);
    }
    dentry
}

/// Create an open `struct file` over `dentry` (reads `d_inode` from the
/// image, like `dentry_open`).
pub fn create_file(kb: &mut KernelBuilder, vt: &VfsTypes, dentry: u64, f_mode: u64) -> u64 {
    let (d_inode_off, _) = kb.types.field_path(vt.dentry, "d_inode").unwrap();
    let inode = kb.mem.read_uint(dentry + d_inode_off, 8).unwrap();
    let (i_mapping_off, _) = kb.types.field_path(vt.inode, "i_mapping").unwrap();
    let mapping = if inode != 0 {
        kb.mem.read_uint(inode + i_mapping_off, 8).unwrap()
    } else {
        0
    };

    let file = kb.alloc(vt.file);
    let mut w = kb.obj(file, vt.file);
    w.set("f_mode", f_mode).unwrap();
    w.set_i64("f_count.counter", 1).unwrap();
    w.set("f_path.dentry", dentry).unwrap();
    w.set("f_inode", inode).unwrap();
    w.set("f_mapping", mapping).unwrap();
    file
}

/// Create an `fs_struct` whose root and pwd point at `root_dentry`.
pub fn create_fs_struct(kb: &mut KernelBuilder, vt: &VfsTypes, root_dentry: u64) -> u64 {
    let fs = kb.alloc(vt.fs_struct);
    let mut w = kb.obj(fs, vt.fs_struct);
    w.set_i64("users", 1).unwrap();
    w.set_i64("umask", 0o022).unwrap();
    w.set("root.dentry", root_dentry).unwrap();
    w.set("pwd.dentry", root_dentry).unwrap();
    fs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KernelBuilder, VfsTypes, VfsState) {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let vt = register_types(&mut kb.types, &common);
        let state = create_vfs_state(&mut kb, &common);
        (kb, vt, state)
    }

    #[test]
    fn super_blocks_list_collects_filesystems() {
        let (mut kb, vt, mut state) = setup();
        let sb1 = create_super_block(&mut kb, &vt, &mut state, "ext4", "sda1", 0x999);
        let sb2 = create_super_block(&mut kb, &vt, &mut state, "tmpfs", "tmpfs", 0);
        let (s_list_off, _) = kb.types.field_path(vt.super_block, "s_list").unwrap();
        let got: Vec<u64> = structops::list_iter(&kb.mem, state.super_blocks)
            .into_iter()
            .map(|n| structops::container_of(n, s_list_off))
            .collect();
        assert_eq!(got, vec![sb1, sb2]);
        // s_bdev differentiates disk-backed from virtual (Table 3 #14-3).
        let (bdev_off, _) = kb.types.field_path(vt.super_block, "s_bdev").unwrap();
        assert_eq!(kb.mem.read_uint(sb1 + bdev_off, 8).unwrap(), 0x999);
        assert_eq!(kb.mem.read_uint(sb2 + bdev_off, 8).unwrap(), 0);
    }

    #[test]
    fn inode_i_mapping_points_to_embedded_i_data() {
        let (mut kb, vt, mut state) = setup();
        let sb = create_super_block(&mut kb, &vt, &mut state, "ext4", "sda1", 0);
        let inode = create_inode(&mut kb, &vt, sb, 1234, S_IFREG | 0o644, 8192);
        let (map_off, _) = kb.types.field_path(vt.inode, "i_mapping").unwrap();
        let (data_off, _) = kb.types.field_path(vt.inode, "i_data").unwrap();
        assert_eq!(
            kb.mem.read_uint(inode + map_off, 8).unwrap(),
            inode + data_off
        );
        // host back-pointer.
        let (host_off, _) = kb.types.field_path(vt.inode, "i_data.host").unwrap();
        assert_eq!(kb.mem.read_uint(inode + host_off, 8).unwrap(), inode);
    }

    #[test]
    fn dentry_tree_and_file_open() {
        let (mut kb, vt, mut state) = setup();
        let sb = create_super_block(&mut kb, &vt, &mut state, "ext4", "sda1", 0);
        let root_ino = create_inode(&mut kb, &vt, sb, 2, S_IFDIR | 0o755, 4096);
        let root = create_dentry(&mut kb, &vt, "/", root_ino, 0, sb);
        let ino = create_inode(&mut kb, &vt, sb, 77, S_IFREG | 0o644, 100);
        let d = create_dentry(&mut kb, &vt, "test.txt", ino, root, sb);
        let f = create_file(&mut kb, &vt, d, FMODE_READ | FMODE_WRITE);

        let (fi_off, _) = kb.types.field_path(vt.file, "f_inode").unwrap();
        assert_eq!(kb.mem.read_uint(f + fi_off, 8).unwrap(), ino);
        let (fd_off, _) = kb.types.field_path(vt.file, "f_path.dentry").unwrap();
        assert_eq!(kb.mem.read_uint(f + fd_off, 8).unwrap(), d);
        // The dentry name reads back through d_name indirection.
        let (dn_off, _) = kb.types.field_path(vt.dentry, "d_name").unwrap();
        let name_ptr = kb.mem.read_uint(d + dn_off, 8).unwrap();
        assert_eq!(kb.mem.read_cstr(name_ptr, 32).unwrap(), "test.txt");
        // Root is a subdir parent.
        let (subdirs_off, _) = kb.types.field_path(vt.dentry, "d_subdirs").unwrap();
        assert_eq!(structops::list_iter(&kb.mem, root + subdirs_off).len(), 1);
    }
}
