//! CVE case-study scenarios (§3.2, §5.3): bug-state injection.
//!
//! Each scenario takes the built [`crate::workload::Workload`] and mutates
//! the image into the state the paper debugs at its breakpoint:
//!
//! * **StackRot** (CVE-2023-3269): a maple-tree node that CPU 1 still
//!   reaches through `mas_walk` has been handed to `call_rcu` by CPU 0 —
//!   the node sits simultaneously in the tree and on the RCU callback
//!   list, destructor `mt_free_rcu`.
//! * **Dirty Pipe** (CVE-2022-0847): a pipe buffer points at a page-cache
//!   page of `test.txt` *and* carries `PIPE_BUF_FLAG_CAN_MERGE`, the
//!   uninitialized-flag state that makes the page writable through the
//!   pipe.
//!
//! The injection logic itself lives in [`crate::corpus`], where both CVEs
//! are corpus entries (`cve-2023-3269-stackrot`, `cve-2022-0847-dirty-pipe`)
//! declared as data; these functions are kept as the stable entry points
//! the case-study tests and examples were written against.

use crate::corpus;
use crate::workload::Workload;

/// Outcome of the StackRot injection.
#[derive(Debug, Clone)]
pub struct StackRot {
    /// The `mm_struct` whose tree is affected.
    pub mm: u64,
    /// The victim leaf `maple_node` (still reachable from the tree).
    pub victim_node: u64,
    /// The node's embedded `rcu_head` address (on CPU 0's callback list).
    pub rcu_head: u64,
    /// The CPU whose callback list holds the deferred free.
    pub free_cpu: u64,
    /// The CPU concurrently reading the node.
    pub reader_cpu: u64,
}

/// Inject the StackRot state into process 0's address space.
///
/// # Panics
///
/// Panics if the workload has no user process with a multi-node maple
/// tree (the default config always has one).
pub fn inject_stackrot(w: &mut Workload) -> StackRot {
    corpus::apply_stackrot(w)
}

/// Outcome of the Dirty Pipe injection.
#[derive(Debug, Clone)]
pub struct DirtyPipe {
    /// The victim file (`test.txt`).
    pub file: u64,
    /// The shared page (in the file's page cache *and* the pipe ring).
    pub shared_page: u64,
    /// The pipe whose buffer aliases the page.
    pub pipe: u64,
    /// Index of the corrupted `pipe_buffer` in the ring.
    pub buf_index: u64,
    /// The task owning the pipe (pid of the paper's figure: the process
    /// that ran `splice`).
    pub task: u64,
}

/// Inject the Dirty Pipe state: `splice` moved a page of `test.txt` into
/// process 0's pipe ring zero-copy, and `copy_page_to_iter_pipe` left
/// `PIPE_BUF_FLAG_CAN_MERGE` set.
pub fn inject_dirty_pipe(w: &mut Workload) -> DirtyPipe {
    corpus::apply_dirty_pipe(w)
}

/// Let the RCU grace period expire for the StackRot victim: run the
/// deferred `mt_free_rcu`, i.e. *actually free* the node's memory
/// (`kmem_cache_free` recycles the slab page — we unmap it, so any later
/// dereference faults exactly like the paper's Figure 5 line 15).
///
/// After this, the maple tree still holds a dangling tagged pointer to
/// the node: the use-after-free is armed, and CPU 1's `mas_prev()` —
/// or a debugger walking the tree — will touch freed memory.
pub fn expire_rcu_grace_period(w: &mut Workload, sr: &StackRot) {
    corpus::expire_stackrot(w, sr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maple;
    use crate::pipe::PIPE_BUF_FLAG_CAN_MERGE;
    use crate::rcu;
    use crate::workload::{self, WorkloadConfig};

    #[test]
    fn stackrot_node_is_in_tree_and_on_rcu_list() {
        let mut w = workload::build(&WorkloadConfig::default());
        let t = w.types;
        let sr = inject_stackrot(&mut w);

        // Still reachable from the tree root...
        let (root_off, _) =
            w.kb.types
                .field_path(t.mm.mm_struct, "mm_mt.ma_root")
                .unwrap();
        let root = w.kb.mem.read_uint(sr.mm + root_off, 8).unwrap();
        let node0 = maple::mte_to_node(root);
        let slot0 = node0 + 8 + 8 * (maple::MAPLE_ARANGE64_SLOTS - 1);
        let child = w.kb.mem.read_uint(slot0, 8).unwrap();
        assert_eq!(maple::mte_to_node(child), sr.victim_node);

        // ...and on CPU 0's RCU callback list with mt_free_rcu.
        let rcu_state = rcu::RcuState {
            base: w.kb.symbols.lookup("rcu_data").unwrap().addr,
            size: w.kb.types.size_of(t.rcu.rcu_data),
        };
        let cbs = rcu::pending_callbacks(&w.kb, &t.rcu, &rcu_state, 0);
        let found = cbs
            .iter()
            .any(|&(h, f)| h == sr.rcu_head && w.kb.symbols.name_at(f) == Some("mt_free_rcu"));
        assert!(found, "victim rcu_head must be queued with mt_free_rcu");
    }

    #[test]
    fn expired_grace_period_arms_the_uaf() {
        let mut w = workload::build(&WorkloadConfig::default());
        let sr = inject_stackrot(&mut w);
        expire_rcu_grace_period(&mut w, &sr);
        // The tree still points at the node (dangling), but the memory is
        // gone: the defining state of CVE-2023-3269.
        let (root_off, _) =
            w.kb.types
                .field_path(w.types.mm.mm_struct, "mm_mt.ma_root")
                .unwrap();
        let root = w.kb.mem.read_uint(sr.mm + root_off, 8).unwrap();
        let node0 = maple::mte_to_node(root);
        let slot0 = node0 + 8 + 8 * (maple::MAPLE_ARANGE64_SLOTS - 1);
        let child = w.kb.mem.read_uint(slot0, 8).unwrap();
        assert_eq!(
            maple::mte_to_node(child),
            sr.victim_node,
            "dangling link remains"
        );
        // Dereferencing the freed node now reads slab poison.
        assert_eq!(
            w.kb.mem.read_uint(sr.victim_node, 8).unwrap(),
            0x6b6b_6b6b_6b6b_6b6b,
            "the node is POISON_FREE"
        );
    }

    #[test]
    fn dirty_pipe_shares_exactly_one_page() {
        let mut w = workload::build(&WorkloadConfig::default());
        let t = w.types;
        let dp = inject_dirty_pipe(&mut w);

        // The shared page is in the file's page cache at index 0.
        let (f_mapping_off, _) = w.kb.types.field_path(t.vfs.file, "f_mapping").unwrap();
        let mapping = w.kb.mem.read_uint(dp.file + f_mapping_off, 8).unwrap();
        let (i_pages_off, _) =
            w.kb.types
                .field_path(t.vfs.address_space, "i_pages")
                .unwrap();
        assert_eq!(
            crate::pagecache::xa_load(&w.kb, &t.page, mapping + i_pages_off, 0),
            dp.shared_page
        );

        // The pipe buffer aliases it with CAN_MERGE set.
        let (bufs_off, _) =
            w.kb.types
                .field_path(t.pipe.pipe_inode_info, "bufs")
                .unwrap();
        let ring = w.kb.mem.read_uint(dp.pipe + bufs_off, 8).unwrap();
        let (page_off, _) = w.kb.types.field_path(t.pipe.pipe_buffer, "page").unwrap();
        let (flags_off, _) = w.kb.types.field_path(t.pipe.pipe_buffer, "flags").unwrap();
        assert_eq!(
            w.kb.mem.read_uint(ring + page_off, 8).unwrap(),
            dp.shared_page
        );
        assert_eq!(
            w.kb.mem.read_uint(ring + flags_off, 4).unwrap() & PIPE_BUF_FLAG_CAN_MERGE,
            PIPE_BUF_FLAG_CAN_MERGE
        );

        // No *other* pipe buffer aliases a page-cache page: the shared page
        // is unique, which is what Figure 7's ViewQL isolates.
        let mut aliased = 0;
        for &pipe in &w.roots.pipes {
            let ring = w.kb.mem.read_uint(pipe + bufs_off, 8).unwrap();
            let bsz = w.kb.types.size_of(t.pipe.pipe_buffer);
            for i in 0..crate::pipe::PIPE_DEF_BUFFERS {
                let pg = w.kb.mem.read_uint(ring + i * bsz + page_off, 8).unwrap();
                if pg != 0 && w.roots.pages.contains(&pg) {
                    aliased += 1;
                }
            }
        }
        assert_eq!(aliased, 1);
    }
}
