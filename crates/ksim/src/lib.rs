//! A simulated Linux 6.1 kernel memory image.
//!
//! `ksim` builds, byte-for-byte, the runtime state that Visualinux debugs:
//! kernel objects laid out with real C struct layouts in a sparse virtual
//! address space, connected exactly like the live kernel connects them —
//! embedded `list_head`s traversed via `container_of`, red-black trees with
//! color bits packed into parent pointers, tagged maple-tree node pointers,
//! per-CPU runqueues, slab caches, page-cache xarrays, and so on.
//!
//! One module per subsystem (mirroring the kernel source tree loosely);
//! the [`workload`] module generates the populated image the paper's
//! evaluation plots (5 processes × 2 threads exercising IPC, mmap, files,
//! pipes and sockets), and [`scenarios`] injects the two CVE case studies.
//! The [`corpus`] module generalizes both into a declarative, serializable
//! scenario corpus with ground-truth expectations.
//!
//! Nothing here is visible to the visualization stack except through raw
//! memory reads: the image is debugged, not queried.

// Builders `drop(writer)` to end the writer's borrow of the image between
// wiring steps; the writer intentionally has no `Drop` impl.
#![allow(clippy::drop_non_drop)]

pub mod block;
pub mod buddy;
pub mod common;
pub mod corpus;
pub mod faults;
pub mod fdtable;
pub mod image;
pub mod ipc;
pub mod irq;
pub mod kobject;
pub mod maple;
pub mod mm;
pub mod net;
pub mod pagecache;
pub mod pid;
pub mod pipe;
pub mod rcu;
pub mod rmap;
pub mod scenarios;
pub mod sched;
pub mod signals;
pub mod slab;
pub mod structops;
pub mod swap;
pub mod tasks;
pub mod tick;
pub mod timers;
pub mod vfs;
pub mod workload;
pub mod workqueue;

pub use image::{KernelBuilder, KernelImage, KernelLayout};
