//! Workqueues with heterogeneous `container_of` work lists
//! (the paper's Figure 6: `mm_percpu_wq`).
//!
//! A worker pool's `worklist` chains `work_struct.entry` nodes whose
//! *enclosing* objects have different types — plain `work_struct`s and
//! `delayed_work`s — distinguishable only through the `func` pointer,
//! which is exactly the polymorphism headache ViewCL's `switch` handles.

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;
use crate::structops;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct WqTypes {
    /// `struct work_struct`.
    pub work_struct: TypeId,
    /// `struct delayed_work` (embeds a `work_struct` and a timer).
    pub delayed_work: TypeId,
    /// `struct worker_pool`.
    pub worker_pool: TypeId,
    /// `struct pool_workqueue`.
    pub pool_workqueue: TypeId,
    /// `struct workqueue_struct`.
    pub workqueue_struct: TypeId,
}

/// Register workqueue types (requires timer types).
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> WqTypes {
    let work_fn = reg.func("void (*)(struct work_struct *)");
    let work_fn_ptr = reg.pointer_to(work_fn);
    let work_struct = StructBuilder::new("work_struct")
        .field("data", common.atomic64)
        .field("entry", common.list_head)
        .field("func", work_fn_ptr)
        .build(reg);

    let timer_list = reg
        .find("timer_list")
        .expect("timer types registered first");
    let delayed_work = StructBuilder::new("delayed_work")
        .field("work", work_struct)
        .field("timer", timer_list)
        .field("wq", common.void_ptr)
        .field("cpu", common.int_t)
        .build(reg);

    let worker_pool = StructBuilder::new("worker_pool")
        .field("lock", common.spinlock)
        .field("cpu", common.int_t)
        .field("node", common.int_t)
        .field("id", common.int_t)
        .field("flags", common.u32_t)
        .field("worklist", common.list_head)
        .field("nr_workers", common.int_t)
        .field("nr_idle", common.int_t)
        .build(reg);
    let pool_ptr = reg.pointer_to(worker_pool);

    let wq_fwd = reg.declare_struct("workqueue_struct");
    let wq_ptr = reg.pointer_to(wq_fwd);
    let pool_workqueue = StructBuilder::new("pool_workqueue")
        .field("pool", pool_ptr)
        .field("wq", wq_ptr)
        .field("refcnt", common.int_t)
        .field("nr_active", common.int_t)
        .field("max_active", common.int_t)
        .field("pwqs_node", common.list_head)
        .build(reg);

    let name24 = reg.array_of(common.char_t, 24);
    let workqueue_struct = StructBuilder::new("workqueue_struct")
        .field("pwqs", common.list_head)
        .field("list", common.list_head)
        .field("flags", common.u32_t)
        .field("name", name24)
        .build(reg);

    WqTypes {
        work_struct,
        delayed_work,
        worker_pool,
        pool_workqueue,
        workqueue_struct,
    }
}

/// One scheduled work item.
#[derive(Debug, Clone)]
pub enum WorkItem {
    /// A plain `work_struct` running the named function.
    Plain(&'static str),
    /// A `delayed_work` running the named function after `expires`.
    Delayed(&'static str, u64),
}

/// A built workqueue.
#[derive(Debug, Clone)]
pub struct BuiltWq {
    /// `workqueue_struct` address.
    pub wq: u64,
    /// Its `pool_workqueue`s (one per CPU).
    pub pwqs: Vec<u64>,
    /// The per-CPU worker pools.
    pub pools: Vec<u64>,
    /// Work object addresses (the enclosing objects, not the list nodes).
    pub works: Vec<u64>,
}

/// Create the global `workqueues` list head.
pub fn create_wq_state(kb: &mut KernelBuilder, common: &CommonTypes) -> u64 {
    let head = kb.alloc_global("workqueues", common.list_head);
    structops::list_init(&mut kb.mem, head);
    head
}

/// Create a workqueue named `name`, register it as a symbol, and queue
/// `items` on CPU 0's pool.
pub fn create_workqueue(
    kb: &mut KernelBuilder,
    wt: &WqTypes,
    workqueues_head: u64,
    name: &str,
    items: &[WorkItem],
) -> BuiltWq {
    let wq = kb.alloc(wt.workqueue_struct);
    kb.symbols.define_object(name, wq, wt.workqueue_struct);
    let (pwqs_head, list_node);
    {
        let mut w = kb.obj(wq, wt.workqueue_struct);
        w.set_str("name", name).unwrap();
        pwqs_head = w.field_addr("pwqs").unwrap();
        list_node = w.field_addr("list").unwrap();
    }
    structops::list_init(&mut kb.mem, pwqs_head);
    structops::list_add_tail(&mut kb.mem, list_node, workqueues_head);

    let mut pwqs = Vec::new();
    let mut pools = Vec::new();
    for cpu in 0..crate::sched::NR_CPUS {
        let pool = kb.alloc(wt.worker_pool);
        let worklist;
        {
            let mut w = kb.obj(pool, wt.worker_pool);
            w.set_i64("cpu", cpu as i64).unwrap();
            w.set_i64("id", (cpu * 2) as i64).unwrap();
            w.set_i64("nr_workers", 2).unwrap();
            w.set_i64("nr_idle", 1).unwrap();
            worklist = w.field_addr("worklist").unwrap();
        }
        structops::list_init(&mut kb.mem, worklist);
        let pwq = kb.alloc(wt.pool_workqueue);
        let pwqs_node;
        {
            let mut w = kb.obj(pwq, wt.pool_workqueue);
            w.set("pool", pool).unwrap();
            w.set("wq", wq).unwrap();
            w.set_i64("refcnt", 1).unwrap();
            w.set_i64("max_active", 256).unwrap();
            pwqs_node = w.field_addr("pwqs_node").unwrap();
        }
        structops::list_add_tail(&mut kb.mem, pwqs_node, pwqs_head);
        pwqs.push(pwq);
        pools.push(pool);
    }

    // Queue the items on CPU 0's pool with heterogeneous enclosing types.
    let (worklist_off, _) = kb.types.field_path(wt.worker_pool, "worklist").unwrap();
    let worklist = pools[0] + worklist_off;
    let mut works = Vec::new();
    for item in items {
        let (obj, entry) = match item {
            WorkItem::Plain(sym) => {
                let wkr = kb.alloc(wt.work_struct);
                let f = kb.func_sym(sym);
                let mut w = kb.obj(wkr, wt.work_struct);
                w.set("func", f).unwrap();
                w.set_i64("data.counter", 0x15).unwrap(); // pending bits
                let e = w.field_addr("entry").unwrap();
                (wkr, e)
            }
            WorkItem::Delayed(sym, expires) => {
                let dw = kb.alloc(wt.delayed_work);
                let f = kb.func_sym(sym);
                let tf = kb.func_sym("delayed_work_timer_fn");
                let mut w = kb.obj(dw, wt.delayed_work);
                w.set("work.func", f).unwrap();
                w.set("timer.expires", *expires).unwrap();
                w.set("timer.function", tf).unwrap();
                let e = w.field_addr("work.entry").unwrap();
                (dw, e)
            }
        };
        structops::list_add_tail(&mut kb.mem, entry, worklist);
        works.push(obj);
    }
    BuiltWq {
        wq,
        pwqs,
        pools,
        works,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timers;

    fn setup() -> (KernelBuilder, WqTypes) {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let _tt = timers::register_types(&mut kb.types, &common);
        let wt = register_types(&mut kb.types, &common);
        (kb, wt)
    }

    #[test]
    fn heterogeneous_worklist_types_resolved_by_func() {
        let (mut kb, wt) = setup();
        let common = kb.common;
        let head = create_wq_state(&mut kb, &common);
        let built = create_workqueue(
            &mut kb,
            &wt,
            head,
            "mm_percpu_wq",
            &[
                WorkItem::Delayed("vmstat_update", 12345),
                WorkItem::Plain("lru_add_drain_per_cpu"),
                WorkItem::Delayed("vmstat_update", 23456),
            ],
        );
        let (worklist_off, _) = kb.types.field_path(wt.worker_pool, "worklist").unwrap();
        let (entry_off, _) = kb.types.field_path(wt.work_struct, "entry").unwrap();
        let nodes = structops::list_iter(&kb.mem, built.pools[0] + worklist_off);
        assert_eq!(nodes.len(), 3);
        // Each node recovers its work_struct whose func names its type.
        let (func_off, _) = kb.types.field_path(wt.work_struct, "func").unwrap();
        let names: Vec<&str> = nodes
            .iter()
            .map(|n| {
                let ws = structops::container_of(*n, entry_off);
                let f = kb.mem.read_uint(ws + func_off, 8).unwrap();
                kb.symbols.name_at(f).unwrap()
            })
            .collect();
        assert_eq!(
            names,
            vec!["vmstat_update", "lru_add_drain_per_cpu", "vmstat_update"]
        );
    }

    #[test]
    fn workqueue_symbol_and_pwq_chain() {
        let (mut kb, wt) = setup();
        let common = kb.common;
        let head = create_wq_state(&mut kb, &common);
        let built = create_workqueue(&mut kb, &wt, head, "mm_percpu_wq", &[]);
        assert_eq!(kb.symbols.lookup("mm_percpu_wq").unwrap().addr, built.wq);
        let (pwqs_off, _) = kb.types.field_path(wt.workqueue_struct, "pwqs").unwrap();
        let chain = structops::list_iter(&kb.mem, built.wq + pwqs_off);
        assert_eq!(chain.len(), crate::sched::NR_CPUS as usize);
    }
}
