//! Swap area descriptors (ULK Fig 17-6).

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;

/// `MAX_SWAPFILES` (simplified).
pub const MAX_SWAPFILES: u64 = 4;
/// `SWP_USED` flag.
pub const SWP_USED: u64 = 0x01;
/// `SWP_WRITEOK` flag.
pub const SWP_WRITEOK: u64 = 0x02;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct SwapTypes {
    /// `struct swap_info_struct`.
    pub swap_info_struct: TypeId,
}

/// Register swap types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> SwapTypes {
    let bdev_fwd = reg.declare_struct("block_device");
    let bdev_ptr = reg.pointer_to(bdev_fwd);
    let file_fwd = reg.declare_struct("file");
    let file_ptr = reg.pointer_to(file_fwd);
    let u8_ptr = reg.pointer_to(common.u8_t);

    let swap_info_struct = StructBuilder::new("swap_info_struct")
        .field("lock", common.spinlock)
        .field("flags", common.u64_t)
        .field("prio", common.int_t)
        .field("type", common.int_t)
        .field("max", common.u32_t)
        .field("swap_map", u8_ptr)
        .field("lowest_bit", common.u32_t)
        .field("highest_bit", common.u32_t)
        .field("pages", common.u32_t)
        .field("inuse_pages", common.u32_t)
        .field("bdev", bdev_ptr)
        .field("swap_file", file_ptr)
        .build(reg);

    reg.define_const("SWP_USED", SWP_USED as i64);
    reg.define_const("SWP_WRITEOK", SWP_WRITEOK as i64);
    reg.define_const("MAX_SWAPFILES", MAX_SWAPFILES as i64);

    SwapTypes { swap_info_struct }
}

/// Swap registry: the `swap_info` pointer array and `nr_swapfiles`.
#[derive(Debug, Clone)]
pub struct SwapState {
    /// `swap_info[MAX_SWAPFILES]` array address.
    pub swap_info: u64,
    /// `nr_swapfiles` global address.
    pub nr_swapfiles: u64,
    /// Created descriptors.
    pub areas: Vec<u64>,
}

/// Create the `swap_info` global array.
pub fn create_swap_state(kb: &mut KernelBuilder, st: &SwapTypes) -> SwapState {
    let ptr = kb.types.pointer_to(st.swap_info_struct);
    let arr = kb.types.array_of(ptr, MAX_SWAPFILES);
    let swap_info = kb.alloc_global("swap_info", arr);
    let nr = kb.alloc_global("nr_swapfiles", kb.common.int_t);
    SwapState {
        swap_info,
        nr_swapfiles: nr,
        areas: Vec::new(),
    }
}

/// Register a swap area of `pages` pages with `inuse` in use.
pub fn create_swap_area(
    kb: &mut KernelBuilder,
    st: &SwapTypes,
    state: &mut SwapState,
    prio: i64,
    pages: u64,
    inuse: u64,
    bdev: u64,
) -> u64 {
    let idx = state.areas.len() as u64;
    assert!(idx < MAX_SWAPFILES);
    let si = kb.alloc(st.swap_info_struct);
    // The swap_map: one byte refcount per slot.
    let map = kb.alloc_pagedata(pages.max(1));
    for i in 0..inuse {
        kb.mem.write(map + i, &[1]);
    }
    {
        let mut w = kb.obj(si, st.swap_info_struct);
        w.set("flags", SWP_USED | SWP_WRITEOK).unwrap();
        w.set_i64("prio", prio).unwrap();
        w.set_i64("type", idx as i64).unwrap();
        w.set("max", pages).unwrap();
        w.set("swap_map", map).unwrap();
        w.set("lowest_bit", 1).unwrap();
        w.set("highest_bit", pages.saturating_sub(1)).unwrap();
        w.set("pages", pages).unwrap();
        w.set("inuse_pages", inuse).unwrap();
        w.set("bdev", bdev).unwrap();
    }
    kb.mem.write_uint(state.swap_info + idx * 8, 8, si);
    state.areas.push(si);
    let n = state.areas.len() as u64;
    kb.mem.write_uint(state.nr_swapfiles, 4, n);
    si
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_info_array_holds_descriptors() {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let st = register_types(&mut kb.types, &common);
        let mut state = create_swap_state(&mut kb, &st);
        let a = create_swap_area(&mut kb, &st, &mut state, -2, 1024, 100, 0);
        let b = create_swap_area(&mut kb, &st, &mut state, -3, 2048, 0, 0);
        assert_eq!(kb.mem.read_uint(state.swap_info, 8).unwrap(), a);
        assert_eq!(kb.mem.read_uint(state.swap_info + 8, 8).unwrap(), b);
        assert_eq!(kb.mem.read_uint(state.nr_swapfiles, 4).unwrap(), 2);
        // swap_map bytes reflect inuse.
        let (map_off, _) = kb
            .types
            .field_path(st.swap_info_struct, "swap_map")
            .unwrap();
        let map = kb.mem.read_uint(a + map_off, 8).unwrap();
        assert_eq!(kb.mem.read_uint(map, 1).unwrap(), 1);
        assert_eq!(kb.mem.read_uint(map + 100, 1).unwrap(), 0);
    }
}
