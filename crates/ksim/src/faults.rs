//! Seedable fault injection: the known-positive corpus for `kcheck`.
//!
//! Each [`FaultKind`] plants one specific, realistic corruption into a
//! built [`Workload`] image — a botched `list_del`, a flipped rb color, a
//! poisoned maple pivot, a dangling enode, a stray bitmap bit — the states
//! a kernel with a memory-safety bug actually reaches. Victims are chosen
//! with a seeded RNG so the corpus covers different objects per seed while
//! staying reproducible; [`InjectedFault::class`] names the checker class
//! that must flag it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::Workload;
use crate::{maple, structops};

/// Poison byte pattern (`POISON_FREE`, repeated): the classic slab-poison
/// value a use-after-free read surfaces.
pub const POISON_PIVOT: u64 = 0x6b6b_6b6b_6b6b_6b6b;

/// A 256-aligned address no page is mapped at — the dangling-enode target.
const DANGLING_NODE: u64 = 0xdead_0000_0000;

/// One injectable corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Broken `list_del`: the predecessor skips a node whose neighbours
    /// still point at it.
    ListSnip,
    /// A node's `next` rewired to an earlier node — a cycle that bypasses
    /// the list head.
    ListCrossLink,
    /// A black rb-node recolored red above a red child (red-red pair).
    RbColorSwap,
    /// An rb-node's stored parent pointer zeroed.
    RbParentCorrupt,
    /// A maple leaf's first pivot overwritten with slab poison.
    MaplePivotCorrupt,
    /// An internal maple slot rewired to an unmapped (freed) node.
    MapleEnodeDangle,
    /// An xarray slot overwritten with a small node-tagged garbage value.
    XarraySlotGarbage,
    /// An `open_fds` bit set for a NULL fd slot.
    FdBitmapMismatch,
    /// A file refcount blown far past any plausible value.
    RefcountAbsurd,
    /// A task's `tasks` list node overwritten with slab poison while its
    /// neighbours still link to it — use-after-free on a list.
    ListNodePoison,
    /// An rb child pointer rewired to an unmapped (freed) node.
    RbNodeDangle,
    /// An open file's refcount dropped to zero — the underflow that
    /// precedes a file use-after-free.
    RefcountZero,
    /// A task detached from its `struct pid` without clearing the
    /// back-link state: `thread_pid` goes stale while the pid's task
    /// hlist still names the task.
    PidLinkStale,
}

/// Every fault in the corpus, in a stable order.
pub const ALL_FAULTS: [FaultKind; 13] = [
    FaultKind::ListSnip,
    FaultKind::ListCrossLink,
    FaultKind::RbColorSwap,
    FaultKind::RbParentCorrupt,
    FaultKind::MaplePivotCorrupt,
    FaultKind::MapleEnodeDangle,
    FaultKind::XarraySlotGarbage,
    FaultKind::FdBitmapMismatch,
    FaultKind::RefcountAbsurd,
    FaultKind::ListNodePoison,
    FaultKind::RbNodeDangle,
    FaultKind::RefcountZero,
    FaultKind::PidLinkStale,
];

impl FaultKind {
    /// The checker class that must flag this fault (matches
    /// `kcheck::ViolationKind::class`).
    pub fn class(self) -> &'static str {
        match self {
            FaultKind::ListSnip | FaultKind::ListCrossLink | FaultKind::ListNodePoison => "list",
            FaultKind::RbColorSwap | FaultKind::RbParentCorrupt | FaultKind::RbNodeDangle => {
                "rbtree"
            }
            FaultKind::MaplePivotCorrupt | FaultKind::MapleEnodeDangle => "maple",
            FaultKind::XarraySlotGarbage => "xarray",
            FaultKind::FdBitmapMismatch => "fdtable",
            FaultKind::RefcountAbsurd | FaultKind::RefcountZero => "refcount",
            FaultKind::PidLinkStale => "pid",
        }
    }

    /// Stable corpus name, the serialized form in a
    /// [`crate::corpus::ScenarioSpec`].
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ListSnip => "list-snip",
            FaultKind::ListCrossLink => "list-cross-link",
            FaultKind::RbColorSwap => "rb-color-swap",
            FaultKind::RbParentCorrupt => "rb-parent-corrupt",
            FaultKind::MaplePivotCorrupt => "maple-pivot-corrupt",
            FaultKind::MapleEnodeDangle => "maple-enode-dangle",
            FaultKind::XarraySlotGarbage => "xarray-slot-garbage",
            FaultKind::FdBitmapMismatch => "fd-bitmap-mismatch",
            FaultKind::RefcountAbsurd => "refcount-absurd",
            FaultKind::ListNodePoison => "list-node-poison",
            FaultKind::RbNodeDangle => "rb-node-dangle",
            FaultKind::RefcountZero => "refcount-zero",
            FaultKind::PidLinkStale => "pid-link-stale",
        }
    }

    /// Inverse of [`FaultKind::name`].
    pub fn from_name(name: &str) -> Option<FaultKind> {
        ALL_FAULTS.iter().copied().find(|k| k.name() == name)
    }
}

/// What an injection actually did, for test assertions and logs.
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// The corruption planted.
    pub kind: FaultKind,
    /// The address whose bytes were changed.
    pub addr: u64,
    /// Human-readable description of the mutation.
    pub note: String,
}

impl InjectedFault {
    /// The checker class that must flag this fault.
    pub fn class(&self) -> &'static str {
        self.kind.class()
    }
}

fn tasks_list_nodes(w: &Workload) -> (u64, Vec<u64>) {
    let (tasks_off, _) =
        w.kb.types
            .field_path(w.types.task.task_struct, "tasks")
            .unwrap();
    let head = w.roots.init_task + tasks_off;
    let nodes = structops::list_iter(&w.kb.mem, head);
    (head, nodes)
}

/// The top rb_node of a CPU's CFS timeline, preferring `start_cpu` but
/// falling back to any CPU with a non-empty tree.
fn timeline_top(w: &Workload, start_cpu: u64) -> u64 {
    let (timeline_off, _) =
        w.kb.types
            .field_path(w.types.sched.rq, "cfs.tasks_timeline.rb_root.rb_node")
            .unwrap();
    let ncpus = crate::sched::NR_CPUS;
    for i in 0..ncpus {
        let cpu = (start_cpu + i) % ncpus;
        let slot = w.roots.rq_base + cpu * w.roots.rq_size + timeline_off;
        let top = w.kb.mem.read_uint(slot, 8).unwrap();
        if top != 0 {
            return top;
        }
    }
    panic!("no CPU has a populated CFS timeline");
}

/// The `mm_mt` tree address of a leader process.
fn leader_tree(w: &Workload, idx: usize) -> u64 {
    let leader = w.roots.leaders[idx % w.roots.leaders.len()];
    let (mm_off, _) =
        w.kb.types
            .field_path(w.types.task.task_struct, "mm")
            .unwrap();
    let mm = w.kb.mem.read_uint(leader + mm_off, 8).unwrap();
    let (mt_off, _) =
        w.kb.types
            .field_path(w.types.mm.mm_struct, "mm_mt")
            .unwrap();
    mm + mt_off
}

/// First leaf node under a maple root enode (the builder always has one).
fn first_leaf(w: &Workload, root: u64) -> u64 {
    let mut enode = root;
    while !maple::ma_is_leaf(maple::mte_node_type(enode)) {
        let node = maple::mte_to_node(enode);
        let slot0 = node + 8 + 8 * (maple::MAPLE_ARANGE64_SLOTS - 1);
        enode = w.kb.mem.read_uint(slot0, 8).unwrap();
    }
    maple::mte_to_node(enode)
}

/// Inject `kind` into the workload image, choosing the victim object with
/// the seeded RNG. The image stays fully mapped (faults rewire pointers
/// and values, they do not unmap pages), matching how real corruption
/// looks to a stopped-kernel debugger.
///
/// # Panics
///
/// Panics if the workload lacks the structures the fault targets (the
/// default config always has them).
pub fn inject(w: &mut Workload, kind: FaultKind, seed: u64) -> InjectedFault {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfa01_75ed);
    match kind {
        FaultKind::ListSnip => {
            let (_, nodes) = tasks_list_nodes(w);
            let victim = nodes[rng.gen_range(0..nodes.len())];
            let prev = w.kb.mem.read_uint(victim + 8, 8).unwrap();
            let next = w.kb.mem.read_uint(victim, 8).unwrap();
            w.kb.mem.write_uint(prev, 8, next);
            InjectedFault {
                kind,
                addr: prev,
                note: format!("list_del half-done: {prev:#x}->next skips {victim:#x}"),
            }
        }
        FaultKind::ListCrossLink => {
            let (_, nodes) = tasks_list_nodes(w);
            let i = rng.gen_range(1..nodes.len());
            let j = rng.gen_range(0..i);
            w.kb.mem.write_uint(nodes[i], 8, nodes[j]);
            InjectedFault {
                kind,
                addr: nodes[i],
                note: format!(
                    "cross-link: {:#x}->next rewired back to {:#x}",
                    nodes[i], nodes[j]
                ),
            }
        }
        FaultKind::RbColorSwap => {
            let top = timeline_top(w, seed % crate::sched::NR_CPUS);
            let reds: Vec<u64> = structops::rb_inorder(&w.kb.mem, top)
                .into_iter()
                .filter(|&n| {
                    structops::rb_color(&w.kb.mem, n) == structops::RB_RED
                        && structops::rb_parent(&w.kb.mem, n) != 0
                })
                .collect();
            let child = reds[rng.gen_range(0..reds.len())];
            let parent = structops::rb_parent(&w.kb.mem, child);
            let pc = w.kb.mem.read_uint(parent, 8).unwrap();
            w.kb.mem.write_uint(parent, 8, pc & !1); // black -> red
            InjectedFault {
                kind,
                addr: parent,
                note: format!("recolored {parent:#x} red above red child {child:#x}"),
            }
        }
        FaultKind::RbParentCorrupt => {
            let top = timeline_top(w, seed % crate::sched::NR_CPUS);
            let inner: Vec<u64> = structops::rb_inorder(&w.kb.mem, top)
                .into_iter()
                .filter(|&n| structops::rb_parent(&w.kb.mem, n) != 0)
                .collect();
            let victim = inner[rng.gen_range(0..inner.len())];
            let pc = w.kb.mem.read_uint(victim, 8).unwrap();
            w.kb.mem.write_uint(victim, 8, pc & 3); // keep color, zero parent
            InjectedFault {
                kind,
                addr: victim,
                note: format!("zeroed stored parent of rb node {victim:#x}"),
            }
        }
        FaultKind::MaplePivotCorrupt => {
            let tree = leader_tree(w, rng.gen_range(0..w.roots.leaders.len()));
            let (root_off, _) =
                w.kb.types
                    .field_path(w.types.maple.maple_tree, "ma_root")
                    .unwrap();
            let root = w.kb.mem.read_uint(tree + root_off, 8).unwrap();
            assert!(maple::xa_is_node(root), "expected a multi-node tree");
            let leaf = first_leaf(w, root);
            w.kb.mem.write_uint(leaf + 8, 8, POISON_PIVOT);
            InjectedFault {
                kind,
                addr: leaf + 8,
                note: format!("poisoned pivot[0] of leaf {leaf:#x}"),
            }
        }
        FaultKind::MapleEnodeDangle => {
            let tree = leader_tree(w, rng.gen_range(0..w.roots.leaders.len()));
            let (root_off, _) =
                w.kb.types
                    .field_path(w.types.maple.maple_tree, "ma_root")
                    .unwrap();
            let root = w.kb.mem.read_uint(tree + root_off, 8).unwrap();
            let dangling = maple::mt_mk_node(DANGLING_NODE, maple::MapleType::Leaf64);
            let addr = if maple::xa_is_node(root) && !maple::ma_is_leaf(maple::mte_node_type(root))
            {
                // Rewire the internal root's slot[0] to the freed node.
                let node = maple::mte_to_node(root);
                node + 8 + 8 * (maple::MAPLE_ARANGE64_SLOTS - 1)
            } else {
                // Single-level tree: dangle the root itself.
                tree + root_off
            };
            w.kb.mem.write_uint(addr, 8, dangling);
            InjectedFault {
                kind,
                addr,
                note: format!("slot at {addr:#x} rewired to freed node {DANGLING_NODE:#x}"),
            }
        }
        FaultKind::XarraySlotGarbage => {
            let file = w.roots.test_txt_file;
            let (map_off, _) =
                w.kb.types
                    .field_path(w.types.vfs.file, "f_mapping")
                    .unwrap();
            let mapping = w.kb.mem.read_uint(file + map_off, 8).unwrap();
            let (ip_off, _) =
                w.kb.types
                    .field_path(w.types.vfs.address_space, "i_pages")
                    .unwrap();
            let (head_off, _) =
                w.kb.types
                    .field_path(w.types.vfs.address_space, "i_pages.xa_head")
                    .unwrap();
            let head = w.kb.mem.read_uint(mapping + head_off, 8).unwrap();
            let addr = if head & 3 == 2 && head > 4096 {
                let node = head & !3;
                let def = w.kb.types.struct_def(w.types.page.xa_node).unwrap();
                let slots_off = def.field("slots").unwrap().offset;
                node + slots_off + 8 * rng.gen_range(0..64u64)
            } else {
                mapping + ip_off // degenerate cache: garbage the head itself
            };
            w.kb.mem.write_uint(addr, 8, 6); // node-tagged, implausibly small
            InjectedFault {
                kind,
                addr,
                note: format!("xarray slot at {addr:#x} overwritten with garbage 0x6"),
            }
        }
        FaultKind::FdBitmapMismatch => {
            let leader = w.roots.leaders[rng.gen_range(0..w.roots.leaders.len())];
            let (files_off, _) =
                w.kb.types
                    .field_path(w.types.task.task_struct, "files")
                    .unwrap();
            let files = w.kb.mem.read_uint(leader + files_off, 8).unwrap();
            let (bits_off, _) =
                w.kb.types
                    .field_path(w.types.fd.files_struct, "open_fds_init")
                    .unwrap();
            let bits = w.kb.mem.read_uint(files + bits_off, 8).unwrap();
            // Claim a descriptor that was never opened.
            let mut bit = rng.gen_range(0..64u64);
            while bits >> bit & 1 == 1 {
                bit = (bit + 1) % 64;
            }
            w.kb.mem.write_uint(files + bits_off, 8, bits | 1 << bit);
            InjectedFault {
                kind,
                addr: files + bits_off,
                note: format!("open_fds bit {bit} set with fd[{bit}] NULL"),
            }
        }
        FaultKind::RefcountAbsurd => {
            let leader = w.roots.leaders[rng.gen_range(0..w.roots.leaders.len())];
            let (files_off, _) =
                w.kb.types
                    .field_path(w.types.task.task_struct, "files")
                    .unwrap();
            let files = w.kb.mem.read_uint(leader + files_off, 8).unwrap();
            let open = crate::fdtable::open_files(&w.kb, &w.types.fd, files);
            let file = open[rng.gen_range(0..open.len())];
            let (fc_off, _) =
                w.kb.types
                    .field_path(w.types.vfs.file, "f_count.counter")
                    .unwrap();
            w.kb.mem.write_uint(file + fc_off, 8, 1 << 44);
            InjectedFault {
                kind,
                addr: file + fc_off,
                note: format!("f_count of {file:#x} blown to 2^44"),
            }
        }
        FaultKind::ListNodePoison => {
            // kmem_cache_free'd task_struct still on the global list: its
            // list_head reads back slab poison, the neighbours' links are
            // untouched — the canonical list use-after-free.
            let (_, nodes) = tasks_list_nodes(w);
            let victim = nodes[rng.gen_range(0..nodes.len())];
            w.kb.mem.write(victim, &[0x6b; 16]);
            InjectedFault {
                kind,
                addr: victim,
                note: format!("list node {victim:#x} poisoned (freed while linked)"),
            }
        }
        FaultKind::RbNodeDangle => {
            let top = timeline_top(w, seed % crate::sched::NR_CPUS);
            let nodes = structops::rb_inorder(&w.kb.mem, top);
            let victim = nodes[rng.gen_range(0..nodes.len())];
            // rb_left lives at offset 16 within rb_node.
            w.kb.mem.write_uint(victim + 16, 8, DANGLING_NODE);
            InjectedFault {
                kind,
                addr: victim + 16,
                note: format!("rb_left of {victim:#x} rewired to freed node {DANGLING_NODE:#x}"),
            }
        }
        FaultKind::RefcountZero => {
            let leader = w.roots.leaders[rng.gen_range(0..w.roots.leaders.len())];
            let (files_off, _) =
                w.kb.types
                    .field_path(w.types.task.task_struct, "files")
                    .unwrap();
            let files = w.kb.mem.read_uint(leader + files_off, 8).unwrap();
            let open = crate::fdtable::open_files(&w.kb, &w.types.fd, files);
            let file = open[rng.gen_range(0..open.len())];
            let (fc_off, _) =
                w.kb.types
                    .field_path(w.types.vfs.file, "f_count.counter")
                    .unwrap();
            w.kb.mem.write_uint(file + fc_off, 8, 0);
            InjectedFault {
                kind,
                addr: file + fc_off,
                note: format!("f_count of {file:#x} dropped to 0 while the fd stays open"),
            }
        }
        FaultKind::PidLinkStale => {
            // detach_pid ran on a recycled task without fixing the hash
            // state: some pid's task hlist still names the task, but the
            // task's thread_pid was already redirected elsewhere.
            let table = w.kb.symbols.lookup("pid_hash").unwrap().addr;
            let (chain_off, _) =
                w.kb.types
                    .field_path(w.types.pid.pid, "numbers[0].pid_chain")
                    .unwrap();
            let (tasks0_off, _) = w.kb.types.field_path(w.types.pid.pid, "tasks[0]").unwrap();
            let (link_off, _) =
                w.kb.types
                    .field_path(w.types.task.task_struct, "pid_links[0]")
                    .unwrap();
            let (tp_off, _) =
                w.kb.types
                    .field_path(w.types.task.task_struct, "thread_pid")
                    .unwrap();
            let mut pids = Vec::new();
            for bucket in 0..crate::pid::PID_HASH_SIZE {
                for chain in structops::hlist_iter(&w.kb.mem, table + bucket * 8) {
                    pids.push(structops::container_of(chain, chain_off));
                }
            }
            pids.sort_unstable(); // hash order varies with population; sort for per-seed stability
            let pid = pids[rng.gen_range(0..pids.len())];
            let link = structops::hlist_iter(&w.kb.mem, pid + tasks0_off)[0];
            let task = structops::container_of(link, link_off);
            w.kb.mem.write_uint(task + tp_off, 8, 0);
            InjectedFault {
                kind,
                addr: task + tp_off,
                note: format!(
                    "task {task:#x} thread_pid cleared while pid {pid:#x} still links it"
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{self, WorkloadConfig};

    #[test]
    fn every_fault_injects_and_reports_its_class() {
        for (i, kind) in ALL_FAULTS.iter().enumerate() {
            let mut w = workload::build(&WorkloadConfig::default());
            let f = inject(&mut w, *kind, i as u64);
            assert_eq!(f.kind, *kind);
            assert!(!f.note.is_empty());
            assert!(!f.class().is_empty());
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        for kind in [FaultKind::ListSnip, FaultKind::MaplePivotCorrupt] {
            let mut a = workload::build(&WorkloadConfig::default());
            let mut b = workload::build(&WorkloadConfig::default());
            let fa = inject(&mut a, kind, 7);
            let fb = inject(&mut b, kind, 7);
            assert_eq!(fa.addr, fb.addr);
        }
    }

    #[test]
    fn list_snip_leaves_backward_chain_intact() {
        let mut w = workload::build(&WorkloadConfig::default());
        let f = inject(&mut w, FaultKind::ListSnip, 3);
        // The forward walk terminates (shorter), the prev chain still
        // reaches every node.
        let (tasks_off, _) =
            w.kb.types
                .field_path(w.types.task.task_struct, "tasks")
                .unwrap();
        let head = w.roots.init_task + tasks_off;
        let fwd = structops::list_iter(&w.kb.mem, head);
        assert_eq!(fwd.len() + 2, w.roots.all_tasks.len());
        assert!(f.addr != 0);
    }
}
