//! The evaluation workload: a fully populated kernel image.
//!
//! The paper's performance evaluation (§5.4) runs a ~500-LoC workload that
//! "creates five processes (each process creates two threads), with each
//! thread repeatedly calling the operating system for IPCs, mapping/
//! unmapping files and anonymous pages, etc.", then plots every Table 2
//! figure against the resulting state. This module builds the equivalent
//! state deterministically: same population, same connectivity, seeded
//! randomness for sizes and counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::image::{KernelBuilder, KernelImage};
use crate::{
    block, buddy, fdtable, ipc, irq, kobject, maple, mm, net, pagecache, pid, pipe, rcu, rmap,
    sched, signals, slab, structops, swap, tasks, timers, vfs, workqueue,
};

/// Type handles for every registered subsystem.
#[derive(Debug, Clone, Copy)]
pub struct AllTypes {
    /// Task / process tree types.
    pub task: tasks::TaskTypes,
    /// Scheduler types.
    pub sched: sched::SchedTypes,
    /// Maple tree types.
    pub maple: maple::MapleTypes,
    /// Address-space types.
    pub mm: mm::MmTypes,
    /// VFS types.
    pub vfs: vfs::VfsTypes,
    /// fd-table types.
    pub fd: fdtable::FdTypes,
    /// Page / xarray types.
    pub page: pagecache::PageTypes,
    /// Buddy types.
    pub buddy: buddy::BuddyTypes,
    /// SLUB types.
    pub slab: slab::SlabTypes,
    /// Signal types.
    pub signal: signals::SignalTypes,
    /// PID types.
    pub pid: pid::PidTypes,
    /// IRQ types.
    pub irq: irq::IrqTypes,
    /// Timer types.
    pub timer: timers::TimerTypes,
    /// Workqueue types.
    pub wq: workqueue::WqTypes,
    /// Driver-model types.
    pub kobj: kobject::KobjTypes,
    /// Block types.
    pub block: block::BlockTypes,
    /// Reverse-map types.
    pub rmap: rmap::RmapTypes,
    /// Swap types.
    pub swap: swap::SwapTypes,
    /// IPC types.
    pub ipc: ipc::IpcTypes,
    /// Pipe types.
    pub pipe: pipe::PipeTypes,
    /// Net types.
    pub net: net::NetTypes,
    /// RCU types.
    pub rcu: rcu::RcuTypes,
}

/// Register every subsystem's types in dependency order.
pub fn register_all(kb: &mut KernelBuilder) -> AllTypes {
    let common = kb.common;
    let task = tasks::register_types(&mut kb.types, &common);
    let sched_t = sched::register_types(&mut kb.types, &common);
    let maple_t = maple::register_types(&mut kb.types, &common);
    let mm_t = mm::register_types(&mut kb.types, &common);
    let vfs_t = vfs::register_types(&mut kb.types, &common);
    let fd_t = fdtable::register_types(&mut kb.types, &common);
    let page_t = pagecache::register_types(&mut kb.types, &common);
    let buddy_t = buddy::register_types(&mut kb.types, &common);
    let slab_t = slab::register_types(&mut kb.types, &common);
    let signal_t = signals::register_types(&mut kb.types, &common);
    let pid_t = pid::register_types(&mut kb.types, &common);
    let irq_t = irq::register_types(&mut kb.types, &common);
    let timer_t = timers::register_types(&mut kb.types, &common);
    let wq_t = workqueue::register_types(&mut kb.types, &common);
    let kobj_t = kobject::register_types(&mut kb.types, &common);
    let block_t = block::register_types(&mut kb.types, &common);
    let rmap_t = rmap::register_types(&mut kb.types, &common);
    let swap_t = swap::register_types(&mut kb.types, &common);
    let ipc_t = ipc::register_types(&mut kb.types, &common);
    let pipe_t = pipe::register_types(&mut kb.types, &common);
    let net_t = net::register_types(&mut kb.types, &common);
    let rcu_t = rcu::register_types(&mut kb.types, &common);
    // Casts in debugger expressions need pointer types pre-interned (the
    // evaluator cannot grow the shared registry).
    kb.types.ensure_pointers();
    AllTypes {
        task,
        sched: sched_t,
        maple: maple_t,
        mm: mm_t,
        vfs: vfs_t,
        fd: fd_t,
        page: page_t,
        buddy: buddy_t,
        slab: slab_t,
        signal: signal_t,
        pid: pid_t,
        irq: irq_t,
        timer: timer_t,
        wq: wq_t,
        kobj: kobj_t,
        block: block_t,
        rmap: rmap_t,
        swap: swap_t,
        ipc: ipc_t,
        pipe: pipe_t,
        net: net_t,
        rcu: rcu_t,
    }
}

/// Knobs for the workload generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// User processes (the paper uses 5).
    pub processes: usize,
    /// Threads per process beyond the leader (the paper uses 2 threads
    /// total, i.e. 1 extra).
    pub extra_threads: usize,
    /// Regular files each process opens.
    pub files_per_process: usize,
    /// Page-cache pages per file.
    pub pages_per_file: usize,
    /// Anonymous mappings per process.
    pub anon_vmas: usize,
    /// Kernel threads (kworkers etc.).
    pub kthreads: usize,
    /// RNG seed (determinism for tests and benches).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            processes: 5,
            extra_threads: 1,
            files_per_process: 3,
            pages_per_file: 8,
            anon_vmas: 4,
            kthreads: 6,
            seed: 0x5eed,
        }
    }
}

/// Addresses of the interesting roots in the built image.
#[derive(Debug, Clone, Default)]
pub struct WorkloadRoots {
    /// `init_task` (swapper, pid 0).
    pub init_task: u64,
    /// All task addresses (incl. init_task), creation order.
    pub all_tasks: Vec<u64>,
    /// User thread-group leaders.
    pub leaders: Vec<u64>,
    /// `runqueues` info.
    pub rq_base: u64,
    /// One `struct rq` size.
    pub rq_size: u64,
    /// Open regular files (all processes pooled).
    pub files: Vec<u64>,
    /// The "test.txt" file used by the Dirty Pipe scenario.
    pub test_txt_file: u64,
    /// All page-cache page addresses.
    pub pages: Vec<u64>,
    /// Pipes (pipe_inode_info addresses).
    pub pipes: Vec<u64>,
    /// Sockets.
    pub sockets: Vec<u64>,
    /// Superblocks.
    pub super_blocks: Vec<u64>,
    /// The built disk.
    pub disk: Option<block::BuiltDisk>,
}

/// The fully built workload: builder (still mutable for scenarios),
/// registered types, and root addresses.
pub struct Workload {
    /// The kernel builder holding the image.
    pub kb: KernelBuilder,
    /// All registered type handles.
    pub types: AllTypes,
    /// Root object addresses.
    pub roots: WorkloadRoots,
    /// The config this workload was built from (carried so a wire
    /// capture can embed it and a replay can rebuild the debug info).
    pub cfg: WorkloadConfig,
}

impl Workload {
    /// Freeze into an immutable [`KernelImage`].
    pub fn finish(self) -> (KernelImage, AllTypes, WorkloadRoots) {
        (self.kb.finish(), self.types, self.roots)
    }
}

/// Rebuild only the *debug info* of a workload: the type registry,
/// symbol table, and root addresses — with an **empty** memory image.
///
/// This is what a replay session attaches to: every type and symbol a
/// live session of the same config would know (the build pass interns
/// types beyond [`register_all`], so the full build must run), but not
/// one byte of target memory — any read that escapes the wire capture
/// faults instead of silently hitting the image.
pub fn debug_info(cfg: &WorkloadConfig) -> (KernelImage, AllTypes, WorkloadRoots) {
    let (mut img, types, roots) = build(cfg).finish();
    img.mem = kmem::Mem::new();
    (img, types, roots)
}

/// Build the evaluation workload.
pub fn build(cfg: &WorkloadConfig) -> Workload {
    let mut kb = KernelBuilder::new();
    let t = register_all(&mut kb);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut roots = WorkloadRoots::default();
    let common = kb.common;

    // --- Global infrastructure -------------------------------------------
    let rqs = sched::create_runqueues(&mut kb, &t.sched);
    roots.rq_base = rqs.base;
    roots.rq_size = rqs.rq_size;
    let mut pid_hash = pid::create_pid_hash(&mut kb, &common);
    let mut vfs_state = vfs::create_vfs_state(&mut kb, &common);
    let mut pa = pagecache::PageAllocator::new(&kb, &t.page);
    let timer_state = timers::create_timer_bases(&mut kb, &t.timer, 4_295_100_000);
    let wq_head = workqueue::create_wq_state(&mut kb, &common);
    let mut slab_state = slab::create_slab_state(&mut kb, &common);
    let mut swap_state = swap::create_swap_state(&mut kb, &t.swap);
    let mut ipc_state = ipc::create_ipc_state(&mut kb, &t.ipc);
    let rcu_state = rcu::create_rcu_state(&mut kb, &t.rcu);
    let irq_state = irq::create_irq_table(&mut kb, &t.irq);

    // --- Block + filesystems ---------------------------------------------
    let disk = block::create_disk(&mut kb, &t.block, "sda", 8, 2);
    let sb_root = vfs::create_super_block(
        &mut kb,
        &t.vfs,
        &mut vfs_state,
        "ext4",
        "sda1",
        disk.parts[0],
    );
    block::attach_super(&mut kb, &t.block, disk.parts[0], sb_root);
    let sb_tmp = vfs::create_super_block(&mut kb, &t.vfs, &mut vfs_state, "tmpfs", "tmpfs", 0);
    let sb_proc = vfs::create_super_block(&mut kb, &t.vfs, &mut vfs_state, "proc", "proc", 0);
    roots.super_blocks = vec![sb_root, sb_tmp, sb_proc];
    roots.disk = Some(disk);

    let root_ino = vfs::create_inode(&mut kb, &t.vfs, sb_root, 2, vfs::S_IFDIR | 0o755, 4096);
    let root_dentry = vfs::create_dentry(&mut kb, &t.vfs, "/", root_ino, 0, sb_root);
    kb.obj(sb_root, t.vfs.super_block)
        .set("s_root", root_dentry)
        .unwrap();
    let fs_struct = vfs::create_fs_struct(&mut kb, &t.vfs, root_dentry);

    // --- Device model ------------------------------------------------------
    {
        let kset = kobject::create_kset(&mut kb, &t.kobj, "devices", "devices_kset");
        let bus = kobject::create_bus(&mut kb, &t.kobj, "pci");
        let sd_drv = kobject::create_driver(&mut kb, &t.kobj, "sd", bus);
        let nic_drv = kobject::create_driver(&mut kb, &t.kobj, "e1000e", bus);
        let host = kobject::create_device(&mut kb, &t.kobj, "pci0000:00", kset, bus, 0, 0);
        let _sda = kobject::create_device(&mut kb, &t.kobj, "0:0:0:0", kset, bus, sd_drv, host);
        let _nic =
            kobject::create_device(&mut kb, &t.kobj, "0000:00:1f.6", kset, bus, nic_drv, host);
    }

    // --- IRQ lines ----------------------------------------------------------
    irq::request_irq(
        &mut kb,
        &t.irq,
        &irq_state,
        1,
        &[("atkbd_interrupt", "i8042")],
    );
    irq::request_irq(
        &mut kb,
        &t.irq,
        &irq_state,
        11,
        &[("e1000_intr", "eth0"), ("usb_hcd_irq", "ehci_hcd")],
    );
    irq::request_irq(
        &mut kb,
        &t.irq,
        &irq_state,
        14,
        &[("ata_bmdma_interrupt", "ata_piix")],
    );

    // --- Timers --------------------------------------------------------------
    for (i, sym) in [
        "process_timeout",
        "delayed_work_timer_fn",
        "commit_timeout",
        "neigh_timer_handler",
        "tcp_keepalive_timer",
    ]
    .iter()
    .enumerate()
    {
        let cpu = (i % sched::NR_CPUS as usize) as u64;
        timers::add_timer(
            &mut kb,
            &t.timer,
            &timer_state,
            cpu,
            4_295_100_000 + 13 * (i as u64 + 1),
            sym,
        );
    }

    // --- Workqueues ------------------------------------------------------------
    workqueue::create_workqueue(
        &mut kb,
        &t.wq,
        wq_head,
        "mm_percpu_wq",
        &[
            workqueue::WorkItem::Delayed("vmstat_update", 4_295_100_040),
            workqueue::WorkItem::Plain("lru_add_drain_per_cpu"),
            workqueue::WorkItem::Delayed("vmstat_update", 4_295_100_080),
        ],
    );
    workqueue::create_workqueue(
        &mut kb,
        &t.wq,
        wq_head,
        "events",
        &[
            workqueue::WorkItem::Plain("flush_to_ldisc"),
            workqueue::WorkItem::Plain("console_callback"),
        ],
    );

    // --- Buddy, slab, swap -----------------------------------------------------
    buddy::create_buddy(&mut kb, &t.buddy, &t.page, &mut pa, 3);
    let task_size = kb.types.size_of(t.task.task_struct);
    slab::create_cache(
        &mut kb,
        &t.slab,
        &mut slab_state,
        "task_struct",
        task_size,
        2,
        12,
        9,
    );
    slab::create_cache(
        &mut kb,
        &t.slab,
        &mut slab_state,
        "maple_node",
        256,
        2,
        16,
        11,
    );
    slab::create_cache(
        &mut kb,
        &t.slab,
        &mut slab_state,
        "kmalloc-64",
        64,
        3,
        64,
        40,
    );
    slab::create_cache(&mut kb, &t.slab, &mut slab_state, "dentry", 192, 2, 21, 15);
    swap::create_swap_area(
        &mut kb,
        &t.swap,
        &mut swap_state,
        -2,
        1 << 18,
        1 << 12,
        roots.disk.as_ref().unwrap().parts[1],
    );

    // --- init_task and kernel threads -------------------------------------------
    let init_task = kb.alloc_global("init_task", t.task.task_struct);
    tasks::init_task_at(
        &mut kb,
        &t.task,
        init_task,
        &tasks::TaskParams {
            pid: 0,
            tgid: 0,
            comm: "swapper/0".into(),
            flags: tasks::PF_KTHREAD,
            ..Default::default()
        },
    );
    roots.init_task = init_task;
    roots.all_tasks.push(init_task);
    pid::attach_pid(&mut kb, &t.pid, &t.task, &mut pid_hash, init_task, 0);

    let shared_sighand = signals::create_sighand(&mut kb, &t.signal, &[]);
    let kthread_signal = signals::create_signal(&mut kb, &t.signal, 1, &[]);
    let make_kthread =
        |kb: &mut KernelBuilder, pid_no: i32, comm: &str, hash: &mut pid::PidHash| {
            let task = tasks::create_task(
                kb,
                &t.task,
                &tasks::TaskParams {
                    pid: pid_no,
                    tgid: pid_no,
                    comm: comm.into(),
                    state: tasks::TASK_INTERRUPTIBLE,
                    flags: tasks::PF_KTHREAD,
                    prio: 120,
                    vruntime: 0,
                    cpu: (pid_no % 2),
                },
            );
            let mut w = kb.obj(task, t.task.task_struct);
            w.set("signal", kthread_signal).unwrap();
            w.set("sighand", shared_sighand).unwrap();
            drop(w);
            tasks::adopt(kb, &t.task, task, init_task);
            tasks::link_global(kb, &t.task, task, init_task);
            pid::attach_pid(kb, &t.pid, &t.task, hash, task, pid_no);
            task
        };
    let kthread_names = [
        "kthreadd",
        "rcu_sched",
        "kworker/0:1",
        "kworker/1:1",
        "ksoftirqd/0",
        "kswapd0",
        "migration/0",
        "migration/1",
    ];
    for (i, name) in kthread_names.iter().enumerate().take(cfg.kthreads) {
        let task = make_kthread(&mut kb, 2 + i as i32, name, &mut pid_hash);
        roots.all_tasks.push(task);
    }

    // --- User processes -----------------------------------------------------------
    let mut runnable: Vec<Vec<u64>> = vec![Vec::new(); sched::NR_CPUS as usize];
    let mut next_pid = 100i32;
    for p in 0..cfg.processes {
        let comm = format!("worker-{p}");
        let pid_no = next_pid;
        next_pid += 10;

        // Files: each process opens a few regular files with page cache.
        let mut file_objs = Vec::new();
        for fi in 0..cfg.files_per_process {
            let name = if p == 0 && fi == 0 {
                "test.txt".to_string()
            } else {
                format!("data-{p}-{fi}.bin")
            };
            let npages = rng.gen_range(1..=cfg.pages_per_file);
            let ino = vfs::create_inode(
                &mut kb,
                &t.vfs,
                sb_root,
                100 + (p * 16 + fi) as u64,
                vfs::S_IFREG | 0o644,
                (npages * 4096) as i64,
            );
            let dentry = vfs::create_dentry(&mut kb, &t.vfs, &name, ino, root_dentry, sb_root);
            let file =
                vfs::create_file(&mut kb, &t.vfs, dentry, vfs::FMODE_READ | vfs::FMODE_WRITE);
            // Populate the page cache xarray.
            let (i_data_off, _) = kb.types.field_path(t.vfs.inode, "i_data").unwrap();
            let (i_pages_off, _) = kb.types.field_path(t.vfs.address_space, "i_pages").unwrap();
            let mut entries = Vec::new();
            for idx in 0..npages {
                let (_, page) = pa.alloc_page(&mut kb, &t.page);
                let mut w = kb.obj(page, t.page.page);
                w.set("mapping", ino + i_data_off).unwrap();
                w.set("index", idx as u64).unwrap();
                w.set("flags", pagecache::PG_UPTODATE | pagecache::PG_LRU)
                    .unwrap();
                drop(w);
                entries.push((idx as u64, page));
                roots.pages.push(page);
            }
            pagecache::xa_store_many(&mut kb, &t.page, ino + i_data_off + i_pages_off, &entries);
            kb.obj(ino + i_data_off, t.vfs.address_space)
                .set("nrpages", entries.len() as u64)
                .unwrap();
            if p == 0 && fi == 0 {
                roots.test_txt_file = file;
            }
            file_objs.push(file);
            roots.files.push(file);
        }

        // A pipe per process (two file objects share one pipe_inode_info).
        let (_, pipe_page) = pa.alloc_page(&mut kb, &t.page);
        let pipe_obj = pipe::create_pipe(
            &mut kb,
            &t.pipe,
            &[pipe::PipeBufSpec {
                page: pipe_page,
                offset: 0,
                len: rng.gen_range(64..4096),
                flags: 0,
            }],
        );
        roots.pipes.push(pipe_obj);
        let pipe_ino = vfs::create_inode(
            &mut kb,
            &t.vfs,
            sb_tmp,
            9000 + p as u64,
            vfs::S_IFIFO | 0o600,
            0,
        );
        let pipe_dentry = vfs::create_dentry(&mut kb, &t.vfs, "pipe:", pipe_ino, 0, sb_tmp);
        let pipe_r = vfs::create_file(&mut kb, &t.vfs, pipe_dentry, vfs::FMODE_READ);
        let pipe_w = vfs::create_file(&mut kb, &t.vfs, pipe_dentry, vfs::FMODE_WRITE);
        for f in [pipe_r, pipe_w] {
            kb.obj(f, t.vfs.file).set("private_data", pipe_obj).unwrap();
        }

        // A socket per process.
        let sock = net::create_socket(
            &mut kb,
            &t.net,
            &net::SockSpec {
                daddr: 0x0a00_0002 + p as u32,
                saddr: 0x0a00_0001,
                dport: 443,
                sport: 40000 + p as u16,
                state: net::TCP_ESTABLISHED,
                // Process 2's connection is deliberately idle (both queues
                // empty) so Table 3's "shrink idle sockets" objective always
                // has a target; the rest queue random traffic.
                rx: if p == 2 {
                    vec![]
                } else {
                    (1..rng.gen_range(2..5))
                        .map(|_| rng.gen_range(66..1500))
                        .collect()
                },
                tx: if p == 2 {
                    vec![]
                } else {
                    (0..rng.gen_range(0..3))
                        .map(|_| rng.gen_range(66..1500))
                        .collect()
                },
            },
        );
        roots.sockets.push(sock);
        let sock_ino = vfs::create_inode(
            &mut kb,
            &t.vfs,
            sb_tmp,
            9500 + p as u64,
            vfs::S_IFSOCK | 0o777,
            0,
        );
        let sock_dentry = vfs::create_dentry(&mut kb, &t.vfs, "socket:", sock_ino, 0, sb_tmp);
        let sock_file = vfs::create_file(
            &mut kb,
            &t.vfs,
            sock_dentry,
            vfs::FMODE_READ | vfs::FMODE_WRITE,
        );
        kb.obj(sock_file, t.vfs.file)
            .set("private_data", sock)
            .unwrap();
        kb.obj(sock, t.net.socket).set("file", sock_file).unwrap();

        // fd table: files + pipe ends + socket.
        let mut fds = file_objs.clone();
        fds.push(pipe_r);
        fds.push(pipe_w);
        fds.push(sock_file);
        let files_struct = fdtable::create_files(&mut kb, &t.fd, &fds);

        // Address space with file-backed and anonymous mappings.
        let specs = mm::typical_vmas(&file_objs, cfg.anon_vmas);
        let leader = tasks::create_task(
            &mut kb,
            &t.task,
            &tasks::TaskParams {
                pid: pid_no,
                tgid: pid_no,
                comm: comm.clone(),
                state: if p % 2 == 0 {
                    tasks::TASK_RUNNING
                } else {
                    tasks::TASK_INTERRUPTIBLE
                },
                flags: 0,
                prio: 120,
                vruntime: rng.gen_range(1000..100_000),
                cpu: (p % 2) as i32,
            },
        );
        let built_mm = mm::create_mm(&mut kb, &t.mm, &t.maple, leader, &specs);

        // Reverse map for the anonymous VMAs.
        let anon_vmas: Vec<u64> = specs
            .iter()
            .zip(&built_mm.vmas)
            .filter(|(s, _)| s.file == 0)
            .map(|(_, v)| *v)
            .collect();
        if !anon_vmas.is_empty() {
            rmap::create_anon_vma(&mut kb, &t.rmap, t.mm.vm_area_struct, &anon_vmas);
        }

        // Signals: one custom handler + maybe one pending.
        let sighand = signals::create_sighand(
            &mut kb,
            &t.signal,
            &[(15, "worker_sigterm"), (17, "worker_sigchld")],
        );
        let pending: Vec<u64> = if p == 1 { vec![17] } else { vec![] };
        let signal =
            signals::create_signal(&mut kb, &t.signal, 1 + cfg.extra_threads as i64, &pending);

        {
            let mut w = kb.obj(leader, t.task.task_struct);
            w.set("mm", built_mm.mm).unwrap();
            w.set("active_mm", built_mm.mm).unwrap();
            w.set("files", files_struct).unwrap();
            w.set("fs", fs_struct).unwrap();
            w.set("signal", signal).unwrap();
            w.set("sighand", sighand).unwrap();
        }
        tasks::adopt(&mut kb, &t.task, leader, init_task);
        tasks::link_global(&mut kb, &t.task, leader, init_task);
        pid::attach_pid(&mut kb, &t.pid, &t.task, &mut pid_hash, leader, pid_no);
        roots.all_tasks.push(leader);
        roots.leaders.push(leader);
        if p % 2 == 0 {
            runnable[p % 2].push(leader);
        }

        // Extra threads share mm/files/signal.
        for th in 0..cfg.extra_threads {
            let tpid = pid_no + 1 + th as i32;
            let thread = tasks::create_task(
                &mut kb,
                &t.task,
                &tasks::TaskParams {
                    pid: tpid,
                    tgid: pid_no,
                    comm: comm.clone(),
                    state: tasks::TASK_RUNNING,
                    flags: 0,
                    prio: 120,
                    vruntime: rng.gen_range(1000..100_000),
                    cpu: ((p + th + 1) % 2) as i32,
                },
            );
            let mut w = kb.obj(thread, t.task.task_struct);
            w.set("mm", built_mm.mm).unwrap();
            w.set("active_mm", built_mm.mm).unwrap();
            w.set("files", files_struct).unwrap();
            w.set("fs", fs_struct).unwrap();
            w.set("signal", signal).unwrap();
            w.set("sighand", sighand).unwrap();
            drop(w);
            tasks::adopt(&mut kb, &t.task, thread, init_task);
            tasks::join_thread_group(&mut kb, &t.task, thread, leader);
            tasks::link_global(&mut kb, &t.task, thread, init_task);
            pid::attach_pid(&mut kb, &t.pid, &t.task, &mut pid_hash, thread, tpid);
            roots.all_tasks.push(thread);
            runnable[(p + th + 1) % 2].push(thread);
        }

        // IPC: every process gets a semaphore set; odd ones a message queue.
        ipc::create_sem_array(&mut kb, &t.ipc, &mut ipc_state, 0x6100 + p as i64, &[1, 0]);
        if p % 2 == 1 {
            ipc::create_msg_queue(
                &mut kb,
                &t.ipc,
                &mut ipc_state,
                0x7100 + p as i64,
                &[(1, 128), (2, 64)],
            );
        }
    }

    // Enqueue runnable tasks on their CPUs, sorted by vruntime.
    let (vr_off, _) = kb
        .types
        .field_path(t.task.task_struct, "se.vruntime")
        .unwrap();
    for (cpu, mut list) in runnable.into_iter().enumerate() {
        list.sort_by_key(|&task| kb.mem.read_uint(task + vr_off, 8).unwrap());
        sched::enqueue_fair(&mut kb, &t.sched, &t.task, &rqs, cpu as u64, &list);
    }

    // The `current_task` per-CPU pointer (collapsed to CPU 0's current):
    // a global pointer variable debuggers use as the anchor "what is
    // running now". Points at the first user leader.
    {
        let task_ptr_ty = {
            let task_ty = t.task.task_struct;
            kb.types.pointer_to(task_ty)
        };
        let cur = kb.alloc_global("current_task", task_ptr_ty);
        let first_leader = roots.leaders[0];
        kb.mem.write_uint(cur, 8, first_leader);
    }

    // RCU: a couple of innocuous pending callbacks.
    let h1 = kb.alloc(common.callback_head);
    rcu::call_rcu(&mut kb, &t.rcu, &rcu_state, 0, h1, "i_callback");
    let h2 = kb.alloc(common.callback_head);
    rcu::call_rcu(&mut kb, &t.rcu, &rcu_state, 1, h2, "file_free_rcu");

    // A tiny sanity pass: every task's global-list walk must terminate.
    let (tasks_off, _) = kb.types.field_path(t.task.task_struct, "tasks").unwrap();
    let n = structops::list_iter(&kb.mem, init_task + tasks_off).len();
    debug_assert_eq!(n + 1, roots.all_tasks.len());

    Workload {
        kb,
        types: t,
        roots,
        cfg: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_workload_population() {
        let w = build(&WorkloadConfig::default());
        // 1 swapper + 6 kthreads + 5 leaders + 5 threads = 17 tasks.
        assert_eq!(w.roots.all_tasks.len(), 17);
        assert_eq!(w.roots.leaders.len(), 5);
        assert_eq!(w.roots.files.len(), 15);
        assert_eq!(w.roots.pipes.len(), 5);
        assert_eq!(w.roots.sockets.len(), 5);
        assert!(w.roots.test_txt_file != 0);
        assert!(!w.roots.pages.is_empty());
        assert_eq!(w.roots.super_blocks.len(), 3);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = build(&WorkloadConfig::default());
        let b = build(&WorkloadConfig::default());
        assert_eq!(a.roots.all_tasks, b.roots.all_tasks);
        assert_eq!(a.roots.pages.len(), b.roots.pages.len());
        assert_eq!(a.kb.mem.mapped_pages(), b.kb.mem.mapped_pages());
    }

    #[test]
    fn init_task_symbol_resolves() {
        let w = build(&WorkloadConfig::default());
        let sym = w.kb.symbols.lookup("init_task").unwrap();
        assert_eq!(sym.addr, w.roots.init_task);
        // And comm reads back as swapper/0.
        let (comm_off, _) =
            w.kb.types
                .field_path(w.types.task.task_struct, "comm")
                .unwrap();
        assert_eq!(
            w.kb.mem
                .read_cstr(w.roots.init_task + comm_off, 16)
                .unwrap(),
            "swapper/0"
        );
    }

    #[test]
    fn threads_share_address_space() {
        let w = build(&WorkloadConfig::default());
        let (mm_off, _) =
            w.kb.types
                .field_path(w.types.task.task_struct, "mm")
                .unwrap();
        let leader = w.roots.leaders[0];
        let leader_mm = w.kb.mem.read_uint(leader + mm_off, 8).unwrap();
        assert_ne!(leader_mm, 0);
        // The next task created after a leader is its thread.
        let idx = w.roots.all_tasks.iter().position(|&t| t == leader).unwrap();
        let thread = w.roots.all_tasks[idx + 1];
        let thread_mm = w.kb.mem.read_uint(thread + mm_off, 8).unwrap();
        assert_eq!(leader_mm, thread_mm);
    }

    #[test]
    fn debug_info_has_types_and_symbols_but_no_memory() {
        let (img, _, roots) = debug_info(&WorkloadConfig::default());
        assert_eq!(img.mem.mapped_pages(), 0);
        assert!(img.symbols.lookup("init_task").is_some());
        assert!(img.types.find("task_struct").is_some());
        // Roots match a live build of the same config.
        let live = build(&WorkloadConfig::default());
        assert_eq!(roots.all_tasks, live.roots.all_tasks);
        assert_eq!(live.cfg, WorkloadConfig::default());
    }

    #[test]
    fn scaled_workload_grows() {
        let small = build(&WorkloadConfig {
            processes: 2,
            ..Default::default()
        });
        let big = build(&WorkloadConfig {
            processes: 10,
            ..Default::default()
        });
        assert!(big.roots.all_tasks.len() > small.roots.all_tasks.len());
        assert!(big.kb.mem.mapped_pages() > small.kb.mem.mapped_pages());
    }
}
