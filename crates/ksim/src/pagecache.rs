//! `struct page`, the vmemmap, and the page-cache xarray
//! (ULK Fig 15-1 "radix tree", Fig 16-2 file memory mapping, Dirty Pipe).
//!
//! Linux 6.1 stores the page cache in an **xarray**: a radix tree of
//! `xa_node`s with 64 slots each, whose internal-node pointers are tagged
//! with low-bit 2 — the same tagging discipline as the maple tree. Pages
//! themselves live in the vmemmap so `pfn_to_page` is pure arithmetic.

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::{KernelBuilder, VMEMMAP_BASE};

/// Slots per `xa_node` (`XA_CHUNK_SIZE`).
pub const XA_CHUNK_SIZE: u64 = 64;
/// Bits per xarray level (`XA_CHUNK_SHIFT`).
pub const XA_CHUNK_SHIFT: u64 = 6;

/// `page.flags` bits (positions mirror `enum pageflags`).
pub const PG_LOCKED: u64 = 1 << 0;
/// Page contains valid data.
pub const PG_UPTODATE: u64 = 1 << 2;
/// Dirty page.
pub const PG_DIRTY: u64 = 1 << 3;
/// Page is on an LRU list.
pub const PG_LRU: u64 = 1 << 4;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct PageTypes {
    /// `struct page` (64 bytes, vmemmap-resident).
    pub page: TypeId,
    /// `struct xa_node`.
    pub xa_node: TypeId,
}

/// Register page and xarray-node types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> PageTypes {
    let as_fwd = reg.declare_struct("address_space");
    let as_ptr = reg.pointer_to(as_fwd);

    let page = StructBuilder::new("page")
        .field("flags", common.u64_t)
        .field("lru", common.list_head)
        .field("mapping", as_ptr)
        .field("index", common.u64_t)
        .field("private", common.u64_t)
        .field("_mapcount", common.atomic)
        .field("_refcount", common.atomic)
        .field("memcg_data", common.u64_t)
        .build(reg);

    let xa_node_fwd = reg.declare_struct("xa_node");
    let xa_node_ptr = reg.pointer_to(xa_node_fwd);
    let xarray_fwd = reg.declare_struct("xarray");
    let xarray_ptr = reg.pointer_to(xarray_fwd);
    let slots = reg.array_of(common.void_ptr, XA_CHUNK_SIZE);
    let xa_node = StructBuilder::new("xa_node")
        .field("shift", common.u8_t)
        .field("offset", common.u8_t)
        .field("count", common.u8_t)
        .field("nr_values", common.u8_t)
        .field("parent", xa_node_ptr)
        .field("array", xarray_ptr)
        .field("private_list", common.list_head)
        .field("slots", slots)
        .build(reg);

    reg.define_const("XA_CHUNK_SIZE", XA_CHUNK_SIZE as i64);
    reg.define_const("PG_locked", 0);
    reg.define_const("PG_uptodate", 2);
    reg.define_const("PG_dirty", 3);
    reg.define_const("PG_lru", 4);

    PageTypes { page, xa_node }
}

/// Page-frame bookkeeping: hands out pfns and their `struct page`s.
#[derive(Debug)]
pub struct PageAllocator {
    next_pfn: u64,
    page_size: u64,
}

impl PageAllocator {
    /// Create an allocator starting at pfn 16 (skip low memory).
    pub fn new(kb: &KernelBuilder, pt: &PageTypes) -> Self {
        PageAllocator {
            next_pfn: 16,
            page_size: kb.types.size_of(pt.page),
        }
    }

    /// `pfn_to_page`: vmemmap arithmetic.
    pub fn pfn_to_page(&self, pfn: u64) -> u64 {
        VMEMMAP_BASE + pfn * self.page_size
    }

    /// `page_to_pfn`.
    pub fn page_to_pfn(&self, page: u64) -> u64 {
        (page - VMEMMAP_BASE) / self.page_size
    }

    /// Allocate one page frame: maps its `struct page` in the vmemmap and
    /// returns `(pfn, page_addr)`.
    pub fn alloc_page(&mut self, kb: &mut KernelBuilder, pt: &PageTypes) -> (u64, u64) {
        let pfn = self.next_pfn;
        self.next_pfn += 1;
        let addr = self.pfn_to_page(pfn);
        kb.mem.map(addr, self.page_size);
        let mut w = kb.obj(addr, pt.page);
        w.set("flags", PG_UPTODATE).unwrap();
        w.set_i64("_refcount.counter", 1).unwrap();
        w.set_i64("_mapcount.counter", -1).unwrap();
        (pfn, addr)
    }

    /// Reserve `n` consecutive pfns without initializing their pages
    /// (used by the buddy allocator for free blocks).
    pub fn reserve(&mut self, n: u64) -> u64 {
        let pfn = self.next_pfn;
        self.next_pfn += n;
        pfn
    }

    /// The size of one `struct page`.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }
}

/// Tag an `xa_node` pointer as an internal entry (kernel `xa_mk_node`).
pub fn xa_mk_node(node: u64) -> u64 {
    node | 2
}

/// Untag an internal entry (kernel `xa_to_node`).
pub fn xa_to_node(entry: u64) -> u64 {
    entry & !3
}

/// Whether an entry is an internal node pointer.
pub fn xa_is_node(entry: u64) -> bool {
    entry & 3 == 2 && entry > 4096
}

/// Populate an `xarray` at `xa_addr` with `entries[i] = (index, ptr)`.
///
/// Builds a real multi-level radix tree once any index exceeds one chunk.
/// Returns the addresses of all allocated `xa_node`s.
pub fn xa_store_many(
    kb: &mut KernelBuilder,
    pt: &PageTypes,
    xa_addr: u64,
    entries: &[(u64, u64)],
) -> Vec<u64> {
    let (head_off, _) = {
        let xarray = kb.types.find("xarray").expect("vfs types registered");
        kb.types.field_path(xarray, "xa_head").unwrap()
    };
    let mut nodes = Vec::new();
    if entries.is_empty() {
        kb.mem.write_uint(xa_addr + head_off, 8, 0);
        return nodes;
    }
    let max_index = entries.iter().map(|(i, _)| *i).max().unwrap();
    if max_index == 0 && entries.len() == 1 {
        // Single entry at index 0 is stored directly in the head.
        kb.mem.write_uint(xa_addr + head_off, 8, entries[0].1);
        return nodes;
    }

    // Number of levels needed.
    let mut levels = 1;
    while max_index >> (levels * XA_CHUNK_SHIFT) != 0 {
        levels += 1;
    }

    fn build(
        kb: &mut KernelBuilder,
        pt: &PageTypes,
        nodes: &mut Vec<u64>,
        entries: &[(u64, u64)],
        shift: u64,
        base: u64,
        offset_in_parent: u64,
    ) -> u64 {
        let node = kb.alloc(pt.xa_node);
        nodes.push(node);
        let mut count = 0u64;
        {
            let mut w = kb.obj(node, pt.xa_node);
            w.set("shift", shift).unwrap();
            w.set("offset", offset_in_parent).unwrap();
        }
        for slot in 0..XA_CHUNK_SIZE {
            let lo = base + (slot << shift);
            let hi = lo + (1u64 << shift) - 1;
            let sub: Vec<(u64, u64)> = entries
                .iter()
                .copied()
                .filter(|(i, _)| *i >= lo && *i <= hi)
                .collect();
            if sub.is_empty() {
                continue;
            }
            count += 1;
            let value = if shift == 0 {
                debug_assert_eq!(sub.len(), 1);
                sub[0].1
            } else {
                let child = build(kb, pt, nodes, &sub, shift - XA_CHUNK_SHIFT, lo, slot);
                xa_mk_node(child)
            };
            kb.obj(node, pt.xa_node)
                .set(&format!("slots[{slot}]"), value)
                .unwrap();
        }
        kb.obj(node, pt.xa_node).set("count", count).unwrap();
        node
    }

    let root_shift = (levels - 1) * XA_CHUNK_SHIFT;
    let root = build(kb, pt, &mut nodes, entries, root_shift, 0, 0);
    kb.mem.write_uint(xa_addr + head_off, 8, xa_mk_node(root));
    nodes
}

/// Look up `index` in the xarray at `xa_addr` by walking raw memory.
pub fn xa_load(kb: &KernelBuilder, pt: &PageTypes, xa_addr: u64, index: u64) -> u64 {
    let xarray_ty = kb.types.find("xarray").expect("vfs types registered");
    let (head_off, _) = kb.types.field_path(xarray_ty, "xa_head").unwrap();
    let head = kb.mem.read_uint(xa_addr + head_off, 8).unwrap();
    if head == 0 {
        return 0;
    }
    if !xa_is_node(head) {
        return if index == 0 { head } else { 0 };
    }
    let (shift_off, slots_off) = {
        let def = kb.types.struct_def(pt.xa_node).unwrap();
        (
            def.field("shift").unwrap().offset,
            def.field("slots").unwrap().offset,
        )
    };
    let mut node = xa_to_node(head);
    loop {
        let shift = kb.mem.read_uint(node + shift_off, 1).unwrap();
        let slot = (index >> shift) & (XA_CHUNK_SIZE - 1);
        let entry = kb.mem.read_uint(node + slots_off + 8 * slot, 8).unwrap();
        if shift == 0 || !xa_is_node(entry) {
            return if shift == 0 { entry } else { 0 };
        }
        node = xa_to_node(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs;

    fn setup() -> (KernelBuilder, PageTypes, vfs::VfsTypes) {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let vt = vfs::register_types(&mut kb.types, &common);
        let pt = register_types(&mut kb.types, &common);
        (kb, pt, vt)
    }

    #[test]
    fn page_struct_is_64_bytes() {
        let (kb, pt, _) = setup();
        assert_eq!(kb.types.size_of(pt.page), 64);
    }

    #[test]
    fn pfn_page_round_trip() {
        let (mut kb, pt, _) = setup();
        let mut pa = PageAllocator::new(&kb, &pt);
        let (pfn, page) = pa.alloc_page(&mut kb, &pt);
        assert_eq!(pa.page_to_pfn(page), pfn);
        assert_eq!(pa.pfn_to_page(pfn), page);
    }

    #[test]
    fn single_chunk_xarray() {
        let (mut kb, pt, vt) = setup();
        let xa = kb.alloc(vt.xarray);
        let entries: Vec<(u64, u64)> = (0..20).map(|i| (i, 0xf000 + i * 0x40)).collect();
        let nodes = xa_store_many(&mut kb, &pt, xa, &entries);
        assert_eq!(nodes.len(), 1, "20 indices fit one chunk");
        for (i, v) in entries {
            assert_eq!(xa_load(&kb, &pt, xa, i), v, "index {i}");
        }
        assert_eq!(xa_load(&kb, &pt, xa, 21), 0);
    }

    #[test]
    fn multi_level_xarray() {
        let (mut kb, pt, vt) = setup();
        let xa = kb.alloc(vt.xarray);
        // Indices crossing two levels (64..4096) and three (>4096).
        let entries: Vec<(u64, u64)> = vec![
            (0, 0x10_000),
            (63, 0x10_040),
            (64, 0x10_080),
            (4095, 0x10_0c0),
            (5000, 0x10_100),
        ];
        let nodes = xa_store_many(&mut kb, &pt, xa, &entries);
        assert!(
            nodes.len() >= 4,
            "expect a multi-node tree, got {}",
            nodes.len()
        );
        for (i, v) in entries {
            assert_eq!(xa_load(&kb, &pt, xa, i), v, "index {i}");
        }
        assert_eq!(xa_load(&kb, &pt, xa, 100), 0);
    }

    #[test]
    fn single_index_zero_is_inline() {
        let (mut kb, pt, vt) = setup();
        let xa = kb.alloc(vt.xarray);
        let nodes = xa_store_many(&mut kb, &pt, xa, &[(0, 0xabcd00)]);
        assert!(nodes.is_empty());
        assert_eq!(xa_load(&kb, &pt, xa, 0), 0xabcd00);
    }
}

#[cfg(test)]
mod prop_tests {
    //! Property: sparse index sets round-trip through the xarray.

    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_xarray_round_trip(
            indices in proptest::collection::btree_set(0u64..300_000, 0..80)
        ) {
            let mut kb = KernelBuilder::new();
            let common = kb.common;
            let vt = crate::vfs::register_types(&mut kb.types, &common);
            let pt = register_types(&mut kb.types, &common);
            let xa = kb.alloc(vt.xarray);
            let entries: Vec<(u64, u64)> = indices
                .iter()
                .enumerate()
                .map(|(i, &idx)| (idx, 0xffff_8880_2000_0000 + 0x40 * i as u64))
                .collect();
            xa_store_many(&mut kb, &pt, xa, &entries);
            for (idx, val) in &entries {
                prop_assert_eq!(xa_load(&kb, &pt, xa, *idx), *val);
            }
            // A handful of absent indices stay absent.
            for probe in [1u64, 63, 64, 4095, 4096, 299_999] {
                if !indices.contains(&probe) {
                    prop_assert_eq!(xa_load(&kb, &pt, xa, probe), 0);
                }
            }
        }
    }
}
