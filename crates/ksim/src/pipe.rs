//! Pipes and their ring of `pipe_buffer`s (Dirty Pipe, CVE-2022-0847).

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;

/// The Dirty Pipe flag: buffer may be merged into (i.e. written through).
pub const PIPE_BUF_FLAG_CAN_MERGE: u64 = 0x10;
/// Default ring size.
pub const PIPE_DEF_BUFFERS: u64 = 16;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct PipeTypes {
    /// `struct pipe_inode_info`.
    pub pipe_inode_info: TypeId,
    /// `struct pipe_buffer`.
    pub pipe_buffer: TypeId,
}

/// Register pipe types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> PipeTypes {
    let page_fwd = reg.declare_struct("page");
    let page_ptr = reg.pointer_to(page_fwd);

    let pipe_buffer = StructBuilder::new("pipe_buffer")
        .field("page", page_ptr)
        .field("offset", common.u32_t)
        .field("len", common.u32_t)
        .field("ops", common.void_ptr)
        .field("flags", common.u32_t)
        .field("private", common.u64_t)
        .build(reg);
    let buf_ptr = reg.pointer_to(pipe_buffer);

    let pipe_inode_info = StructBuilder::new("pipe_inode_info")
        .field("mutex", common.atomic64)
        .field("head", common.u32_t)
        .field("tail", common.u32_t)
        .field("max_usage", common.u32_t)
        .field("ring_size", common.u32_t)
        .field("nr_accounted", common.u32_t)
        .field("readers", common.u32_t)
        .field("writers", common.u32_t)
        .field("files", common.u32_t)
        .field("r_counter", common.u32_t)
        .field("w_counter", common.u32_t)
        .field("bufs", buf_ptr)
        .build(reg);

    reg.define_const("PIPE_BUF_FLAG_CAN_MERGE", PIPE_BUF_FLAG_CAN_MERGE as i64);

    PipeTypes {
        pipe_inode_info,
        pipe_buffer,
    }
}

/// One occupied slot in a pipe ring.
#[derive(Debug, Clone, Copy)]
pub struct PipeBufSpec {
    /// Backing `struct page` address.
    pub page: u64,
    /// Byte offset of valid data.
    pub offset: u32,
    /// Valid byte count.
    pub len: u32,
    /// Buffer flags (e.g. [`PIPE_BUF_FLAG_CAN_MERGE`]).
    pub flags: u32,
}

/// Create a `pipe_inode_info` whose ring holds `bufs` starting at tail 0.
pub fn create_pipe(kb: &mut KernelBuilder, pt: &PipeTypes, bufs: &[PipeBufSpec]) -> u64 {
    let pipe = kb.alloc(pt.pipe_inode_info);
    let ring_ty = kb.types.array_of(pt.pipe_buffer, PIPE_DEF_BUFFERS);
    let ring = kb.alloc(ring_ty);
    let buf_size = kb.types.size_of(pt.pipe_buffer);
    for (i, b) in bufs.iter().enumerate() {
        let addr = ring + buf_size * i as u64;
        let mut w = kb.obj(addr, pt.pipe_buffer);
        w.set("page", b.page).unwrap();
        w.set("offset", b.offset as u64).unwrap();
        w.set("len", b.len as u64).unwrap();
        w.set("flags", b.flags as u64).unwrap();
    }
    let mut w = kb.obj(pipe, pt.pipe_inode_info);
    w.set("head", bufs.len() as u64).unwrap();
    w.set("tail", 0).unwrap();
    w.set("ring_size", PIPE_DEF_BUFFERS).unwrap();
    w.set("max_usage", PIPE_DEF_BUFFERS).unwrap();
    w.set("readers", 1).unwrap();
    w.set("writers", 1).unwrap();
    w.set("bufs", ring).unwrap();
    pipe
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_occupancy_and_flags() {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let pt = register_types(&mut kb.types, &common);
        let pipe = create_pipe(
            &mut kb,
            &pt,
            &[
                PipeBufSpec {
                    page: 0xf00d00,
                    offset: 0,
                    len: 512,
                    flags: 0,
                },
                PipeBufSpec {
                    page: 0xf00d40,
                    offset: 0,
                    len: 4096,
                    flags: PIPE_BUF_FLAG_CAN_MERGE as u32,
                },
            ],
        );
        let (bufs_off, _) = kb.types.field_path(pt.pipe_inode_info, "bufs").unwrap();
        let ring = kb.mem.read_uint(pipe + bufs_off, 8).unwrap();
        let bsz = kb.types.size_of(pt.pipe_buffer);
        let (flags_off, _) = kb.types.field_path(pt.pipe_buffer, "flags").unwrap();
        assert_eq!(kb.mem.read_uint(ring + flags_off, 4).unwrap(), 0);
        assert_eq!(
            kb.mem.read_uint(ring + bsz + flags_off, 4).unwrap(),
            PIPE_BUF_FLAG_CAN_MERGE
        );
        let (head_off, _) = kb.types.field_path(pt.pipe_inode_info, "head").unwrap();
        assert_eq!(kb.mem.read_uint(pipe + head_off, 4).unwrap(), 2);
    }
}
