//! Declarative scenario + CVE corpus generation.
//!
//! A [`ScenarioSpec`] is *data*: a name, a [`WorkloadConfig`] that dials
//! the population scale (thousands of tasks, deep maple trees, large
//! page caches and fd tables — all from one seeded RNG, so every spec is
//! deterministic), and a list of [`InjectionSpec`]s that declare bug
//! state the way KernJC declares vulnerable environments — as a spec,
//! not code. The two hand-built CVE case studies
//! ([`crate::scenarios::inject_stackrot`] /
//! [`crate::scenarios::inject_dirty_pipe`]) are re-expressed here as
//! corpus entries and their injectors delegate to [`apply`].
//!
//! Every spec round-trips through JSON ([`ScenarioSpec::to_json`] /
//! [`ScenarioSpec::from_json`]) and carries a stable
//! [`ScenarioSpec::fingerprint`] that capture headers embed, so a
//! `.vrec` names exactly which corpus member it was recorded from.
//!
//! Building a spec ([`ScenarioSpec::build`]) yields the mutated
//! [`Workload`] *plus* the ground truth: the [`ExpectedFinding`]s a
//! `kcheck` sweep must report — the injected fault is found, nothing
//! else is flagged. The corpus harness in `kgen` turns those into
//! `kcheck::Expected` assertions.

use serde_json::{Map, Number, Value};

use crate::faults::{self, FaultKind, InjectedFault};
use crate::maple;
use crate::pipe::PIPE_BUF_FLAG_CAN_MERGE;
use crate::rcu;
use crate::scenarios::{DirtyPipe, StackRot};
use crate::workload::{self, Workload, WorkloadConfig};

/// One declared bug injection — the data form of what used to be a
/// hand-written `inject_*` function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectionSpec {
    /// One fault from the seeded corpus ([`crate::faults`]).
    Fault {
        /// The corruption to plant.
        kind: FaultKind,
        /// Victim-selection seed.
        seed: u64,
    },
    /// The StackRot state (CVE-2023-3269): a maple node simultaneously
    /// in the tree and on the RCU callback list.
    StackRot {
        /// Also expire the grace period: run the deferred free so the
        /// tree holds a dangling pointer into slab poison.
        expire_grace: bool,
    },
    /// The Dirty Pipe state (CVE-2022-0847): a pipe buffer aliasing a
    /// page-cache page with `PIPE_BUF_FLAG_CAN_MERGE` set. Structurally
    /// clean — `kcheck` must flag *nothing* (the ground truth is the
    /// scenario-level witness, not a checker violation).
    DirtyPipe,
}

/// A complete, deterministic, serializable scenario recipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Corpus-unique name (also the fixture file stem).
    pub name: String,
    /// Population dials, seeded — equal configs build identical images.
    pub workload: WorkloadConfig,
    /// Bug state to plant after the build, in order.
    pub injections: Vec<InjectionSpec>,
}

/// One ground-truth finding a built scenario promises `kcheck` reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpectedFinding {
    /// The checker class that must fire (`kcheck::ViolationKind::class`).
    pub class: &'static str,
    /// Exact violation address when the checker reports the mutated
    /// address itself; `None` when the damage surfaces elsewhere on the
    /// structure.
    pub addr: Option<u64>,
}

/// What applying one [`InjectionSpec`] actually did.
#[derive(Debug, Clone)]
pub enum AppliedInjection {
    /// A corpus fault landed.
    Fault(InjectedFault),
    /// The StackRot state landed.
    StackRot(StackRot),
    /// The Dirty Pipe state landed.
    DirtyPipe(DirtyPipe),
}

/// A built scenario: the (possibly corrupted) workload plus the ground
/// truth contract.
pub struct BuiltScenario {
    /// The image, with every injection applied.
    pub workload: Workload,
    /// Per-injection outcomes, in spec order.
    pub applied: Vec<AppliedInjection>,
    /// Every finding a full `kcheck` sweep must report — and the only
    /// classes it may report.
    pub expected: Vec<ExpectedFinding>,
}

impl ScenarioSpec {
    /// Tasks the workload will populate (1 swapper + kthreads + user
    /// processes with their extra threads) — the scale rung this spec
    /// sits on.
    pub fn tasks(&self) -> usize {
        1 + self.workload.kthreads + self.workload.processes * (1 + self.workload.extra_threads)
    }

    /// Build the workload and apply every injection, collecting the
    /// ground truth.
    pub fn build(&self) -> BuiltScenario {
        let mut w = workload::build(&self.workload);
        let mut applied = Vec::new();
        let mut expected = Vec::new();
        for inj in &self.injections {
            let (a, mut e) = apply(&mut w, inj);
            applied.push(a);
            expected.append(&mut e);
        }
        BuiltScenario {
            workload: w,
            applied,
            expected,
        }
    }

    /// Serialize to a stable JSON document (field order fixed, so equal
    /// specs serialize to equal bytes).
    pub fn to_json(&self) -> String {
        let num = |n: u64| Value::Number(Number::from_u64(n));
        let mut w = Map::new();
        w.insert("processes".into(), num(self.workload.processes as u64));
        w.insert(
            "extra_threads".into(),
            num(self.workload.extra_threads as u64),
        );
        w.insert(
            "files_per_process".into(),
            num(self.workload.files_per_process as u64),
        );
        w.insert(
            "pages_per_file".into(),
            num(self.workload.pages_per_file as u64),
        );
        w.insert("anon_vmas".into(), num(self.workload.anon_vmas as u64));
        w.insert("kthreads".into(), num(self.workload.kthreads as u64));
        w.insert("seed".into(), num(self.workload.seed));
        let injections: Vec<Value> = self
            .injections
            .iter()
            .map(|inj| {
                let mut m = Map::new();
                match inj {
                    InjectionSpec::Fault { kind, seed } => {
                        m.insert("fault".into(), Value::String(kind.name().into()));
                        m.insert("seed".into(), num(*seed));
                    }
                    InjectionSpec::StackRot { expire_grace } => {
                        m.insert("stackrot".into(), Value::Bool(true));
                        m.insert("expire_grace".into(), Value::Bool(*expire_grace));
                    }
                    InjectionSpec::DirtyPipe => {
                        m.insert("dirty_pipe".into(), Value::Bool(true));
                    }
                }
                Value::Object(m)
            })
            .collect();
        let mut doc = Map::new();
        doc.insert("name".into(), Value::String(self.name.clone()));
        doc.insert("workload".into(), Value::Object(w));
        doc.insert("injections".into(), Value::Array(injections));
        serde_json::to_string(&Value::Object(doc)).expect("spec serialization cannot fail")
    }

    /// Parse a spec serialized by [`ScenarioSpec::to_json`].
    pub fn from_json(s: &str) -> Result<ScenarioSpec, String> {
        let doc: Value = serde_json::from_str(s).map_err(|e| format!("spec is not JSON: {e}"))?;
        let name = doc
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("spec lacks a name")?
            .to_string();
        let w = doc.get("workload").ok_or("spec lacks a workload")?;
        let field = |f: &str| {
            w.get(f)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("workload lacks `{f}`"))
        };
        let workload = WorkloadConfig {
            processes: field("processes")? as usize,
            extra_threads: field("extra_threads")? as usize,
            files_per_process: field("files_per_process")? as usize,
            pages_per_file: field("pages_per_file")? as usize,
            anon_vmas: field("anon_vmas")? as usize,
            kthreads: field("kthreads")? as usize,
            seed: field("seed")?,
        };
        let mut injections = Vec::new();
        let empty = Vec::new();
        for inj in doc
            .get("injections")
            .and_then(|v| v.as_array())
            .unwrap_or(&empty)
        {
            if let Some(fault) = inj.get("fault").and_then(|v| v.as_str()) {
                let kind = FaultKind::from_name(fault)
                    .ok_or_else(|| format!("unknown fault kind `{fault}`"))?;
                let seed = inj.get("seed").and_then(|v| v.as_u64()).unwrap_or(0);
                injections.push(InjectionSpec::Fault { kind, seed });
            } else if inj.get("stackrot").is_some() {
                let expire_grace = inj
                    .get("expire_grace")
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false);
                injections.push(InjectionSpec::StackRot { expire_grace });
            } else if inj.get("dirty_pipe").is_some() {
                injections.push(InjectionSpec::DirtyPipe);
            } else {
                return Err(format!("unrecognized injection: {inj:?}"));
            }
        }
        Ok(ScenarioSpec {
            name,
            workload,
            injections,
        })
    }

    /// A stable content fingerprint (FNV-1a over the serialized spec):
    /// equal fingerprints mean "this capture / session was built from
    /// this exact scenario". Embedded in `.vrec` capture headers.
    pub fn fingerprint(&self) -> u64 {
        fnv64(self.to_json().as_bytes())
    }
}

/// FNV-1a, 64-bit — stable across processes, mirroring the session-spec
/// fingerprint in `visualinux::spec`.
fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Apply one injection to a built workload, returning what happened and
/// the ground-truth findings it adds. This is the single bug-injection
/// entry point; the legacy `scenarios::inject_*` functions are thin
/// wrappers over it.
pub fn apply(w: &mut Workload, inj: &InjectionSpec) -> (AppliedInjection, Vec<ExpectedFinding>) {
    match inj {
        InjectionSpec::Fault { kind, seed } => {
            let f = faults::inject(w, *kind, *seed);
            let expected = vec![ExpectedFinding {
                class: f.class(),
                // These checkers report the exact mutated address; the
                // others surface the damage on a neighbouring node/slot.
                addr: match kind {
                    FaultKind::RefcountAbsurd
                    | FaultKind::RefcountZero
                    | FaultKind::PidLinkStale => Some(f.addr),
                    _ => None,
                },
            }];
            (AppliedInjection::Fault(f), expected)
        }
        InjectionSpec::StackRot { expire_grace } => {
            let sr = apply_stackrot(w);
            if *expire_grace {
                expire_stackrot(w, &sr);
            }
            // call_rcu alone already corrupts the node's pivot area
            // (exactly like ma_free_rcu); expiring adds full poison.
            let expected = vec![ExpectedFinding {
                class: "maple",
                addr: None,
            }];
            (AppliedInjection::StackRot(sr), expected)
        }
        InjectionSpec::DirtyPipe => {
            let dp = apply_dirty_pipe(w);
            (AppliedInjection::DirtyPipe(dp), Vec::new())
        }
    }
}

/// The built-in corpus: every scenario the replay matrix, property tests
/// and `corpus_bench` cover. Three clean scale rungs (~100 / ~1k / ~10k
/// tasks) prove scoped extraction stays sublinear; the fault entries
/// re-express the CVE case studies and the newer fault kinds as data.
pub fn corpus() -> Vec<ScenarioSpec> {
    let base = WorkloadConfig::default();
    let spec =
        |name: &str, workload: WorkloadConfig, injections: Vec<InjectionSpec>| ScenarioSpec {
            name: name.into(),
            workload,
            injections,
        };
    vec![
        // Clean scale rungs. Beyond raw task count they widen the other
        // dials too: deeper maple trees (anon_vmas) and larger per-file
        // page caches, so "sublinear" is not an artifact of one axis.
        spec(
            "clean-100",
            WorkloadConfig {
                processes: 47,
                anon_vmas: 6,
                ..base.clone()
            },
            vec![],
        ),
        spec(
            "clean-1k",
            WorkloadConfig {
                processes: 500,
                files_per_process: 4,
                pages_per_file: 12,
                anon_vmas: 8,
                ..base.clone()
            },
            vec![],
        ),
        spec(
            "clean-10k",
            WorkloadConfig {
                processes: 5000,
                ..base.clone()
            },
            vec![],
        ),
        // Declarative bug injections (one per checker class).
        spec(
            "uaf-list",
            base.clone(),
            vec![InjectionSpec::Fault {
                kind: FaultKind::ListNodePoison,
                seed: 0xa11,
            }],
        ),
        spec(
            "refcount-leak",
            base.clone(),
            vec![InjectionSpec::Fault {
                kind: FaultKind::RefcountZero,
                seed: 0x0f1,
            }],
        ),
        spec(
            "dangling-rb",
            base.clone(),
            vec![InjectionSpec::Fault {
                kind: FaultKind::RbNodeDangle,
                seed: 0x1b,
            }],
        ),
        spec(
            "xarray-corrupt",
            base.clone(),
            vec![InjectionSpec::Fault {
                kind: FaultKind::XarraySlotGarbage,
                seed: 0xa7,
            }],
        ),
        spec(
            "stale-pid",
            WorkloadConfig {
                processes: 9,
                ..base.clone()
            },
            vec![InjectionSpec::Fault {
                kind: FaultKind::PidLinkStale,
                seed: 0x91d,
            }],
        ),
        spec(
            "maple-dangle",
            base.clone(),
            vec![InjectionSpec::Fault {
                kind: FaultKind::MapleEnodeDangle,
                seed: 0x3a,
            }],
        ),
        // The two hand-built CVE case studies, now corpus data.
        spec(
            "cve-2023-3269-stackrot",
            base.clone(),
            vec![InjectionSpec::StackRot { expire_grace: true }],
        ),
        spec(
            "cve-2022-0847-dirty-pipe",
            base,
            vec![InjectionSpec::DirtyPipe],
        ),
    ]
}

/// Look up a corpus scenario by name.
pub fn by_name(name: &str) -> Option<ScenarioSpec> {
    corpus().into_iter().find(|s| s.name == name)
}

// ---------------------------------------------------------------------
// CVE state constructors (moved here from `scenarios`, which now wraps
// them — the corpus is the single source of bug-injection logic).

/// Build the StackRot state in process 0's address space (see
/// [`crate::scenarios`] for the CVE background).
pub(crate) fn apply_stackrot(w: &mut Workload) -> StackRot {
    let t = w.types;
    let kb = &mut w.kb;
    let leader = w.roots.leaders[0];
    let (mm_off, _) = kb.types.field_path(t.task.task_struct, "mm").unwrap();
    let mm = kb.mem.read_uint(leader + mm_off, 8).unwrap();
    let (root_off, _) = kb
        .types
        .field_path(t.mm.mm_struct, "mm_mt.ma_root")
        .unwrap();
    let root = kb.mem.read_uint(mm + root_off, 8).unwrap();
    assert!(maple::xa_is_node(root), "expected a multi-node tree");

    // Find the first leaf under the root.
    let mut enode = root;
    while !maple::ma_is_leaf(maple::mte_node_type(enode)) {
        let node = maple::mte_to_node(enode);
        // arange_64 slots start after parent + 9 pivots.
        let slot0 = node + 8 + 8 * (maple::MAPLE_ARANGE64_SLOTS - 1);
        enode = kb.mem.read_uint(slot0, 8).unwrap();
    }
    let victim = maple::mte_to_node(enode);

    // The node's union rcu_head lives at offset 8 (after `pad`).
    let (rcu_off, _) = kb.types.field_path(t.maple.maple_node, "prcu.rcu").unwrap();
    let rcu_head = victim + rcu_off;

    // CPU 0 defers the free; note this *corrupts* the node's slot[0..2]
    // area exactly like ma_free_rcu does in the real kernel.
    let rcu_state = rcu::RcuState {
        base: kb.symbols.lookup("rcu_data").unwrap().addr,
        size: kb.types.size_of(t.rcu.rcu_data),
    };
    rcu::call_rcu(kb, &t.rcu, &rcu_state, 0, rcu_head, "mt_free_rcu");

    StackRot {
        mm,
        victim_node: victim,
        rcu_head,
        free_cpu: 0,
        reader_cpu: 1,
    }
}

/// Expire the RCU grace period for a StackRot victim: pop the callback
/// and slab-poison the node, arming the use-after-free.
pub(crate) fn expire_stackrot(w: &mut Workload, sr: &StackRot) {
    let t = w.types;
    let kb = &mut w.kb;
    // Pop the callback from the freeing CPU's list (rcu_do_batch).
    let rcu_state = rcu::RcuState {
        base: kb.symbols.lookup("rcu_data").unwrap().addr,
        size: kb.types.size_of(t.rcu.rcu_data),
    };
    let rd = rcu_state.cpu(sr.free_cpu);
    let (head_off, _) = kb.types.field_path(t.rcu.rcu_data, "cblist.head").unwrap();
    let next = kb.mem.read_uint(sr.rcu_head, 8).unwrap_or(0);
    let head = kb.mem.read_uint(rd + head_off, 8).unwrap();
    if head == sr.rcu_head {
        kb.mem.write_uint(rd + head_off, 8, next);
    }
    // kmem_cache_free with SLAB poisoning: the node's 256 bytes are
    // overwritten with POISON_FREE (0x6b), like a debug kernel recycling
    // the object. (Unmapping the page would also fault the *neighboring*
    // slab objects, which a recycled slab page does not do.)
    kb.mem.write(sr.victim_node, &[0x6b; 256]);
}

/// Build the Dirty Pipe state: `splice` moved a page of `test.txt` into
/// process 0's pipe ring zero-copy, and `copy_page_to_iter_pipe` left
/// `PIPE_BUF_FLAG_CAN_MERGE` set.
pub(crate) fn apply_dirty_pipe(w: &mut Workload) -> DirtyPipe {
    let t = w.types;
    let kb = &mut w.kb;
    let file = w.roots.test_txt_file;
    assert_ne!(file, 0, "workload must have opened test.txt");

    // First page of the file's page cache.
    let (f_mapping_off, _) = kb.types.field_path(t.vfs.file, "f_mapping").unwrap();
    let mapping = kb.mem.read_uint(file + f_mapping_off, 8).unwrap();
    let (i_pages_off, _) = kb.types.field_path(t.vfs.address_space, "i_pages").unwrap();
    let page = crate::pagecache::xa_load(kb, &t.page, mapping + i_pages_off, 0);
    assert_ne!(page, 0, "test.txt must have a cached page");

    // Overwrite the pipe's buffer 0: zero-copy alias + CAN_MERGE.
    let pipe = w.roots.pipes[0];
    let (bufs_off, _) = kb.types.field_path(t.pipe.pipe_inode_info, "bufs").unwrap();
    let ring = kb.mem.read_uint(pipe + bufs_off, 8).unwrap();
    {
        let mut wbuf = kb.obj(ring, t.pipe.pipe_buffer);
        wbuf.set("page", page).unwrap();
        wbuf.set("offset", 0).unwrap();
        wbuf.set("len", 4096).unwrap();
        wbuf.set("flags", PIPE_BUF_FLAG_CAN_MERGE).unwrap();
    }

    DirtyPipe {
        file,
        shared_page: page,
        pipe,
        buf_index: 0,
        task: w.roots.leaders[0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_the_promised_shape() {
        let specs = corpus();
        assert!(specs.len() >= 8, "corpus must hold >= 8 scenarios");
        let clean = specs.iter().filter(|s| s.injections.is_empty()).count();
        assert!(clean >= 3, "need >= 3 clean scale rungs");
        let mut kinds: Vec<&str> = specs
            .iter()
            .flat_map(|s| s.injections.iter())
            .map(|inj| match inj {
                InjectionSpec::Fault { kind, .. } => kind.name(),
                InjectionSpec::StackRot { .. } => "stackrot",
                InjectionSpec::DirtyPipe => "dirty-pipe",
            })
            .collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert!(
            kinds.len() >= 5,
            "need >= 5 distinct fault kinds: {kinds:?}"
        );
        // Names are unique — they double as fixture file stems.
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let total = names.len();
        names.dedup();
        assert_eq!(names.len(), total, "scenario names must be unique");
    }

    #[test]
    fn every_spec_round_trips_through_json() {
        for spec in corpus() {
            let json = spec.to_json();
            let back = ScenarioSpec::from_json(&json).unwrap();
            assert_eq!(back, spec, "round-trip must be lossless: {json}");
            assert_eq!(
                back.fingerprint(),
                spec.fingerprint(),
                "fingerprints are content-stable"
            );
        }
        // Distinct specs have distinct fingerprints.
        let fps: std::collections::HashSet<u64> =
            corpus().iter().map(|s| s.fingerprint()).collect();
        assert_eq!(fps.len(), corpus().len());
    }

    #[test]
    fn build_is_deterministic_and_applies_in_order() {
        let spec = by_name("uaf-list").unwrap();
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.expected, b.expected);
        match (&a.applied[0], &b.applied[0]) {
            (AppliedInjection::Fault(x), AppliedInjection::Fault(y)) => {
                assert_eq!(x.addr, y.addr);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scale_rungs_hit_their_populations() {
        assert_eq!(by_name("clean-100").unwrap().tasks(), 101);
        assert_eq!(by_name("clean-1k").unwrap().tasks(), 1007);
        assert_eq!(by_name("clean-10k").unwrap().tasks(), 10007);
    }

    #[test]
    fn generated_roots_survive_a_tick() {
        // The tick mutator must work over any generated population, not
        // just the paper's 5x2 default.
        let spec = by_name("stale-pid").unwrap();
        let built = ScenarioSpec {
            injections: vec![],
            ..spec
        }
        .build();
        let (mut img, _, roots) = built.workload.finish();
        let r1 = crate::tick::tick(&mut img, &roots, 1);
        let r2 = crate::tick::tick(&mut img, &roots, 2);
        assert_eq!(r1.ran, roots.leaders[0]);
        assert!(r2.vruntime > r1.vruntime);
    }

    #[test]
    fn bad_specs_fail_loudly() {
        assert!(ScenarioSpec::from_json("not json").is_err());
        assert!(ScenarioSpec::from_json("{}").is_err());
        let json = r#"{"name":"x","workload":{"processes":1,"extra_threads":0,
            "files_per_process":1,"pages_per_file":1,"anon_vmas":1,"kthreads":0,
            "seed":1},"injections":[{"fault":"no-such-kind"}]}"#;
        assert!(ScenarioSpec::from_json(json)
            .unwrap_err()
            .contains("no-such-kind"));
    }
}
