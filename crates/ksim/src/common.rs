//! Base kernel types shared by every subsystem.
//!
//! These mirror `include/linux/types.h` and friends: intrusive list and
//! tree nodes, the RCU callback head, spinlocks and atomics. Layouts match
//! x86-64 Linux 6.1 (e.g. `struct list_head` is two pointers, `rb_node`
//! packs the color bit into `__rb_parent_color`).

use ktypes::{Prim, StructBuilder, TypeId, TypeRegistry};

/// Type ids of the shared base types.
#[derive(Debug, Clone, Copy)]
pub struct CommonTypes {
    /// `struct list_head { struct list_head *next, *prev; }`.
    pub list_head: TypeId,
    /// `struct hlist_head { struct hlist_node *first; }`.
    pub hlist_head: TypeId,
    /// `struct hlist_node { struct hlist_node *next, **pprev; }`.
    pub hlist_node: TypeId,
    /// `struct rb_node` with packed parent/color word.
    pub rb_node: TypeId,
    /// `struct rb_root { struct rb_node *rb_node; }`.
    pub rb_root: TypeId,
    /// `struct rb_root_cached { struct rb_root rb_root; struct rb_node *rb_leftmost; }`.
    pub rb_root_cached: TypeId,
    /// `struct callback_head { struct callback_head *next; void (*func)(...); }`
    /// a.k.a. `struct rcu_head`.
    pub callback_head: TypeId,
    /// `spinlock_t` (simplified to its raw lock word + owner cpu).
    pub spinlock: TypeId,
    /// `atomic_t { int counter; }`.
    pub atomic: TypeId,
    /// `atomic64_t { s64 counter; }`.
    pub atomic64: TypeId,
    /// `refcount_t { atomic_t refs; }`.
    pub refcount: TypeId,
    /// Common scalar shorthands.
    pub u8_t: TypeId,
    /// `u16`.
    pub u16_t: TypeId,
    /// `u32`.
    pub u32_t: TypeId,
    /// `u64`.
    pub u64_t: TypeId,
    /// `int`.
    pub int_t: TypeId,
    /// `long`.
    pub long_t: TypeId,
    /// `bool`.
    pub bool_t: TypeId,
    /// `char`.
    pub char_t: TypeId,
    /// `void *`.
    pub void_ptr: TypeId,
    /// `char *`.
    pub char_ptr: TypeId,
}

impl CommonTypes {
    /// Register all base types into `reg`.
    pub fn register(reg: &mut TypeRegistry) -> CommonTypes {
        let u8_t = reg.prim(Prim::U8);
        let u16_t = reg.prim(Prim::U16);
        let u32_t = reg.prim(Prim::U32);
        let u64_t = reg.prim(Prim::U64);
        let int_t = reg.prim(Prim::I32);
        let long_t = reg.prim(Prim::I64);
        let bool_t = reg.prim(Prim::Bool);
        let char_t = reg.prim(Prim::Char);
        let void_t = reg.prim(Prim::Void);
        let void_ptr = reg.pointer_to(void_t);
        let char_ptr = reg.pointer_to(char_t);

        let list_head = reg.declare_struct("list_head");
        let list_head_ptr = reg.pointer_to(list_head);
        let list_head = StructBuilder::new("list_head")
            .field("next", list_head_ptr)
            .field("prev", list_head_ptr)
            .build(reg);

        let hlist_node = reg.declare_struct("hlist_node");
        let hlist_node_ptr = reg.pointer_to(hlist_node);
        let hlist_node_ptr_ptr = reg.pointer_to(hlist_node_ptr);
        let hlist_node = StructBuilder::new("hlist_node")
            .field("next", hlist_node_ptr)
            .field("pprev", hlist_node_ptr_ptr)
            .build(reg);
        let hlist_head = StructBuilder::new("hlist_head")
            .field("first", hlist_node_ptr)
            .build(reg);

        let rb_node = reg.declare_struct("rb_node");
        let rb_node_ptr = reg.pointer_to(rb_node);
        let rb_node = StructBuilder::new("rb_node")
            .field("__rb_parent_color", u64_t)
            .field("rb_right", rb_node_ptr)
            .field("rb_left", rb_node_ptr)
            .build(reg);
        let rb_root = StructBuilder::new("rb_root")
            .field("rb_node", rb_node_ptr)
            .build(reg);
        let rb_root_cached = StructBuilder::new("rb_root_cached")
            .field("rb_root", rb_root)
            .field("rb_leftmost", rb_node_ptr)
            .build(reg);

        let callback_head = reg.declare_struct("callback_head");
        let callback_head_ptr = reg.pointer_to(callback_head);
        let rcu_func = reg.func("void (*)(struct callback_head *)");
        let rcu_func_ptr = reg.pointer_to(rcu_func);
        let callback_head = StructBuilder::new("callback_head")
            .field("next", callback_head_ptr)
            .field("func", rcu_func_ptr)
            .build(reg);

        let atomic = StructBuilder::new("atomic_t")
            .field("counter", int_t)
            .build(reg);
        let atomic64 = StructBuilder::new("atomic64_t")
            .field("counter", long_t)
            .build(reg);
        let refcount = StructBuilder::new("refcount_t")
            .field("refs", atomic)
            .build(reg);
        let spinlock = StructBuilder::new("spinlock_t")
            .field("locked", u8_t)
            .field("owner_cpu", u8_t)
            .build(reg);

        // Ubiquitous macro constants.
        reg.define_const("NULL", 0);
        reg.define_const("true", 1);
        reg.define_const("false", 0);

        CommonTypes {
            list_head,
            hlist_head,
            hlist_node,
            rb_node,
            rb_root,
            rb_root_cached,
            callback_head,
            spinlock,
            atomic,
            atomic64,
            refcount,
            u8_t,
            u16_t,
            u32_t,
            u64_t,
            int_t,
            long_t,
            bool_t,
            char_t,
            void_ptr,
            char_ptr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_match_x86_64_linux() {
        let mut reg = TypeRegistry::new();
        let c = CommonTypes::register(&mut reg);
        assert_eq!(reg.size_of(c.list_head), 16);
        assert_eq!(reg.size_of(c.hlist_node), 16);
        assert_eq!(reg.size_of(c.hlist_head), 8);
        assert_eq!(reg.size_of(c.rb_node), 24);
        assert_eq!(reg.size_of(c.rb_root_cached), 16);
        assert_eq!(reg.size_of(c.callback_head), 16);
        assert_eq!(reg.size_of(c.atomic), 4);
        assert_eq!(reg.size_of(c.refcount), 4);
    }

    #[test]
    fn list_head_is_self_referential() {
        let mut reg = TypeRegistry::new();
        let c = CommonTypes::register(&mut reg);
        let def = reg.struct_def(c.list_head).unwrap();
        let next_ty = def.field("next").unwrap().ty;
        assert_eq!(reg.pointee(next_ty).unwrap(), c.list_head);
    }

    #[test]
    fn rcu_head_alias_resolves() {
        let mut reg = TypeRegistry::new();
        let c = CommonTypes::register(&mut reg);
        assert_eq!(reg.lookup("callback_head").unwrap(), c.callback_head);
    }

    #[test]
    fn null_constant_defined() {
        let mut reg = TypeRegistry::new();
        let _ = CommonTypes::register(&mut reg);
        assert_eq!(reg.lookup_const("NULL").unwrap().value, 0);
    }
}
