//! Per-CPU runqueues and the CFS timeline (ULK Fig 7-1, paper §1 example).
//!
//! Mirrors `kernel/sched/sched.h`: each CPU has a `struct rq` embedding a
//! `struct cfs_rq` whose `tasks_timeline` is an `rb_root_cached` of
//! `sched_entity.run_node`s ordered by `vruntime` — exactly what the
//! ViewCL program in the paper's introduction plots via
//! `cpu_rq(0)->cfs.tasks_timeline`.

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;
use crate::structops;
use crate::tasks::TaskTypes;

/// Number of simulated CPUs.
pub const NR_CPUS: u64 = 2;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct SchedTypes {
    /// `struct cfs_rq`.
    pub cfs_rq: TypeId,
    /// `struct rq`.
    pub rq: TypeId,
}

/// Register runqueue types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> SchedTypes {
    let task = reg.declare_struct("task_struct");
    let task_ptr = reg.pointer_to(task);
    let load_weight = reg
        .lookup("load_weight")
        .expect("tasks types registered first");
    let se = reg
        .lookup("sched_entity")
        .expect("tasks types registered first");
    let se_ptr = reg.pointer_to(se);

    let cfs_rq = StructBuilder::new("cfs_rq")
        .field("load", load_weight)
        .field("nr_running", common.u32_t)
        .field("h_nr_running", common.u32_t)
        .field("exec_clock", common.u64_t)
        .field("min_vruntime", common.u64_t)
        .field("tasks_timeline", common.rb_root_cached)
        .field("curr", se_ptr)
        .field("next", se_ptr)
        .build(reg);

    let rq = StructBuilder::new("rq")
        .field("__lock", common.spinlock)
        .field("nr_running", common.u32_t)
        .field("nr_switches", common.u64_t)
        .field("cfs", cfs_rq)
        .field("curr", task_ptr)
        .field("idle", task_ptr)
        .field("clock", common.u64_t)
        .field("cpu", common.int_t)
        .build(reg);

    reg.define_const("NR_CPUS", NR_CPUS as i64);

    SchedTypes { cfs_rq, rq }
}

/// The built per-CPU runqueues.
#[derive(Debug, Clone)]
pub struct RunQueues {
    /// Address of the `rq[NR_CPUS]` per-CPU array (symbol `runqueues`).
    pub base: u64,
    /// Size of one `struct rq`.
    pub rq_size: u64,
}

impl RunQueues {
    /// Address of CPU `cpu`'s runqueue (the simulated `cpu_rq()`).
    pub fn cpu_rq(&self, cpu: u64) -> u64 {
        self.base + cpu * self.rq_size
    }
}

/// Allocate the per-CPU `runqueues` array and register its symbol.
pub fn create_runqueues(kb: &mut KernelBuilder, st: &SchedTypes) -> RunQueues {
    let rq_size = kb.types.size_of(st.rq);
    let arr = kb.types.array_of(st.rq, NR_CPUS);
    let base = kb.alloc_percpu(arr);
    kb.symbols.define_object("runqueues", base, arr);
    for cpu in 0..NR_CPUS {
        let addr = base + cpu * rq_size;
        let mut w = kb.obj(addr, st.rq);
        w.set_i64("cpu", cpu as i64).unwrap();
        w.set("clock", 1_000_000 + cpu * 137).unwrap();
    }
    RunQueues { base, rq_size }
}

/// Enqueue `task_addrs` (pre-sorted by ascending `se.vruntime`) on CPU
/// `cpu`'s CFS timeline, wiring the red-black tree the way
/// `enqueue_entity` leaves it.
pub fn enqueue_fair(
    kb: &mut KernelBuilder,
    st: &SchedTypes,
    tt: &TaskTypes,
    rqs: &RunQueues,
    cpu: u64,
    task_addrs: &[u64],
) {
    let rq_addr = rqs.cpu_rq(cpu);
    let (run_node_off, _) = kb.types.field_path(tt.task_struct, "se.run_node").unwrap();
    let nodes: Vec<u64> = task_addrs.iter().map(|t| t + run_node_off).collect();

    let (timeline_off, _) = kb
        .types
        .field_path(st.rq, "cfs.tasks_timeline.rb_root.rb_node")
        .unwrap();
    let (leftmost_off, _) = kb
        .types
        .field_path(st.rq, "cfs.tasks_timeline.rb_leftmost")
        .unwrap();
    let leftmost = structops::rb_build(&mut kb.mem, rq_addr + timeline_off, &nodes);
    kb.mem.write_uint(rq_addr + leftmost_off, 8, leftmost);

    let mut w = kb.obj(rq_addr, st.rq);
    w.set("nr_running", task_addrs.len() as u64).unwrap();
    w.set("cfs.nr_running", task_addrs.len() as u64).unwrap();
    w.set("cfs.h_nr_running", task_addrs.len() as u64).unwrap();
    if let Some(&first) = task_addrs.first() {
        w.set("cfs.min_vruntime", 0).unwrap();
        w.set("curr", first).unwrap();
        let se_addr = first + kb.types.field_path(tt.task_struct, "se").unwrap().0;
        kb.obj(rq_addr, st.rq).set("cfs.curr", se_addr).unwrap();
    }
    for &t in task_addrs {
        let mut tw = kb.obj(t, tt.task_struct);
        tw.set_i64("on_rq", 1).unwrap();
        tw.set_i64("cpu", cpu as i64).unwrap();
        tw.set("se.on_rq", 1).unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{self, TaskParams};

    fn setup() -> (KernelBuilder, SchedTypes, TaskTypes) {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let tt = tasks::register_types(&mut kb.types, &common);
        let st = register_types(&mut kb.types, &common);
        (kb, st, tt)
    }

    #[test]
    fn runqueues_symbol_and_percpu_layout() {
        let (mut kb, st, _tt) = setup();
        let rqs = create_runqueues(&mut kb, &st);
        let sym = kb.symbols.lookup("runqueues").unwrap();
        assert_eq!(sym.addr, rqs.base);
        assert_eq!(rqs.cpu_rq(1) - rqs.cpu_rq(0), kb.types.size_of(st.rq));
        // Each rq knows its own cpu index.
        let (cpu_off, _) = kb.types.field_path(st.rq, "cpu").unwrap();
        assert_eq!(kb.mem.read_int(rqs.cpu_rq(1) + cpu_off, 4).unwrap(), 1);
    }

    #[test]
    fn cfs_timeline_orders_by_vruntime() {
        let (mut kb, st, tt) = setup();
        let rqs = create_runqueues(&mut kb, &st);
        let mut addrs = Vec::new();
        for (i, vr) in [100u64, 250, 400, 800, 1600].iter().enumerate() {
            addrs.push(tasks::create_task(
                &mut kb,
                &tt,
                &TaskParams {
                    pid: 10 + i as i32,
                    vruntime: *vr,
                    ..Default::default()
                },
            ));
        }
        enqueue_fair(&mut kb, &st, &tt, &rqs, 0, &addrs);

        // Walk the rb-tree from raw memory and recover tasks via
        // container_of, checking in-order == vruntime order.
        let (timeline_off, _) = kb
            .types
            .field_path(st.rq, "cfs.tasks_timeline.rb_root.rb_node")
            .unwrap();
        let top = kb.mem.read_uint(rqs.cpu_rq(0) + timeline_off, 8).unwrap();
        let (run_node_off, _) = kb.types.field_path(tt.task_struct, "se.run_node").unwrap();
        let got: Vec<u64> = structops::rb_inorder(&kb.mem, top)
            .into_iter()
            .map(|n| structops::container_of(n, run_node_off))
            .collect();
        assert_eq!(got, addrs);

        let (nr_off, _) = kb.types.field_path(st.rq, "cfs.nr_running").unwrap();
        assert_eq!(kb.mem.read_uint(rqs.cpu_rq(0) + nr_off, 4).unwrap(), 5);
    }

    #[test]
    fn leftmost_cache_points_at_min_vruntime() {
        let (mut kb, st, tt) = setup();
        let rqs = create_runqueues(&mut kb, &st);
        let addrs: Vec<u64> = (0..7)
            .map(|i| {
                tasks::create_task(
                    &mut kb,
                    &tt,
                    &TaskParams {
                        pid: 20 + i,
                        vruntime: 100 * (i as u64 + 1),
                        ..Default::default()
                    },
                )
            })
            .collect();
        enqueue_fair(&mut kb, &st, &tt, &rqs, 1, &addrs);
        let (lm_off, _) = kb
            .types
            .field_path(st.rq, "cfs.tasks_timeline.rb_leftmost")
            .unwrap();
        let (rn_off, _) = kb.types.field_path(tt.task_struct, "se.run_node").unwrap();
        let lm = kb.mem.read_uint(rqs.cpu_rq(1) + lm_off, 8).unwrap();
        assert_eq!(structops::container_of(lm, rn_off), addrs[0]);
    }
}
