//! System V IPC: semaphores and message queues (ULK Fig 19-1/19-2).

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;
use crate::structops;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct IpcTypes {
    /// `struct kern_ipc_perm`.
    pub kern_ipc_perm: TypeId,
    /// `struct sem_array`.
    pub sem_array: TypeId,
    /// `struct sem`.
    pub sem: TypeId,
    /// `struct msg_queue`.
    pub msg_queue: TypeId,
    /// `struct msg_msg`.
    pub msg_msg: TypeId,
    /// `struct ipc_ids` (the namespace-level registry).
    pub ipc_ids: TypeId,
}

/// Register IPC types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> IpcTypes {
    let kern_ipc_perm = StructBuilder::new("kern_ipc_perm")
        .field("lock", common.spinlock)
        .field("deleted", common.bool_t)
        .field("id", common.int_t)
        .field("key", common.int_t)
        .field("uid", common.u32_t)
        .field("gid", common.u32_t)
        .field("cuid", common.u32_t)
        .field("cgid", common.u32_t)
        .field("mode", common.u16_t)
        .field("seq", common.u64_t)
        .field("refcount", common.refcount)
        .build(reg);

    let sem = StructBuilder::new("sem")
        .field("semval", common.int_t)
        .field("sempid", common.int_t)
        .field("lock", common.spinlock)
        .field("pending_alter", common.list_head)
        .field("pending_const", common.list_head)
        .field("sem_otime", common.long_t)
        .build(reg);

    let sem_array = StructBuilder::new("sem_array")
        .field("sem_perm", kern_ipc_perm)
        .field("sem_ctime", common.long_t)
        .field("pending_alter", common.list_head)
        .field("pending_const", common.list_head)
        .field("list_id", common.list_head)
        .field("sem_nsems", common.int_t)
        .field("complex_count", common.int_t)
        .build(reg);

    let msg_msg = StructBuilder::new("msg_msg")
        .field("m_list", common.list_head)
        .field("m_type", common.long_t)
        .field("m_ts", common.u64_t)
        .field("next", common.void_ptr)
        .field("security", common.void_ptr)
        .build(reg);

    let msg_queue = StructBuilder::new("msg_queue")
        .field("q_perm", kern_ipc_perm)
        .field("q_stime", common.long_t)
        .field("q_rtime", common.long_t)
        .field("q_ctime", common.long_t)
        .field("q_cbytes", common.u64_t)
        .field("q_qnum", common.u64_t)
        .field("q_qbytes", common.u64_t)
        .field("q_lspid", common.int_t)
        .field("q_lrpid", common.int_t)
        .field("list_id", common.list_head)
        .field("q_messages", common.list_head)
        .field("q_receivers", common.list_head)
        .field("q_senders", common.list_head)
        .build(reg);

    let ipc_ids = StructBuilder::new("ipc_ids")
        .field("in_use", common.int_t)
        .field("seq", common.u16_t)
        .field("entries", common.list_head)
        .build(reg);

    IpcTypes {
        kern_ipc_perm,
        sem_array,
        sem,
        msg_queue,
        msg_msg,
        ipc_ids,
    }
}

/// The IPC namespace registries (globals `sem_ids` / `msg_ids`).
#[derive(Debug, Clone)]
pub struct IpcState {
    /// Semaphore registry address.
    pub sem_ids: u64,
    /// Message-queue registry address.
    pub msg_ids: u64,
    /// Created semaphore arrays.
    pub sems: Vec<u64>,
    /// Created message queues.
    pub msgs: Vec<u64>,
    next_id: i64,
}

/// Create the namespace registries.
pub fn create_ipc_state(kb: &mut KernelBuilder, it: &IpcTypes) -> IpcState {
    let sem_ids = kb.alloc_global("sem_ids", it.ipc_ids);
    let msg_ids = kb.alloc_global("msg_ids", it.ipc_ids);
    for ids in [sem_ids, msg_ids] {
        let e = kb.obj(ids, it.ipc_ids).field_addr("entries").unwrap();
        structops::list_init(&mut kb.mem, e);
    }
    IpcState {
        sem_ids,
        msg_ids,
        sems: Vec::new(),
        msgs: Vec::new(),
        next_id: 0,
    }
}

/// Create a semaphore set of `nsems` semaphores with values `vals`.
pub fn create_sem_array(
    kb: &mut KernelBuilder,
    it: &IpcTypes,
    state: &mut IpcState,
    key: i64,
    vals: &[i64],
) -> u64 {
    // The kernel allocates sems[] inline after the struct; we mirror that
    // flexible-array layout by over-allocating.
    let base_size = kb.types.size_of(it.sem_array);
    let sem_size = kb.types.size_of(it.sem);
    let sa = {
        let total = base_size + sem_size * vals.len() as u64;
        let arr = kb.types.array_of(kb.common.u8_t, total);
        kb.alloc(arr)
    };
    let id = state.next_id;
    state.next_id += 1;
    let list_node;
    {
        let mut w = kb.obj(sa, it.sem_array);
        w.set_i64("sem_perm.id", id).unwrap();
        w.set_i64("sem_perm.key", key).unwrap();
        w.set("sem_perm.mode", 0o600).unwrap();
        w.set_i64("sem_perm.refcount.refs.counter", 1).unwrap();
        w.set_i64("sem_nsems", vals.len() as i64).unwrap();
        list_node = w.field_addr("list_id").unwrap();
        let pa = w.field_addr("pending_alter").unwrap();
        let pc = w.field_addr("pending_const").unwrap();
        drop(w);
        structops::list_init(&mut kb.mem, pa);
        structops::list_init(&mut kb.mem, pc);
    }
    for (i, &v) in vals.iter().enumerate() {
        let s = sa + base_size + sem_size * i as u64;
        let mut w = kb.obj(s, it.sem);
        w.set_i64("semval", v).unwrap();
        let pa = w.field_addr("pending_alter").unwrap();
        let pc = w.field_addr("pending_const").unwrap();
        drop(w);
        structops::list_init(&mut kb.mem, pa);
        structops::list_init(&mut kb.mem, pc);
    }
    let entries = kb
        .obj(state.sem_ids, it.ipc_ids)
        .field_addr("entries")
        .unwrap();
    structops::list_add_tail(&mut kb.mem, list_node, entries);
    let n = state.sems.len() as i64 + 1;
    kb.obj(state.sem_ids, it.ipc_ids)
        .set_i64("in_use", n)
        .unwrap();
    state.sems.push(sa);
    sa
}

/// Create a message queue holding messages of the given `(type, size)`s.
pub fn create_msg_queue(
    kb: &mut KernelBuilder,
    it: &IpcTypes,
    state: &mut IpcState,
    key: i64,
    messages: &[(i64, u64)],
) -> u64 {
    let mq = kb.alloc(it.msg_queue);
    let id = state.next_id;
    state.next_id += 1;
    let (q_messages, q_receivers, q_senders, list_id);
    {
        let mut w = kb.obj(mq, it.msg_queue);
        w.set_i64("q_perm.id", id).unwrap();
        w.set_i64("q_perm.key", key).unwrap();
        w.set("q_perm.mode", 0o600).unwrap();
        w.set("q_qnum", messages.len() as u64).unwrap();
        w.set("q_qbytes", 16384).unwrap();
        q_messages = w.field_addr("q_messages").unwrap();
        q_receivers = w.field_addr("q_receivers").unwrap();
        q_senders = w.field_addr("q_senders").unwrap();
        list_id = w.field_addr("list_id").unwrap();
    }
    let entries = kb
        .obj(state.msg_ids, it.ipc_ids)
        .field_addr("entries")
        .unwrap();
    structops::list_add_tail(&mut kb.mem, list_id, entries);
    {
        let n = state.msgs.len() as i64 + 1;
        kb.obj(state.msg_ids, it.ipc_ids)
            .set_i64("in_use", n)
            .unwrap();
    }
    structops::list_init(&mut kb.mem, q_messages);
    structops::list_init(&mut kb.mem, q_receivers);
    structops::list_init(&mut kb.mem, q_senders);
    let mut cbytes = 0u64;
    for &(mtype, msize) in messages {
        let m = kb.alloc(it.msg_msg);
        let node;
        {
            let mut w = kb.obj(m, it.msg_msg);
            w.set_i64("m_type", mtype).unwrap();
            w.set("m_ts", msize).unwrap();
            node = w.field_addr("m_list").unwrap();
        }
        structops::list_add_tail(&mut kb.mem, node, q_messages);
        cbytes += msize;
    }
    kb.obj(mq, it.msg_queue).set("q_cbytes", cbytes).unwrap();
    state.msgs.push(mq);
    mq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KernelBuilder, IpcTypes, IpcState) {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let it = register_types(&mut kb.types, &common);
        let state = create_ipc_state(&mut kb, &it);
        (kb, it, state)
    }

    #[test]
    fn sem_array_inline_semaphores() {
        let (mut kb, it, mut state) = setup();
        let sa = create_sem_array(&mut kb, &it, &mut state, 0x1234, &[3, 0, 7]);
        let base = kb.types.size_of(it.sem_array);
        let ssize = kb.types.size_of(it.sem);
        let (sv_off, _) = kb.types.field_path(it.sem, "semval").unwrap();
        assert_eq!(kb.mem.read_int(sa + base + sv_off, 4).unwrap(), 3);
        assert_eq!(
            kb.mem.read_int(sa + base + ssize * 2 + sv_off, 4).unwrap(),
            7
        );
        // Registry lists it.
        let entries = kb
            .obj(state.sem_ids, it.ipc_ids)
            .field_addr("entries")
            .unwrap();
        assert_eq!(structops::list_iter(&kb.mem, entries).len(), 1);
    }

    #[test]
    fn msg_queue_counts_bytes() {
        let (mut kb, it, mut state) = setup();
        let mq = create_msg_queue(&mut kb, &it, &mut state, 0x42, &[(1, 128), (2, 256)]);
        let (cb_off, _) = kb.types.field_path(it.msg_queue, "q_cbytes").unwrap();
        assert_eq!(kb.mem.read_uint(mq + cb_off, 8).unwrap(), 384);
        let (qm_off, _) = kb.types.field_path(it.msg_queue, "q_messages").unwrap();
        assert_eq!(structops::list_iter(&kb.mem, mq + qm_off).len(), 2);
    }

    #[test]
    fn ids_are_unique_across_kinds() {
        let (mut kb, it, mut state) = setup();
        let sa = create_sem_array(&mut kb, &it, &mut state, 1, &[0]);
        let mq = create_msg_queue(&mut kb, &it, &mut state, 2, &[]);
        let (sid_off, _) = kb.types.field_path(it.sem_array, "sem_perm.id").unwrap();
        let (qid_off, _) = kb.types.field_path(it.msg_queue, "q_perm.id").unwrap();
        let a = kb.mem.read_int(sa + sid_off, 4).unwrap();
        let b = kb.mem.read_int(mq + qid_off, 4).unwrap();
        assert_ne!(a, b);
    }
}
