//! `files_struct` and the fd array (ULK Fig 12-3).

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;

/// Default fd table capacity (one `BITS_PER_LONG` worth, like the kernel's
/// embedded `fd_array`).
pub const NR_OPEN_DEFAULT: u64 = 64;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct FdTypes {
    /// `struct files_struct`.
    pub files_struct: TypeId,
    /// `struct fdtable`.
    pub fdtable: TypeId,
}

/// Register fd-table types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> FdTypes {
    let file = reg.declare_struct("file");
    let file_ptr = reg.pointer_to(file);
    let file_ptr_ptr = reg.pointer_to(file_ptr);
    let ulong_ptr = reg.pointer_to(common.u64_t);

    let fdtable = StructBuilder::new("fdtable")
        .field("max_fds", common.u32_t)
        .field("fd", file_ptr_ptr)
        .field("close_on_exec", ulong_ptr)
        .field("open_fds", ulong_ptr)
        .field("full_fds_bits", ulong_ptr)
        .field("rcu", common.callback_head)
        .build(reg);
    let fdtable_ptr = reg.pointer_to(fdtable);

    let fd_array = reg.array_of(file_ptr, NR_OPEN_DEFAULT);
    let files_struct = StructBuilder::new("files_struct")
        .field("count", common.atomic)
        .field("resize_in_progress", common.bool_t)
        .field("fdt", fdtable_ptr)
        .field("fdtab", fdtable)
        .field("file_lock", common.spinlock)
        .field("next_fd", common.u32_t)
        .field("close_on_exec_init", common.u64_t)
        .field("open_fds_init", common.u64_t)
        .field("fd_array", fd_array)
        .build(reg);

    reg.define_const("NR_OPEN_DEFAULT", NR_OPEN_DEFAULT as i64);

    FdTypes {
        files_struct,
        fdtable,
    }
}

/// Create a `files_struct` whose `fdt` points at the embedded `fdtab`,
/// whose `fd` points at the embedded `fd_array`, holding `files` at
/// descriptors 0..n.
pub fn create_files(kb: &mut KernelBuilder, ft: &FdTypes, files: &[u64]) -> u64 {
    assert!(files.len() as u64 <= NR_OPEN_DEFAULT, "fd table overflow");
    let fs = kb.alloc(ft.files_struct);
    let (fdtab_off, _) = kb.types.field_path(ft.files_struct, "fdtab").unwrap();
    let (fd_array_off, _) = kb.types.field_path(ft.files_struct, "fd_array").unwrap();
    let (open_fds_init_off, _) = kb
        .types
        .field_path(ft.files_struct, "open_fds_init")
        .unwrap();

    let mut open_bits = 0u64;
    {
        let mut w = kb.obj(fs, ft.files_struct);
        w.set_i64("count.counter", 1).unwrap();
        w.set("fdt", fs + fdtab_off).unwrap();
        w.set("fdtab.max_fds", NR_OPEN_DEFAULT).unwrap();
        w.set("fdtab.fd", fs + fd_array_off).unwrap();
        w.set("fdtab.open_fds", fs + open_fds_init_off).unwrap();
        w.set("next_fd", files.len() as u64).unwrap();
        for (i, &f) in files.iter().enumerate() {
            w.set(&format!("fd_array[{i}]"), f).unwrap();
            open_bits |= 1 << i;
        }
        w.set("open_fds_init", open_bits).unwrap();
    }
    fs
}

/// Read back the open files of a `files_struct` the way a debugger does:
/// follow `fdt`, then `fd`, then index the array.
pub fn open_files(kb: &KernelBuilder, ft: &FdTypes, files_struct: u64) -> Vec<u64> {
    let (fdt_off, _) = kb.types.field_path(ft.files_struct, "fdt").unwrap();
    let fdt = kb.mem.read_uint(files_struct + fdt_off, 8).unwrap();
    let (maxfds_off, _) = kb.types.field_path(ft.fdtable, "max_fds").unwrap();
    let (fd_off, _) = kb.types.field_path(ft.fdtable, "fd").unwrap();
    let max = kb.mem.read_uint(fdt + maxfds_off, 4).unwrap();
    let arr = kb.mem.read_uint(fdt + fd_off, 8).unwrap();
    let mut out = Vec::new();
    for i in 0..max {
        let f = kb.mem.read_uint(arr + 8 * i, 8).unwrap();
        if f != 0 {
            out.push(f);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdt_points_at_embedded_fdtab_and_array() {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let ft = register_types(&mut kb.types, &common);
        let fake_files = vec![0xaaa0, 0xbbb0, 0xccc0];
        let fs = create_files(&mut kb, &ft, &fake_files);
        assert_eq!(open_files(&kb, &ft, fs), fake_files);
        // open_fds bitmap has exactly three bits set.
        let (bits_off, _) = kb
            .types
            .field_path(ft.files_struct, "open_fds_init")
            .unwrap();
        assert_eq!(kb.mem.read_uint(fs + bits_off, 8).unwrap(), 0b111);
    }

    #[test]
    fn sparse_fd_slots_are_skipped() {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let ft = register_types(&mut kb.types, &common);
        let fs = create_files(&mut kb, &ft, &[0x111_000]);
        // Clear fd 0, set fd 5 manually.
        let (arr_off, _) = kb.types.field_path(ft.files_struct, "fd_array").unwrap();
        kb.mem.write_uint(fs + arr_off, 8, 0);
        kb.mem.write_uint(fs + arr_off + 8 * 5, 8, 0x222_000);
        assert_eq!(open_files(&kb, &ft, fs), vec![0x222_000]);
    }
}
