//! The RCU callback list (StackRot case study, §3.2).
//!
//! Models per-CPU `rcu_data.cblist`: a singly linked chain of `rcu_head`s
//! whose `func` names the deferred destructor. The StackRot scenario moves
//! a maple node here (via its embedded `rcu` field) while another CPU still
//! holds a reference — the state the paper visualizes.

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct RcuTypes {
    /// `struct rcu_segcblist` (simplified to head/tail/len).
    pub rcu_segcblist: TypeId,
    /// `struct rcu_data` (per CPU).
    pub rcu_data: TypeId,
}

/// Register RCU types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> RcuTypes {
    let cb_ptr = {
        let cb = common.callback_head;
        reg.pointer_to(cb)
    };

    let rcu_segcblist = StructBuilder::new("rcu_segcblist")
        .field("head", cb_ptr)
        .field("tail", cb_ptr)
        .field("len", common.long_t)
        .build(reg);

    let rcu_data = StructBuilder::new("rcu_data")
        .field("gp_seq", common.u64_t)
        .field("gp_seq_needed", common.u64_t)
        .field("cblist", rcu_segcblist)
        .field("cpu", common.int_t)
        .build(reg);

    RcuTypes {
        rcu_segcblist,
        rcu_data,
    }
}

/// The per-CPU RCU state.
#[derive(Debug, Clone)]
pub struct RcuState {
    /// `rcu_data` per-CPU array base.
    pub base: u64,
    /// Size of one `rcu_data`.
    pub size: u64,
}

impl RcuState {
    /// `rcu_data` of `cpu`.
    pub fn cpu(&self, cpu: u64) -> u64 {
        self.base + cpu * self.size
    }
}

/// Allocate the per-CPU `rcu_data` array.
pub fn create_rcu_state(kb: &mut KernelBuilder, rt: &RcuTypes) -> RcuState {
    let ncpus = crate::sched::NR_CPUS;
    let arr = kb.types.array_of(rt.rcu_data, ncpus);
    let base = kb.alloc_percpu(arr);
    kb.symbols.define_object("rcu_data", base, arr);
    let size = kb.types.size_of(rt.rcu_data);
    for cpu in 0..ncpus {
        let mut w = kb.obj(base + cpu * size, rt.rcu_data);
        w.set_i64("cpu", cpu as i64).unwrap();
        w.set("gp_seq", 0x1000 + cpu * 4).unwrap();
    }
    RcuState { base, size }
}

/// `call_rcu`: enqueue the `rcu_head` at `head_addr` (embedded in some
/// dying object) with destructor `func_sym` on `cpu`'s callback list.
pub fn call_rcu(
    kb: &mut KernelBuilder,
    rt: &RcuTypes,
    state: &RcuState,
    cpu: u64,
    head_addr: u64,
    func_sym: &str,
) {
    let f = kb.func_sym(func_sym);
    kb.mem.write_uint(head_addr, 8, 0); // next = NULL
    kb.mem.write_uint(head_addr + 8, 8, f);

    let rd = state.cpu(cpu);
    let (head_off, _) = kb.types.field_path(rt.rcu_data, "cblist.head").unwrap();
    let (len_off, _) = kb.types.field_path(rt.rcu_data, "cblist.len").unwrap();
    // Append at tail of the singly linked chain.
    let mut cur = kb.mem.read_uint(rd + head_off, 8).unwrap();
    if cur == 0 {
        kb.mem.write_uint(rd + head_off, 8, head_addr);
    } else {
        loop {
            let next = kb.mem.read_uint(cur, 8).unwrap();
            if next == 0 {
                break;
            }
            cur = next;
        }
        kb.mem.write_uint(cur, 8, head_addr);
    }
    let len = kb.mem.read_uint(rd + len_off, 8).unwrap();
    kb.mem.write_uint(rd + len_off, 8, len + 1);
}

/// Collect `(rcu_head_addr, func)` pairs on `cpu`'s callback list.
pub fn pending_callbacks(
    kb: &KernelBuilder,
    rt: &RcuTypes,
    state: &RcuState,
    cpu: u64,
) -> Vec<(u64, u64)> {
    let rd = state.cpu(cpu);
    let (head_off, _) = kb.types.field_path(rt.rcu_data, "cblist.head").unwrap();
    let mut cur = kb.mem.read_uint(rd + head_off, 8).unwrap();
    let mut out = Vec::new();
    while cur != 0 {
        let func = kb.mem.read_uint(cur + 8, 8).unwrap();
        out.push((cur, func));
        cur = kb.mem.read_uint(cur, 8).unwrap();
        if out.len() > 100_000 {
            panic!("rcu callback list does not terminate");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn callbacks_enqueue_in_order() {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let rt = register_types(&mut kb.types, &common);
        let state = create_rcu_state(&mut kb, &rt);
        let h1 = kb.alloc(common.callback_head);
        let h2 = kb.alloc(common.callback_head);
        call_rcu(&mut kb, &rt, &state, 0, h1, "mt_free_rcu");
        call_rcu(&mut kb, &rt, &state, 0, h2, "i_callback");
        let cbs = pending_callbacks(&kb, &rt, &state, 0);
        assert_eq!(cbs.len(), 2);
        assert_eq!(cbs[0].0, h1);
        assert_eq!(kb.symbols.name_at(cbs[0].1), Some("mt_free_rcu"));
        assert_eq!(kb.symbols.name_at(cbs[1].1), Some("i_callback"));
        // Other CPU list untouched.
        assert!(pending_callbacks(&kb, &rt, &state, 1).is_empty());
    }
}
