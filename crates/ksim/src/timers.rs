//! The timer wheel (ULK Fig 6-1, "dynamic timers").

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;
use crate::structops;

/// Buckets in the simulated wheel (the real kernel has 576; the figure
/// only needs enough to show the bucketing structure).
pub const WHEEL_SIZE: u64 = 64;
/// Bits per wheel level.
pub const LVL_BITS: u64 = 6;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct TimerTypes {
    /// `struct timer_list`.
    pub timer_list: TypeId,
    /// `struct timer_base` (per CPU).
    pub timer_base: TypeId,
}

/// Register timer types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> TimerTypes {
    let timer_fn = reg.func("void (*)(struct timer_list *)");
    let timer_fn_ptr = reg.pointer_to(timer_fn);
    let timer_list = StructBuilder::new("timer_list")
        .field("entry", common.hlist_node)
        .field("expires", common.u64_t)
        .field("function", timer_fn_ptr)
        .field("flags", common.u32_t)
        .build(reg);
    let timer_ptr = reg.pointer_to(timer_list);

    let vectors = reg.array_of(common.hlist_head, WHEEL_SIZE);
    let timer_base = StructBuilder::new("timer_base")
        .field("lock", common.spinlock)
        .field("running_timer", timer_ptr)
        .field("clk", common.u64_t)
        .field("next_expiry", common.u64_t)
        .field("cpu", common.u32_t)
        .field("timers_pending", common.bool_t)
        .field("vectors", vectors)
        .build(reg);

    reg.define_const("WHEEL_SIZE", WHEEL_SIZE as i64);

    TimerTypes {
        timer_list,
        timer_base,
    }
}

/// The built per-CPU timer bases plus the `jiffies` global.
#[derive(Debug, Clone)]
pub struct TimerState {
    /// `timer_bases` per-cpu array address.
    pub bases: u64,
    /// Size of one base.
    pub base_size: u64,
    /// Address of the `jiffies` global.
    pub jiffies: u64,
}

impl TimerState {
    /// The timer base of `cpu`.
    pub fn base(&self, cpu: u64) -> u64 {
        self.bases + cpu * self.base_size
    }
}

/// Allocate per-CPU timer bases and the `jiffies` counter.
pub fn create_timer_bases(kb: &mut KernelBuilder, tt: &TimerTypes, jiffies: u64) -> TimerState {
    let ncpus = crate::sched::NR_CPUS;
    let arr = kb.types.array_of(tt.timer_base, ncpus);
    let bases = kb.alloc_percpu(arr);
    kb.symbols.define_object("timer_bases", bases, arr);
    let base_size = kb.types.size_of(tt.timer_base);

    let jf = kb.alloc_global("jiffies", kb.common.u64_t);
    kb.mem.write_uint(jf, 8, jiffies);

    for cpu in 0..ncpus {
        let addr = bases + cpu * base_size;
        let mut w = kb.obj(addr, tt.timer_base);
        w.set("cpu", cpu).unwrap();
        w.set("clk", jiffies).unwrap();
        drop(w);
        let (v_off, _) = kb.types.field_path(tt.timer_base, "vectors").unwrap();
        for i in 0..WHEEL_SIZE {
            structops::hlist_init(&mut kb.mem, addr + v_off + 8 * i);
        }
    }
    TimerState {
        bases,
        base_size,
        jiffies: jf,
    }
}

/// Bucket index for an expiry time (single-level approximation of
/// `calc_wheel_index`).
pub fn wheel_index(expires: u64) -> u64 {
    expires & (WHEEL_SIZE - 1)
}

/// Arm a timer expiring at `expires` running `func_sym` on `cpu`.
pub fn add_timer(
    kb: &mut KernelBuilder,
    tt: &TimerTypes,
    state: &TimerState,
    cpu: u64,
    expires: u64,
    func_sym: &str,
) -> u64 {
    let timer = kb.alloc(tt.timer_list);
    let f = kb.func_sym(func_sym);
    let entry;
    {
        let mut w = kb.obj(timer, tt.timer_list);
        w.set("expires", expires).unwrap();
        w.set("function", f).unwrap();
        w.set("flags", cpu).unwrap();
        entry = w.field_addr("entry").unwrap();
    }
    let (v_off, _) = kb.types.field_path(tt.timer_base, "vectors").unwrap();
    let bucket = state.base(cpu) + v_off + 8 * wheel_index(expires);
    structops::hlist_add_head(&mut kb.mem, entry, bucket);
    let mut w = kb.obj(state.base(cpu), tt.timer_base);
    w.set("timers_pending", 1).unwrap();
    let next = w.get("next_expiry").unwrap();
    if next == 0 || expires < next {
        w.set("next_expiry", expires).unwrap();
    }
    timer
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KernelBuilder, TimerTypes, TimerState) {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let tt = register_types(&mut kb.types, &common);
        let state = create_timer_bases(&mut kb, &tt, 4_295_000_000);
        (kb, tt, state)
    }

    #[test]
    fn jiffies_symbol_exists() {
        let (kb, _, state) = setup();
        assert_eq!(kb.symbols.lookup("jiffies").unwrap().addr, state.jiffies);
        assert_eq!(kb.mem.read_uint(state.jiffies, 8).unwrap(), 4_295_000_000);
    }

    #[test]
    fn timers_land_in_their_bucket() {
        let (mut kb, tt, state) = setup();
        let e1 = 4_295_000_010u64;
        let t1 = add_timer(&mut kb, &tt, &state, 0, e1, "process_timeout");
        let t2 = add_timer(&mut kb, &tt, &state, 0, e1, "delayed_work_timer_fn");
        let (v_off, _) = kb.types.field_path(tt.timer_base, "vectors").unwrap();
        let bucket = state.base(0) + v_off + 8 * wheel_index(e1);
        let got = structops::hlist_iter(&kb.mem, bucket);
        // entry is at offset 0 in timer_list, so nodes == timers.
        assert_eq!(got, vec![t2, t1]);
    }

    #[test]
    fn next_expiry_tracks_minimum() {
        let (mut kb, tt, state) = setup();
        add_timer(&mut kb, &tt, &state, 1, 5000, "a");
        add_timer(&mut kb, &tt, &state, 1, 3000, "b");
        add_timer(&mut kb, &tt, &state, 1, 9000, "c");
        let (ne_off, _) = kb.types.field_path(tt.timer_base, "next_expiry").unwrap();
        assert_eq!(kb.mem.read_uint(state.base(1) + ne_off, 8).unwrap(), 3000);
    }
}
