//! Reverse mapping of anonymous pages (ULK Fig 17-1).

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;
use crate::structops;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct RmapTypes {
    /// `struct anon_vma`.
    pub anon_vma: TypeId,
    /// `struct anon_vma_chain`.
    pub anon_vma_chain: TypeId,
}

/// Register rmap types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> RmapTypes {
    let av_fwd = reg.declare_struct("anon_vma");
    let av_ptr = reg.pointer_to(av_fwd);
    let vma_fwd = reg.declare_struct("vm_area_struct");
    let vma_ptr = reg.pointer_to(vma_fwd);

    let anon_vma = StructBuilder::new("anon_vma")
        .field("root", av_ptr)
        .field("parent", av_ptr)
        .field("refcount", common.atomic)
        .field("num_children", common.u64_t)
        .field("num_active_vmas", common.u64_t)
        .field("rb_root", common.rb_root_cached)
        .build(reg);

    let anon_vma_chain = StructBuilder::new("anon_vma_chain")
        .field("vma", vma_ptr)
        .field("anon_vma", av_ptr)
        .field("same_vma", common.list_head)
        .field("rb", common.rb_node)
        .field("rb_subtree_last", common.u64_t)
        .build(reg);

    RmapTypes {
        anon_vma,
        anon_vma_chain,
    }
}

/// Create an `anon_vma` with interval-tree chains for `vmas`, wiring each
/// VMA's `anon_vma` pointer and `anon_vma_chain` list back.
pub fn create_anon_vma(
    kb: &mut KernelBuilder,
    rt: &RmapTypes,
    mm_vma_ty: TypeId,
    vmas: &[u64],
) -> u64 {
    let av = kb.alloc(rt.anon_vma);
    {
        let mut w = kb.obj(av, rt.anon_vma);
        w.set("root", av).unwrap();
        w.set_i64("refcount.counter", 1 + vmas.len() as i64)
            .unwrap();
        w.set("num_active_vmas", vmas.len() as u64).unwrap();
    }
    let (rb_root_off, _) = kb
        .types
        .field_path(rt.anon_vma, "rb_root.rb_root.rb_node")
        .unwrap();
    let (leftmost_off, _) = kb
        .types
        .field_path(rt.anon_vma, "rb_root.rb_leftmost")
        .unwrap();
    let (rb_off, _) = kb.types.field_path(rt.anon_vma_chain, "rb").unwrap();

    let mut rb_nodes = Vec::new();
    for &vma in vmas {
        let avc = kb.alloc(rt.anon_vma_chain);
        let same_vma;
        {
            let mut w = kb.obj(avc, rt.anon_vma_chain);
            w.set("vma", vma).unwrap();
            w.set("anon_vma", av).unwrap();
            same_vma = w.field_addr("same_vma").unwrap();
        }
        structops::list_init(&mut kb.mem, same_vma);
        // Wire VMA -> anon_vma and VMA.anon_vma_chain -> avc.same_vma.
        let (av_field_off, _) = kb.types.field_path(mm_vma_ty, "anon_vma").unwrap();
        kb.mem.write_uint(vma + av_field_off, 8, av);
        let (avc_list_off, _) = kb.types.field_path(mm_vma_ty, "anon_vma_chain").unwrap();
        structops::list_init(&mut kb.mem, vma + avc_list_off);
        structops::list_add_tail(&mut kb.mem, same_vma, vma + avc_list_off);
        rb_nodes.push(avc + rb_off);
    }
    let leftmost = structops::rb_build(&mut kb.mem, av + rb_root_off, &rb_nodes);
    kb.mem.write_uint(av + leftmost_off, 8, leftmost);
    av
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{maple, mm};

    #[test]
    fn interval_tree_chains_point_both_ways() {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let maple_t = maple::register_types(&mut kb.types, &common);
        let mmt = mm::register_types(&mut kb.types, &common);
        let rt = register_types(&mut kb.types, &common);

        let built = mm::create_mm(&mut kb, &mmt, &maple_t, 0, &mm::typical_vmas(&[], 2));
        let anon: Vec<u64> = built.vmas.iter().copied().take(3).collect();
        let av = create_anon_vma(&mut kb, &rt, mmt.vm_area_struct, &anon);

        // Walk the interval tree and recover VMAs.
        let (rb_root_off, _) = kb
            .types
            .field_path(rt.anon_vma, "rb_root.rb_root.rb_node")
            .unwrap();
        let top = kb.mem.read_uint(av + rb_root_off, 8).unwrap();
        let (rb_off, _) = kb.types.field_path(rt.anon_vma_chain, "rb").unwrap();
        let (vma_off, _) = kb.types.field_path(rt.anon_vma_chain, "vma").unwrap();
        let got: Vec<u64> = structops::rb_inorder(&kb.mem, top)
            .into_iter()
            .map(|n| {
                let avc = structops::container_of(n, rb_off);
                kb.mem.read_uint(avc + vma_off, 8).unwrap()
            })
            .collect();
        assert_eq!(got, anon);

        // Each VMA points back to the anon_vma.
        let (av_off, _) = kb.types.field_path(mmt.vm_area_struct, "anon_vma").unwrap();
        for &vma in &anon {
            assert_eq!(kb.mem.read_uint(vma + av_off, 8).unwrap(), av);
        }
    }
}
