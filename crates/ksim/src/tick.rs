//! Deterministic stop-to-stop mutation of a *finished* image.
//!
//! The CVE scenarios in [`crate::scenarios`] inject bug state into the
//! still-mutable [`crate::workload::Workload`]; this module instead
//! models the ordinary case a pane server lives with: the kernel resumed,
//! ran a few ticks, and stopped again. A [`tick`] rewrites a handful of
//! scheduler fields in place — enough that task plots visibly change
//! between stops, while the overwhelming majority of the object graph
//! stays identical, which is exactly the workload delta sync exists for.

use crate::image::KernelImage;
use crate::tasks::{TASK_INTERRUPTIBLE, TASK_RUNNING};
use crate::workload::WorkloadRoots;

/// What one tick changed, so tests can assert the mutation was real.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickReport {
    /// The task whose `se.vruntime`/`utime` advanced.
    pub ran: u64,
    /// New `se.vruntime` of `ran`.
    pub vruntime: u64,
    /// The task whose `__state` toggled R↔S.
    pub toggled: u64,
    /// New `__state` of `toggled`.
    pub state: u64,
    /// The exact `(addr, len)` byte ranges this tick wrote —
    /// `se.vruntime` and `utime` of `ran`, `__state` of `toggled`.
    /// Incremental re-extraction intersects these with the spans each
    /// retained pane touched.
    pub dirty: [(u64, u64); 3],
}

/// Advance the simulated kernel by one scheduling tick (`step` numbers
/// the stop events, starting at 1 — each value produces a distinct
/// image).
///
/// Two tasks change: user leader 0 accrues virtual runtime and user time
/// as if it had just run, and the *last* leader toggles between runnable
/// and interruptible sleep. Everything else — VFS, page cache, pipes,
/// sockets, the other tasks — is untouched.
///
/// # Panics
///
/// Panics on an image without `task_struct` or user leaders (the default
/// workload always has both).
pub fn tick(img: &mut KernelImage, roots: &WorkloadRoots, step: u64) -> TickReport {
    let task = img.types.find("task_struct").expect("task_struct exists");
    let (vr_off, _) = img.types.field_path(task, "se.vruntime").unwrap();
    let (ut_off, _) = img.types.field_path(task, "utime").unwrap();
    let (st_off, _) = img.types.field_path(task, "__state").unwrap();

    let ran = roots.leaders[0];
    let vr = img.mem.read_uint(ran + vr_off, 8).unwrap() + 4_200_000 * step;
    img.mem.write_uint(ran + vr_off, 8, vr);
    let ut = img.mem.read_uint(ran + ut_off, 8).unwrap();
    img.mem.write_uint(ran + ut_off, 8, ut + 1_000_000 * step);

    let toggled = *roots.leaders.last().unwrap();
    let state = if step % 2 == 1 {
        TASK_INTERRUPTIBLE
    } else {
        TASK_RUNNING
    };
    img.mem.write_uint(toggled + st_off, 4, state);

    TickReport {
        ran,
        vruntime: vr,
        toggled,
        state,
        dirty: [(ran + vr_off, 8), (ran + ut_off, 8), (toggled + st_off, 4)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{build, WorkloadConfig};

    #[test]
    fn tick_mutates_two_tasks_deterministically() {
        let (mut img, _, roots) = build(&WorkloadConfig::default()).finish();
        let task = img.types.find("task_struct").unwrap();
        let (vr_off, _) = img.types.field_path(task, "se.vruntime").unwrap();
        let before = img.mem.read_uint(roots.leaders[0] + vr_off, 8).unwrap();

        let r1 = tick(&mut img, &roots, 1);
        assert_eq!(r1.vruntime, before + 4_200_000);
        assert_eq!(r1.state, TASK_INTERRUPTIBLE);
        // The reported dirty ranges are exactly the three fields written.
        assert_eq!(r1.dirty[0], (roots.leaders[0] + vr_off, 8));
        assert_eq!(r1.dirty[1].1, 8);
        assert_eq!(r1.dirty[2].1, 4);
        assert_eq!(
            img.mem.read_uint(roots.leaders[0] + vr_off, 8).unwrap(),
            r1.vruntime
        );

        // Step 2 toggles the sleeper back and keeps accruing runtime.
        let r2 = tick(&mut img, &roots, 2);
        assert_eq!(r2.state, TASK_RUNNING);
        assert_eq!(r2.vruntime, r1.vruntime + 8_400_000);

        // Same seed, same steps ⇒ same image (mutation is deterministic).
        let (mut img2, _, roots2) = build(&WorkloadConfig::default()).finish();
        tick(&mut img2, &roots2, 1);
        let s2 = tick(&mut img2, &roots2, 2);
        assert_eq!(s2, r2);
    }
}
