//! `mm_struct` and VMAs over a maple tree (ULK Fig 9-2, paper §3.1/§3.2).
//!
//! In Linux 6.1 a process address space is an `mm_struct` whose memory
//! areas live in the `mm_mt` maple tree keyed by byte range. The builder
//! here lays out realistic VMA sets (code, data, heap, mmaps, stack) and
//! hands the range set to [`crate::maple::build_tree`].

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;
use crate::maple::{self, MapleEntry, MapleTypes};

/// `vm_flags` bits (`include/linux/mm.h`).
pub const VM_READ: u64 = 0x0001;
/// Writable mapping.
pub const VM_WRITE: u64 = 0x0002;
/// Executable mapping.
pub const VM_EXEC: u64 = 0x0004;
/// Shared mapping.
pub const VM_SHARED: u64 = 0x0008;
/// Stack-like mapping that grows downwards.
pub const VM_GROWSDOWN: u64 = 0x0100;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct MmTypes {
    /// `struct mm_struct`.
    pub mm_struct: TypeId,
    /// `struct vm_area_struct`.
    pub vm_area_struct: TypeId,
}

/// Register address-space types (requires maple types registered).
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> MmTypes {
    let maple_tree = reg
        .lookup("maple_tree")
        .expect("maple types registered first");
    let task = reg.declare_struct("task_struct");
    let task_ptr = reg.pointer_to(task);
    let file = reg.declare_struct("file");
    let file_ptr = reg.pointer_to(file);
    let anon_vma = reg.declare_struct("anon_vma");
    let anon_vma_ptr = reg.pointer_to(anon_vma);
    let mm_fwd = reg.declare_struct("mm_struct");
    let mm_ptr = reg.pointer_to(mm_fwd);

    let vm_area_struct = StructBuilder::new("vm_area_struct")
        .field("vm_start", common.u64_t)
        .field("vm_end", common.u64_t)
        .field("vm_mm", mm_ptr)
        .field("vm_page_prot", common.u64_t)
        .field("vm_flags", common.u64_t)
        .field("anon_vma_chain", common.list_head)
        .field("anon_vma", anon_vma_ptr)
        .field("vm_ops", common.void_ptr)
        .field("vm_pgoff", common.u64_t)
        .field("vm_file", file_ptr)
        .build(reg);

    let mm_struct = StructBuilder::new("mm_struct")
        .field("mm_mt", maple_tree)
        .field("mmap_base", common.u64_t)
        .field("task_size", common.u64_t)
        .field("pgd", common.void_ptr)
        .field("mm_users", common.atomic)
        .field("mm_count", common.atomic)
        .field("map_count", common.int_t)
        .field("page_table_lock", common.spinlock)
        .field("mmap_lock_count", common.atomic64)
        .field("hiwater_rss", common.u64_t)
        .field("total_vm", common.u64_t)
        .field("stack_vm", common.u64_t)
        .field("data_vm", common.u64_t)
        .field("exec_vm", common.u64_t)
        .field("start_code", common.u64_t)
        .field("end_code", common.u64_t)
        .field("start_data", common.u64_t)
        .field("end_data", common.u64_t)
        .field("start_brk", common.u64_t)
        .field("brk", common.u64_t)
        .field("start_stack", common.u64_t)
        .field("arg_start", common.u64_t)
        .field("arg_end", common.u64_t)
        .field("env_start", common.u64_t)
        .field("env_end", common.u64_t)
        .field("owner", task_ptr)
        .build(reg);

    reg.define_const("VM_READ", VM_READ as i64);
    reg.define_const("VM_WRITE", VM_WRITE as i64);
    reg.define_const("VM_EXEC", VM_EXEC as i64);
    reg.define_const("VM_SHARED", VM_SHARED as i64);
    reg.define_const("VM_GROWSDOWN", VM_GROWSDOWN as i64);

    MmTypes {
        mm_struct,
        vm_area_struct,
    }
}

/// One requested memory area.
#[derive(Debug, Clone)]
pub struct VmaSpec {
    /// Start address (page aligned).
    pub start: u64,
    /// End address (exclusive, page aligned).
    pub end: u64,
    /// `vm_flags`.
    pub flags: u64,
    /// Backing file object address (0 for anonymous).
    pub file: u64,
    /// File page offset.
    pub pgoff: u64,
}

/// A built address space.
#[derive(Debug, Clone)]
pub struct BuiltMm {
    /// `mm_struct` address.
    pub mm: u64,
    /// Created VMA addresses, in address order.
    pub vmas: Vec<u64>,
    /// The maple tree built over them.
    pub tree: maple::BuiltMaple,
}

/// Create an `mm_struct` with the given memory areas in its maple tree.
///
/// # Panics
///
/// Panics if `specs` is not sorted by `start` with disjoint ranges (the
/// builder contract, mirrored from [`maple::build_tree`]).
pub fn create_mm(
    kb: &mut KernelBuilder,
    mt: &MmTypes,
    maple_t: &MapleTypes,
    owner_task: u64,
    specs: &[VmaSpec],
) -> BuiltMm {
    let mm = kb.alloc(mt.mm_struct);

    let mut vmas = Vec::with_capacity(specs.len());
    let mut entries = Vec::with_capacity(specs.len());
    for s in specs {
        let vma = kb.alloc(mt.vm_area_struct);
        let mut w = kb.obj(vma, mt.vm_area_struct);
        w.set("vm_start", s.start).unwrap();
        w.set("vm_end", s.end).unwrap();
        w.set("vm_mm", mm).unwrap();
        w.set("vm_flags", s.flags).unwrap();
        w.set("vm_file", s.file).unwrap();
        w.set("vm_pgoff", s.pgoff).unwrap();
        w.set("vm_page_prot", prot_of(s.flags)).unwrap();
        vmas.push(vma);
        entries.push(MapleEntry {
            first: s.start,
            last: s.end - 1,
            value: vma,
        });
    }

    let (tree_off, _) = kb.types.field_path(mt.mm_struct, "mm_mt").unwrap();
    let tree = maple::build_tree(kb, maple_t, mm + tree_off, &entries);

    let total_vm: u64 = specs.iter().map(|s| (s.end - s.start) / 4096).sum();
    let stack_vm: u64 = specs
        .iter()
        .filter(|s| s.flags & VM_GROWSDOWN != 0)
        .map(|s| (s.end - s.start) / 4096)
        .sum();
    let mut w = kb.obj(mm, mt.mm_struct);
    w.set("owner", owner_task).unwrap();
    w.set_i64("map_count", specs.len() as i64).unwrap();
    w.set("total_vm", total_vm).unwrap();
    w.set("stack_vm", stack_vm).unwrap();
    w.set("task_size", 0x7fff_ffff_f000).unwrap();
    w.set("mmap_base", 0x7f00_0000_0000).unwrap();
    w.set_i64("mm_users.counter", 1).unwrap();
    w.set_i64("mm_count.counter", 1).unwrap();
    if let Some(first) = specs.first() {
        w.set("start_code", first.start).unwrap();
        w.set("end_code", first.end).unwrap();
    }
    if let Some(last) = specs.last() {
        w.set("start_stack", last.start).unwrap();
    }

    BuiltMm { mm, vmas, tree }
}

fn prot_of(flags: u64) -> u64 {
    // A pgprot-like encoding: present | rw | nx bits, enough for display.
    let mut p = 0x8000_0000_0000_0025u64;
    if flags & VM_WRITE != 0 {
        p |= 0x2;
    }
    if flags & VM_EXEC == 0 {
        p |= 1 << 63;
    }
    p
}

/// A typical small process address space: code, rodata, data, heap, a few
/// file mappings, libc, stack.
pub fn typical_vmas(file_objs: &[u64], extra_anon: usize) -> Vec<VmaSpec> {
    let mut v = vec![
        VmaSpec {
            start: 0x40_0000,
            end: 0x40_2000,
            flags: VM_READ | VM_EXEC,
            file: file_objs.first().copied().unwrap_or(0),
            pgoff: 0,
        },
        VmaSpec {
            start: 0x40_2000,
            end: 0x40_3000,
            flags: VM_READ,
            file: file_objs.first().copied().unwrap_or(0),
            pgoff: 2,
        },
        VmaSpec {
            start: 0x40_3000,
            end: 0x40_5000,
            flags: VM_READ | VM_WRITE,
            file: file_objs.first().copied().unwrap_or(0),
            pgoff: 3,
        },
        VmaSpec {
            start: 0x50_0000,
            end: 0x52_0000,
            flags: VM_READ | VM_WRITE,
            file: 0,
            pgoff: 0,
        },
    ];
    let mut base = 0x7f00_0000_0000u64;
    for (i, f) in file_objs.iter().skip(1).enumerate() {
        v.push(VmaSpec {
            start: base,
            end: base + 0x4000,
            flags: if i % 2 == 0 {
                VM_READ
            } else {
                VM_READ | VM_WRITE | VM_SHARED
            },
            file: *f,
            pgoff: 0,
        });
        base += 0x10_0000;
    }
    for _ in 0..extra_anon {
        v.push(VmaSpec {
            start: base,
            end: base + 0x2000,
            flags: VM_READ | VM_WRITE,
            file: 0,
            pgoff: 0,
        });
        base += 0x10_0000;
    }
    v.push(VmaSpec {
        start: 0x7ffc_0000_0000,
        end: 0x7ffc_0002_0000,
        flags: VM_READ | VM_WRITE | VM_GROWSDOWN,
        file: 0,
        pgoff: 0,
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maple;

    fn setup() -> (KernelBuilder, MmTypes, MapleTypes) {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let maple_t = maple::register_types(&mut kb.types, &common);
        let mt = register_types(&mut kb.types, &common);
        (kb, mt, maple_t)
    }

    #[test]
    fn mm_mt_is_embedded_at_offset_zero() {
        let (kb, mt, _) = setup();
        let (off, ty) = kb.types.field_path(mt.mm_struct, "mm_mt").unwrap();
        assert_eq!(off, 0, "mm_mt is the first field like Linux 6.1");
        assert_eq!(kb.types.tag_name(ty), Some("maple_tree"));
    }

    #[test]
    fn create_mm_builds_walkable_tree() {
        let (mut kb, mt, maple_t) = setup();
        let specs = typical_vmas(&[], 3);
        let built = create_mm(&mut kb, &mt, &maple_t, 0, &specs);
        assert_eq!(built.vmas.len(), specs.len());

        let (root_off, _) = kb.types.field_path(mt.mm_struct, "mm_mt.ma_root").unwrap();
        let root = kb.mem.read_uint(built.mm + root_off, 8).unwrap();
        assert!(maple::xa_is_node(root));
        let walked = maple::walk_entries(&kb.mem, root);
        let got: Vec<u64> = walked.iter().map(|e| e.value).collect();
        assert_eq!(got, built.vmas);
        // Ranges round-trip through pivots.
        assert_eq!(walked[0].first, specs[0].start);
        assert_eq!(walked[0].last, specs[0].end - 1);
    }

    #[test]
    fn vma_fields_read_back() {
        let (mut kb, mt, maple_t) = setup();
        let specs = vec![VmaSpec {
            start: 0x1000,
            end: 0x3000,
            flags: VM_READ | VM_WRITE,
            file: 0x00de_adbe_ef00,
            pgoff: 7,
        }];
        let built = create_mm(&mut kb, &mt, &maple_t, 0x1234, &specs);
        let vma = built.vmas[0];
        let r = |path: &str| {
            let (off, ty) = kb.types.field_path(mt.vm_area_struct, path).unwrap();
            let size = match kb.types.size_of(ty) {
                0 => 8,
                n => n.min(8),
            };
            kb.mem.read_uint(vma + off, size as usize).unwrap()
        };
        assert_eq!(r("vm_start"), 0x1000);
        assert_eq!(r("vm_end"), 0x3000);
        assert_eq!(r("vm_flags"), VM_READ | VM_WRITE);
        assert_eq!(r("vm_file"), 0x00de_adbe_ef00);
        assert_eq!(r("vm_pgoff"), 7);
    }

    #[test]
    fn counters_are_derived() {
        let (mut kb, mt, maple_t) = setup();
        let specs = typical_vmas(&[], 0);
        let built = create_mm(&mut kb, &mt, &maple_t, 0, &specs);
        let (mc_off, _) = kb.types.field_path(mt.mm_struct, "map_count").unwrap();
        assert_eq!(
            kb.mem.read_int(built.mm + mc_off, 4).unwrap(),
            specs.len() as i64
        );
        let (sv_off, _) = kb.types.field_path(mt.mm_struct, "stack_vm").unwrap();
        assert_eq!(
            kb.mem.read_uint(built.mm + sv_off, 8).unwrap(),
            0x20000 / 4096
        );
    }
}
