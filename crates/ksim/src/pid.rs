//! `struct pid` and the PID hash table (ULK Fig 3-6).
//!
//! Modern kernels moved PID lookup to an IDR, but the paper ports ULK's
//! Fig 3-6 — the *hash table* view — to Linux 6; we model the classic
//! `pid_hash` array of `hlist_head`s whose chains thread through
//! `struct pid`, each pid holding per-type hlists of tasks. The Δ column
//! of Table 2 marks this figure as "some fields changed", which is exactly
//! what this module reproduces.

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;
use crate::structops;
use crate::tasks::TaskTypes;

/// Number of buckets in the simulated `pid_hash`.
pub const PID_HASH_SIZE: u64 = 16;

/// `enum pid_type` values.
pub const PIDTYPE_PID: u64 = 0;
/// Thread-group id.
pub const PIDTYPE_TGID: u64 = 1;
/// Process-group id.
pub const PIDTYPE_PGID: u64 = 2;
/// Session id.
pub const PIDTYPE_SID: u64 = 3;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct PidTypes {
    /// `struct pid`.
    pub pid: TypeId,
    /// `struct upid` (the hash-chained numeric id).
    pub upid: TypeId,
}

/// Register pid types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> PidTypes {
    let upid = StructBuilder::new("upid")
        .field("nr", common.int_t)
        .field("ns", common.void_ptr)
        .field("pid_chain", common.hlist_node)
        .build(reg);

    let tasks4 = reg.array_of(common.hlist_head, 4);
    let upid1 = reg.array_of(upid, 1);
    let pid = StructBuilder::new("pid")
        .field("count", common.refcount)
        .field("level", common.u32_t)
        .field("tasks", tasks4)
        .field("rcu", common.callback_head)
        .field("numbers", upid1)
        .build(reg);

    reg.define_const("PIDTYPE_PID", PIDTYPE_PID as i64);
    reg.define_const("PIDTYPE_TGID", PIDTYPE_TGID as i64);
    reg.define_const("PIDTYPE_PGID", PIDTYPE_PGID as i64);
    reg.define_const("PIDTYPE_SID", PIDTYPE_SID as i64);
    reg.define_const("PID_HASH_SIZE", PID_HASH_SIZE as i64);

    PidTypes { pid, upid }
}

/// The built PID hash table.
#[derive(Debug, Clone)]
pub struct PidHash {
    /// Address of the `hlist_head pid_hash[PID_HASH_SIZE]` global.
    pub table: u64,
    /// Created `struct pid` addresses, indexed by creation order.
    pub pids: Vec<u64>,
}

/// The hash function (a simple multiplicative hash like `pid_hashfn`).
pub fn pid_hashfn(nr: u64) -> u64 {
    (nr.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % PID_HASH_SIZE
}

/// Allocate the global `pid_hash` table.
pub fn create_pid_hash(kb: &mut KernelBuilder, common: &CommonTypes) -> PidHash {
    let arr = kb.types.array_of(common.hlist_head, PID_HASH_SIZE);
    let table = kb.alloc_global("pid_hash", arr);
    for i in 0..PID_HASH_SIZE {
        structops::hlist_init(&mut kb.mem, table + i * 8);
    }
    PidHash {
        table,
        pids: Vec::new(),
    }
}

/// Allocate a `struct pid` for `nr`, chain it into the hash table, and
/// attach `task` to its `tasks[PIDTYPE_PID]` list.
pub fn attach_pid(
    kb: &mut KernelBuilder,
    pt: &PidTypes,
    tt: &TaskTypes,
    hash: &mut PidHash,
    task: u64,
    nr: i32,
) -> u64 {
    let pid = kb.alloc(pt.pid);
    let chain;
    let tasks0;
    {
        let mut w = kb.obj(pid, pt.pid);
        w.set_i64("count.refs.counter", 1).unwrap();
        w.set_i64("numbers[0].nr", nr as i64).unwrap();
        chain = w.field_addr("numbers[0].pid_chain").unwrap();
        tasks0 = w.field_addr("tasks[0]").unwrap();
    }
    let bucket = hash.table + pid_hashfn(nr as u64) * 8;
    structops::hlist_add_head(&mut kb.mem, chain, bucket);

    structops::hlist_init(&mut kb.mem, tasks0);
    let link;
    {
        let mut w = kb.obj(task, tt.task_struct);
        w.set("thread_pid", pid).unwrap();
        link = w.field_addr("pid_links[0]").unwrap();
    }
    structops::hlist_add_head(&mut kb.mem, link, tasks0);
    hash.pids.push(pid);
    pid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{self, TaskParams};

    fn setup() -> (KernelBuilder, PidTypes, TaskTypes) {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let tt = tasks::register_types(&mut kb.types, &common);
        let pt = register_types(&mut kb.types, &common);
        (kb, pt, tt)
    }

    #[test]
    fn hash_is_stable_and_in_range() {
        for nr in 0..500 {
            assert!(pid_hashfn(nr) < PID_HASH_SIZE);
        }
        assert_eq!(pid_hashfn(42), pid_hashfn(42));
    }

    #[test]
    fn attach_pid_chains_into_bucket() {
        let (mut kb, pt, tt) = setup();
        let common = kb.common;
        let mut hash = create_pid_hash(&mut kb, &common);
        let task = tasks::create_task(
            &mut kb,
            &tt,
            &TaskParams {
                pid: 42,
                ..Default::default()
            },
        );
        let pid = attach_pid(&mut kb, &pt, &tt, &mut hash, task, 42);

        let bucket = hash.table + pid_hashfn(42) * 8;
        let chains = structops::hlist_iter(&kb.mem, bucket);
        let (chain_off, _) = kb.types.field_path(pt.pid, "numbers[0].pid_chain").unwrap();
        assert_eq!(chains.len(), 1);
        assert_eq!(structops::container_of(chains[0], chain_off), pid);

        // The pid's task list leads back to the task.
        let (tasks_off, _) = kb.types.field_path(pt.pid, "tasks[0]").unwrap();
        let links = structops::hlist_iter(&kb.mem, pid + tasks_off);
        let (link_off, _) = kb.types.field_path(tt.task_struct, "pid_links[0]").unwrap();
        assert_eq!(structops::container_of(links[0], link_off), task);

        // nr is readable.
        let (nr_off, _) = kb.types.field_path(pt.pid, "numbers[0].nr").unwrap();
        assert_eq!(kb.mem.read_int(pid + nr_off, 4).unwrap(), 42);
    }

    #[test]
    fn colliding_pids_share_a_bucket() {
        let (mut kb, pt, tt) = setup();
        let common = kb.common;
        let mut hash = create_pid_hash(&mut kb, &common);
        // Find two numbers that collide.
        let a = 1u64;
        let b = (2..10_000)
            .find(|&n| pid_hashfn(n) == pid_hashfn(a))
            .unwrap();
        let ta = tasks::create_task(
            &mut kb,
            &tt,
            &TaskParams {
                pid: a as i32,
                ..Default::default()
            },
        );
        let tb = tasks::create_task(
            &mut kb,
            &tt,
            &TaskParams {
                pid: b as i32,
                ..Default::default()
            },
        );
        attach_pid(&mut kb, &pt, &tt, &mut hash, ta, a as i32);
        attach_pid(&mut kb, &pt, &tt, &mut hash, tb, b as i32);
        let bucket = hash.table + pid_hashfn(a) * 8;
        assert_eq!(structops::hlist_iter(&kb.mem, bucket).len(), 2);
    }
}
