//! The maple tree (Linux 6.1 `lib/maple_tree.c`), byte-compatible subset.
//!
//! The maple tree is the range-based B-tree that replaced the VMA red-black
//! tree in Linux 6.1 and the centerpiece of the paper's motivating example
//! (§1, §3.1, Figure 3/4) and of the StackRot case study (§3.2). This
//! module reproduces the parts a debugger sees:
//!
//! * `struct maple_node` — a 256-byte union of per-type layouts
//!   (`maple_range_64` with 16 slots / 15 pivots, `maple_arange_64` with
//!   10 slots / 9 pivots / 10 gaps);
//! * tagged node pointers (`maple_enode`): the node type is packed into
//!   bits 3–6 and bit 1 marks "this is a node" (`xa_is_node`);
//! * parent pointers that mark the root by pointing at the tree with bit 0.
//!
//! Builders produce trees whose raw bytes decode exactly like a stopped
//! kernel's, which is what makes the ViewCL program of Figure 3 meaningful.

use ktypes::{EnumDef, StructBuilder, TypeId, TypeRegistry};

use crate::image::KernelBuilder;

/// Slots in a `maple_range_64` node.
pub const MAPLE_RANGE64_SLOTS: u64 = 16;
/// Slots in a `maple_arange_64` node.
pub const MAPLE_ARANGE64_SLOTS: u64 = 10;
/// Low-bit mask that must be cleared to recover a node address.
pub const MAPLE_NODE_MASK: u64 = 255;
/// Branching factor used by the builder (leaves kept slack like a real
/// tree that grew by insertion).
pub const BUILD_FANOUT: usize = 8;

/// `enum maple_type` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapleType {
    /// Dense leaf (consecutive indices).
    Dense = 0,
    /// 64-bit sparse leaf.
    Leaf64 = 1,
    /// Internal range node.
    Range64 = 2,
    /// Internal range node with gap tracking (used by `mm_mt`).
    Arange64 = 3,
}

/// Encode a node address + type into a `maple_enode` tagged pointer.
pub fn mt_mk_node(addr: u64, ty: MapleType) -> u64 {
    debug_assert_eq!(
        addr & MAPLE_NODE_MASK,
        0,
        "maple nodes are 256-byte aligned"
    );
    addr | ((ty as u64) << 3) | 2
}

/// Recover the `maple_node` address from a tagged pointer.
pub fn mte_to_node(enode: u64) -> u64 {
    enode & !MAPLE_NODE_MASK
}

/// Extract the node type from a tagged pointer.
pub fn mte_node_type(enode: u64) -> u64 {
    (enode >> 3) & 0x0f
}

/// Whether a node type is a leaf type.
pub fn ma_is_leaf(node_type: u64) -> bool {
    node_type < MapleType::Range64 as u64
}

/// Whether an entry stored in `ma_root` (or a slot) is an internal node
/// pointer rather than a value entry (kernel `xa_is_node`).
pub fn xa_is_node(entry: u64) -> bool {
    entry & 3 == 2 && entry > 4096
}

/// Type ids registered for the maple tree.
#[derive(Debug, Clone, Copy)]
pub struct MapleTypes {
    /// `struct maple_tree`.
    pub maple_tree: TypeId,
    /// `union maple_node` (256 bytes).
    pub maple_node: TypeId,
    /// `struct maple_range_64`.
    pub maple_range_64: TypeId,
    /// `struct maple_arange_64`.
    pub maple_arange_64: TypeId,
}

/// Register the maple-tree types and constants.
pub fn register_types(reg: &mut TypeRegistry, common: &crate::common::CommonTypes) -> MapleTypes {
    let u8_t = common.u8_t;
    let u64_t = common.u64_t;
    let void_ptr = common.void_ptr;

    reg.intern_enum(EnumDef {
        name: "maple_type".into(),
        variants: vec![
            ("maple_dense".into(), MapleType::Dense as i64),
            ("maple_leaf_64".into(), MapleType::Leaf64 as i64),
            ("maple_range_64".into(), MapleType::Range64 as i64),
            ("maple_arange_64".into(), MapleType::Arange64 as i64),
        ],
        size: 4,
    });
    reg.define_const("MAPLE_NODE_MASK", MAPLE_NODE_MASK as i64);
    reg.define_const("MAPLE_RANGE64_SLOTS", MAPLE_RANGE64_SLOTS as i64);
    reg.define_const("MAPLE_ARANGE64_SLOTS", MAPLE_ARANGE64_SLOTS as i64);
    reg.define_const("MT_FLAGS_ALLOC_RANGE", 0x01);
    reg.define_const("MA_ROOT_PARENT", 1);

    let pivot15 = reg.array_of(u64_t, MAPLE_RANGE64_SLOTS - 1);
    let slot16 = reg.array_of(void_ptr, MAPLE_RANGE64_SLOTS);
    let maple_range_64 = StructBuilder::new("maple_range_64")
        .field("parent", void_ptr)
        .field("pivot", pivot15)
        .field("slot", slot16)
        .build(reg);

    let pivot9 = reg.array_of(u64_t, MAPLE_ARANGE64_SLOTS - 1);
    let slot10 = reg.array_of(void_ptr, MAPLE_ARANGE64_SLOTS);
    let gap10 = reg.array_of(u64_t, MAPLE_ARANGE64_SLOTS);
    let maple_arange_64 = StructBuilder::new("maple_arange_64")
        .field("parent", void_ptr)
        .field("pivot", pivot9)
        .field("slot", slot10)
        .field("gap", gap10)
        .field("meta_end", u8_t)
        .field("meta_gap", u8_t)
        .build(reg);

    let slot31 = reg.array_of(void_ptr, 31);
    let maple_node_any = StructBuilder::new("maple_node_any")
        .field("parent", void_ptr)
        .field("slot", slot31)
        .build(reg);

    let rcu_part = StructBuilder::new("maple_node_rcu")
        .field("pad", void_ptr)
        .field("rcu", common.callback_head)
        .field("piv_parent", void_ptr)
        .field("parent_slot", u8_t)
        .field("ma_type", common.u32_t)
        .field("slot_len", u8_t)
        .field("ma_flags", common.u32_t)
        .build(reg);

    let maple_node = StructBuilder::union("maple_node")
        .field("parent", void_ptr)
        .field("any", maple_node_any)
        .field("prcu", rcu_part)
        .field("mr64", maple_range_64)
        .field("ma64", maple_arange_64)
        .build(reg);

    let maple_tree = StructBuilder::new("maple_tree")
        .field("ma_lock", common.spinlock)
        .field("ma_flags", common.u32_t)
        .field("ma_root", void_ptr)
        .build(reg);

    MapleTypes {
        maple_tree,
        maple_node,
        maple_range_64,
        maple_arange_64,
    }
}

/// One stored range: entry `value` occupies `[first, last]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapleEntry {
    /// First index of the range.
    pub first: u64,
    /// Last index of the range (inclusive).
    pub last: u64,
    /// The stored pointer (0 encodes an explicit NULL/gap range).
    pub value: u64,
}

/// Result of building a tree: the root entry plus bookkeeping for tests
/// and scenarios.
#[derive(Debug, Clone)]
pub struct BuiltMaple {
    /// The value written to `ma_root` (a tagged node pointer, a plain
    /// entry, or 0 for an empty tree).
    pub root: u64,
    /// Addresses of all allocated `maple_node`s, leaves first.
    pub nodes: Vec<u64>,
    /// Addresses of the leaf nodes only.
    pub leaves: Vec<u64>,
}

/// Build a maple tree over `entries` (sorted, non-overlapping, gaps
/// allowed) and store its root into the `maple_tree` object at `tree_addr`.
///
/// Explicit NULL ranges are synthesized for gaps between entries so every
/// index up to the last entry maps to a slot, like a real VMA tree.
///
/// # Panics
///
/// Panics if `entries` is not sorted by `first` or contains overlapping
/// ranges — the builder's contract, not a runtime condition.
pub fn build_tree(
    kb: &mut KernelBuilder,
    mt: &MapleTypes,
    tree_addr: u64,
    entries: &[MapleEntry],
) -> BuiltMaple {
    for w in entries.windows(2) {
        assert!(
            w[0].last < w[1].first,
            "maple entries must be sorted and disjoint: {:?} vs {:?}",
            w[0],
            w[1]
        );
    }

    // Write the tree header.
    {
        let mut w = kb.obj(tree_addr, mt.maple_tree);
        w.set("ma_flags", 0x01).unwrap(); // MT_FLAGS_ALLOC_RANGE, like mm_mt.
    }

    // Interleave explicit NULL ranges for the gaps.
    let mut ranges: Vec<MapleEntry> = Vec::new();
    let mut cursor = 0u64;
    for e in entries {
        if e.first > cursor {
            ranges.push(MapleEntry {
                first: cursor,
                last: e.first - 1,
                value: 0,
            });
        }
        ranges.push(*e);
        cursor = e.last + 1;
    }

    if ranges.is_empty() {
        kb.obj(tree_addr, mt.maple_tree).set("ma_root", 0).unwrap();
        return BuiltMaple {
            root: 0,
            nodes: vec![],
            leaves: vec![],
        };
    }
    if entries.len() == 1 && ranges.len() == 1 {
        // Single-entry tree: the root slot holds the entry directly.
        let root = entries[0].value;
        kb.obj(tree_addr, mt.maple_tree)
            .set("ma_root", root)
            .unwrap();
        return BuiltMaple {
            root,
            nodes: vec![],
            leaves: vec![],
        };
    }

    let mut all_nodes = Vec::new();

    // Level 0: leaves.
    #[derive(Clone, Copy)]
    struct Child {
        enode: u64,
        max: u64,
        gap: u64,
    }
    let mut level: Vec<Child> = Vec::new();
    for chunk in ranges.chunks(BUILD_FANOUT.min(MAPLE_RANGE64_SLOTS as usize)) {
        let node = kb.alloc_aligned(mt.maple_node, 256);
        all_nodes.push(node);
        let mut w = kb.obj(node, mt.maple_node);
        let mut gap = 0u64;
        for (i, e) in chunk.iter().enumerate() {
            w.set(&format!("mr64.slot[{i}]"), e.value).unwrap();
            if i + 1 < MAPLE_RANGE64_SLOTS as usize {
                w.set(&format!("mr64.pivot[{i}]"), e.last).unwrap();
            }
            if e.value == 0 {
                gap = gap.max(e.last - e.first + 1);
            }
        }
        level.push(Child {
            enode: mt_mk_node(node, MapleType::Leaf64),
            max: chunk.last().unwrap().last,
            gap,
        });
    }
    let leaves = all_nodes.clone();

    // Upper levels: arange_64 internal nodes (mm_mt tracks gaps).
    while level.len() > 1 {
        let mut next: Vec<Child> = Vec::new();
        for chunk in level.chunks(BUILD_FANOUT.min(MAPLE_ARANGE64_SLOTS as usize)) {
            let node = kb.alloc_aligned(mt.maple_node, 256);
            all_nodes.push(node);
            let mut w = kb.obj(node, mt.maple_node);
            let mut gap = 0u64;
            for (i, c) in chunk.iter().enumerate() {
                w.set(&format!("ma64.slot[{i}]"), c.enode).unwrap();
                if i + 1 < MAPLE_ARANGE64_SLOTS as usize {
                    w.set(&format!("ma64.pivot[{i}]"), c.max).unwrap();
                }
                w.set(&format!("ma64.gap[{i}]"), c.gap).unwrap();
                gap = gap.max(c.gap);
            }
            w.set("ma64.meta_end", chunk.len() as u64 - 1).unwrap();
            next.push(Child {
                enode: mt_mk_node(node, MapleType::Arange64),
                max: chunk.last().unwrap().max,
                gap,
            });
        }
        // Wire child parents now that this level's nodes exist.
        let parents: Vec<(u64, u64)> = {
            let mut v = Vec::new();
            let mut idx = 0;
            for p in &next {
                let pnode = mte_to_node(p.enode);
                for _ in 0..BUILD_FANOUT.min(MAPLE_ARANGE64_SLOTS as usize) {
                    if idx < level.len() {
                        v.push((mte_to_node(level[idx].enode), pnode | 2));
                        idx += 1;
                    }
                }
            }
            v
        };
        for (child, parent) in parents {
            kb.obj(child, mt.maple_node).set("parent", parent).unwrap();
        }
        level = next;
    }

    let root = level[0].enode;
    // Root node's parent points back at the tree with MA_ROOT_PARENT set.
    kb.obj(mte_to_node(root), mt.maple_node)
        .set("parent", tree_addr | 1)
        .unwrap();
    kb.obj(tree_addr, mt.maple_tree)
        .set("ma_root", root)
        .unwrap();

    BuiltMaple {
        root,
        nodes: all_nodes,
        leaves,
    }
}

/// Walk a built tree collecting `(first, last, value)` for every non-NULL
/// entry — used by tests and by `Array.selectFrom` (distill, §3.2).
pub fn walk_entries(mem: &kmem::Mem, root: u64) -> Vec<MapleEntry> {
    let mut out = Vec::new();
    if root == 0 {
        return out;
    }
    if !xa_is_node(root) {
        out.push(MapleEntry {
            first: 0,
            last: 0,
            value: root,
        });
        return out;
    }
    walk(mem, root, 0, u64::MAX, &mut out);
    out
}

fn walk(mem: &kmem::Mem, enode: u64, min: u64, max: u64, out: &mut Vec<MapleEntry>) {
    let node = mte_to_node(enode);
    let ty = mte_node_type(enode);
    let (nslots, pivot_off, slot_off) = if ty == MapleType::Arange64 as u64 {
        (
            MAPLE_ARANGE64_SLOTS,
            8u64,
            8 + 8 * (MAPLE_ARANGE64_SLOTS - 1),
        )
    } else {
        (MAPLE_RANGE64_SLOTS, 8u64, 8 + 8 * (MAPLE_RANGE64_SLOTS - 1))
    };
    let mut lo = min;
    for i in 0..nslots {
        let slot = mem
            .read_uint(node + slot_off + 8 * i, 8)
            .expect("maple node mapped");
        let piv = if i + 1 < nslots {
            mem.read_uint(node + pivot_off + 8 * i, 8)
                .expect("maple node mapped")
        } else {
            max
        };
        let hi = if piv == 0 && i > 0 { max } else { piv };
        if slot == 0 && (piv == 0 && i > 0) {
            break; // trailing empty slots
        }
        if ma_is_leaf(ty) {
            if slot != 0 {
                out.push(MapleEntry {
                    first: lo,
                    last: hi,
                    value: slot,
                });
            }
        } else if slot != 0 {
            walk(mem, slot, lo, hi, out);
        }
        if piv == 0 && i > 0 {
            break;
        }
        lo = hi.wrapping_add(1);
        if lo == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KernelBuilder, MapleTypes) {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let mt = register_types(&mut kb.types, &common);
        (kb, mt)
    }

    #[test]
    fn node_is_256_bytes() {
        let (kb, mt) = setup();
        assert_eq!(kb.types.size_of(mt.maple_node), 256);
        assert_eq!(kb.types.size_of(mt.maple_range_64), 256);
    }

    #[test]
    fn enode_tagging_round_trips() {
        let addr = 0xffff_8880_0400_1100u64 & !MAPLE_NODE_MASK;
        for ty in [MapleType::Leaf64, MapleType::Range64, MapleType::Arange64] {
            let e = mt_mk_node(addr, ty);
            assert_eq!(mte_to_node(e), addr);
            assert_eq!(mte_node_type(e), ty as u64);
            assert!(xa_is_node(e));
        }
        assert!(!xa_is_node(addr), "plain pointers are not nodes");
        assert!(!xa_is_node(0));
    }

    #[test]
    fn leaf_types_classified() {
        assert!(ma_is_leaf(MapleType::Dense as u64));
        assert!(ma_is_leaf(MapleType::Leaf64 as u64));
        assert!(!ma_is_leaf(MapleType::Range64 as u64));
        assert!(!ma_is_leaf(MapleType::Arange64 as u64));
    }

    #[test]
    fn empty_tree_has_null_root() {
        let (mut kb, mt) = setup();
        let tree = kb.alloc(mt.maple_tree);
        let built = build_tree(&mut kb, &mt, tree, &[]);
        assert_eq!(built.root, 0);
        assert_eq!(walk_entries(&kb.mem, built.root), vec![]);
    }

    #[test]
    fn single_entry_tree_stores_entry_in_root() {
        let (mut kb, mt) = setup();
        let tree = kb.alloc(mt.maple_tree);
        let built = build_tree(
            &mut kb,
            &mt,
            tree,
            &[MapleEntry {
                first: 0,
                last: 99,
                value: 0x5000,
            }],
        );
        assert_eq!(built.root, 0x5000);
        assert!(!xa_is_node(built.root));
    }

    fn mk_entries(n: u64) -> Vec<MapleEntry> {
        (0..n)
            .map(|i| MapleEntry {
                first: 0x1_0000 * (i + 1),
                last: 0x1_0000 * (i + 1) + 0xffff,
                value: 0xffff_8880_0500_0000 + i * 0x200,
            })
            .collect()
    }

    #[test]
    fn multi_level_tree_walks_back_to_entries() {
        let (mut kb, mt) = setup();
        let tree = kb.alloc(mt.maple_tree);
        let entries = mk_entries(100);
        let built = build_tree(&mut kb, &mt, tree, &entries);
        assert!(xa_is_node(built.root));
        let walked = walk_entries(&kb.mem, built.root);
        let got: Vec<u64> = walked.iter().map(|e| e.value).collect();
        let want: Vec<u64> = entries.iter().map(|e| e.value).collect();
        assert_eq!(got, want);
        // Ranges survive too.
        assert_eq!(walked[0].first, entries[0].first);
        assert_eq!(walked[99].last, entries[99].last);
    }

    #[test]
    fn root_parent_marks_tree() {
        let (mut kb, mt) = setup();
        let tree = kb.alloc(mt.maple_tree);
        let built = build_tree(&mut kb, &mt, tree, &mk_entries(30));
        let root_node = mte_to_node(built.root);
        let parent = kb.mem.read_uint(root_node, 8).unwrap();
        assert_eq!(parent & 1, 1, "root parent carries MA_ROOT_PARENT");
        assert_eq!(parent & !1, tree);
    }

    #[test]
    fn internal_nodes_track_gaps() {
        let (mut kb, mt) = setup();
        let tree = kb.alloc(mt.maple_tree);
        // Two entries with a big hole between them.
        let entries = vec![
            MapleEntry {
                first: 0x1000,
                last: 0x1fff,
                value: 0xaaaa_0000,
            },
            MapleEntry {
                first: 0x100_0000,
                last: 0x100_0fff,
                value: 0xbbbb_0000,
            },
            MapleEntry {
                first: 0x200_0000,
                last: 0x200_0fff,
                value: 0xcccc_0000,
            },
            MapleEntry {
                first: 0x300_0000,
                last: 0x300_0fff,
                value: 0xdddd_0000,
            },
            MapleEntry {
                first: 0x400_0000,
                last: 0x400_0fff,
                value: 0xeeee_0000,
            },
            MapleEntry {
                first: 0x500_0000,
                last: 0x500_0fff,
                value: 0xffff_0000,
            },
        ];
        let built = build_tree(&mut kb, &mt, tree, &entries);
        // With interleaved NULL ranges (6 entries + 6 gaps = 12 ranges) we
        // get 2 leaves and 1 arange_64 root tracking a nonzero gap.
        assert!(xa_is_node(built.root));
        assert_eq!(mte_node_type(built.root), MapleType::Arange64 as u64);
        let root_node = mte_to_node(built.root);
        let w = ObjReader { mem: &kb.mem };
        let gap0 = w.u64(root_node + 8 + 8 * (MAPLE_ARANGE64_SLOTS - 1) + 8 * MAPLE_ARANGE64_SLOTS);
        assert!(gap0 > 0, "root gap[0] must reflect the hole, got {gap0}");
    }

    struct ObjReader<'a> {
        mem: &'a kmem::Mem,
    }
    impl ObjReader<'_> {
        fn u64(&self, addr: u64) -> u64 {
            self.mem.read_uint(addr, 8).unwrap()
        }
    }

    #[test]
    fn ten_thousand_ranges_stay_consistent() {
        let (mut kb, mt) = setup();
        let tree = kb.alloc(mt.maple_tree);
        let entries: Vec<MapleEntry> = (0..2000)
            .map(|i| MapleEntry {
                first: i * 0x2000,
                last: i * 0x2000 + 0xfff,
                value: 0xffff_8880_0600_0000 + i * 0x100,
            })
            .collect();
        let built = build_tree(&mut kb, &mt, tree, &entries);
        let walked = walk_entries(&kb.mem, built.root);
        assert_eq!(walked.len(), 2000);
        assert!(built.nodes.len() > 250, "expect a deep tree");
    }
}

#[cfg(test)]
mod prop_tests {
    //! Property: any sorted, disjoint range set round-trips through the
    //! raw-byte maple tree.

    use super::*;
    use proptest::prelude::*;

    fn arb_entries() -> impl Strategy<Value = Vec<MapleEntry>> {
        // Random gaps and lengths, then prefix-sum into disjoint ranges.
        proptest::collection::vec((1u64..0x10_000, 1u64..0x10_000), 0..120).prop_map(|segs| {
            let mut cursor = 0u64;
            let mut out = Vec::new();
            for (i, (gap, len)) in segs.into_iter().enumerate() {
                let first = cursor + gap;
                let last = first + len - 1;
                cursor = last + 1;
                out.push(MapleEntry {
                    first,
                    last,
                    value: 0xffff_8880_1000_0000 + (i as u64) * 0x100,
                });
            }
            out
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_build_walk_round_trip(entries in arb_entries()) {
            let mut kb = crate::image::KernelBuilder::new();
            let common = kb.common;
            let mt = register_types(&mut kb.types, &common);
            let tree = kb.alloc(mt.maple_tree);
            let built = build_tree(&mut kb, &mt, tree, &entries);
            let walked = walk_entries(&kb.mem, built.root);
            prop_assert_eq!(walked.len(), entries.len());
            for (w, e) in walked.iter().zip(&entries) {
                prop_assert_eq!(w.value, e.value);
                prop_assert_eq!(w.first, e.first);
                prop_assert_eq!(w.last, e.last);
            }
            // Every interior node keeps the 256-byte slab alignment the
            // tagged-pointer encoding depends on.
            for n in &built.nodes {
                prop_assert_eq!(n & MAPLE_NODE_MASK, 0);
            }
        }
    }
}
