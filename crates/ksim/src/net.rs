//! Sockets and sk_buff queues (the paper's added socket-connection figure).

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;

/// TCP states (subset of `enum tcp_state`).
pub const TCP_ESTABLISHED: u64 = 1;
/// Listening socket.
pub const TCP_LISTEN: u64 = 10;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct NetTypes {
    /// `struct socket`.
    pub socket: TypeId,
    /// `struct sock`.
    pub sock: TypeId,
    /// `struct sk_buff`.
    pub sk_buff: TypeId,
    /// `struct sk_buff_head`.
    pub sk_buff_head: TypeId,
}

/// Register networking types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> NetTypes {
    let file_fwd = reg.declare_struct("file");
    let file_ptr = reg.pointer_to(file_fwd);
    let sk_fwd = reg.declare_struct("sock");
    let sk_ptr = reg.pointer_to(sk_fwd);
    let skb_fwd = reg.declare_struct("sk_buff");
    let skb_ptr = reg.pointer_to(skb_fwd);

    let sk_buff_head = StructBuilder::new("sk_buff_head")
        .field("next", skb_ptr)
        .field("prev", skb_ptr)
        .field("qlen", common.u32_t)
        .field("lock", common.spinlock)
        .build(reg);

    let sk_buff = StructBuilder::new("sk_buff")
        .field("next", skb_ptr)
        .field("prev", skb_ptr)
        .field("sk", sk_ptr)
        .field("len", common.u32_t)
        .field("data_len", common.u32_t)
        .field("protocol", common.u16_t)
        .field("data", common.void_ptr)
        .field("head", common.void_ptr)
        .build(reg);

    let sock_common = StructBuilder::new("sock_common")
        .field("skc_daddr", common.u32_t)
        .field("skc_rcv_saddr", common.u32_t)
        .field("skc_dport", common.u16_t)
        .field("skc_num", common.u16_t)
        .field("skc_family", common.u16_t)
        .field("skc_state", common.u8_t)
        .build(reg);

    let sock = StructBuilder::new("sock")
        .field("__sk_common", sock_common)
        .field("sk_receive_queue", sk_buff_head)
        .field("sk_write_queue", sk_buff_head)
        .field("sk_rcvbuf", common.int_t)
        .field("sk_sndbuf", common.int_t)
        .field("sk_rmem_alloc", common.atomic)
        .field("sk_wmem_alloc", common.atomic)
        .field("sk_socket", common.void_ptr)
        .build(reg);
    let sock_ptr = reg.pointer_to(sock);

    let socket = StructBuilder::new("socket")
        .field("state", common.u16_t)
        .field("type", common.u16_t)
        .field("flags", common.u64_t)
        .field("file", file_ptr)
        .field("sk", sock_ptr)
        .field("ops", common.void_ptr)
        .build(reg);

    reg.define_const("TCP_ESTABLISHED", TCP_ESTABLISHED as i64);
    reg.define_const("TCP_LISTEN", TCP_LISTEN as i64);
    reg.define_const("AF_INET", 2);

    NetTypes {
        socket,
        sock,
        sk_buff,
        sk_buff_head,
    }
}

/// Queue specification: packet lengths for each queued skb.
#[derive(Debug, Clone, Default)]
pub struct SockSpec {
    /// IPv4 peer address.
    pub daddr: u32,
    /// IPv4 local address.
    pub saddr: u32,
    /// Peer port.
    pub dport: u16,
    /// Local port.
    pub sport: u16,
    /// TCP state.
    pub state: u64,
    /// Lengths of packets in the receive queue.
    pub rx: Vec<u32>,
    /// Lengths of packets in the write queue.
    pub tx: Vec<u32>,
}

/// Create a connected `socket`/`sock` pair with populated queues.
pub fn create_socket(kb: &mut KernelBuilder, nt: &NetTypes, spec: &SockSpec) -> u64 {
    let sk = kb.alloc(nt.sock);
    {
        let mut w = kb.obj(sk, nt.sock);
        w.set("__sk_common.skc_daddr", spec.daddr as u64).unwrap();
        w.set("__sk_common.skc_rcv_saddr", spec.saddr as u64)
            .unwrap();
        w.set("__sk_common.skc_dport", spec.dport as u64).unwrap();
        w.set("__sk_common.skc_num", spec.sport as u64).unwrap();
        w.set("__sk_common.skc_family", 2).unwrap();
        w.set("__sk_common.skc_state", spec.state).unwrap();
        w.set_i64("sk_rcvbuf", 212992).unwrap();
        w.set_i64("sk_sndbuf", 212992).unwrap();
    }
    for (queue, pkts) in [("sk_receive_queue", &spec.rx), ("sk_write_queue", &spec.tx)] {
        let (q_off, _) = kb.types.field_path(nt.sock, queue).unwrap();
        let head = sk + q_off;
        // sk_buff_head is a degenerate sk_buff: next/prev at offsets 0/8.
        kb.mem.write_uint(head, 8, head);
        kb.mem.write_uint(head + 8, 8, head);
        let mut bytes = 0u64;
        for &len in pkts.iter() {
            let skb = kb.alloc(nt.sk_buff);
            let data = kb.alloc_pagedata(len.max(1) as u64);
            {
                let mut w = kb.obj(skb, nt.sk_buff);
                w.set("sk", sk).unwrap();
                w.set("len", len as u64).unwrap();
                w.set("data", data).unwrap();
                w.set("head", data).unwrap();
            }
            // Splice at tail of the circular skb list.
            let prev = kb.mem.read_uint(head + 8, 8).unwrap();
            kb.mem.write_uint(skb, 8, head);
            kb.mem.write_uint(skb + 8, 8, prev);
            kb.mem.write_uint(prev, 8, skb);
            kb.mem.write_uint(head + 8, 8, skb);
            bytes += len as u64;
        }
        let (qlen_off, _) = kb.types.field_path(nt.sk_buff_head, "qlen").unwrap();
        kb.mem.write_uint(head + qlen_off, 4, pkts.len() as u64);
        let alloc_field = if queue == "sk_receive_queue" {
            "sk_rmem_alloc"
        } else {
            "sk_wmem_alloc"
        };
        kb.obj(sk, nt.sock)
            .set_i64(&format!("{alloc_field}.counter"), bytes as i64)
            .unwrap();
    }

    let sock = kb.alloc(nt.socket);
    {
        let mut w = kb.obj(sock, nt.socket);
        w.set("state", 3).unwrap(); // SS_CONNECTED
        w.set("type", 1).unwrap(); // SOCK_STREAM
        w.set("sk", sk).unwrap();
    }
    kb.obj(sk, nt.sock).set("sk_socket", sock).unwrap();
    sock
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skb_queues_chain_and_count() {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let nt = register_types(&mut kb.types, &common);
        let sock = create_socket(
            &mut kb,
            &nt,
            &SockSpec {
                daddr: 0x0100_007f,
                saddr: 0x0100_007f,
                dport: 80,
                sport: 54321,
                state: TCP_ESTABLISHED,
                rx: vec![1500, 1500, 66],
                tx: vec![512],
            },
        );
        let (sk_off, _) = kb.types.field_path(nt.socket, "sk").unwrap();
        let sk = kb.mem.read_uint(sock + sk_off, 8).unwrap();
        let (rq_off, _) = kb.types.field_path(nt.sock, "sk_receive_queue").unwrap();
        let head = sk + rq_off;
        // Walk the circular skb list.
        let mut cur = kb.mem.read_uint(head, 8).unwrap();
        let mut lens = Vec::new();
        let (len_off, _) = kb.types.field_path(nt.sk_buff, "len").unwrap();
        while cur != head {
            lens.push(kb.mem.read_uint(cur + len_off, 4).unwrap());
            cur = kb.mem.read_uint(cur, 8).unwrap();
        }
        assert_eq!(lens, vec![1500, 1500, 66]);
        let (qlen_off, _) = kb.types.field_path(nt.sk_buff_head, "qlen").unwrap();
        assert_eq!(kb.mem.read_uint(head + qlen_off, 4).unwrap(), 3);
        // rmem accounting matches.
        let (rmem_off, _) = kb
            .types
            .field_path(nt.sock, "sk_rmem_alloc.counter")
            .unwrap();
        assert_eq!(kb.mem.read_int(sk + rmem_off, 4).unwrap(), 3066);
    }
}
