//! Signal handling structures (ULK Fig 11-1).

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;
use crate::structops;

/// Number of signals (`_NSIG`).
pub const NSIG: u64 = 64;
/// `SIG_DFL` handler value.
pub const SIG_DFL: u64 = 0;
/// `SIG_IGN` handler value.
pub const SIG_IGN: u64 = 1;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct SignalTypes {
    /// `struct signal_struct` (shared by a thread group).
    pub signal_struct: TypeId,
    /// `struct sighand_struct` (the handler table).
    pub sighand_struct: TypeId,
    /// `struct k_sigaction`.
    pub k_sigaction: TypeId,
    /// `struct sigpending`.
    pub sigpending: TypeId,
    /// `struct sigqueue`.
    pub sigqueue: TypeId,
}

/// Register signal types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> SignalTypes {
    let sigset_t = StructBuilder::new("sigset_t")
        .field("sig", {
            let u64_t = common.u64_t;
            reg.array_of(u64_t, 1)
        })
        .build(reg);

    let handler_fn = reg.func("void (*)(int)");
    let handler_ptr = reg.pointer_to(handler_fn);
    let sigaction = StructBuilder::new("sigaction")
        .field("sa_handler", handler_ptr)
        .field("sa_flags", common.u64_t)
        .field("sa_restorer", common.void_ptr)
        .field("sa_mask", sigset_t)
        .build(reg);
    let k_sigaction = StructBuilder::new("k_sigaction")
        .field("sa", sigaction)
        .build(reg);

    let siginfo = StructBuilder::new("kernel_siginfo")
        .field("si_signo", common.int_t)
        .field("si_errno", common.int_t)
        .field("si_code", common.int_t)
        .build(reg);
    let sigqueue = StructBuilder::new("sigqueue")
        .field("list", common.list_head)
        .field("flags", common.int_t)
        .field("info", siginfo)
        .build(reg);

    let sigpending = StructBuilder::new("sigpending")
        .field("list", common.list_head)
        .field("signal", sigset_t)
        .build(reg);

    let actions = reg.array_of(k_sigaction, NSIG);
    let sighand_struct = StructBuilder::new("sighand_struct")
        .field("count", common.refcount)
        .field("action", actions)
        .field("siglock", common.spinlock)
        .build(reg);

    let signal_struct = StructBuilder::new("signal_struct")
        .field("sigcnt", common.refcount)
        .field("live", common.atomic)
        .field("nr_threads", common.int_t)
        .field("group_exit_code", common.int_t)
        .field("shared_pending", sigpending)
        .field("group_stop_count", common.int_t)
        .field("flags", common.u32_t)
        .build(reg);

    reg.define_const("SIG_DFL", SIG_DFL as i64);
    reg.define_const("SIG_IGN", SIG_IGN as i64);
    reg.define_const("SIGKILL", 9);
    reg.define_const("SIGSEGV", 11);
    reg.define_const("SIGTERM", 15);
    reg.define_const("SIGCHLD", 17);
    reg.define_const("_NSIG", NSIG as i64);

    SignalTypes {
        signal_struct,
        sighand_struct,
        k_sigaction,
        sigpending,
        sigqueue,
    }
}

/// Create a `sighand_struct`; `configured[(signo, handler_sym)]` installs
/// custom handlers, the rest stay `SIG_DFL`.
pub fn create_sighand(kb: &mut KernelBuilder, st: &SignalTypes, configured: &[(u64, &str)]) -> u64 {
    let sh = kb.alloc(st.sighand_struct);
    kb.obj(sh, st.sighand_struct)
        .set_i64("count.refs.counter", 1)
        .unwrap();
    for (signo, sym) in configured {
        assert!((1..=NSIG).contains(signo));
        let f = kb.func_sym(sym);
        kb.obj(sh, st.sighand_struct)
            .set(&format!("action[{}].sa.sa_handler", signo - 1), f)
            .unwrap();
    }
    sh
}

/// Create a `signal_struct` for a thread group of `nr_threads`, with
/// `pending` signal numbers queued on `shared_pending`.
pub fn create_signal(
    kb: &mut KernelBuilder,
    st: &SignalTypes,
    nr_threads: i64,
    pending: &[u64],
) -> u64 {
    let sig = kb.alloc(st.signal_struct);
    let list_head;
    {
        let mut w = kb.obj(sig, st.signal_struct);
        w.set_i64("sigcnt.refs.counter", 1).unwrap();
        w.set_i64("live.counter", nr_threads).unwrap();
        w.set_i64("nr_threads", nr_threads).unwrap();
        list_head = w.field_addr("shared_pending.list").unwrap();
    }
    structops::list_init(&mut kb.mem, list_head);
    let mut mask = 0u64;
    for &signo in pending {
        let q = kb.alloc(st.sigqueue);
        let node;
        {
            let mut w = kb.obj(q, st.sigqueue);
            w.set_i64("info.si_signo", signo as i64).unwrap();
            node = w.field_addr("list").unwrap();
        }
        structops::list_add_tail(&mut kb.mem, node, list_head);
        mask |= 1 << (signo - 1);
    }
    kb.obj(sig, st.signal_struct)
        .set("shared_pending.signal.sig[0]", mask)
        .unwrap();
    sig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KernelBuilder, SignalTypes) {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let st = register_types(&mut kb.types, &common);
        (kb, st)
    }

    #[test]
    fn action_table_has_64_entries() {
        let (kb, st) = setup();
        let def = kb.types.struct_def(st.sighand_struct).unwrap();
        let action = def.field("action").unwrap();
        let ksize = kb.types.size_of(st.k_sigaction);
        assert_eq!(kb.types.size_of(action.ty), ksize * NSIG);
    }

    #[test]
    fn configured_handlers_resolve_to_function_symbols() {
        let (mut kb, st) = setup();
        let sh = create_sighand(
            &mut kb,
            &st,
            &[(15, "my_sigterm_handler"), (17, "my_sigchld")],
        );
        let (off15, _) = kb
            .types
            .field_path(st.sighand_struct, "action[14].sa.sa_handler")
            .unwrap();
        let h = kb.mem.read_uint(sh + off15, 8).unwrap();
        assert_eq!(kb.symbols.name_at(h), Some("my_sigterm_handler"));
        // Unconfigured entries stay SIG_DFL (0).
        let (off9, _) = kb
            .types
            .field_path(st.sighand_struct, "action[8].sa.sa_handler")
            .unwrap();
        assert_eq!(kb.mem.read_uint(sh + off9, 8).unwrap(), SIG_DFL);
    }

    #[test]
    fn pending_queue_and_mask() {
        let (mut kb, st) = setup();
        let sig = create_signal(&mut kb, &st, 3, &[9, 17]);
        let (list_off, _) = kb
            .types
            .field_path(st.signal_struct, "shared_pending.list")
            .unwrap();
        assert_eq!(structops::list_iter(&kb.mem, sig + list_off).len(), 2);
        let (mask_off, _) = kb
            .types
            .field_path(st.signal_struct, "shared_pending.signal.sig[0]")
            .unwrap();
        let mask = kb.mem.read_uint(sig + mask_off, 8).unwrap();
        assert_eq!(mask, (1 << 8) | (1 << 16));
    }
}
