//! The kernel image and its builder.

use kmem::{Mem, ObjWriter, SymbolTable, Zone};
use ktypes::{TypeId, TypeRegistry};

use crate::common::CommonTypes;

/// Base of the simulated kernel text section (function symbols).
pub const TEXT_BASE: u64 = 0xffff_ffff_8100_0000;
/// Base of the kernel static data section (global objects).
pub const DATA_BASE: u64 = 0xffff_ffff_8300_0000;
/// Base of the direct-map heap (slab objects).
pub const HEAP_BASE: u64 = 0xffff_8880_0400_0000;
/// Base of the per-CPU area.
pub const PERCPU_BASE: u64 = 0xffff_8880_3fc0_0000;
/// Base of the vmemmap (`struct page` array).
pub const VMEMMAP_BASE: u64 = 0xffff_ea00_0000_0000;
/// Base of the zone backing page-frame contents (file data, pipe data).
pub const PAGEDATA_BASE: u64 = 0xffff_8881_0000_0000;

/// A finished, read-only kernel memory image plus its "debug info".
///
/// This is what the debugger bridge attaches to — the equivalent of a
/// stopped QEMU guest plus its `vmlinux` symbols.
pub struct KernelImage {
    /// Raw target memory.
    pub mem: Mem,
    /// Type layouts (the DWARF stand-in).
    pub types: TypeRegistry,
    /// The `System.map` stand-in.
    pub symbols: SymbolTable,
    /// Handles to all registered kernel types.
    pub layout: KernelLayout,
}

/// Type ids for every kernel struct the subsystems register, so that
/// builders and tests do not re-lookup by name.
///
/// Filled incrementally as subsystem type modules run; ids for subsystems
/// that were never initialized stay `None`.
#[derive(Debug, Default, Clone)]
pub struct KernelLayout {
    /// `struct list_head`.
    pub list_head: Option<TypeId>,
    /// `struct task_struct`.
    pub task_struct: Option<TypeId>,
    /// `struct mm_struct`.
    pub mm_struct: Option<TypeId>,
    /// `struct vm_area_struct`.
    pub vm_area_struct: Option<TypeId>,
    /// `struct maple_node`.
    pub maple_node: Option<TypeId>,
    /// `struct page`.
    pub page: Option<TypeId>,
}

impl KernelImage {
    /// Total bytes of mapped target memory.
    pub fn mapped_bytes(&self) -> u64 {
        self.mem.mapped_pages() as u64 * kmem::PAGE_SIZE
    }
}

/// Mutable context threaded through all subsystem builders.
pub struct KernelBuilder {
    /// Target memory being populated.
    pub mem: Mem,
    /// Type registry being populated.
    pub types: TypeRegistry,
    /// Symbol table being populated.
    pub symbols: SymbolTable,
    /// Shared base types (lists, locks, atomics, …).
    pub common: CommonTypes,
    /// Handles to registered kernel types.
    pub layout: KernelLayout,
    text: Zone,
    data: Zone,
    heap: Zone,
    percpu: Zone,
    vmemmap: Zone,
    pagedata: Zone,
}

impl KernelBuilder {
    /// Create a builder with empty memory and the common types registered.
    pub fn new() -> Self {
        let mut types = TypeRegistry::new();
        let common = CommonTypes::register(&mut types);
        KernelBuilder {
            mem: Mem::new(),
            types,
            symbols: SymbolTable::new(),
            common,
            layout: KernelLayout::default(),
            text: Zone::new("text", TEXT_BASE, 64 << 20),
            data: Zone::new("data", DATA_BASE, 256 << 20),
            heap: Zone::new("heap", HEAP_BASE, 1 << 30),
            percpu: Zone::new("percpu", PERCPU_BASE, 16 << 20),
            vmemmap: Zone::new("vmemmap", VMEMMAP_BASE, 256 << 20),
            pagedata: Zone::new("pagedata", PAGEDATA_BASE, 256 << 20),
        }
    }

    /// Allocate a zeroed object of type `ty` on the heap, returning its
    /// address.
    pub fn alloc(&mut self, ty: TypeId) -> u64 {
        let (size, align) = (self.types.size_of(ty), self.types.align_of(ty));
        self.heap.alloc(&mut self.mem, size, align)
    }

    /// Allocate a zeroed heap object with an explicit alignment (e.g. the
    /// 256-byte slab alignment of `maple_node`).
    pub fn alloc_aligned(&mut self, ty: TypeId, align: u64) -> u64 {
        let size = self.types.size_of(ty);
        let align = align.max(self.types.align_of(ty));
        self.heap.alloc(&mut self.mem, size, align)
    }

    /// Allocate a zeroed object in the static data section and register it
    /// as a global symbol.
    pub fn alloc_global(&mut self, name: &str, ty: TypeId) -> u64 {
        let (size, align) = (self.types.size_of(ty), self.types.align_of(ty));
        let addr = self.data.alloc(&mut self.mem, size, align);
        self.symbols.define_object(name, addr, ty);
        addr
    }

    /// Allocate an object in the per-CPU area.
    pub fn alloc_percpu(&mut self, ty: TypeId) -> u64 {
        let (size, align) = (self.types.size_of(ty), self.types.align_of(ty));
        self.percpu.alloc(&mut self.mem, size, align)
    }

    /// Allocate raw bytes in the page-data zone (file contents, pipe
    /// buffers); returns a page-aligned address.
    pub fn alloc_pagedata(&mut self, len: u64) -> u64 {
        self.pagedata
            .alloc(&mut self.mem, len.max(1), kmem::PAGE_SIZE)
    }

    /// Allocate raw bytes in the vmemmap zone (`struct page` arrays).
    pub fn alloc_vmemmap(&mut self, len: u64, align: u64) -> u64 {
        self.vmemmap.alloc(&mut self.mem, len, align)
    }

    /// Register a fake function entry point and return its address
    /// (used for function-pointer fields like `work->func`).
    pub fn func_sym(&mut self, name: &str) -> u64 {
        if let Some(s) = self.symbols.lookup(name) {
            return s.addr;
        }
        let addr = self.text.alloc(&mut self.mem, 16, 16);
        self.symbols.define_function(name, addr);
        addr
    }

    /// A typed writer for the object of type `ty` at `addr`.
    pub fn obj(&mut self, addr: u64, ty: TypeId) -> ObjWriter<'_> {
        ObjWriter::new(&mut self.mem, &self.types, addr, ty)
    }

    /// Allocate an object of `ty` and hand back a writer positioned on it.
    pub fn new_obj(&mut self, ty: TypeId) -> u64 {
        self.alloc(ty)
    }

    /// Finish building: freeze into an immutable image.
    pub fn finish(self) -> KernelImage {
        KernelImage {
            mem: self.mem,
            types: self.types,
            symbols: self.symbols,
            layout: self.layout,
        }
    }
}

impl Default for KernelBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zones_are_disjoint_kernel_like_ranges() {
        let mut b = KernelBuilder::new();
        let t = b.common.list_head;
        let heap_obj = b.alloc(t);
        let global = b.alloc_global("init_something", t);
        let per = b.alloc_percpu(t);
        assert!((HEAP_BASE..PERCPU_BASE).contains(&heap_obj));
        assert!(global >= DATA_BASE);
        assert!(per >= PERCPU_BASE);
    }

    #[test]
    fn func_sym_is_idempotent() {
        let mut b = KernelBuilder::new();
        let a1 = b.func_sym("vmstat_update");
        let a2 = b.func_sym("vmstat_update");
        assert_eq!(a1, a2);
        assert_eq!(b.symbols.name_at(a1), Some("vmstat_update"));
    }

    #[test]
    fn finish_preserves_symbols_and_memory() {
        let mut b = KernelBuilder::new();
        let t = b.common.list_head;
        let g = b.alloc_global("init_task_dummy", t);
        b.mem.write_uint(g, 8, 0x1234);
        let img = b.finish();
        assert_eq!(img.mem.read_uint(g, 8).unwrap(), 0x1234);
        assert!(img.symbols.lookup("init_task_dummy").is_some());
        assert!(img.mapped_bytes() > 0);
    }
}
