//! Block devices and gendisks (ULK Fig 14-3).

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct BlockTypes {
    /// `struct block_device`.
    pub block_device: TypeId,
    /// `struct gendisk`.
    pub gendisk: TypeId,
    /// `struct request_queue`.
    pub request_queue: TypeId,
}

/// Register block-layer types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> BlockTypes {
    let gd_fwd = reg.declare_struct("gendisk");
    let gd_ptr = reg.pointer_to(gd_fwd);
    let sb_fwd = reg.declare_struct("super_block");
    let sb_ptr = reg.pointer_to(sb_fwd);
    let inode_fwd = reg.declare_struct("inode");
    let inode_ptr = reg.pointer_to(inode_fwd);

    let request_queue = StructBuilder::new("request_queue")
        .field("queuedata", common.void_ptr)
        .field("nr_requests", common.u64_t)
        .field("nr_hw_queues", common.u32_t)
        .build(reg);
    let rq_ptr = reg.pointer_to(request_queue);

    let block_device = StructBuilder::new("block_device")
        .field("bd_start_sect", common.u64_t)
        .field("bd_nr_sectors", common.u64_t)
        .field("bd_inode", inode_ptr)
        .field("bd_super", sb_ptr)
        .field("bd_openers", common.atomic)
        .field("bd_dev", common.u32_t)
        .field("bd_partno", common.u8_t)
        .field("bd_disk", gd_ptr)
        .field("bd_queue", rq_ptr)
        .build(reg);
    let bdev_ptr = reg.pointer_to(block_device);

    let disk_name = reg.array_of(common.char_t, 32);
    let gendisk = StructBuilder::new("gendisk")
        .field("major", common.int_t)
        .field("first_minor", common.int_t)
        .field("minors", common.int_t)
        .field("disk_name", disk_name)
        .field("part0", bdev_ptr)
        .field("queue", rq_ptr)
        .field("private_data", common.void_ptr)
        .build(reg);

    BlockTypes {
        block_device,
        gendisk,
        request_queue,
    }
}

/// A created disk with partitions.
#[derive(Debug, Clone)]
pub struct BuiltDisk {
    /// `gendisk` address.
    pub disk: u64,
    /// Whole-device `block_device` (part0).
    pub part0: u64,
    /// Partition `block_device`s.
    pub parts: Vec<u64>,
}

/// Create a gendisk `name` (e.g. `sda`) with `nparts` partitions.
pub fn create_disk(
    kb: &mut KernelBuilder,
    bt: &BlockTypes,
    name: &str,
    major: i64,
    nparts: u64,
) -> BuiltDisk {
    let queue = kb.alloc(bt.request_queue);
    kb.obj(queue, bt.request_queue)
        .set("nr_requests", 256)
        .unwrap();

    let disk = kb.alloc(bt.gendisk);
    let part0 = kb.alloc(bt.block_device);
    {
        let mut w = kb.obj(disk, bt.gendisk);
        w.set_i64("major", major).unwrap();
        w.set_i64("minors", 16).unwrap();
        w.set_str("disk_name", name).unwrap();
        w.set("part0", part0).unwrap();
        w.set("queue", queue).unwrap();
    }
    {
        let mut w = kb.obj(part0, bt.block_device);
        w.set("bd_nr_sectors", 1 << 21).unwrap();
        w.set("bd_dev", (major as u64) << 20).unwrap();
        w.set("bd_disk", disk).unwrap();
        w.set("bd_queue", queue).unwrap();
    }
    let mut parts = Vec::new();
    let mut sect = 2048u64;
    for p in 1..=nparts {
        let bd = kb.alloc(bt.block_device);
        let len = 1 << 18;
        let mut w = kb.obj(bd, bt.block_device);
        w.set("bd_start_sect", sect).unwrap();
        w.set("bd_nr_sectors", len).unwrap();
        w.set("bd_dev", ((major as u64) << 20) | p).unwrap();
        w.set("bd_partno", p).unwrap();
        w.set("bd_disk", disk).unwrap();
        w.set("bd_queue", queue).unwrap();
        sect += len;
        parts.push(bd);
    }
    BuiltDisk { disk, part0, parts }
}

/// Point a partition at the superblock mounted on it (and vice versa via
/// `super_block.s_bdev`, done by the VFS builder).
pub fn attach_super(kb: &mut KernelBuilder, bt: &BlockTypes, bdev: u64, sb: u64) {
    kb.obj(bdev, bt.block_device).set("bd_super", sb).unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_and_partitions_share_queue() {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let bt = register_types(&mut kb.types, &common);
        let d = create_disk(&mut kb, &bt, "sda", 8, 2);
        assert_eq!(d.parts.len(), 2);
        let (q_off, _) = kb.types.field_path(bt.block_device, "bd_queue").unwrap();
        let q0 = kb.mem.read_uint(d.part0 + q_off, 8).unwrap();
        let q1 = kb.mem.read_uint(d.parts[0] + q_off, 8).unwrap();
        assert_eq!(q0, q1);
        // Partition numbers and offsets ascend.
        let (pn_off, _) = kb.types.field_path(bt.block_device, "bd_partno").unwrap();
        assert_eq!(kb.mem.read_uint(d.parts[1] + pn_off, 1).unwrap(), 2);
        let (ss_off, _) = kb
            .types
            .field_path(bt.block_device, "bd_start_sect")
            .unwrap();
        let s1 = kb.mem.read_uint(d.parts[0] + ss_off, 8).unwrap();
        let s2 = kb.mem.read_uint(d.parts[1] + ss_off, 8).unwrap();
        assert!(s2 > s1);
    }

    #[test]
    fn disk_name_reads_back() {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let bt = register_types(&mut kb.types, &common);
        let d = create_disk(&mut kb, &bt, "nvme0n1", 259, 0);
        let (dn_off, _) = kb.types.field_path(bt.gendisk, "disk_name").unwrap();
        assert_eq!(kb.mem.read_cstr(d.disk + dn_off, 32).unwrap(), "nvme0n1");
    }
}
