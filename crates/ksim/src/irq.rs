//! IRQ descriptors and action chains (ULK Fig 4-5).

use ktypes::{StructBuilder, TypeId, TypeRegistry};

use crate::common::CommonTypes;
use crate::image::KernelBuilder;

/// Number of simulated IRQ lines.
pub const NR_IRQS: u64 = 16;

/// Type ids registered by this module.
#[derive(Debug, Clone, Copy)]
pub struct IrqTypes {
    /// `struct irq_desc`.
    pub irq_desc: TypeId,
    /// `struct irqaction`.
    pub irqaction: TypeId,
    /// `struct irq_data` (embedded).
    pub irq_data: TypeId,
    /// `struct irq_chip`.
    pub irq_chip: TypeId,
}

/// Register IRQ types.
pub fn register_types(reg: &mut TypeRegistry, common: &CommonTypes) -> IrqTypes {
    let irq_chip = StructBuilder::new("irq_chip")
        .field("name", common.char_ptr)
        .field("flags", common.u64_t)
        .build(reg);
    let chip_ptr = reg.pointer_to(irq_chip);

    let irq_data = StructBuilder::new("irq_data")
        .field("mask", common.u32_t)
        .field("irq", common.u32_t)
        .field("hwirq", common.u64_t)
        .field("chip", chip_ptr)
        .field("chip_data", common.void_ptr)
        .build(reg);

    let action_fwd = reg.declare_struct("irqaction");
    let action_ptr = reg.pointer_to(action_fwd);
    let handler_fn = reg.func("irqreturn_t (*)(int, void *)");
    let handler_ptr = reg.pointer_to(handler_fn);
    let irqaction = StructBuilder::new("irqaction")
        .field("handler", handler_ptr)
        .field("dev_id", common.void_ptr)
        .field("next", action_ptr)
        .field("irq", common.u32_t)
        .field("flags", common.u32_t)
        .field("name", common.char_ptr)
        .build(reg);

    let irq_desc = StructBuilder::new("irq_desc")
        .field("irq_data", irq_data)
        .field("kstat_irqs", common.void_ptr)
        .field("handle_irq", common.void_ptr)
        .field("action", action_ptr)
        .field("status_use_accessors", common.u32_t)
        .field("depth", common.u32_t)
        .field("irq_count", common.u32_t)
        .field("name", common.char_ptr)
        .build(reg);

    reg.define_const("NR_IRQS", NR_IRQS as i64);
    reg.define_const("IRQF_SHARED", 0x80);

    IrqTypes {
        irq_desc,
        irqaction,
        irq_data,
        irq_chip,
    }
}

/// The built IRQ table.
#[derive(Debug, Clone)]
pub struct IrqState {
    /// Address of the `irq_desc[NR_IRQS]` global array.
    pub table: u64,
    /// Size of one descriptor.
    pub desc_size: u64,
}

impl IrqState {
    /// Address of descriptor `irq`.
    pub fn desc(&self, irq: u64) -> u64 {
        self.table + irq * self.desc_size
    }
}

/// Allocate the global `irq_desc` array and one shared `irq_chip`.
pub fn create_irq_table(kb: &mut KernelBuilder, it: &IrqTypes) -> IrqState {
    let chip = kb.alloc(it.irq_chip);
    let chip_name = kb.alloc_pagedata(8);
    kb.mem.write_cstr(chip_name, "IO-APIC");
    kb.obj(chip, it.irq_chip).set("name", chip_name).unwrap();

    let arr = kb.types.array_of(it.irq_desc, NR_IRQS);
    let table = kb.alloc_global("irq_desc", arr);
    let desc_size = kb.types.size_of(it.irq_desc);
    for irq in 0..NR_IRQS {
        let mut w = kb.obj(table + irq * desc_size, it.irq_desc);
        w.set("irq_data.irq", irq).unwrap();
        w.set("irq_data.hwirq", irq).unwrap();
        w.set("irq_data.chip", chip).unwrap();
        w.set("depth", 1).unwrap();
    }
    IrqState { table, desc_size }
}

/// Register `handlers` on line `irq` as a shared action chain.
pub fn request_irq(
    kb: &mut KernelBuilder,
    it: &IrqTypes,
    state: &IrqState,
    irq: u64,
    handlers: &[(&str, &str)],
) {
    let desc = state.desc(irq);
    let mut prev: u64 = 0;
    for (i, (sym, name)) in handlers.iter().enumerate() {
        let act = kb.alloc(it.irqaction);
        let f = kb.func_sym(sym);
        let name_buf = kb.alloc_pagedata(name.len() as u64 + 1);
        kb.mem.write_cstr(name_buf, name);
        let mut w = kb.obj(act, it.irqaction);
        w.set("handler", f).unwrap();
        w.set("irq", irq).unwrap();
        w.set("name", name_buf).unwrap();
        if handlers.len() > 1 {
            w.set("flags", 0x80).unwrap(); // IRQF_SHARED
        }
        if i == 0 {
            kb.obj(desc, it.irq_desc).set("action", act).unwrap();
            kb.obj(desc, it.irq_desc).set("depth", 0).unwrap();
        } else {
            kb.obj(prev, it.irqaction).set("next", act).unwrap();
        }
        prev = act;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_chain_links_shared_handlers() {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let it = register_types(&mut kb.types, &common);
        let state = create_irq_table(&mut kb, &it);
        request_irq(
            &mut kb,
            &it,
            &state,
            11,
            &[("e1000_intr", "eth0"), ("usb_hcd_irq", "ehci_hcd")],
        );
        let (action_off, _) = kb.types.field_path(it.irq_desc, "action").unwrap();
        let a1 = kb.mem.read_uint(state.desc(11) + action_off, 8).unwrap();
        assert_ne!(a1, 0);
        let (next_off, _) = kb.types.field_path(it.irqaction, "next").unwrap();
        let a2 = kb.mem.read_uint(a1 + next_off, 8).unwrap();
        assert_ne!(a2, 0);
        assert_eq!(kb.mem.read_uint(a2 + next_off, 8).unwrap(), 0);
        // Handler symbol resolves.
        let (h_off, _) = kb.types.field_path(it.irqaction, "handler").unwrap();
        let h = kb.mem.read_uint(a1 + h_off, 8).unwrap();
        assert_eq!(kb.symbols.name_at(h), Some("e1000_intr"));
        // Unconfigured line has no action (Table 3 Fig 4-5 objective).
        let a0 = kb.mem.read_uint(state.desc(3) + action_off, 8).unwrap();
        assert_eq!(a0, 0);
    }

    #[test]
    fn descriptors_are_indexed_by_irq() {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        let it = register_types(&mut kb.types, &common);
        let state = create_irq_table(&mut kb, &it);
        let (irq_off, _) = kb.types.field_path(it.irq_desc, "irq_data.irq").unwrap();
        for irq in 0..NR_IRQS {
            assert_eq!(kb.mem.read_uint(state.desc(irq) + irq_off, 4).unwrap(), irq);
        }
    }
}
