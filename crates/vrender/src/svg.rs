//! Self-contained SVG writer.
//!
//! Lays visible boxes out in columns by BFS depth from the roots — the
//! same left-to-right flow as the paper's screenshots — and draws links
//! as curves between box edges. No external tooling needed to view the
//! result.

use std::collections::HashMap;
use std::fmt::Write as _;

use vgraph::{BoxId, Graph, Item};

use crate::visible;

const BOX_W: f64 = 240.0;
const LINE_H: f64 = 18.0;
const COL_GAP: f64 = 70.0;
const ROW_GAP: f64 = 16.0;
const PAD: f64 = 24.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render the graph as a standalone SVG document.
pub fn to_svg(graph: &Graph) -> String {
    let vis = visible(graph);
    let vis_set: std::collections::HashSet<_> = vis.iter().copied().collect();

    // BFS depth from roots → column index.
    let mut depth: HashMap<BoxId, usize> = HashMap::new();
    let roots: Vec<BoxId> = if graph.roots.is_empty() {
        vis.clone()
    } else {
        graph.roots.clone()
    };
    let mut queue: std::collections::VecDeque<(BoxId, usize)> =
        roots.iter().map(|r| (*r, 0)).collect();
    while let Some((id, d)) = queue.pop_front() {
        if !vis_set.contains(&id) || depth.contains_key(&id) {
            continue;
        }
        depth.insert(id, d);
        for n in graph.neighbors(id) {
            queue.push_back((n, d + 1));
        }
    }

    // Column heights → positions.
    let mut columns: Vec<Vec<BoxId>> = Vec::new();
    for id in &vis {
        let d = *depth.get(id).unwrap_or(&0);
        while columns.len() <= d {
            columns.push(Vec::new());
        }
        columns[d].push(*id);
    }

    let mut pos: HashMap<BoxId, (f64, f64, f64)> = HashMap::new(); // x, y, h
    let mut max_h: f64 = 0.0;
    for (ci, col) in columns.iter().enumerate() {
        let x = PAD + ci as f64 * (BOX_W + COL_GAP);
        let mut y = PAD;
        for id in col {
            let lines = box_lines(graph, *id).len();
            let h = (lines as f64 + 0.5) * LINE_H;
            pos.insert(*id, (x, y, h));
            y += h + ROW_GAP;
        }
        max_h = max_h.max(y);
    }
    let width = PAD * 2.0 + columns.len() as f64 * (BOX_W + COL_GAP);
    let height = max_h + PAD;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" font-family=\"monospace\" font-size=\"12\">"
    );
    // Edges first (under boxes).
    for id in &vis {
        let Some(&(x, y, _)) = pos.get(id) else {
            continue;
        };
        if graph.get(*id).attrs.collapsed {
            continue;
        }
        if let Some(view) = graph.get(*id).active_view() {
            for item in &view.items {
                let targets: Vec<BoxId> = match item {
                    Item::Link { target, .. } => vec![*target],
                    Item::Container { members, attrs, .. } if !attrs.collapsed => members.clone(),
                    _ => continue,
                };
                for t in targets {
                    if let Some(&(tx, ty, th)) = pos.get(&t) {
                        let _ = writeln!(
                            out,
                            "  <path d=\"M {sx:.0} {sy:.0} C {c1:.0} {sy:.0}, {c2:.0} {ty2:.0}, {tx:.0} {ty2:.0}\" fill=\"none\" stroke=\"#668\" stroke-width=\"1\"/>",
                            sx = x + BOX_W,
                            sy = y + LINE_H,
                            c1 = x + BOX_W + COL_GAP / 2.0,
                            c2 = tx - COL_GAP / 2.0,
                            ty2 = ty + th / 2.0,
                        );
                    }
                }
            }
        }
    }
    // Boxes.
    for id in &vis {
        let Some(&(x, y, h)) = pos.get(id) else {
            continue;
        };
        let b = graph.get(*id);
        let lines = box_lines(graph, *id);
        let fill = if b.attrs.collapsed { "#eee" } else { "#fffdf5" };
        let _ = writeln!(
            out,
            "  <rect x=\"{x:.0}\" y=\"{y:.0}\" width=\"{BOX_W:.0}\" height=\"{h:.0}\" rx=\"6\" fill=\"{fill}\" stroke=\"#334\"/>"
        );
        for (i, line) in lines.iter().enumerate() {
            let weight = if i == 0 { " font-weight=\"bold\"" } else { "" };
            let _ = writeln!(
                out,
                "  <text x=\"{tx:.0}\" y=\"{ty:.0}\"{weight}>{}</text>",
                esc(line),
                tx = x + 8.0,
                ty = y + (i as f64 + 1.0) * LINE_H - 4.0,
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

fn box_lines(graph: &Graph, id: BoxId) -> Vec<String> {
    let b = graph.get(id);
    let title = if b.addr != 0 {
        format!("{} @{:#x}", b.label, b.addr)
    } else {
        b.label.clone()
    };
    if b.attrs.collapsed {
        return vec![format!("[+] {title}")];
    }
    let mut lines = vec![title];
    if let Some(view) = b.active_view() {
        for item in &view.items {
            match item {
                Item::Text { name, value, .. } => lines.push(format!("{name}: {value}")),
                Item::Link { name, .. } => lines.push(format!("{name} →")),
                Item::NullLink { name } => lines.push(format!("{name} → ∅")),
                Item::Container {
                    name,
                    members,
                    attrs,
                    ..
                } => {
                    if attrs.collapsed {
                        lines.push(format!("{name}: [+{}]", members.len()));
                    } else {
                        lines.push(format!("{name} [{}] →", members.len()));
                    }
                }
            }
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_graph;

    #[test]
    fn svg_is_well_formed_enough() {
        let g = sample_graph();
        let s = to_svg(&g);
        assert!(s.starts_with("<svg"));
        assert!(s.ends_with("</svg>\n"));
        assert_eq!(s.matches("<rect").count(), 3);
        assert!(s.contains("pid: 1"));
        assert!(s.matches("<path").count() >= 2, "link + container edges");
    }

    #[test]
    fn collapsed_box_is_a_stub() {
        let mut g = sample_graph();
        let mm = g.boxes().iter().find(|b| b.label == "MM").unwrap().id;
        g.get_mut(mm).attrs.collapsed = true;
        let s = to_svg(&g);
        assert!(s.contains("[+] MM"));
        assert!(!s.contains("map_count"));
    }

    #[test]
    fn xml_escaping() {
        let mut g = sample_graph();
        if let Some(v) = g.get_mut(vgraph::BoxId(0)).views.first_mut() {
            v.items.push(Item::Text {
                name: "x".into(),
                value: "<&>".into(),
                raw: None,
            });
        }
        let s = to_svg(&g);
        assert!(s.contains("&lt;&amp;&gt;"));
    }
}
