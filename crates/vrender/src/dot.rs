//! Graphviz DOT export.

use std::fmt::Write as _;

use vgraph::{Graph, Item};

use crate::visible;

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('{', "\\{")
        .replace('}', "\\}")
        .replace('<', "\\<")
        .replace('>', "\\>")
        .replace('|', "\\|")
}

/// Render the graph as a Graphviz digraph with record-shaped nodes.
pub fn to_dot(graph: &Graph) -> String {
    let vis: std::collections::HashSet<_> = visible(graph).into_iter().collect();
    let mut out = String::from(
        "digraph visualinux {\n  rankdir=LR;\n  node [shape=record, fontname=\"monospace\"];\n",
    );
    for b in graph.boxes() {
        if !vis.contains(&b.id) {
            continue;
        }
        let title = if b.addr != 0 {
            format!("{} @{:#x}", b.label, b.addr)
        } else {
            b.label.clone()
        };
        if b.attrs.collapsed {
            let _ = writeln!(
                out,
                "  n{} [label=\"[+] {}\", style=dashed];",
                b.id.0,
                esc(&title)
            );
            continue;
        }
        let mut fields = vec![esc(&title)];
        if let Some(view) = b.active_view() {
            for item in &view.items {
                match item {
                    Item::Text { name, value, .. } => {
                        fields.push(format!("{}: {}", esc(name), esc(value)))
                    }
                    Item::Link { name, .. } => {
                        fields.push(format!("<{}> {}", esc(name), esc(name)))
                    }
                    Item::NullLink { name } => fields.push(format!("{}: NULL", esc(name))),
                    Item::Container {
                        name,
                        members,
                        attrs,
                        ..
                    } => {
                        if attrs.collapsed {
                            fields.push(format!("{}: [+{}]", esc(name), members.len()));
                        } else {
                            fields.push(format!(
                                "<{}> {} [{}]",
                                esc(name),
                                esc(name),
                                members.len()
                            ));
                        }
                    }
                }
            }
        }
        let _ = writeln!(out, "  n{} [label=\"{}\"];", b.id.0, fields.join(" | "));
    }
    // Edges.
    for b in graph.boxes() {
        if !vis.contains(&b.id) || b.attrs.collapsed {
            continue;
        }
        if let Some(view) = b.active_view() {
            for item in &view.items {
                match item {
                    Item::Link { name, target } if vis.contains(target) => {
                        let _ = writeln!(out, "  n{}:{} -> n{};", b.id.0, esc(name), target.0);
                    }
                    Item::Container {
                        name,
                        members,
                        attrs,
                        ..
                    } if !attrs.collapsed => {
                        for m in members {
                            if vis.contains(m) {
                                let _ = writeln!(
                                    out,
                                    "  n{}:{} -> n{} [style=dotted];",
                                    b.id.0,
                                    esc(name),
                                    m.0
                                );
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_graph;

    #[test]
    fn dot_has_nodes_and_edges() {
        let g = sample_graph();
        let d = to_dot(&g);
        assert!(d.starts_with("digraph"));
        assert!(d.contains("n0 ["));
        assert!(d.contains("n0:mm -> n2;"));
        assert!(d.contains("style=dotted"), "container edges dotted");
        assert!(d.ends_with("}\n"));
    }

    #[test]
    fn special_characters_are_escaped() {
        let mut g = sample_graph();
        if let Some(v) = g.get_mut(vgraph::BoxId(0)).views.first_mut() {
            v.items.push(Item::Text {
                name: "weird".into(),
                value: "a|b{c}\"d\"".into(),
                raw: None,
            });
        }
        let d = to_dot(&g);
        assert!(d.contains("a\\|b\\{c\\}\\\"d\\\""));
    }

    #[test]
    fn trimmed_boxes_and_their_edges_vanish() {
        let mut g = sample_graph();
        let mm = g.boxes().iter().find(|b| b.label == "MM").unwrap().id;
        g.get_mut(mm).attrs.trimmed = true;
        let d = to_dot(&g);
        assert!(!d.contains("n0:mm ->"));
        assert!(!d.contains(&format!("n{} [", mm.0)));
    }
}
