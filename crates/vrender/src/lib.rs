//! Renderers for extracted object graphs.
//!
//! The paper's visualizer is a browser front-end; this crate provides the
//! equivalent presentation layer for a library context: a Unicode text
//! renderer (for terminals and tests), Graphviz DOT export, and a
//! self-contained SVG writer. All three respect the ViewQL display
//! attributes: `trimmed` objects disappear (with their descendants),
//! `collapsed` objects draw as a stub button, the `view` attribute picks
//! which item set is shown, and container `direction` flips the layout.

mod dot;
mod svg;
mod text;

pub use dot::to_dot;
pub use svg::to_svg;
pub use text::to_text;

use std::collections::HashSet;

use vgraph::{BoxId, Graph, Item};

/// Boxes that should actually be drawn: reachable from the roots, minus
/// trimmed subtrees. If the graph has no roots, every box is a root.
pub(crate) fn visible(graph: &Graph) -> Vec<BoxId> {
    let roots: Vec<BoxId> = if graph.roots.is_empty() {
        graph.boxes().iter().map(|b| b.id).collect()
    } else {
        graph.roots.clone()
    };
    let mut seen: HashSet<BoxId> = HashSet::new();
    let mut order = Vec::new();
    let mut stack: Vec<BoxId> = roots.into_iter().rev().collect();
    while let Some(id) = stack.pop() {
        if seen.contains(&id) || graph.get(id).attrs.trimmed {
            continue;
        }
        seen.insert(id);
        order.push(id);
        if graph.get(id).attrs.collapsed {
            continue; // children hidden behind the button
        }
        let b = graph.get(id);
        if let Some(view) = b.active_view() {
            for item in view.items.iter().rev() {
                match item {
                    Item::Link { target, .. } => stack.push(*target),
                    Item::Container { members, attrs, .. } if !attrs.collapsed => {
                        for m in members.iter().rev() {
                            stack.push(*m);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    order
}

#[cfg(test)]
pub(crate) fn sample_graph() -> Graph {
    use vgraph::{Attrs, ContainerKind, ViewInst};
    let mut g = Graph::new();
    let (a, _) = g.intern(0x1000, "Task", "task_struct", 64);
    let (b, _) = g.intern(0x2000, "Task", "task_struct", 64);
    let (c, _) = g.intern(0x3000, "MM", "mm_struct", 32);
    g.get_mut(a).views.push(ViewInst {
        name: "default".into(),
        items: vec![
            Item::Text {
                name: "pid".into(),
                value: "1".into(),
                raw: Some(1),
            },
            Item::Text {
                name: "comm".into(),
                value: "init".into(),
                raw: None,
            },
            Item::Link {
                name: "mm".into(),
                target: c,
            },
            Item::Container {
                name: "children".into(),
                kind: ContainerKind::Sequence,
                members: vec![b],
                attrs: Attrs::default(),
            },
        ],
    });
    g.get_mut(b).views.push(ViewInst {
        name: "default".into(),
        items: vec![
            Item::Text {
                name: "pid".into(),
                value: "2".into(),
                raw: Some(2),
            },
            Item::NullLink { name: "mm".into() },
        ],
    });
    g.get_mut(c).views.push(ViewInst {
        name: "default".into(),
        items: vec![Item::Text {
            name: "map_count".into(),
            value: "12".into(),
            raw: Some(12),
        }],
    });
    g.roots.push(a);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visible_respects_trim_and_collapse() {
        let mut g = sample_graph();
        assert_eq!(visible(&g).len(), 3);
        // Trim the MM: it disappears.
        let mm = g.boxes().iter().find(|b| b.label == "MM").unwrap().id;
        g.get_mut(mm).attrs.trimmed = true;
        assert_eq!(visible(&g).len(), 2);
        // Collapse the root: children hidden.
        g.get_mut(vgraph::BoxId(0)).attrs.trimmed = false;
        g.get_mut(mm).attrs.trimmed = false;
        g.get_mut(vgraph::BoxId(0)).attrs.collapsed = true;
        assert_eq!(visible(&g).len(), 1);
    }
}
