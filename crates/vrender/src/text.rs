//! Unicode box-drawing text renderer.

use vgraph::{Graph, Item};

use crate::visible;

/// Render the graph as indented Unicode boxes.
///
/// Each visible box prints a bordered card with its active view's items;
/// links and containers recurse with indentation. Cycles and shared boxes
/// print a `↩ ref` line instead of re-expanding.
pub fn to_text(graph: &Graph) -> String {
    let visible_set: std::collections::HashSet<_> = visible(graph).into_iter().collect();
    let mut out = String::new();
    let mut printed = std::collections::HashSet::new();
    let roots: Vec<_> = if graph.roots.is_empty() {
        graph.boxes().iter().map(|b| b.id).collect()
    } else {
        graph.roots.clone()
    };
    for root in roots {
        render_box(graph, root, 0, &mut printed, &visible_set, &mut out);
    }
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn render_box(
    graph: &Graph,
    id: vgraph::BoxId,
    depth: usize,
    printed: &mut std::collections::HashSet<vgraph::BoxId>,
    visible: &std::collections::HashSet<vgraph::BoxId>,
    out: &mut String,
) {
    if !visible.contains(&id) {
        return;
    }
    let b = graph.get(id);
    if printed.contains(&id) {
        indent(out, depth);
        out.push_str(&format!("↩ {} @{:#x}\n", b.label, b.addr));
        return;
    }
    printed.insert(id);

    let title = if b.addr != 0 {
        format!("{} ({}) @{:#x}", b.label, b.ctype, b.addr)
    } else {
        b.label.clone()
    };
    if b.attrs.collapsed {
        indent(out, depth);
        out.push_str(&format!("[+] {title}\n"));
        return;
    }
    let mut lines: Vec<String> = vec![title];
    let mut children: Vec<(String, Vec<vgraph::BoxId>, bool)> = Vec::new();
    if let Some(view) = b.active_view() {
        for item in &view.items {
            match item {
                Item::Text { name, value, .. } => lines.push(format!("{name}: {value}")),
                Item::NullLink { name } => lines.push(format!("{name} → ∅")),
                Item::Link { name, target } => {
                    lines.push(format!("{name} ↓"));
                    children.push((name.clone(), vec![*target], false));
                }
                Item::Container {
                    name,
                    members,
                    attrs,
                    ..
                } => {
                    if attrs.collapsed {
                        lines.push(format!("{name}: [+] {} members", members.len()));
                    } else {
                        lines.push(format!("{name} [{}] ↓", members.len()));
                        // `direction` can sit on the container item or on
                        // the owning box (ViewQL box selections set the
                        // latter); either flips the layout.
                        let vertical = attrs.direction.as_deref() == Some("vertical")
                            || b.attrs.direction.as_deref() == Some("vertical");
                        children.push((name.clone(), members.clone(), vertical));
                    }
                }
            }
        }
    }
    let width = lines.iter().map(|l| l.chars().count()).max().unwrap_or(0);
    indent(out, depth);
    out.push_str(&format!("┌{}┐\n", "─".repeat(width + 2)));
    for (i, l) in lines.iter().enumerate() {
        indent(out, depth);
        let pad = width - l.chars().count();
        out.push_str(&format!("│ {}{} │\n", l, " ".repeat(pad)));
        if i == 0 && lines.len() > 1 {
            indent(out, depth);
            out.push_str(&format!("├{}┤\n", "─".repeat(width + 2)));
        }
    }
    indent(out, depth);
    out.push_str(&format!("└{}┘\n", "─".repeat(width + 2)));

    for (name, kids, vertical) in children {
        if vertical && kids.len() > 1 {
            // Vertical containers draw a rail so the column reads as one
            // structure (ViewQL `direction: vertical`, Table 3 #14-3).
            indent(out, depth + 1);
            out.push_str(&format!("▼ {name}\n"));
        }
        for k in kids {
            render_box(graph, k, depth + 1, printed, visible, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_graph;

    #[test]
    fn renders_boxes_fields_and_nesting() {
        let g = sample_graph();
        let t = to_text(&g);
        assert!(t.contains("Task (task_struct) @0x1000"));
        assert!(t.contains("pid: 1"));
        assert!(t.contains("comm: init"));
        assert!(t.contains("mm → ∅"), "null link rendered: {t}");
        assert!(t.contains("children [1]"));
        // Child indented one level.
        assert!(t.contains("    ┌"));
    }

    #[test]
    fn collapsed_box_renders_as_button() {
        let mut g = sample_graph();
        let mm = g.boxes().iter().find(|b| b.label == "MM").unwrap().id;
        g.get_mut(mm).attrs.collapsed = true;
        let t = to_text(&g);
        assert!(t.contains("[+] MM"));
        assert!(!t.contains("map_count"));
    }

    #[test]
    fn trimmed_box_vanishes() {
        let mut g = sample_graph();
        let mm = g.boxes().iter().find(|b| b.label == "MM").unwrap().id;
        g.get_mut(mm).attrs.trimmed = true;
        let t = to_text(&g);
        assert!(!t.contains("MM"));
    }

    #[test]
    fn shared_boxes_render_as_backrefs() {
        use vgraph::{Item, ViewInst};
        let mut g = sample_graph();
        // Task #2 also links to the same MM.
        let mm = g.boxes().iter().find(|b| b.label == "MM").unwrap().id;
        let t2 = vgraph::BoxId(1);
        g.get_mut(t2).views[0].items.push(Item::Link {
            name: "mm2".into(),
            target: mm,
        });
        // Rebuild a view order where MM is hit twice.
        let t = to_text(&g);
        assert_eq!(t.matches("map_count").count(), 1);
        assert!(t.contains("↩ MM"));
        let _ = ViewInst {
            name: String::new(),
            items: vec![],
        };
    }
}
