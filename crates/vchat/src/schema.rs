//! The graph schema: what the prompt tells the model about the plot.

use vgraph::{Graph, Item};

/// Kind of a member, for grounding decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberKind {
    /// A text field.
    Text,
    /// A link edge.
    Link,
    /// A container.
    Container,
}

/// One member of a box type.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaMember {
    /// Member name as displayed.
    pub name: String,
    /// Member kind.
    pub kind: MemberKind,
}

/// One box type present in the plot.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaType {
    /// C type tag (may be empty for virtual boxes).
    pub ctype: String,
    /// ViewCL label.
    pub label: String,
    /// Union of members across views.
    pub members: Vec<SchemaMember>,
    /// How many instances the plot holds.
    pub count: usize,
}

/// The schema extracted from a plotted graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    /// All types, most frequent first.
    pub types: Vec<SchemaType>,
}

impl Schema {
    /// Derive the schema of `graph`.
    pub fn of(graph: &Graph) -> Schema {
        let mut map: std::collections::BTreeMap<(String, String), SchemaType> = Default::default();
        for b in graph.boxes() {
            let key = (b.ctype.clone(), b.label.clone());
            let e = map.entry(key).or_insert_with(|| SchemaType {
                ctype: b.ctype.clone(),
                label: b.label.clone(),
                members: Vec::new(),
                count: 0,
            });
            e.count += 1;
            for view in &b.views {
                for item in &view.items {
                    let kind = match item {
                        Item::Text { .. } => MemberKind::Text,
                        Item::Link { .. } | Item::NullLink { .. } => MemberKind::Link,
                        Item::Container { .. } => MemberKind::Container,
                    };
                    if !e.members.iter().any(|m| m.name == item.name()) {
                        e.members.push(SchemaMember {
                            name: item.name().to_string(),
                            kind,
                        });
                    }
                }
            }
        }
        let mut types: Vec<SchemaType> = map.into_values().collect();
        types.sort_by_key(|t| std::cmp::Reverse(t.count));
        Schema { types }
    }

    /// Find a type by exact ctype or label.
    pub fn type_named(&self, name: &str) -> Option<&SchemaType> {
        self.types
            .iter()
            .find(|t| t.ctype == name || t.label == name)
    }

    /// Render the schema as prompt text (what §4.2's prompt embeds).
    pub fn to_prompt(&self) -> String {
        let mut s = String::from("A kernel object graph with the following box types:\n");
        for t in &self.types {
            let members: Vec<&str> = t.members.iter().map(|m| m.name.as_str()).collect();
            s.push_str(&format!(
                "- {} (label {}, {} instances): members {}\n",
                if t.ctype.is_empty() {
                    "<virtual>"
                } else {
                    &t.ctype
                },
                t.label,
                t.count,
                members.join(", ")
            ));
        }
        s
    }
}
