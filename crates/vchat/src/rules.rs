//! The intent rule engine.

use crate::ground::{
    ground_container, ground_member, ground_type, ground_type_candidates, normalize,
};
use crate::schema::Schema;
use crate::{Result, VchatError};

/// Synthesizes ViewQL from natural-language descriptions against a plot
/// schema.
pub struct Synthesizer {
    schema: Schema,
    next_var: std::cell::Cell<u8>,
}

impl Synthesizer {
    /// Create a synthesizer for a plot with the given schema.
    pub fn new(schema: Schema) -> Self {
        Synthesizer {
            schema,
            next_var: std::cell::Cell::new(0),
        }
    }

    /// An `UnknownNoun` error carrying the nearest schema name, so the
    /// user learns what the plot *does* contain.
    fn unknown(&self, noun: &str) -> VchatError {
        VchatError::UnknownNoun {
            noun: noun.to_string(),
            suggestion: crate::ground::suggest(&self.schema, noun),
        }
    }

    fn fresh(&self) -> String {
        let n = self.next_var.get();
        self.next_var.set(n + 1);
        format!("{}", (b'a' + n % 26) as char)
    }

    /// Synthesize a ViewQL program for `desc`; the result is validated by
    /// the ViewQL parser before being returned (the rule-engine analogue
    /// of the LLM's retry-on-parse-error loop).
    pub fn synthesize(&self, desc: &str) -> Result<String> {
        self.next_var.set(0);
        let norm = normalize(desc);
        let mut out: Vec<String> = Vec::new();
        for clause in split_clauses(&norm) {
            // Pronoun clauses ("and collapse them") re-target the previous
            // selection instead of grounding a new noun.
            if let Some(attr) = pronoun_attr(&clause) {
                let last = out
                    .iter()
                    .rev()
                    .find_map(|s| s.split(" = SELECT").next().filter(|v| !v.contains(' ')))
                    .map(str::to_string);
                if let Some(var) = last {
                    out.push(format!("UPDATE {var} WITH {attr}: true"));
                    continue;
                }
            }
            let stmts = self.clause(&clause)?;
            out.extend(stmts);
        }
        if out.is_empty() {
            return Err(VchatError::NoIntent(desc.to_string()));
        }
        let program = out.join("\n");
        vql::parse(&program).map_err(|e| VchatError::Invalid(e.to_string()))?;
        Ok(program)
    }

    fn clause(&self, clause: &str) -> Result<Vec<String>> {
        let c = clause.trim();
        if c.is_empty() {
            return Ok(vec![]);
        }
        // D. "find me all T whose address is not N" [+ "collapse them"]
        if let Some(stmts) = self.rule_address_pin(c)? {
            return Ok(stmts);
        }
        // A. "display view V of NOUN" / "display NOUN with the V view" /
        //    "display the NOUNs that COND with the V view".
        if let Some(stmts) = self.rule_view(c)? {
            return Ok(stmts);
        }
        // B. "display the NOUN (list) vertically / top-down".
        if let Some(stmts) = self.rule_direction(c)? {
            return Ok(stmts);
        }
        // C. shrink/collapse/trim + noun + optional condition.
        if let Some(stmts) = self.rule_prune(c)? {
            return Ok(stmts);
        }
        Err(VchatError::NoIntent(c.to_string()))
    }

    // "find me all vm_area_struct whose address is not 12345 and collapse them"
    fn rule_address_pin(&self, c: &str) -> Result<Option<Vec<String>>> {
        let Some(pos) = c.find("whose address is not") else {
            return Ok(None);
        };
        let head = &c[..pos];
        let tail = &c[pos + "whose address is not".len()..];
        let ty = ground_type(&self.schema, head).ok_or_else(|| self.unknown(head))?;
        let addr = tail
            .split_whitespace()
            .find_map(parse_number)
            .ok_or_else(|| VchatError::NoIntent(format!("no address in `{tail}`")))?;
        let v = self.fresh();
        let name = type_ref(ty);
        let addr = addr as u64;
        let mut stmts = vec![format!(
            "{v} = SELECT {name} FROM * AS obj WHERE obj != {addr}"
        )];
        // The update may ride along in this clause ("… and collapse them")
        // or arrive as a separate pronoun clause; emit it here only when
        // the tail names the action.
        if tail.contains("trim") || tail.contains("invisible") || tail.contains("remove") {
            stmts.push(format!("UPDATE {v} WITH trimmed: true"));
        } else if tail.contains("collapse") || tail.contains("shrink") {
            stmts.push(format!("UPDATE {v} WITH collapsed: true"));
        }
        Ok(Some(stmts))
    }

    // "display view show_children of all tasks"
    // "display the task_structs that have non-null mm members with the show_mm view"
    fn rule_view(&self, c: &str) -> Result<Option<Vec<String>>> {
        if !c.starts_with("display") && !c.starts_with("show") && !c.starts_with("let") {
            return Ok(None);
        }
        // Extract the view name.
        let view = if let Some(pos) = c.find("view ") {
            let rest = &c[pos + 5..];
            let w = rest.split_whitespace().next().unwrap_or("");
            if w == "of" {
                None
            } else {
                Some(w.to_string())
            }
        } else {
            None
        };
        let view = view.or_else(|| {
            // "... with the V view" form.
            let pos = c.find(" view")?;
            let before = &c[..pos];
            before
                .split_whitespace()
                .last()
                .map(|s| s.to_string())
                .filter(|w| w != "the")
        });
        let Some(view) = view else { return Ok(None) };

        // The noun phrase: after "of", or before "with the … view".
        let noun = if let Some(pos) = c.find(" of ") {
            c[pos + 4..].to_string()
        } else {
            c.replace("display the", "").replace("display", "")
        };
        let ty = ground_type(&self.schema, &noun).ok_or_else(|| self.unknown(&noun))?;
        let name = type_ref(ty);
        // Optional condition ("that have non-null mm members").
        let cond = if noun.contains("non-null") || noun.contains("nonnull") {
            let member = ground_member(ty, &noun).ok_or_else(|| self.unknown(&noun))?;
            Some(format!("{member} != NULL"))
        } else if let Some(pos) = noun
            .find("that have no ")
            .or_else(|| noun.find("that has no "))
        {
            let phrase = &noun[pos + 13..];
            let member = ground_member(ty, phrase).ok_or_else(|| self.unknown(phrase))?;
            Some(format!("{member} == NULL"))
        } else {
            None
        };
        let v = self.fresh();
        let select = match cond {
            Some(w) => format!("{v} = SELECT {name} FROM * WHERE {w}"),
            None => format!("{v} = SELECT {name} FROM *"),
        };
        Ok(Some(vec![select, format!("UPDATE {v} WITH view: {view}")]))
    }

    // "display the superblock list vertically" / "display the red-black tree top-down"
    fn rule_direction(&self, c: &str) -> Result<Option<Vec<String>>> {
        if !(c.contains("vertical") || c.contains("top-down") || c.contains("top down")) {
            return Ok(None);
        }
        let noun = c
            .replace("display the", "")
            .replace("display", "")
            .replace("vertically", "")
            .replace("top-down", "")
            .replace("top down", "");
        // Direction applies to the *structure* (the list/tree container),
        // so structural labels win over the element type.
        let candidates = ground_type_candidates(&self.schema, &noun);
        let ty = candidates
            .iter()
            .find(|t| {
                matches!(
                    t.label.as_str(),
                    "List" | "RBTree" | "HashTable" | "TimerBase"
                )
            })
            .copied()
            .or_else(|| candidates.first().copied())
            .ok_or_else(|| self.unknown(&noun))?;
        let v = self.fresh();
        let name = type_ref(ty);
        Ok(Some(vec![
            format!("{v} = SELECT {name} FROM *"),
            format!("UPDATE {v} WITH direction: vertical"),
        ]))
    }

    // shrink / collapse / trim with conditions
    fn rule_prune(&self, c: &str) -> Result<Option<Vec<String>>> {
        let attr = if c.starts_with("shrink") || c.starts_with("collapse") {
            "collapsed"
        } else if c.starts_with("trim")
            || c.starts_with("remove")
            || c.starts_with("hide")
            || c.starts_with("make")
        {
            "trimmed"
        } else {
            return Ok(None);
        };
        let body = c
            .trim_start_matches("shrink")
            .trim_start_matches("collapse")
            .trim_start_matches("trim")
            .trim_start_matches("remove")
            .trim_start_matches("hide")
            .trim_start_matches("make")
            .replace("invisible", "");
        let body = body
            .trim()
            .trim_start_matches("all ")
            .trim_start_matches("the ");

        // "… except for pids 2 and 100" — keep-set difference.
        if let Some(pos) = body.find("except") {
            let (head, tail) = body.split_at(pos);
            let ty = ground_type(&self.schema, head).ok_or_else(|| self.unknown(head))?;
            let name = type_ref(ty);
            let nums: Vec<i64> = tail.split_whitespace().filter_map(parse_number).collect();
            if nums.is_empty() {
                return Err(VchatError::NoIntent(format!("no values in `{tail}`")));
            }
            let member = ground_member(ty, "pid nr id")
                .or_else(|| ty.members.first().map(|m| m.name.as_str()))
                .ok_or_else(|| self.unknown(head))?;
            let cond = nums
                .iter()
                .map(|n| format!("{member} == {n}"))
                .collect::<Vec<_>>()
                .join(" OR ");
            let all = self.fresh();
            let keep = self.fresh();
            return Ok(Some(vec![
                format!("{all} = SELECT {name} FROM *"),
                format!("{keep} = SELECT {name} FROM * WHERE {cond}"),
                format!("UPDATE {all} \\ {keep} WITH {attr}: true"),
            ]));
        }

        // "… the X list in/of Y" — container member select.
        if body.contains("list") {
            // Search all types for a matching container member.
            for ty in &self.schema.types {
                if let Some(member) = ground_container(ty, body) {
                    let v = self.fresh();
                    let name = type_ref(ty);
                    return Ok(Some(vec![
                        format!("{v} = SELECT {name}.{member} FROM *"),
                        format!("UPDATE {v} WITH {attr}: true"),
                    ]));
                }
            }
        }

        // Conditions may only ground on one of several plausible types
        // ("sockets whose write buffer…" grounds the condition on `sock`,
        // not `socket`); try candidates in priority order.
        let candidates = ground_type_candidates(&self.schema, body);
        if candidates.is_empty() {
            return Err(self.unknown(body));
        }
        let mut choice = None;
        let mut last_err = None;
        for ty in &candidates {
            match self.prune_condition(ty, body) {
                Ok(c) => {
                    choice = Some((*ty, c));
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let (ty, cond) = match choice {
            Some(x) => x,
            None => return Err(last_err.expect("at least one candidate tried")),
        };
        let name = type_ref(ty);
        let v = self.fresh();
        let select = match cond {
            Some(w) => format!("{v} = SELECT {name} FROM * WHERE {w}"),
            None => format!("{v} = SELECT {name} FROM *"),
        };
        Ok(Some(vec![select, format!("UPDATE {v} WITH {attr}: true")]))
    }

    fn prune_condition(
        &self,
        ty: &crate::schema::SchemaType,
        body: &str,
    ) -> Result<Option<String>> {
        // "whose X and Y are both empty".
        if body.contains("both empty") || body.contains("are empty") {
            let mut members = Vec::new();
            for phrase in body.split(['/', ' ']) {
                if let Some(m) = ground_member(ty, phrase) {
                    if !members.contains(&m) {
                        members.push(m);
                    }
                }
            }
            if members.is_empty() {
                return Err(self.unknown(body));
            }
            let cond = members
                .iter()
                .map(|m| format!("{m} == 0"))
                .collect::<Vec<_>>()
                .join(" AND ");
            return Ok(Some(cond));
        }
        // Negative-possession: "that have no X", "whose X is not configured",
        // "that are not connected to any X", "with no X", "non-configured".
        for marker in [
            "that have no ",
            "that has no ",
            "with no ",
            "without ",
            "whose ",
            "that are not connected to any ",
            "not connected to any ",
        ] {
            if let Some(pos) = body.find(marker) {
                let phrase = &body[pos + marker.len()..];
                let member = ground_member(ty, phrase).ok_or_else(|| self.unknown(phrase))?;
                let negated = marker.contains("no")
                    || phrase.contains("not configured")
                    || phrase.contains("is not");
                let op = if negated { "==" } else { "!=" };
                return Ok(Some(format!("{member} {op} NULL")));
            }
        }
        if body.contains("non-configured") || body.contains("unconfigured") {
            let member = ground_member(ty, "handler action").ok_or_else(|| self.unknown(body))?;
            return Ok(Some(format!("{member} == 0")));
        }
        if body.contains("writable") {
            if let Some(member) = ground_member(ty, "writable") {
                return Ok(Some(format!("{member} == true")));
            }
        }
        Ok(None)
    }
}

/// `collapse them` / `trim those` style pronoun clauses.
fn pronoun_attr(clause: &str) -> Option<&'static str> {
    let c = clause.trim();
    let pronoun = c.ends_with("them") || c.ends_with("these") || c.ends_with("those");
    if !pronoun {
        return None;
    }
    if c.starts_with("collapse") || c.starts_with("shrink") {
        Some("collapsed")
    } else if c.starts_with("trim") || c.starts_with("remove") || c.starts_with("hide") {
        Some("trimmed")
    } else {
        None
    }
}

fn type_ref(ty: &crate::schema::SchemaType) -> &str {
    if ty.ctype.is_empty() {
        &ty.label
    } else {
        &ty.ctype
    }
}

fn parse_number(w: &str) -> Option<i64> {
    let w = w.trim_matches(|c: char| !c.is_ascii_alphanumeric());
    if let Some(hex) = w.strip_prefix("0x") {
        return u64::from_str_radix(hex, 16).ok().map(|v| v as i64);
    }
    w.parse::<u64>().ok().map(|v| v as i64)
}

/// Split a description into intent clauses: `, and VERB` / `and VERB` /
/// `, VERB` boundaries only, so noun-level "and"s survive.
fn split_clauses(s: &str) -> Vec<String> {
    const VERBS: [&str; 9] = [
        "display", "shrink", "collapse", "trim", "remove", "hide", "make", "show", "find",
    ];
    let words: Vec<&str> = s.split_whitespace().collect();
    let mut clauses = Vec::new();
    let mut cur: Vec<String> = Vec::new();
    let mut i = 0;
    while i < words.len() {
        let w = words[i];
        let trimmed = w.trim_end_matches(',');
        let boundary = !cur.is_empty() && (w == "and" || trimmed != w) && i + 1 < words.len() && {
            let next = words[i + 1];
            let next = if trimmed != w && next == "and" {
                *words.get(i + 2).unwrap_or(&"")
            } else {
                next
            };
            VERBS.contains(&next)
        };
        if boundary {
            cur.push(trimmed.to_string());
            if w == "and" {
                cur.pop();
            }
            clauses.push(cur.join(" "));
            cur = Vec::new();
            if trimmed != w && words.get(i + 1) == Some(&"and") {
                i += 1; // skip the "and" after a comma
            }
            i += 1;
            continue;
        }
        cur.push(trimmed.to_string());
        i += 1;
    }
    if !cur.is_empty() {
        clauses.push(cur.join(" "));
    }
    clauses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{MemberKind, SchemaMember, SchemaType};

    fn schema() -> Schema {
        let t = |ctype: &str, label: &str, members: &[(&str, MemberKind)]| SchemaType {
            ctype: ctype.into(),
            label: label.into(),
            members: members
                .iter()
                .map(|(n, k)| SchemaMember {
                    name: (*n).into(),
                    kind: *k,
                })
                .collect(),
            count: 4,
        };
        use MemberKind::*;
        Schema {
            types: vec![
                t(
                    "task_struct",
                    "Task",
                    &[
                        ("pid", Text),
                        ("comm", Text),
                        ("mm", Link),
                        ("children", Container),
                    ],
                ),
                t(
                    "vm_area_struct",
                    "VMArea",
                    &[("vm_start", Text), ("is_writable", Text)],
                ),
                t(
                    "super_block",
                    "SuperBlock",
                    &[("s_id", Text), ("s_bdev", Link)],
                ),
                t("irq_desc", "IrqDesc", &[("irq", Text), ("action", Link)]),
                t(
                    "socket",
                    "Socket",
                    &[
                        ("sk_receive_queue", Container),
                        ("sk_write_queue", Container),
                    ],
                ),
                t(
                    "maple_node",
                    "MapleNode",
                    &[("slots", Container), ("pivots", Container)],
                ),
                t("", "List", &[("members", Container)]),
                t("pid", "Pid", &[("nr", Text)]),
                t("address_space", "AddressSpace", &[("pages", Container)]),
                t("file", "File", &[("f_mapping", Link)]),
                t("k_sigaction", "SigAction", &[("sa_handler", Text)]),
            ],
        }
    }

    fn synth(desc: &str) -> String {
        Synthesizer::new(schema()).synthesize(desc).unwrap()
    }

    #[test]
    fn section_2_4_example() {
        // Paper §2.4: the canonical vchat example.
        let p =
            synth("display the task_structs that have non-null mm members with the show_mm view");
        assert!(
            p.contains("SELECT task_struct FROM * WHERE mm != NULL"),
            "{p}"
        );
        assert!(p.contains("WITH view: show_mm"), "{p}");
    }

    #[test]
    fn view_plus_shrink_composite() {
        let p = synth(
            "Display view show_children of all tasks and shrink tasks that have no address space",
        );
        assert!(p.contains("WITH view: show_children"), "{p}");
        assert!(p.contains("WHERE mm == NULL"), "{p}");
        assert!(p.contains("WITH collapsed: true"), "{p}");
    }

    #[test]
    fn except_pids_difference() {
        let p = synth("Shrink all PID hash table entries except for pids 2 and 100");
        assert!(p.contains("WHERE nr == 2 OR nr == 100"), "{p}");
        assert!(p.contains("\\"), "{p}");
    }

    #[test]
    fn address_pin_from_section_3_2() {
        let p = synth(
            "Find me all vm_area_struct whose address is not 0xffff888004001000, and collapse them",
        );
        assert!(
            p.contains("AS obj WHERE obj != 18446612682137145344"),
            "{p}"
        );
        assert!(p.contains("collapsed: true"), "{p}");
    }

    #[test]
    fn both_empty_condition() {
        let p = synth("Shrink sockets whose write buffer and receive buffer are both empty");
        assert!(
            p.contains("sk_write_queue == 0 AND sk_receive_queue == 0"),
            "{p}"
        );
    }

    #[test]
    fn direction_vertical() {
        let p = synth("Display the superblock list vertically, and collapse superblocks that are not connected to any block device");
        assert!(p.contains("direction: vertical"), "{p}");
        assert!(p.contains("s_bdev == NULL"), "{p}");
    }

    #[test]
    fn container_member_collapse() {
        let p = synth("collapse the slot pointer list");
        assert!(p.contains("SELECT maple_node.slots FROM *"), "{p}");
    }

    #[test]
    fn unknown_noun_is_reported() {
        let s = Synthesizer::new(schema());
        assert!(matches!(
            s.synthesize("shrink all flux capacitors"),
            Err(VchatError::UnknownNoun { .. })
        ));
        assert!(matches!(
            s.synthesize("frobnicate"),
            Err(VchatError::NoIntent(_))
        ));
    }

    #[test]
    fn unknown_noun_suggests_the_nearest_schema_name() {
        let s = Synthesizer::new(schema());
        let err = s.synthesize("shrink all tsk_structs").unwrap_err();
        match &err {
            VchatError::UnknownNoun { noun, suggestion } => {
                assert!(noun.contains("tsk_struct"), "{noun}");
                assert_eq!(suggestion.as_deref(), Some("task_struct"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            err.to_string(),
            "cannot ground `tsk_structs` in the plot; did you mean `task_struct`?"
        );
        // Nothing close ⇒ no guess appended.
        let err = s.synthesize("shrink all flux capacitors").unwrap_err();
        assert!(matches!(
            &err,
            VchatError::UnknownNoun {
                suggestion: None,
                ..
            }
        ));
        assert_eq!(
            err.to_string(),
            "cannot ground `flux capacitors` in the plot"
        );
    }

    #[test]
    fn output_always_parses_as_viewql() {
        for desc in [
            "shrink irq descriptors whose action is not configured",
            "shrink all non-configured sigactions",
            "shrink all writable vm_area_structs",
            "shrink all files that have no memory mapping",
        ] {
            let p = synth(desc);
            vql::parse(&p).unwrap();
        }
    }
}
