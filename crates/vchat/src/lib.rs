//! `vchat`: natural language → ViewQL synthesis (paper §2.4, §4.2).
//!
//! The paper pastes the user's description into a prompt (graph schema +
//! ViewQL grammar + in-context examples) and lets an LLM (DeepSeek-V2)
//! emit a ViewQL program, reporting 10/10 success on the Table 3
//! objectives. This crate is the deterministic stand-in: the same
//! *information flow* — a graph-derived [`Schema`] grounds the nouns, a
//! grammar of intent templates maps clauses to `SELECT`/`UPDATE` pairs —
//! with a rule engine in place of the network call. The claim being
//! reproduced is about the target language (ViewQL is small enough to
//! synthesize reliably), not about any particular model.

mod ground;
mod rules;
mod schema;

pub use ground::normalize;
pub use rules::Synthesizer;
pub use schema::{MemberKind, Schema, SchemaMember, SchemaType};

/// Errors from synthesis.
#[derive(Debug, Clone, PartialEq)]
pub enum VchatError {
    /// No intent rule matched the description.
    NoIntent(String),
    /// A noun could not be grounded in the graph schema.
    UnknownNoun {
        /// The phrase that failed to ground.
        noun: String,
        /// Nearest schema type/member by edit distance, when one is close.
        suggestion: Option<String>,
    },
    /// The produced program failed ViewQL validation.
    Invalid(String),
}

impl std::fmt::Display for VchatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VchatError::NoIntent(d) => write!(f, "no intent matched: `{d}`"),
            VchatError::UnknownNoun { noun, suggestion } => {
                write!(f, "cannot ground `{noun}` in the plot")?;
                if let Some(s) = suggestion {
                    write!(f, "; did you mean `{s}`?")?;
                }
                Ok(())
            }
            VchatError::Invalid(m) => write!(f, "synthesized invalid ViewQL: {m}"),
        }
    }
}

impl std::error::Error for VchatError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, VchatError>;
