//! Noun and member grounding against the schema.

use crate::schema::{MemberKind, Schema, SchemaType};

/// Lowercase, collapse whitespace, strip decorative punctuation.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            'A'..='Z' => out.push(c.to_ascii_lowercase()),
            '"' | '\'' | '“' | '”' | '.' | '!' | '?' => {}
            ',' => out.push(','),
            _ => out.push(c),
        }
    }
    out.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Strip a plural/underscore-mangled word down to candidate stems.
fn stems(word: &str) -> Vec<String> {
    let w = word.trim_matches(|c: char| !c.is_ascii_alphanumeric() && c != '_');
    let mut out = vec![w.to_string()];
    if let Some(s) = w.strip_suffix("es") {
        out.push(s.to_string());
    }
    if let Some(s) = w.strip_suffix('s') {
        out.push(s.to_string());
    }
    out
}

/// Domain synonyms: how people name kernel types in prose.
fn type_synonyms(word: &str) -> &[&str] {
    match word {
        "task" | "process" | "thread" => &["task_struct"],
        "superblock" | "filesystem" => &["super_block"],
        "file" => &["file"],
        "socket" | "connection" => &["sock", "socket"],
        "vma" | "area" | "mapping" => &["vm_area_struct"],
        "page" => &["page"],
        "irq" | "interrupt" | "descriptor" => &["irq_desc"],
        "pid" | "entry" => &["pid", "upid"],
        "pipe" => &["pipe_inode_info"],
        "node" => &["maple_node"],
        "sigaction" | "handler" => &["k_sigaction", "sigaction"],
        "timer" => &["timer_list"],
        "inode" => &["inode"],
        "dentry" => &["dentry"],
        "list" => &["List"],
        "tree" | "red-black" | "rbtree" => &["RBTree"],
        "table" | "hash" => &["HashTable"],
        "wheel" | "bucket" => &["TimerBase", "Bucket"],
        _ => &[],
    }
}

/// All plausible groundings of a noun phrase, best first.
pub fn ground_type_candidates<'s>(schema: &'s Schema, phrase: &str) -> Vec<&'s SchemaType> {
    let words: Vec<String> = phrase.split_whitespace().flat_map(stems).collect();
    let mut out: Vec<&SchemaType> = Vec::new();
    let push = |t: &'s SchemaType, out: &mut Vec<&'s SchemaType>| {
        if !out.iter().any(|e| e.ctype == t.ctype && e.label == t.label) {
            out.push(t);
        }
    };
    for w in &words {
        for t in &schema.types {
            if t.ctype == *w
                || t.label == *w
                || t.label.eq_ignore_ascii_case(w)
                || t.ctype.eq_ignore_ascii_case(w)
            {
                push(t, &mut out);
            }
        }
    }
    for w in &words {
        for syn in type_synonyms(w) {
            if let Some(t) = schema.type_named(syn) {
                push(t, &mut out);
            }
        }
    }
    for t in &schema.types {
        if words.iter().any(|w| {
            !t.ctype.is_empty()
                && w.len() > 3
                && (t.ctype.contains(w.as_str()) || (t.ctype.len() > 3 && w.contains(&t.ctype)))
        }) {
            push(t, &mut out);
        }
    }
    out
}

/// Ground a noun phrase to a schema type. Tries exact ctype/label tokens
/// first, then synonyms, then substring containment.
pub fn ground_type<'s>(schema: &'s Schema, phrase: &str) -> Option<&'s SchemaType> {
    let words: Vec<String> = phrase.split_whitespace().flat_map(stems).collect();
    // Exact ctype or label word.
    for w in &words {
        if let Some(t) = schema.types.iter().find(|t| t.ctype == *w || t.label == *w) {
            return Some(t);
        }
        // Case-insensitive label.
        if let Some(t) = schema
            .types
            .iter()
            .find(|t| t.label.eq_ignore_ascii_case(w) || t.ctype.eq_ignore_ascii_case(w))
        {
            return Some(t);
        }
    }
    // Synonyms.
    for w in &words {
        for syn in type_synonyms(w) {
            if let Some(t) = schema.type_named(syn) {
                return Some(t);
            }
        }
    }
    // Substring containment (e.g. "maple node" → maple_node).
    let joined = words.join("_");
    schema.types.iter().find(|t| {
        (!t.ctype.is_empty() && (joined.contains(&t.ctype) || t.ctype.contains(&joined)))
            || words
                .iter()
                .any(|w| !t.ctype.is_empty() && t.ctype.contains(w.as_str()) && w.len() > 3)
    })
}

/// Member synonyms within a type.
fn member_synonyms(word: &str) -> &[&str] {
    match word {
        "address" | "space" | "memory" => &["mm"],
        "mapping" => &["mm", "f_mapping", "mapping"],
        "device" => &["s_bdev", "bdev"],
        "action" | "configured" => &["action", "sa_handler", "handler"],
        "write" | "send" => &["sk_write_queue", "wq"],
        "receive" | "read" => &["sk_receive_queue", "rq"],
        "buffer" => &["sk_write_queue", "sk_receive_queue", "bufs"],
        "slot" | "pointer" => &["slots"],
        "page" => &["pages", "i_pages", "pagecache"],
        "children" | "child" => &["children"],
        "writable" => &["is_writable"],
        "handler" => &["sa_handler"],
        _ => &[],
    }
}

/// Ground a member phrase against a type's member list.
pub fn ground_member<'t>(ty: &'t SchemaType, phrase: &str) -> Option<&'t str> {
    let words: Vec<String> = phrase.split_whitespace().flat_map(stems).collect();
    for w in &words {
        if let Some(m) = ty.members.iter().find(|m| m.name == *w) {
            return Some(&m.name);
        }
    }
    for w in &words {
        for syn in member_synonyms(w) {
            if let Some(m) = ty.members.iter().find(|m| m.name == *syn) {
                return Some(&m.name);
            }
        }
    }
    // Substring match.
    for w in &words {
        if w.len() > 3 {
            if let Some(m) = ty.members.iter().find(|m| m.name.contains(w.as_str())) {
                return Some(&m.name);
            }
        }
    }
    None
}

/// Ground a member phrase preferring containers (for "collapse the X list").
pub fn ground_container<'t>(ty: &'t SchemaType, phrase: &str) -> Option<&'t str> {
    let words: Vec<String> = phrase.split_whitespace().flat_map(stems).collect();
    let containers = ty
        .members
        .iter()
        .filter(|m| m.kind == MemberKind::Container);
    for m in containers {
        for w in &words {
            let hit = m.name == *w
                || member_synonyms(w).contains(&m.name.as_str())
                || (w.len() > 3 && m.name.contains(w.as_str()));
            if hit {
                return Some(&m.name);
            }
        }
    }
    None
}

/// Levenshtein edit distance (unit costs), for typo suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The nearest schema name — type ctype, type label, or member name — to
/// any word of `phrase`, by edit distance. `None` unless something is
/// close enough to plausibly be a typo (distance ≤ ⌈len/3⌉, and strictly
/// closer than replacing the whole word).
pub fn suggest(schema: &Schema, phrase: &str) -> Option<String> {
    let names = schema.types.iter().flat_map(|t| {
        [t.ctype.as_str(), t.label.as_str()]
            .into_iter()
            .chain(t.members.iter().map(|m| m.name.as_str()))
    });
    let mut best: Option<(usize, &str)> = None;
    for name in names.filter(|n| !n.is_empty()) {
        for word in phrase.split_whitespace().flat_map(stems) {
            if word.len() < 3 {
                continue;
            }
            let d = edit_distance(&word.to_ascii_lowercase(), &name.to_ascii_lowercase());
            let budget = word.len().max(name.len()).div_ceil(3);
            if d > 0 && d <= budget && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, name));
            }
        }
    }
    best.map(|(_, name)| name.to_string())
}

#[cfg(test)]
mod suggest_tests {
    use super::*;
    use crate::schema::{MemberKind, SchemaMember};

    fn schema() -> Schema {
        Schema {
            types: vec![SchemaType {
                ctype: "task_struct".into(),
                label: "Task".into(),
                members: vec![
                    SchemaMember {
                        name: "children".into(),
                        kind: MemberKind::Container,
                    },
                    SchemaMember {
                        name: "vruntime".into(),
                        kind: MemberKind::Text,
                    },
                ],
                count: 4,
            }],
        }
    }

    #[test]
    fn distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn near_misses_are_suggested_far_ones_are_not() {
        let s = schema();
        assert_eq!(suggest(&s, "tsk_struct").as_deref(), Some("task_struct"));
        assert_eq!(
            suggest(&s, "the childen boxes").as_deref(),
            Some("children")
        );
        assert_eq!(suggest(&s, "vruntmie").as_deref(), Some("vruntime"));
        // An exact hit is not a typo, and gibberish gets no guess.
        assert_eq!(suggest(&s, "flux capacitors"), None);
        assert_eq!(suggest(&s, "xx"), None);
    }
}
