//! Typed values produced by decoding target memory.

use crate::ty::TypeId;

/// A value decoded from target memory, carrying its C type.
///
/// `CValue` is the currency of the C-expression evaluator: every
/// sub-expression evaluates to one of these. Aggregates are represented as
/// *lvalues* (an address plus a type) since copying a whole `task_struct`
/// out of the target would be wasteful and is never needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CValue {
    /// An integer (includes bools, chars and enum values).
    Int {
        /// The numeric value, sign-extended if the type is signed.
        value: i64,
        /// The static type.
        ty: TypeId,
    },
    /// A pointer value.
    Ptr {
        /// The target address stored in the pointer.
        addr: u64,
        /// The *pointer* type (not the pointee).
        ty: TypeId,
    },
    /// An aggregate (struct/union/array) lvalue living in target memory.
    LValue {
        /// Address of the object.
        addr: u64,
        /// The aggregate type.
        ty: TypeId,
    },
    /// A string that was already fetched from the target (e.g. `comm`).
    Str(String),
    /// The unit value (e.g. result of a helper with no result).
    Void,
}

impl CValue {
    /// The value as an integer, treating pointers as their address.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            CValue::Int { value, .. } => Some(*value),
            CValue::Ptr { addr, .. } => Some(*addr as i64),
            _ => None,
        }
    }

    /// The value as an unsigned 64-bit integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_int().map(|v| v as u64)
    }

    /// The address of the value if it denotes (or points to) target memory.
    pub fn address(&self) -> Option<u64> {
        match self {
            CValue::Ptr { addr, .. } => Some(*addr),
            CValue::LValue { addr, .. } => Some(*addr),
            _ => None,
        }
    }

    /// The static type, if the value carries one.
    pub fn type_id(&self) -> Option<TypeId> {
        match self {
            CValue::Int { ty, .. } | CValue::Ptr { ty, .. } | CValue::LValue { ty, .. } => {
                Some(*ty)
            }
            _ => None,
        }
    }

    /// Whether the value is "truthy" in the C sense (non-zero / non-null).
    pub fn is_truthy(&self) -> bool {
        match self {
            CValue::Int { value, .. } => *value != 0,
            CValue::Ptr { addr, .. } => *addr != 0,
            CValue::LValue { .. } => true,
            CValue::Str(s) => !s.is_empty(),
            CValue::Void => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u32) -> TypeId {
        // Fabricate ids for unit tests; only identity matters here.
        TypeId(n)
    }

    #[test]
    fn int_accessors() {
        let v = CValue::Int {
            value: -5,
            ty: tid(0),
        };
        assert_eq!(v.as_int(), Some(-5));
        assert_eq!(v.as_u64(), Some(-5i64 as u64));
        assert_eq!(v.address(), None);
        assert!(v.is_truthy());
    }

    #[test]
    fn null_pointer_is_falsy() {
        let v = CValue::Ptr {
            addr: 0,
            ty: tid(1),
        };
        assert!(!v.is_truthy());
        assert_eq!(v.as_int(), Some(0));
    }

    #[test]
    fn lvalue_address() {
        let v = CValue::LValue {
            addr: 0xffff_8880_0000_1000,
            ty: tid(2),
        };
        assert_eq!(v.address(), Some(0xffff_8880_0000_1000));
        assert!(v.is_truthy());
    }

    #[test]
    fn void_and_str() {
        assert!(!CValue::Void.is_truthy());
        assert!(CValue::Str("swapper".into()).is_truthy());
        assert!(!CValue::Str(String::new()).is_truthy());
        assert_eq!(CValue::Void.type_id(), None);
    }
}
