//! Type descriptors: the nodes of the type graph.

use crate::decode::BitField;
use crate::prim::Prim;

/// An interned handle to a [`Type`] inside a [`crate::TypeRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub(crate) u32);

impl TypeId {
    /// The raw index of this id inside its registry.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A member of a struct or union.
#[derive(Debug, Clone)]
pub struct Field {
    /// Member name as written in the C source.
    pub name: String,
    /// Member type.
    pub ty: TypeId,
    /// Byte offset from the start of the enclosing aggregate.
    pub offset: u64,
    /// Present when the member is a C bitfield packed into the storage unit
    /// located at `offset`.
    pub bit: Option<BitField>,
}

/// A struct or union definition with computed layout.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Tag name (e.g. `task_struct`).
    pub name: String,
    /// Members, in declaration order.
    pub fields: Vec<Field>,
    /// Total size in bytes, including trailing padding.
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
    /// True for unions (all members at offset 0).
    pub is_union: bool,
}

impl StructDef {
    /// Find a member by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// A C `enum` definition.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Tag name (e.g. `maple_type`).
    pub name: String,
    /// Enumerators in declaration order as `(name, value)` pairs.
    pub variants: Vec<(String, i64)>,
    /// Storage size in bytes (4 unless widened).
    pub size: u64,
}

impl EnumDef {
    /// Resolve an enumerator name to its value.
    pub fn value_of(&self, name: &str) -> Option<i64> {
        self.variants
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Resolve a value to the first enumerator carrying it.
    pub fn name_of(&self, value: i64) -> Option<&str> {
        self.variants
            .iter()
            .find(|(_, v)| *v == value)
            .map(|(n, _)| n.as_str())
    }
}

/// The shape of a type.
#[derive(Debug, Clone)]
pub enum TypeKind {
    /// A primitive scalar.
    Prim(Prim),
    /// A pointer to another type.
    Pointer(TypeId),
    /// A fixed-length array.
    Array {
        /// Element type.
        elem: TypeId,
        /// Number of elements.
        len: u64,
    },
    /// A struct or union with computed layout.
    Struct(StructDef),
    /// An enumeration.
    Enum(EnumDef),
    /// A function type (only meaningful behind a pointer); carries a
    /// human-readable signature for display.
    Func(String),
}

/// A fully described type.
#[derive(Debug, Clone)]
pub struct Type {
    /// The shape.
    pub kind: TypeKind,
}

impl Type {
    /// Size of a value of this type in bytes.
    pub fn size(&self, sizes: impl Fn(TypeId) -> u64) -> u64 {
        match &self.kind {
            TypeKind::Prim(p) => p.size(),
            TypeKind::Pointer(_) => crate::PTR_SIZE,
            TypeKind::Array { elem, len } => sizes(*elem) * len,
            TypeKind::Struct(s) => s.size,
            TypeKind::Enum(e) => e.size,
            TypeKind::Func(_) => 0,
        }
    }

    /// Whether values of this type are integers (including enums and bools).
    pub fn is_integer(&self) -> bool {
        matches!(
            &self.kind,
            TypeKind::Prim(p) if p.size() > 0
        ) || matches!(&self.kind, TypeKind::Enum(_))
    }
}
