//! Struct/union layout computation following the x86-64 System V ABI.

use crate::decode::BitField;
use crate::registry::TypeRegistry;
use crate::ty::{Field, StructDef, TypeId};

/// Incremental builder for a struct or union layout.
///
/// Fields are appended in declaration order; offsets, padding and the final
/// size are computed with the same rules the C compiler applies when building
/// the real kernel image.
///
/// # Examples
///
/// ```
/// use ktypes::{Prim, StructBuilder, TypeRegistry};
///
/// let mut reg = TypeRegistry::new();
/// let u64_t = reg.prim(Prim::U64);
/// let u8_t = reg.prim(Prim::U8);
/// let ty = StructBuilder::new("pair")
///     .field("flag", u8_t)
///     .field("value", u64_t)
///     .build(&mut reg);
/// // `value` is aligned to 8, so the struct is 16 bytes with 7 bytes padding.
/// assert_eq!(reg.size_of(ty), 16);
/// ```
pub struct StructBuilder {
    name: String,
    is_union: bool,
    fields: Vec<(String, TypeId, Option<u8>)>,
}

impl StructBuilder {
    /// Start building a struct with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        StructBuilder {
            name: name.into(),
            is_union: false,
            fields: Vec::new(),
        }
    }

    /// Start building a union with the given tag name.
    pub fn union(name: impl Into<String>) -> Self {
        StructBuilder {
            name: name.into(),
            is_union: true,
            fields: Vec::new(),
        }
    }

    /// Append a field of type `ty`.
    pub fn field(mut self, name: impl Into<String>, ty: TypeId) -> Self {
        self.fields.push((name.into(), ty, None));
        self
    }

    /// Append a bitfield of `width` bits whose storage unit has type `ty`.
    ///
    /// Adjacent bitfields sharing the same storage type are packed into the
    /// same unit, matching GCC behaviour for the kernel's flag words.
    pub fn bitfield(mut self, name: impl Into<String>, ty: TypeId, width: u8) -> Self {
        self.fields.push((name.into(), ty, Some(width)));
        self
    }

    /// Compute the layout and intern the finished type into `reg`.
    ///
    /// # Panics
    ///
    /// Panics if a bitfield is declared with a non-integer storage type or a
    /// width exceeding the storage unit.
    pub fn build(self, reg: &mut TypeRegistry) -> TypeId {
        let mut fields: Vec<Field> = Vec::with_capacity(self.fields.len());
        let mut size: u64 = 0;
        let mut align: u64 = 1;
        // Bit cursor within the current bitfield storage unit, if any:
        // (unit_offset, unit_size, next_bit).
        let mut bit_cursor: Option<(u64, u64, u8)> = None;

        for (name, ty, width) in self.fields {
            let fsize = reg.size_of(ty);
            let falign = reg.align_of(ty);
            align = align.max(falign);

            if self.is_union {
                let bit = width.map(|w| {
                    assert!(
                        w as u64 <= fsize * 8,
                        "bitfield `{name}` wider than storage unit"
                    );
                    BitField {
                        shift: 0,
                        width: w,
                        storage_size: fsize as u8,
                        signed: reg.is_signed(ty),
                    }
                });
                fields.push(Field {
                    name,
                    ty,
                    offset: 0,
                    bit,
                });
                size = size.max(fsize);
                continue;
            }

            match width {
                None => {
                    bit_cursor = None;
                    let offset = round_up(size, falign);
                    fields.push(Field {
                        name,
                        ty,
                        offset,
                        bit: None,
                    });
                    size = offset + fsize;
                }
                Some(w) => {
                    assert!(fsize > 0 && fsize <= 8, "bad bitfield storage for `{name}`");
                    assert!(
                        w as u64 <= fsize * 8,
                        "bitfield `{name}` wider than storage unit"
                    );
                    let signed = reg.is_signed(ty);
                    let (unit_off, shift) = match bit_cursor {
                        Some((off, unit, next))
                            if unit == fsize && next as u64 + w as u64 <= unit * 8 =>
                        {
                            (off, next)
                        }
                        _ => {
                            let off = round_up(size, falign);
                            size = off + fsize;
                            (off, 0)
                        }
                    };
                    bit_cursor = Some((unit_off, fsize, shift + w));
                    fields.push(Field {
                        name,
                        ty,
                        offset: unit_off,
                        bit: Some(BitField {
                            shift,
                            width: w,
                            storage_size: fsize as u8,
                            signed,
                        }),
                    });
                }
            }
        }

        let size = round_up(size, align);
        reg.intern_struct(StructDef {
            name: self.name,
            fields,
            size,
            align,
            is_union: self.is_union,
        })
    }
}

fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim::Prim;

    fn reg() -> TypeRegistry {
        TypeRegistry::new()
    }

    #[test]
    fn padding_between_fields() {
        let mut r = reg();
        let (u8_t, u32_t, u64_t) = (r.prim(Prim::U8), r.prim(Prim::U32), r.prim(Prim::U64));
        let ty = StructBuilder::new("s")
            .field("a", u8_t)
            .field("b", u32_t)
            .field("c", u64_t)
            .build(&mut r);
        let s = r.struct_def(ty).unwrap();
        assert_eq!(s.field("a").unwrap().offset, 0);
        assert_eq!(s.field("b").unwrap().offset, 4);
        assert_eq!(s.field("c").unwrap().offset, 8);
        assert_eq!(s.size, 16);
        assert_eq!(s.align, 8);
    }

    #[test]
    fn trailing_padding_rounds_to_alignment() {
        let mut r = reg();
        let (u64_t, u8_t) = (r.prim(Prim::U64), r.prim(Prim::U8));
        let ty = StructBuilder::new("s")
            .field("a", u64_t)
            .field("b", u8_t)
            .build(&mut r);
        assert_eq!(r.size_of(ty), 16);
    }

    #[test]
    fn union_overlays_members() {
        let mut r = reg();
        let (u32_t, u64_t) = (r.prim(Prim::U32), r.prim(Prim::U64));
        let arr = r.array_of(u32_t, 4);
        let ty = StructBuilder::union("u")
            .field("a", u64_t)
            .field("b", arr)
            .build(&mut r);
        let s = r.struct_def(ty).unwrap();
        assert!(s.is_union);
        assert_eq!(s.field("a").unwrap().offset, 0);
        assert_eq!(s.field("b").unwrap().offset, 0);
        assert_eq!(s.size, 16);
    }

    #[test]
    fn adjacent_bitfields_pack() {
        let mut r = reg();
        let u32_t = r.prim(Prim::U32);
        let ty = StructBuilder::new("flags")
            .bitfield("a", u32_t, 3)
            .bitfield("b", u32_t, 5)
            .bitfield("c", u32_t, 24)
            .build(&mut r);
        let s = r.struct_def(ty).unwrap();
        let a = s.field("a").unwrap();
        let b = s.field("b").unwrap();
        let c = s.field("c").unwrap();
        assert_eq!((a.offset, a.bit.unwrap().shift), (0, 0));
        assert_eq!((b.offset, b.bit.unwrap().shift), (0, 3));
        assert_eq!((c.offset, c.bit.unwrap().shift), (0, 8));
        assert_eq!(s.size, 4);
    }

    #[test]
    fn bitfield_overflow_starts_new_unit() {
        let mut r = reg();
        let u32_t = r.prim(Prim::U32);
        let ty = StructBuilder::new("flags")
            .bitfield("a", u32_t, 30)
            .bitfield("b", u32_t, 8)
            .build(&mut r);
        let s = r.struct_def(ty).unwrap();
        assert_eq!(s.field("a").unwrap().offset, 0);
        assert_eq!(s.field("b").unwrap().offset, 4);
        assert_eq!(s.size, 8);
    }

    #[test]
    fn nested_struct_alignment_propagates() {
        let mut r = reg();
        let (u8_t, u64_t) = (r.prim(Prim::U8), r.prim(Prim::U64));
        let inner = StructBuilder::new("inner").field("x", u64_t).build(&mut r);
        let outer = StructBuilder::new("outer")
            .field("tag", u8_t)
            .field("body", inner)
            .build(&mut r);
        let s = r.struct_def(outer).unwrap();
        assert_eq!(s.field("body").unwrap().offset, 8);
        assert_eq!(s.size, 16);
    }

    #[test]
    fn empty_struct_is_zero_sized() {
        let mut r = reg();
        let ty = StructBuilder::new("empty").build(&mut r);
        assert_eq!(r.size_of(ty), 0);
    }
}
