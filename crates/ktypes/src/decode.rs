//! Little-endian scalar encoding/decoding and bitfield extraction.

/// A C bitfield: `width` bits starting at `shift` within an integer storage
/// unit of `storage_size` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitField {
    /// Bit offset of the least-significant bit within the storage unit.
    pub shift: u8,
    /// Number of bits.
    pub width: u8,
    /// Size of the storage unit in bytes (1, 2, 4 or 8).
    pub storage_size: u8,
    /// Whether the field is sign-extended on read.
    pub signed: bool,
}

impl BitField {
    /// Extract the bitfield value from its storage unit.
    ///
    /// # Panics
    ///
    /// Panics if `shift + width` exceeds the storage unit width; such a
    /// bitfield cannot be produced by [`crate::StructBuilder`].
    pub fn extract(&self, storage: u64) -> i64 {
        let total = self.storage_size as u32 * 8;
        assert!(self.shift as u32 + self.width as u32 <= total);
        let raw = (storage >> self.shift) & mask(self.width);
        if self.signed && self.width < 64 && (raw >> (self.width - 1)) & 1 == 1 {
            (raw | !mask(self.width)) as i64
        } else {
            raw as i64
        }
    }

    /// Insert `value` into `storage`, returning the new storage unit.
    pub fn insert(&self, storage: u64, value: i64) -> u64 {
        let m = mask(self.width) << self.shift;
        (storage & !m) | (((value as u64) << self.shift) & m)
    }
}

fn mask(width: u8) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Read an unsigned little-endian integer of `size` bytes from `bytes`.
///
/// # Panics
///
/// Panics if `bytes.len() < size` or `size > 8`.
pub fn read_uint(bytes: &[u8], size: usize) -> u64 {
    assert!(size <= 8, "integer wider than 8 bytes");
    let mut v: u64 = 0;
    for (i, b) in bytes[..size].iter().enumerate() {
        v |= (*b as u64) << (8 * i);
    }
    v
}

/// Read a signed little-endian integer of `size` bytes from `bytes`.
///
/// # Panics
///
/// Panics if `bytes.len() < size` or `size > 8`.
pub fn read_int(bytes: &[u8], size: usize) -> i64 {
    let u = read_uint(bytes, size);
    if size == 8 {
        return u as i64;
    }
    let sign_bit = 1u64 << (size * 8 - 1);
    if u & sign_bit != 0 {
        (u | !((1u64 << (size * 8)) - 1)) as i64
    } else {
        u as i64
    }
}

/// Write `value` as a little-endian integer of `size` bytes into `out`.
///
/// # Panics
///
/// Panics if `out.len() < size` or `size > 8`.
pub fn write_int(out: &mut [u8], size: usize, value: u64) {
    assert!(size <= 8, "integer wider than 8 bytes");
    for (i, b) in out.iter_mut().enumerate().take(size) {
        *b = ((value >> (8 * i)) & 0xff) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uint_round_trip_small() {
        let mut buf = [0u8; 8];
        write_int(&mut buf, 4, 0xdead_beef);
        assert_eq!(read_uint(&buf, 4), 0xdead_beef);
        assert_eq!(buf[0], 0xef, "little endian");
    }

    #[test]
    fn int_sign_extension() {
        let mut buf = [0u8; 8];
        write_int(&mut buf, 2, 0xffff);
        assert_eq!(read_int(&buf, 2), -1);
        write_int(&mut buf, 2, 0x7fff);
        assert_eq!(read_int(&buf, 2), 0x7fff);
        write_int(&mut buf, 1, 0x80);
        assert_eq!(read_int(&buf, 1), -128);
    }

    #[test]
    fn bitfield_extract_unsigned() {
        let bf = BitField {
            shift: 4,
            width: 3,
            storage_size: 4,
            signed: false,
        };
        assert_eq!(bf.extract(0b0111_0000), 0b111);
        assert_eq!(bf.extract(0b1000_1111), 0);
    }

    #[test]
    fn bitfield_extract_signed() {
        let bf = BitField {
            shift: 0,
            width: 3,
            storage_size: 1,
            signed: true,
        };
        assert_eq!(bf.extract(0b100), -4);
        assert_eq!(bf.extract(0b011), 3);
    }

    #[test]
    fn bitfield_insert_preserves_neighbors() {
        let bf = BitField {
            shift: 8,
            width: 8,
            storage_size: 4,
            signed: false,
        };
        let s = bf.insert(0xffff_ffff, 0x12);
        assert_eq!(s, 0xffff_12ff);
    }

    proptest! {
        #[test]
        fn prop_uint_round_trip(v: u64, size in 1usize..=8) {
            let trunc = if size == 8 { v } else { v & ((1u64 << (size * 8)) - 1) };
            let mut buf = [0u8; 8];
            write_int(&mut buf, size, trunc);
            prop_assert_eq!(read_uint(&buf, size), trunc);
        }

        #[test]
        fn prop_bitfield_round_trip(
            storage: u64,
            shift in 0u8..60,
            width in 1u8..32,
        ) {
            prop_assume!(shift + width <= 64);
            let bf = BitField { shift, width, storage_size: 8, signed: false };
            let value = storage & ((1u64 << width) - 1);
            let s = bf.insert(0, value as i64);
            prop_assert_eq!(bf.extract(s) as u64, value);
        }

        #[test]
        fn prop_bitfield_insert_is_local(storage: u64, v: u64) {
            // Writing bits [8, 16) must not disturb any other bit.
            let bf = BitField { shift: 8, width: 8, storage_size: 8, signed: false };
            let s = bf.insert(storage, v as i64);
            prop_assert_eq!(s & !0xff00, storage & !0xff00);
        }
    }
}
