//! C type system and layout engine for the simulated kernel image.
//!
//! `ktypes` plays the role DWARF debug info plays for GDB: it describes the
//! in-memory layout of every kernel object (structs, unions, enums, arrays,
//! pointers, bitfields) so that the debugger bridge can evaluate C
//! expressions like `p->mm->mm_mt.ma_root` against raw target memory.
//!
//! Layouts follow the System V x86-64 ABI rules used by the Linux kernel:
//! little-endian, 8-byte pointers, natural alignment, struct size rounded up
//! to the maximum member alignment.

mod decode;
mod layout;
mod prim;
mod registry;
mod ty;
mod value;

pub use decode::{read_int, read_uint, write_int, BitField};
pub use layout::StructBuilder;
pub use prim::Prim;
pub use registry::{EnumConst, TypeRegistry};
pub use ty::{EnumDef, Field, StructDef, Type, TypeId, TypeKind};
pub use value::CValue;

/// Size of a pointer on the simulated target (x86-64), in bytes.
pub const PTR_SIZE: u64 = 8;

/// Errors produced by the type system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A named type was not found in the registry.
    UnknownType(String),
    /// A field path component does not exist on the given struct/union.
    UnknownField { ty: String, field: String },
    /// A field access was attempted on a non-aggregate type.
    NotAggregate(String),
    /// An operation required an integer type.
    NotInteger(String),
    /// An operation required a pointer type.
    NotPointer(String),
    /// Array index out of range.
    IndexOutOfRange { len: usize, index: usize },
    /// An enum constant was not found.
    UnknownEnumConst(String),
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::UnknownType(n) => write!(f, "unknown type `{n}`"),
            TypeError::UnknownField { ty, field } => {
                write!(f, "type `{ty}` has no field `{field}`")
            }
            TypeError::NotAggregate(n) => write!(f, "type `{n}` is not a struct or union"),
            TypeError::NotInteger(n) => write!(f, "type `{n}` is not an integer type"),
            TypeError::NotPointer(n) => write!(f, "type `{n}` is not a pointer type"),
            TypeError::IndexOutOfRange { len, index } => {
                write!(f, "index {index} out of range for array of length {len}")
            }
            TypeError::UnknownEnumConst(n) => write!(f, "unknown enum constant `{n}`"),
        }
    }
}

impl std::error::Error for TypeError {}

/// Convenience result alias for type-system operations.
pub type Result<T> = std::result::Result<T, TypeError>;
