//! Primitive C scalar types of the simulated x86-64 target.

/// A primitive C scalar type.
///
/// Sizes and signedness match the LP64 data model used by the Linux kernel
/// on x86-64 (`long` is 8 bytes, `int` is 4, pointers are 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prim {
    /// `void` (zero-sized; only meaningful behind a pointer).
    Void,
    /// `_Bool`.
    Bool,
    /// `char` (signed on x86-64 Linux).
    Char,
    /// `signed char` / `s8`.
    I8,
    /// `unsigned char` / `u8`.
    U8,
    /// `short` / `s16`.
    I16,
    /// `unsigned short` / `u16`.
    U16,
    /// `int` / `s32`.
    I32,
    /// `unsigned int` / `u32`.
    U32,
    /// `long` / `long long` / `s64`.
    I64,
    /// `unsigned long` / `u64` / `size_t`.
    U64,
}

impl Prim {
    /// Size of the type in bytes.
    pub fn size(self) -> u64 {
        match self {
            Prim::Void => 0,
            Prim::Bool | Prim::Char | Prim::I8 | Prim::U8 => 1,
            Prim::I16 | Prim::U16 => 2,
            Prim::I32 | Prim::U32 => 4,
            Prim::I64 | Prim::U64 => 8,
        }
    }

    /// Alignment of the type in bytes (natural alignment on x86-64).
    pub fn align(self) -> u64 {
        self.size().max(1)
    }

    /// Whether the type is signed when interpreted as an integer.
    pub fn signed(self) -> bool {
        matches!(
            self,
            Prim::Char | Prim::I8 | Prim::I16 | Prim::I32 | Prim::I64
        )
    }

    /// The canonical C spelling of the type.
    pub fn c_name(self) -> &'static str {
        match self {
            Prim::Void => "void",
            Prim::Bool => "bool",
            Prim::Char => "char",
            Prim::I8 => "s8",
            Prim::U8 => "u8",
            Prim::I16 => "s16",
            Prim::U16 => "u16",
            Prim::I32 => "int",
            Prim::U32 => "unsigned int",
            Prim::I64 => "long",
            Prim::U64 => "unsigned long",
        }
    }

    /// Look up a primitive by (one of) its C spellings.
    ///
    /// Accepts both kernel typedef names (`u32`, `s64`, …) and plain C
    /// spellings (`int`, `unsigned long`, …).
    pub fn from_name(name: &str) -> Option<Prim> {
        Some(match name {
            "void" => Prim::Void,
            "bool" | "_Bool" => Prim::Bool,
            "char" => Prim::Char,
            "s8" | "signed char" | "i8" => Prim::I8,
            "u8" | "unsigned char" | "__u8" => Prim::U8,
            "s16" | "short" | "i16" => Prim::I16,
            "u16" | "unsigned short" | "__u16" => Prim::U16,
            "s32" | "int" | "i32" | "pid_t" | "gfp_t" => Prim::I32,
            "u32" | "unsigned int" | "unsigned" | "__u32" | "uint" => Prim::U32,
            "s64" | "long" | "long long" | "i64" | "ssize_t" | "loff_t" => Prim::I64,
            "u64" | "unsigned long" | "unsigned long long" | "__u64" | "size_t" | "sector_t" => {
                Prim::U64
            }
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_follow_lp64() {
        assert_eq!(Prim::Char.size(), 1);
        assert_eq!(Prim::I32.size(), 4);
        assert_eq!(Prim::I64.size(), 8);
        assert_eq!(Prim::U64.size(), 8);
        assert_eq!(Prim::Void.size(), 0);
    }

    #[test]
    fn alignment_is_natural() {
        for p in [Prim::Bool, Prim::U16, Prim::U32, Prim::U64] {
            assert_eq!(p.align(), p.size());
        }
        // `void` still has alignment 1 so pointer arithmetic stays sane.
        assert_eq!(Prim::Void.align(), 1);
    }

    #[test]
    fn signedness() {
        assert!(Prim::Char.signed());
        assert!(Prim::I64.signed());
        assert!(!Prim::U8.signed());
        assert!(!Prim::Bool.signed());
    }

    #[test]
    fn name_round_trip() {
        for p in [
            Prim::Void,
            Prim::Bool,
            Prim::Char,
            Prim::I8,
            Prim::U8,
            Prim::I16,
            Prim::U16,
            Prim::I32,
            Prim::U32,
            Prim::I64,
            Prim::U64,
        ] {
            assert_eq!(Prim::from_name(p.c_name()), Some(p), "{p:?}");
        }
    }

    #[test]
    fn kernel_typedefs_resolve() {
        assert_eq!(Prim::from_name("pid_t"), Some(Prim::I32));
        assert_eq!(Prim::from_name("size_t"), Some(Prim::U64));
        assert_eq!(Prim::from_name("nonsense"), None);
    }
}
