//! The type registry: interning, lookup by name, and layout queries.

use std::collections::HashMap;

use crate::prim::Prim;
use crate::ty::{EnumDef, StructDef, Type, TypeId, TypeKind};
use crate::{Result, TypeError};

/// A named integer constant exported to the expression evaluator
/// (an enumerator or a `#define`d macro value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumConst {
    /// Constant name, e.g. `maple_leaf_64` or `PIPE_BUF_FLAG_CAN_MERGE`.
    pub name: String,
    /// Constant value.
    pub value: i64,
    /// The enum type the constant belongs to, if any (`None` for macros).
    pub ty: Option<TypeId>,
}

/// The database of all types known to the simulated debugger.
///
/// Plays the role of DWARF debug info: C expressions are resolved against
/// this registry, and the kernel simulator uses it to lay out objects in
/// target memory.
#[derive(Debug, Default)]
pub struct TypeRegistry {
    types: Vec<Type>,
    by_name: HashMap<String, TypeId>,
    prims: HashMap<Prim, TypeId>,
    pointers: HashMap<TypeId, TypeId>,
    arrays: HashMap<(TypeId, u64), TypeId>,
    consts: HashMap<String, EnumConst>,
}

impl TypeRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, t: Type) -> TypeId {
        let id = TypeId(self.types.len() as u32);
        self.types.push(t);
        id
    }

    /// Intern a primitive type.
    pub fn prim(&mut self, p: Prim) -> TypeId {
        if let Some(&id) = self.prims.get(&p) {
            return id;
        }
        let id = self.push(Type {
            kind: TypeKind::Prim(p),
        });
        self.prims.insert(p, id);
        self.by_name.entry(p.c_name().to_string()).or_insert(id);
        id
    }

    /// Intern a pointer to `target`.
    pub fn pointer_to(&mut self, target: TypeId) -> TypeId {
        if let Some(&id) = self.pointers.get(&target) {
            return id;
        }
        let id = self.push(Type {
            kind: TypeKind::Pointer(target),
        });
        self.pointers.insert(target, id);
        id
    }

    /// Intern an array of `len` elements of `elem`.
    pub fn array_of(&mut self, elem: TypeId, len: u64) -> TypeId {
        if let Some(&id) = self.arrays.get(&(elem, len)) {
            return id;
        }
        let id = self.push(Type {
            kind: TypeKind::Array { elem, len },
        });
        self.arrays.insert((elem, len), id);
        id
    }

    /// Intern a finished struct/union definition under its tag name.
    ///
    /// If the name was previously [`declare_struct`](Self::declare_struct)ed,
    /// the forward declaration is completed in place so existing pointers to
    /// it see the full layout.
    pub fn intern_struct(&mut self, def: StructDef) -> TypeId {
        if let Some(&id) = self.by_name.get(&def.name) {
            if matches!(&self.get(id).kind, TypeKind::Struct(s) if s.fields.is_empty()) {
                self.types[id.index()] = Type {
                    kind: TypeKind::Struct(def),
                };
                return id;
            }
        }
        let name = def.name.clone();
        let id = self.push(Type {
            kind: TypeKind::Struct(def),
        });
        self.by_name.insert(name, id);
        id
    }

    /// Forward-declare a struct tag, returning an id usable behind pointers.
    ///
    /// The declaration is completed by a later [`intern_struct`]
    /// (typically via [`crate::StructBuilder::build`]) with the same name —
    /// exactly how mutually recursive kernel structs (`task_struct` ↔
    /// `mm_struct`) are declared in C.
    ///
    /// [`intern_struct`]: Self::intern_struct
    pub fn declare_struct(&mut self, name: impl Into<String>) -> TypeId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        self.intern_struct(StructDef {
            name,
            fields: Vec::new(),
            size: 0,
            align: 1,
            is_union: false,
        })
    }

    /// Intern an enum definition, exporting its enumerators as constants.
    pub fn intern_enum(&mut self, def: EnumDef) -> TypeId {
        let name = def.name.clone();
        let variants = def.variants.clone();
        let id = self.push(Type {
            kind: TypeKind::Enum(def),
        });
        self.by_name.insert(name, id);
        for (n, v) in variants {
            self.consts.insert(
                n.clone(),
                EnumConst {
                    name: n,
                    value: v,
                    ty: Some(id),
                },
            );
        }
        id
    }

    /// Intern a function type with a display signature (for `FunPtr` text).
    pub fn func(&mut self, signature: impl Into<String>) -> TypeId {
        self.push(Type {
            kind: TypeKind::Func(signature.into()),
        })
    }

    /// Register a macro-style integer constant (e.g. a bit-flag `#define`).
    pub fn define_const(&mut self, name: impl Into<String>, value: i64) {
        let name = name.into();
        self.consts.insert(
            name.clone(),
            EnumConst {
                name,
                value,
                ty: None,
            },
        );
    }

    /// Look up a named constant (enumerator or macro).
    pub fn lookup_const(&self, name: &str) -> Result<&EnumConst> {
        self.consts
            .get(name)
            .ok_or_else(|| TypeError::UnknownEnumConst(name.to_string()))
    }

    /// Read-only probe for an already-interned named type.
    ///
    /// Unlike [`lookup`](Self::lookup) this never interns primitives, so it
    /// works on a shared reference.
    pub fn find(&self, name: &str) -> Option<TypeId> {
        let name = name
            .trim()
            .trim_start_matches("struct ")
            .trim_start_matches("union ")
            .trim_start_matches("enum ")
            .trim();
        if let Some(id) = self.by_name.get(name) {
            return Some(*id);
        }
        Prim::from_name(name).and_then(|p| self.prims.get(&p).copied())
    }

    /// Look up a type by name: struct/union/enum tag, primitive spelling,
    /// or a kernel integer typedef.
    pub fn lookup(&mut self, name: &str) -> Result<TypeId> {
        let name = name
            .trim()
            .trim_start_matches("struct ")
            .trim_start_matches("union ")
            .trim_start_matches("enum ")
            .trim();
        if let Some(&id) = self.by_name.get(name) {
            return Ok(id);
        }
        if let Some(p) = Prim::from_name(name) {
            return Ok(self.prim(p));
        }
        Err(TypeError::UnknownType(name.to_string()))
    }

    /// Get the type descriptor for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    pub fn get(&self, id: TypeId) -> &Type {
        &self.types[id.index()]
    }

    /// Size in bytes of values of type `id`.
    pub fn size_of(&self, id: TypeId) -> u64 {
        match &self.get(id).kind {
            TypeKind::Prim(p) => p.size(),
            TypeKind::Pointer(_) => crate::PTR_SIZE,
            TypeKind::Array { elem, len } => self.size_of(*elem) * len,
            TypeKind::Struct(s) => s.size,
            TypeKind::Enum(e) => e.size,
            TypeKind::Func(_) => 0,
        }
    }

    /// Alignment in bytes of values of type `id`.
    pub fn align_of(&self, id: TypeId) -> u64 {
        match &self.get(id).kind {
            TypeKind::Prim(p) => p.align(),
            TypeKind::Pointer(_) => crate::PTR_SIZE,
            TypeKind::Array { elem, .. } => self.align_of(*elem),
            TypeKind::Struct(s) => s.align,
            TypeKind::Enum(_) => 4,
            TypeKind::Func(_) => 1,
        }
    }

    /// Whether integer reads of this type sign-extend.
    pub fn is_signed(&self, id: TypeId) -> bool {
        match &self.get(id).kind {
            TypeKind::Prim(p) => p.signed(),
            TypeKind::Enum(_) => true,
            _ => false,
        }
    }

    /// The struct/union definition behind `id`, if it is one.
    pub fn struct_def(&self, id: TypeId) -> Option<&StructDef> {
        match &self.get(id).kind {
            TypeKind::Struct(s) => Some(s),
            _ => None,
        }
    }

    /// The enum definition behind `id`, if it is one.
    pub fn enum_def(&self, id: TypeId) -> Option<&EnumDef> {
        match &self.get(id).kind {
            TypeKind::Enum(e) => Some(e),
            _ => None,
        }
    }

    /// The pointee of a pointer type.
    pub fn pointee(&self, id: TypeId) -> Result<TypeId> {
        match &self.get(id).kind {
            TypeKind::Pointer(t) => Ok(*t),
            _ => Err(TypeError::NotPointer(self.display_name(id))),
        }
    }

    /// A human-readable name for any type.
    pub fn display_name(&self, id: TypeId) -> String {
        match &self.get(id).kind {
            TypeKind::Prim(p) => p.c_name().to_string(),
            TypeKind::Pointer(t) => format!("{} *", self.display_name(*t)),
            TypeKind::Array { elem, len } => format!("{}[{len}]", self.display_name(*elem)),
            TypeKind::Struct(s) => {
                if s.is_union {
                    format!("union {}", s.name)
                } else {
                    format!("struct {}", s.name)
                }
            }
            TypeKind::Enum(e) => format!("enum {}", e.name),
            TypeKind::Func(sig) => sig.clone(),
        }
    }

    /// The bare tag name of a struct/union/enum type, if it has one.
    pub fn tag_name(&self, id: TypeId) -> Option<&str> {
        match &self.get(id).kind {
            TypeKind::Struct(s) => Some(&s.name),
            TypeKind::Enum(e) => Some(&e.name),
            _ => None,
        }
    }

    /// Resolve the byte offset and type of a (possibly nested) field path
    /// like `se.run_node` or `tasks[0]` starting from aggregate `base`.
    ///
    /// Array components may carry one or more `[index]` suffixes.
    pub fn field_path(&self, base: TypeId, path: &str) -> Result<(u64, TypeId)> {
        let mut ty = base;
        let mut off = 0u64;
        for comp in path.split('.') {
            let (name, mut rest) = match comp.find('[') {
                Some(i) => (&comp[..i], &comp[i..]),
                None => (comp, ""),
            };
            let def = self
                .struct_def(ty)
                .ok_or_else(|| TypeError::NotAggregate(self.display_name(ty)))?;
            let f = def.field(name).ok_or_else(|| TypeError::UnknownField {
                ty: def.name.clone(),
                field: name.to_string(),
            })?;
            off += f.offset;
            ty = f.ty;
            while let Some(stripped) = rest.strip_prefix('[') {
                let close = stripped.find(']').ok_or_else(|| TypeError::UnknownField {
                    ty: self.display_name(ty),
                    field: comp.to_string(),
                })?;
                let index: u64 =
                    stripped[..close]
                        .parse()
                        .map_err(|_| TypeError::UnknownField {
                            ty: self.display_name(ty),
                            field: comp.to_string(),
                        })?;
                match &self.get(ty).kind {
                    TypeKind::Array { elem, len } => {
                        if index >= *len {
                            return Err(TypeError::IndexOutOfRange {
                                len: *len as usize,
                                index: index as usize,
                            });
                        }
                        off += self.size_of(*elem) * index;
                        ty = *elem;
                    }
                    _ => return Err(TypeError::NotAggregate(self.display_name(ty))),
                }
                rest = &stripped[close + 1..];
            }
        }
        Ok((off, ty))
    }

    /// Intern a pointer type for every named struct/union/enum currently
    /// registered.
    ///
    /// Expression evaluation happens against a *shared* registry (a
    /// debugger cannot grow the target's DWARF), so cast targets like
    /// `(struct task_struct *)p` must have been interned ahead of time;
    /// calling this once after type registration guarantees that.
    pub fn ensure_pointers(&mut self) {
        let named: Vec<TypeId> = self.by_name.values().copied().collect();
        for id in named {
            self.pointer_to(id);
        }
        let prims = [
            Prim::Void,
            Prim::Bool,
            Prim::Char,
            Prim::I8,
            Prim::U8,
            Prim::I16,
            Prim::U16,
            Prim::I32,
            Prim::U32,
            Prim::I64,
            Prim::U64,
        ];
        for p in prims {
            let id = self.prim(p);
            self.pointer_to(id);
        }
    }

    /// Find the interned pointer-to-`target` type, if any.
    pub fn find_pointer_to(&self, target: TypeId) -> Option<TypeId> {
        self.pointers.get(&target).copied()
    }

    /// Total number of interned types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StructBuilder;

    #[test]
    fn primitives_are_interned_once() {
        let mut r = TypeRegistry::new();
        assert_eq!(r.prim(Prim::U64), r.prim(Prim::U64));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn pointer_and_array_interning() {
        let mut r = TypeRegistry::new();
        let u8_t = r.prim(Prim::U8);
        assert_eq!(r.pointer_to(u8_t), r.pointer_to(u8_t));
        assert_eq!(r.array_of(u8_t, 4), r.array_of(u8_t, 4));
        assert_ne!(r.array_of(u8_t, 4), r.array_of(u8_t, 5));
    }

    #[test]
    fn lookup_strips_struct_keyword() {
        let mut r = TypeRegistry::new();
        let u64_t = r.prim(Prim::U64);
        let ty = StructBuilder::new("task_struct")
            .field("pid", u64_t)
            .build(&mut r);
        assert_eq!(r.lookup("task_struct").unwrap(), ty);
        assert_eq!(r.lookup("struct task_struct").unwrap(), ty);
        assert!(r.lookup("no_such_struct").is_err());
    }

    #[test]
    fn enum_constants_are_exported() {
        let mut r = TypeRegistry::new();
        r.intern_enum(EnumDef {
            name: "maple_type".into(),
            variants: vec![("maple_dense".into(), 0), ("maple_leaf_64".into(), 1)],
            size: 4,
        });
        assert_eq!(r.lookup_const("maple_leaf_64").unwrap().value, 1);
        assert!(r.lookup_const("maple_sparse").is_err());
    }

    #[test]
    fn macro_constants() {
        let mut r = TypeRegistry::new();
        r.define_const("PIPE_BUF_FLAG_CAN_MERGE", 0x10);
        assert_eq!(
            r.lookup_const("PIPE_BUF_FLAG_CAN_MERGE").unwrap().value,
            0x10
        );
        assert!(r
            .lookup_const("PIPE_BUF_FLAG_CAN_MERGE")
            .unwrap()
            .ty
            .is_none());
    }

    #[test]
    fn field_path_resolves_nested_offsets() {
        let mut r = TypeRegistry::new();
        let u64_t = r.prim(Prim::U64);
        let inner = StructBuilder::new("sched_entity")
            .field("load", u64_t)
            .field("vruntime", u64_t)
            .build(&mut r);
        let outer = StructBuilder::new("task_struct")
            .field("pid", u64_t)
            .field("se", inner)
            .build(&mut r);
        let (off, ty) = r.field_path(outer, "se.vruntime").unwrap();
        assert_eq!(off, 16);
        assert_eq!(ty, u64_t);
    }

    #[test]
    fn field_path_error_on_scalar() {
        let mut r = TypeRegistry::new();
        let u64_t = r.prim(Prim::U64);
        assert!(matches!(
            r.field_path(u64_t, "x"),
            Err(TypeError::NotAggregate(_))
        ));
    }

    #[test]
    fn forward_declaration_completes_in_place() {
        let mut r = TypeRegistry::new();
        let fwd = r.declare_struct("mm_struct");
        let ptr = r.pointer_to(fwd);
        let u64_t = r.prim(Prim::U64);
        let full = StructBuilder::new("mm_struct")
            .field("mmap_base", u64_t)
            .build(&mut r);
        assert_eq!(fwd, full, "completion must reuse the declared id");
        assert_eq!(r.pointee(ptr).unwrap(), full);
        assert_eq!(r.size_of(full), 8);
        // Declaring again returns the completed type.
        assert_eq!(r.declare_struct("mm_struct"), full);
    }

    #[test]
    fn display_names() {
        let mut r = TypeRegistry::new();
        let u8_t = r.prim(Prim::U8);
        let p = r.pointer_to(u8_t);
        let a = r.array_of(p, 3);
        assert_eq!(r.display_name(a), "u8 *[3]");
    }
}
