//! Keyed routing: the `vattach` handshake over any [`Transport`].
//!
//! A fleet endpoint speaks the same line protocol as a single `vserve`
//! server, prefixed by one routing frame: the first well-formed command
//! on a connection must be `vattach {"session": key}`. Everything after
//! a successful attach flows to that session's engine verbatim (a
//! *second* `vattach` therefore reaches the engine, which answers with
//! the single-session error from `proto::dispatch` — routing frames are
//! not re-interpreted mid-stream). Bad first frames are answered with an
//! error and counted, and the client may retry the handshake on the
//! same connection.

use std::io;

use visualinux::proto::{VCommand, VResponse};
use vserve::Transport;

use crate::pool::{Fleet, FleetConnection};

impl Fleet {
    /// Route one transport connection: run the `vattach` handshake, then
    /// pump frames between the transport and the routed engine until the
    /// peer hangs up. Returns when the transport closes.
    pub fn serve_transport<T: Transport>(&self, t: &mut T) -> io::Result<()> {
        let Some(conn) = self.attach_handshake(t)? else {
            return Ok(());
        };
        vserve::serve_transport(conn.connection(), t)
    }

    /// The handshake half of [`Fleet::serve_transport`], usable on its
    /// own when the caller wants the routed connection back. `None`
    /// means the peer hung up before attaching.
    pub fn attach_handshake<T: Transport>(&self, t: &mut T) -> io::Result<Option<FleetConnection>> {
        loop {
            let Some(line) = t.recv()? else {
                return Ok(None);
            };
            if line.trim().is_empty() {
                continue;
            }
            let message = match VCommand::from_json(&line) {
                Ok(VCommand::Vattach { session }) => match self.connect(&session) {
                    Ok(conn) => {
                        t.send(
                            &VResponse::Ok {
                                pane: None,
                                synthesized: None,
                            }
                            .to_json(),
                        )?;
                        return Ok(Some(conn));
                    }
                    Err(e) => format!("vattach `{session}`: {e}"),
                },
                Ok(other) => format!(
                    "expected a vattach routing frame first, got `{}`",
                    other.to_json()
                ),
                Err(e) => format!("unparseable routing frame: {e}"),
            };
            self.note_routing_error();
            t.send(&VResponse::Err { message }.to_json())?;
        }
    }
}
