//! Keyed routing: the `vattach` prefix as a [`ConnectRouter`].
//!
//! A fleet endpoint speaks the same wire protocol as a single `vserve`
//! server, prefixed by one routing frame: the first well-formed command
//! on a connection must be `vattach {"session": key}`. Everything after
//! a successful attach flows to that session's engine verbatim (a
//! *second* `vattach` therefore reaches the engine, which answers with
//! the single-session error from `proto::dispatch` — routing frames are
//! not re-interpreted mid-stream). Bad first frames are answered with an
//! error and counted, and the client may retry the handshake on the
//! same connection.
//!
//! The routing decision plugs into the evented [`vserve::WirePump`] via
//! [`ConnectRouter`]: build the pump with
//! `WirePump::new(Box::new(FleetRouter::new(fleet)), cfg)` and one poll
//! thread serves every session behind one endpoint — both framings,
//! fair queuing and all.

use std::sync::Arc;

use visualinux::proto::{VCommand, VResponse};
use vserve::{ConnectRouter, RoutedConn};

use crate::pool::Fleet;

/// [`ConnectRouter`] over a shared [`Fleet`]: the `vattach` handshake
/// as a wire pump's routing seam.
pub struct FleetRouter {
    fleet: Arc<Fleet>,
}

impl FleetRouter {
    /// Route lanes into `fleet`'s sessions.
    pub fn new(fleet: Arc<Fleet>) -> FleetRouter {
        FleetRouter { fleet }
    }
}

impl ConnectRouter for FleetRouter {
    /// Interpret a lane's first frame as the `vattach` routing prefix.
    /// The frame is consumed: a successful attach is acked with an `Ok`
    /// response and later frames flow to the routed engine; failures
    /// are counted and surfaced so the client can retry.
    fn route(&self, first: &str) -> Result<RoutedConn, String> {
        let message = match VCommand::from_json(first) {
            Ok(VCommand::Vattach { session }) => match self.fleet.connect(&session) {
                Ok(conn) => {
                    let (conn, guard) = conn.into_parts();
                    return Ok(RoutedConn {
                        conn,
                        ack: Some(
                            VResponse::Ok {
                                pane: None,
                                synthesized: None,
                            }
                            .to_json(),
                        ),
                        guard: Some(Box::new(guard)),
                    });
                }
                Err(e) => format!("vattach `{session}`: {e}"),
            },
            Ok(other) => format!(
                "expected a vattach routing frame first, got `{}`",
                other.to_json()
            ),
            Err(e) => format!("unparseable routing frame: {e}"),
        };
        self.fleet.note_routing_error();
        Err(message)
    }
}
