//! `vfleet`: shard many debugging sessions across many engines.
//!
//! One `vserve` engine owns one session; a fleet owns many — live
//! [`visualinux::vbridge::SimBackend`] images and `.vrec` replay
//! captures mixed — and routes clients to them by session key. See
//! DESIGN.md §14.
//!
//! * **Keyed routing.** Register sessions as [`visualinux::SessionSpec`]
//!   recipes under string keys; clients attach with a `vattach` routing
//!   frame ([`FleetRouter`] implements [`vserve::ConnectRouter`], so a
//!   [`vserve::WirePump`] serves the whole fleet from one endpoint) or
//!   directly by key ([`Fleet::connect`]) and then speak the ordinary
//!   `vserve` protocol.
//! * **Lazy lifecycle.** Engines spawn on first connection. A resident
//!   budget ([`FleetConfig::max_resident`]) evicts the least-recently-
//!   used idle engine — gracefully, books settled — and the next request
//!   respawns the session from its spec plus a served-extraction
//!   journal, reproducing tape position and cache state exactly.
//! * **Cross-session sharing.** Engines whose specs fingerprint
//!   identically join a share group ([`cache::FleetCache`]): the first
//!   engine to walk a `(generation, ViewCL)` pair publishes the graph,
//!   siblings serve it without touching their own bridge. Stop
//!   generations are hash-chained over tick arguments
//!   ([`chain_generation`]), so diverging mutation histories can never
//!   alias. Live engines additionally share warmed snapshot-cache
//!   blocks; replay engines never do (a tape fetches its own bytes, in
//!   recorded order).
//! * **Accounting.** [`FleetStats`] aggregates lifecycle counters, the
//!   summed per-engine [`vserve::ServeStats`], and share-group hit/miss
//!   books; [`FleetStats::reconcile`] checks them against each other
//!   bit-for-bit once the books settle ([`Fleet::shutdown`]).

pub mod cache;
mod pool;
mod router;
mod stats;

pub use cache::{FleetCache, FleetCacheStats};
pub use pool::{chain_generation, ConnGuard, Fleet, FleetConfig, FleetConnection};
pub use router::FleetRouter;
pub use stats::FleetStats;

/// Errors from fleet registration and routing.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// No session registered under that key.
    UnknownSession(String),
    /// A session is already registered under that key.
    DuplicateSession(String),
    /// The engine could not be built (workload/capture attach failed).
    Spawn(String),
    /// The engine rejected a request (shutting down).
    Engine(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownSession(k) => write!(f, "unknown session `{k}`"),
            FleetError::DuplicateSession(k) => write!(f, "session `{k}` already registered"),
            FleetError::Spawn(m) => write!(f, "engine spawn failed: {m}"),
            FleetError::Engine(m) => write!(f, "engine unavailable: {m}"),
        }
    }
}

impl std::error::Error for FleetError {}
