//! Fleet-wide accounting and its reconciliation invariants.

use serde::{Deserialize, Serialize};
use vserve::ServeStats;

use crate::cache::FleetCacheStats;

/// Aggregated fleet totals: lifecycle counters, the summed per-engine
/// [`ServeStats`], and the summed share-group [`FleetCacheStats`].
///
/// Engine books settle when an engine retires (eviction or fleet
/// shutdown) — a resident engine's counters live on its own thread and
/// cannot be read mid-flight. A snapshot taken while engines are still
/// resident therefore under-counts `engine` relative to `cache`, and
/// [`FleetStats::reconcile`] is only expected to pass on the snapshot
/// returned by [`crate::Fleet::shutdown`].
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct FleetStats {
    /// Sessions registered.
    pub sessions: u64,
    /// Engines currently resident.
    pub resident: u64,
    /// Engine spawns, total (first spawns + respawns).
    pub spawns: u64,
    /// Spawns that rebuilt a previously evicted session.
    pub respawns: u64,
    /// Engines retired by the LRU budget.
    pub evictions: u64,
    /// Successful `vattach` routings.
    pub attaches: u64,
    /// Rejected routing frames (unknown session, or a first frame that
    /// was not `vattach`).
    pub routing_errors: u64,
    /// Summed per-engine serving totals (settled books only).
    pub engine: ServeStats,
    /// Summed share-group totals.
    pub cache: FleetCacheStats,
}

impl FleetStats {
    /// Cross-layer bookkeeping invariants, checked bit-for-bit against
    /// the summed engine books. Call on the [`crate::Fleet::shutdown`]
    /// snapshot; see the type docs for why mid-flight snapshots differ.
    pub fn reconcile(&self) -> Result<(), String> {
        self.engine.reconcile()?;
        if self.cache.hits != self.engine.shared_hits {
            return Err(format!(
                "cache hits ({}) != engines' shared hits ({})",
                self.cache.hits, self.engine.shared_hits
            ));
        }
        // Every local walk publishes exactly once: new key or duplicate.
        if self.cache.published + self.cache.duplicates != self.engine.walks {
            return Err(format!(
                "published ({}) + duplicates ({}) != walks ({})",
                self.cache.published, self.cache.duplicates, self.engine.walks
            ));
        }
        if self.cache.delta_hits != self.engine.shared_delta_hits {
            return Err(format!(
                "cache delta hits ({}) != engines' shared delta hits ({})",
                self.cache.delta_hits, self.engine.shared_delta_hits
            ));
        }
        // Every walk started as a miss; a miss may exceed walks only by
        // extractions that failed after the lookup.
        if self.cache.misses < self.engine.walks {
            return Err(format!(
                "cache misses ({}) cannot cover walks ({})",
                self.cache.misses, self.engine.walks
            ));
        }
        if self.respawns > self.spawns {
            return Err(format!(
                "respawns ({}) exceed spawns ({})",
                self.respawns, self.spawns
            ));
        }
        if self.evictions > self.spawns {
            return Err(format!(
                "evictions ({}) exceed spawns ({})",
                self.evictions, self.spawns
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconcile_accepts_settled_books() {
        let s = FleetStats {
            sessions: 2,
            spawns: 3,
            respawns: 1,
            evictions: 1,
            engine: ServeStats {
                requests: 10,
                plot_requests: 10,
                extractions: 10,
                walks: 4,
                coalesced: 3,
                shared_hits: 3,
                fulls_sent: 10,
                ..ServeStats::default()
            },
            cache: FleetCacheStats {
                hits: 3,
                misses: 4,
                published: 4,
                ..FleetCacheStats::default()
            },
            ..FleetStats::default()
        };
        s.reconcile().unwrap();
    }

    #[test]
    fn reconcile_catches_unaccounted_shared_hits() {
        let s = FleetStats {
            engine: ServeStats {
                plot_requests: 2,
                requests: 2,
                extractions: 2,
                walks: 1,
                shared_hits: 1,
                fulls_sent: 2,
                ..ServeStats::default()
            },
            cache: FleetCacheStats {
                hits: 2, // one hit too many
                misses: 1,
                published: 1,
                ..FleetCacheStats::default()
            },
            ..FleetStats::default()
        };
        assert!(s.reconcile().is_err());
    }
}
