//! The cross-session share group: one [`FleetCache`] per session-spec
//! fingerprint.
//!
//! Engines whose specs fingerprint identically serve identical graphs
//! for identical `(stop generation, ViewCL)` pairs — the fleet chains
//! tick arguments into the generation key, so diverging mutation
//! histories diverge keys and can never alias. Under that invariant the
//! store is sound by construction; [`FleetCache::publish`] still
//! *asserts* graph equality when two engines race to publish the same
//! key, turning any unsoundness into a loud failure instead of a wrong
//! pane.

use std::collections::{HashMap, HashSet};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};
use vbridge::CacheSnapshot;
use vserve::{SharedExtractions, SharedPlot};

/// Hit/miss accounting for one share group; summed across groups into
/// [`crate::FleetStats`] and reconciled against engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetCacheStats {
    /// `get` calls answered from the store (== engines' `shared_hits`).
    pub hits: u64,
    /// `get` calls that missed (the engine walked locally).
    pub misses: u64,
    /// Extractions newly published.
    pub published: u64,
    /// Publishes that found the key already present (engine race); the
    /// payloads were asserted identical.
    pub duplicates: u64,
    /// Generation-step deltas answered from the store (== engines'
    /// `shared_delta_hits`).
    pub delta_hits: u64,
    /// Generation-step deltas newly published.
    pub delta_published: u64,
    /// Block snapshots adopted as a generation's warm set.
    pub block_snapshots: u64,
}

impl FleetCacheStats {
    /// Sum another group's counters into this one.
    pub fn absorb(&mut self, other: &FleetCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.published += other.published;
        self.duplicates += other.duplicates;
        self.delta_hits += other.delta_hits;
        self.delta_published += other.delta_published;
        self.block_snapshots += other.block_snapshots;
    }
}

#[derive(Default)]
struct Inner {
    plots: HashMap<(u64, String), SharedPlot>,
    /// Canonical `(from, to)` generation-step diffs per source.
    deltas: HashMap<(u64, u64, String), vgraph::diff::GraphDelta>,
    /// Largest published warm-block snapshot per generation (live
    /// engines only; replay tapes fetch their own bytes in order).
    blocks: HashMap<u64, CacheSnapshot>,
    /// Keys some engine is walking right now: siblings briefly wait for
    /// the publish instead of duplicating the walk.
    walking: HashSet<(u64, String)>,
    stats: FleetCacheStats,
}

/// A shared, thread-safe extraction store for one group of engines
/// serving identical sessions.
#[derive(Default)]
pub struct FleetCache {
    inner: Mutex<Inner>,
    published: Condvar,
}

/// How long a `get` waits on a sibling's in-flight walk before giving up
/// and walking itself (bounds the damage of a sibling dying mid-walk).
const WALK_WAIT: Duration = Duration::from_millis(500);

impl FleetCache {
    /// Counter snapshot.
    pub fn stats(&self) -> FleetCacheStats {
        self.inner.lock().unwrap().stats
    }

    /// Number of distinct extractions stored.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().plots.len()
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SharedExtractions for FleetCache {
    fn get(&self, generation: u64, viewcl: &str) -> Option<SharedPlot> {
        let key = (generation, viewcl.to_string());
        let mut g = self.inner.lock().unwrap();
        let deadline = std::time::Instant::now() + WALK_WAIT;
        loop {
            if let Some(plot) = g.plots.get(&key).cloned() {
                g.stats.hits += 1;
                return Some(plot);
            }
            // A sibling is mid-walk on this very key: waiting for its
            // publish is far cheaper than re-walking, so lockstep
            // engines converge on one walk per key instead of racing.
            let now = std::time::Instant::now();
            if !g.walking.contains(&key) || now >= deadline {
                break;
            }
            let (guard, _) = self.published.wait_timeout(g, deadline - now).unwrap();
            g = guard;
        }
        g.stats.misses += 1;
        g.walking.insert(key);
        None
    }

    fn publish(&self, generation: u64, viewcl: &str, plot: &SharedPlot) {
        let mut g = self.inner.lock().unwrap();
        g.walking.remove(&(generation, viewcl.to_string()));
        match g.plots.entry((generation, viewcl.to_string())) {
            std::collections::hash_map::Entry::Occupied(e) => {
                // Soundness tripwire: equal keys must mean equal graphs.
                assert!(
                    e.get().graph == plot.graph,
                    "share-group collision: generation {generation:#x} / `{viewcl}` \
                     published twice with different graphs"
                );
                g.stats.duplicates += 1;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(plot.clone());
                g.stats.published += 1;
            }
        }
        self.published.notify_all();
    }

    fn get_delta(&self, from: u64, to: u64, viewcl: &str) -> Option<vgraph::diff::GraphDelta> {
        let mut g = self.inner.lock().unwrap();
        let hit = g.deltas.get(&(from, to, viewcl.to_string())).cloned();
        if hit.is_some() {
            g.stats.delta_hits += 1;
        }
        hit
    }

    fn publish_delta(&self, from: u64, to: u64, viewcl: &str, delta: &vgraph::diff::GraphDelta) {
        let mut g = self.inner.lock().unwrap();
        if g.deltas
            .insert((from, to, viewcl.to_string()), delta.clone())
            .is_none()
        {
            g.stats.delta_published += 1;
        }
    }

    fn blocks(&self, generation: u64) -> Option<CacheSnapshot> {
        self.inner.lock().unwrap().blocks.get(&generation).cloned()
    }

    fn publish_blocks(&self, generation: u64, snap: CacheSnapshot) {
        let mut g = self.inner.lock().unwrap();
        let keep = match g.blocks.get(&generation) {
            Some(existing) => snap.len() > existing.len(),
            None => true,
        };
        if keep {
            g.blocks.insert(generation, snap);
            g.stats.block_snapshots += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plot() -> SharedPlot {
        SharedPlot {
            graph: std::sync::Arc::new(vgraph::Graph::default()),
            stats: visualinux::PlotStats::default(),
            full: "".into(),
            tape: None,
        }
    }

    #[test]
    fn publish_then_get_hits_and_counts() {
        let c = FleetCache::default();
        assert!(c.get(1, "fig").is_none());
        c.publish(1, "fig", &plot());
        assert!(c.get(1, "fig").is_some());
        assert!(c.get(2, "fig").is_none(), "other generation is a miss");
        c.publish(1, "fig", &plot());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.published, s.duplicates), (1, 2, 1, 1));
    }
}
