//! The engine pool: session registry, spawn/evict/respawn lifecycle,
//! generation chaining, and the fleet-wide stats ledger.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use ksim::workload::WorkloadRoots;
use visualinux::SessionSpec;
use vserve::{Connection, JournalEntry, Preload, ServeConfig, ServeStats, Server, ServerHandle};

use crate::cache::{FleetCache, FleetCacheStats};
use crate::stats::FleetStats;
use crate::FleetError;

/// Fleet tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Resident-engine budget: spawning beyond it first evicts the
    /// least-recently-used idle engine. A fleet where every engine has
    /// live connections may transiently exceed the budget — routing
    /// never fails just because the LRU is busy.
    pub max_resident: usize,
    /// Per-engine serving configuration. `exit_when_idle` is forced off:
    /// fleet engines idle between clients and retire only by
    /// eviction or shutdown.
    pub serve: ServeConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            max_resident: 4,
            serve: ServeConfig::default(),
        }
    }
}

/// A resident engine: its thread plus the handles to reach it.
struct EngineRt {
    handle: ServerHandle,
    join: JoinHandle<(ServeStats, Vec<JournalEntry>)>,
    /// Open fleet connections (eviction eligibility).
    conns: Arc<AtomicUsize>,
}

/// One registered session, resident or dormant.
struct SessionEntry {
    spec: Arc<SessionSpec>,
    /// The share group (all sessions with this spec fingerprint).
    group: Arc<FleetCache>,
    /// Workload roots for rebuilding tick closures (live specs only;
    /// replay sessions skip stop mutations anyway).
    roots: Option<WorkloadRoots>,
    engine: Option<EngineRt>,
    /// Current stop-generation key (hash-chained over applied ticks).
    generation: u64,
    /// Applied ticks, in order: `(tick n, generation after)`.
    ticks: Vec<(u64, u64)>,
    /// Served-extraction journal settled from retired incarnations.
    journal: Vec<JournalEntry>,
    /// Serving totals settled from retired incarnations.
    retired: ServeStats,
    /// LRU clock value of the last connect.
    last_used: u64,
    ever_spawned: bool,
}

struct Inner {
    cfg: FleetConfig,
    sessions: HashMap<String, SessionEntry>,
    groups: HashMap<u64, Arc<FleetCache>>,
    clock: u64,
    spawns: u64,
    respawns: u64,
    evictions: u64,
    attaches: u64,
    routing_errors: u64,
}

/// A pool of pane-server engines, one per registered session, with
/// keyed routing, a resident budget, and cross-session extraction
/// sharing between engines whose specs fingerprint identically.
pub struct Fleet {
    inner: Mutex<Inner>,
}

/// The lease a routed connection holds on its engine: dropping it
/// releases the session for eviction (once it is the last one). A wire
/// pump carries it as the lane guard after taking the raw
/// [`Connection`] out of a [`FleetConnection`].
pub struct ConnGuard {
    conns: Arc<AtomicUsize>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A routed client connection. Dereferences to the engine-level
/// [`vserve::Connection`]; dropping it releases the session for
/// eviction (once it is the last one).
pub struct FleetConnection {
    conn: Connection,
    guard: ConnGuard,
}

impl FleetConnection {
    /// The underlying engine connection.
    pub fn connection(&self) -> &Connection {
        &self.conn
    }

    /// Split into the raw connection and the engine lease (what the
    /// fleet's [`vserve::ConnectRouter`] hands a wire pump).
    pub fn into_parts(self) -> (Connection, ConnGuard) {
        (self.conn, self.guard)
    }
}

impl std::ops::Deref for FleetConnection {
    type Target = Connection;
    fn deref(&self) -> &Connection {
        &self.conn
    }
}

/// Chain a tick argument into a stop-generation key (FNV-1a over the
/// previous key and the tick number). Engines may only share cached
/// extractions under equal keys, and equal chained keys imply identical
/// mutation histories — two sessions that ever ticked differently can
/// never alias in the share group again.
pub fn chain_generation(prev: u64, tick: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in prev.to_le_bytes().into_iter().chain(tick.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Fleet {
    /// An empty fleet.
    pub fn new(cfg: FleetConfig) -> Fleet {
        Fleet {
            inner: Mutex::new(Inner {
                cfg,
                sessions: HashMap::new(),
                groups: HashMap::new(),
                clock: 0,
                spawns: 0,
                respawns: 0,
                evictions: 0,
                attaches: 0,
                routing_errors: 0,
            }),
        }
    }

    /// Register a session under `key`. Nothing is built yet — the first
    /// connection spawns the engine.
    pub fn add_session(&self, key: &str, spec: SessionSpec) -> Result<(), FleetError> {
        let mut g = self.inner.lock().unwrap();
        if g.sessions.contains_key(key) {
            return Err(FleetError::DuplicateSession(key.to_string()));
        }
        let group = g
            .groups
            .entry(spec.fingerprint())
            .or_insert_with(|| Arc::new(FleetCache::default()))
            .clone();
        let roots = match &spec {
            SessionSpec::Live { workload, .. } => Some(ksim::workload::debug_info(workload).2),
            SessionSpec::Replay { .. } => None,
        };
        g.sessions.insert(
            key.to_string(),
            SessionEntry {
                spec: Arc::new(spec),
                group,
                roots,
                engine: None,
                generation: 0,
                ticks: Vec::new(),
                journal: Vec::new(),
                retired: ServeStats::default(),
                last_used: 0,
                ever_spawned: false,
            },
        );
        Ok(())
    }

    /// Registered session keys, sorted.
    pub fn session_keys(&self) -> Vec<String> {
        let g = self.inner.lock().unwrap();
        let mut keys: Vec<String> = g.sessions.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Whether `key`'s engine is currently resident.
    pub fn is_resident(&self, key: &str) -> bool {
        let g = self.inner.lock().unwrap();
        g.sessions.get(key).is_some_and(|e| e.engine.is_some())
    }

    /// Connect a client to `key`'s session, spawning (or respawning from
    /// its journal) the engine if it is dormant — possibly evicting the
    /// least-recently-used idle engine to stay under the budget.
    pub fn connect(&self, key: &str) -> Result<FleetConnection, FleetError> {
        let mut g = self.inner.lock().unwrap();
        if !g.sessions.contains_key(key) {
            return Err(FleetError::UnknownSession(key.to_string()));
        }
        g.clock += 1;
        let now = g.clock;
        if g.sessions[key].engine.is_none() {
            while g.resident_count() >= g.cfg.max_resident {
                let Some(victim) = g.lru_idle(key) else { break };
                g.evict(&victim);
            }
            g.spawn(key)?;
        }
        g.attaches += 1;
        let entry = g.sessions.get_mut(key).expect("checked above");
        entry.last_used = now;
        let rt = entry.engine.as_ref().expect("just spawned");
        rt.conns.fetch_add(1, Ordering::SeqCst);
        Ok(FleetConnection {
            conn: rt.handle.connect(),
            guard: ConnGuard {
                conns: rt.conns.clone(),
            },
        })
    }

    /// Apply tick `n` to one session: chains the generation key and
    /// queues the stop on its engine (dormant sessions just advance
    /// their key — the stop is re-enacted on respawn).
    pub fn tick(&self, key: &str, n: u64) -> Result<(), FleetError> {
        let mut g = self.inner.lock().unwrap();
        g.tick_locked(key, n)
    }

    /// Apply tick `n` to every registered session.
    pub fn tick_all(&self, n: u64) -> Result<(), FleetError> {
        let mut g = self.inner.lock().unwrap();
        let keys: Vec<String> = g.sessions.keys().cloned().collect();
        for key in keys {
            g.tick_locked(&key, n)?;
        }
        Ok(())
    }

    /// Retire `key`'s engine if it is resident and idle (no open
    /// connections): graceful shutdown, books settled into the entry.
    /// Returns whether an engine was evicted.
    pub fn evict(&self, key: &str) -> bool {
        let mut g = self.inner.lock().unwrap();
        let idle = g
            .sessions
            .get(key)
            .and_then(|e| e.engine.as_ref())
            .is_some_and(|rt| rt.conns.load(Ordering::SeqCst) == 0);
        if idle {
            g.evict(key);
        }
        idle
    }

    /// Fleet-wide totals. Engine books cover retired incarnations only;
    /// call [`Fleet::shutdown`] first for a snapshot that reconciles.
    pub fn stats(&self) -> FleetStats {
        self.inner.lock().unwrap().stats()
    }

    /// Retire every resident engine (graceful: queued requests drain)
    /// and return the settled, reconcilable fleet totals.
    pub fn shutdown(&self) -> FleetStats {
        let mut g = self.inner.lock().unwrap();
        let keys: Vec<String> = g.sessions.keys().cloned().collect();
        for key in keys {
            if g.sessions[&key].engine.is_some() {
                g.evict_uncounted(&key);
            }
        }
        g.stats()
    }

    /// The settled served-extraction journal for `key` (retired
    /// incarnations; a resident engine's tail is not yet visible).
    pub fn journal(&self, key: &str) -> Vec<JournalEntry> {
        let g = self.inner.lock().unwrap();
        g.sessions
            .get(key)
            .map(|e| e.journal.clone())
            .unwrap_or_default()
    }

    pub(crate) fn note_routing_error(&self) {
        self.inner.lock().unwrap().routing_errors += 1;
    }
}

impl Inner {
    fn resident_count(&self) -> usize {
        self.sessions
            .values()
            .filter(|e| e.engine.is_some())
            .count()
    }

    /// The least-recently-used resident session with no open
    /// connections, excluding `keep`.
    fn lru_idle(&self, keep: &str) -> Option<String> {
        self.sessions
            .iter()
            .filter(|(k, e)| {
                k.as_str() != keep
                    && e.engine
                        .as_ref()
                        .is_some_and(|rt| rt.conns.load(Ordering::SeqCst) == 0)
            })
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
    }

    fn tick_locked(&mut self, key: &str, n: u64) -> Result<(), FleetError> {
        let entry = self
            .sessions
            .get_mut(key)
            .ok_or_else(|| FleetError::UnknownSession(key.to_string()))?;
        let next = chain_generation(entry.generation, n);
        if let Some(rt) = &entry.engine {
            let mutate = tick_closure(&entry.roots, n);
            rt.handle
                .stop_event_keyed(next, mutate)
                .map_err(|e| FleetError::Engine(e.to_string()))?;
        }
        entry.generation = next;
        entry.ticks.push((n, next));
        Ok(())
    }

    /// Spawn `key`'s engine on a fresh thread, preloading its settled
    /// history so a respawn reproduces its predecessor's tape position
    /// and cache state on demand.
    fn spawn(&mut self, key: &str) -> Result<(), FleetError> {
        let entry = self.sessions.get_mut(key).expect("registered");
        let spec = entry.spec.clone();
        let group = entry.group.clone();
        let generation = entry.generation;
        let ops = preload_ops(&entry.journal, &entry.ticks, &entry.roots);
        let cfg = ServeConfig {
            exit_when_idle: false,
            ..self.cfg.serve
        };
        let (tx, rx) = mpsc::channel::<Result<ServerHandle, String>>();
        let join = std::thread::spawn(move || {
            let session = match spec.build() {
                Ok(s) => s,
                Err(e) => {
                    let _ = tx.send(Err(e.to_string()));
                    return (ServeStats::default(), Vec::new());
                }
            };
            let mut server = Server::new(session, cfg);
            server.share_extractions(group);
            server.preload(generation, ops);
            let _ = tx.send(Ok(server.handle()));
            server.run();
            (server.stats(), server.journal().to_vec())
        });
        match rx.recv() {
            Ok(Ok(handle)) => {
                if entry.ever_spawned {
                    self.respawns += 1;
                }
                entry.ever_spawned = true;
                self.spawns += 1;
                entry.engine = Some(EngineRt {
                    handle,
                    join,
                    conns: Arc::new(AtomicUsize::new(0)),
                });
                Ok(())
            }
            Ok(Err(msg)) => {
                let _ = join.join();
                Err(FleetError::Spawn(msg))
            }
            Err(_) => {
                let _ = join.join();
                Err(FleetError::Spawn(
                    "engine thread died before handshake".into(),
                ))
            }
        }
    }

    fn evict(&mut self, key: &str) {
        self.evict_uncounted(key);
        self.evictions += 1;
    }

    /// Retire the engine and settle its books into the entry. The
    /// engine's journal *replaces* the settled one — it includes the
    /// preloaded history, so it is the full served sequence.
    fn evict_uncounted(&mut self, key: &str) {
        let entry = self.sessions.get_mut(key).expect("registered");
        let Some(rt) = entry.engine.take() else {
            return;
        };
        rt.handle.shutdown();
        if let Ok((stats, journal)) = rt.join.join() {
            entry.retired.absorb(&stats);
            entry.journal = journal;
        }
    }

    fn stats(&self) -> FleetStats {
        let mut engine = ServeStats::default();
        for e in self.sessions.values() {
            engine.absorb(&e.retired);
        }
        let mut cache = FleetCacheStats::default();
        for g in self.groups.values() {
            cache.absorb(&g.stats());
        }
        FleetStats {
            sessions: self.sessions.len() as u64,
            resident: self.resident_count() as u64,
            spawns: self.spawns,
            respawns: self.respawns,
            evictions: self.evictions,
            attaches: self.attaches,
            routing_errors: self.routing_errors,
            engine,
            cache,
        }
    }
}

/// The image mutation for tick `n`: the deterministic `ksim` tick for
/// live sessions; a no-op for replay sessions (the session skips stop
/// mutations on a tape anyway, it only consumes the resume marker).
fn tick_closure(
    roots: &Option<WorkloadRoots>,
    n: u64,
) -> Box<dyn FnOnce(&mut ksim::image::KernelImage) + Send> {
    match roots {
        Some(r) => {
            let r = r.clone();
            Box::new(move |img| {
                ksim::tick::tick(img, &r, n);
            })
        }
        None => Box::new(|_| {}),
    }
}

/// Interleave a settled journal with the applied ticks, in original
/// order, into the op sequence a respawned engine must re-enact: each
/// journal entry carries the generation it was served under, and every
/// generation segment precedes the tick that ended it.
fn preload_ops(
    journal: &[JournalEntry],
    ticks: &[(u64, u64)],
    roots: &Option<WorkloadRoots>,
) -> Vec<(u64, Preload)> {
    let mut ops = Vec::with_capacity(journal.len() + ticks.len());
    let mut js = journal.iter().peekable();
    let mut gen = 0u64;
    for &(n, after) in ticks {
        while js.peek().is_some_and(|e| e.generation == gen) {
            let e = js.next().expect("peeked");
            ops.push((e.generation, Preload::Plot(e.viewcl.clone())));
        }
        ops.push((gen, Preload::Stop(tick_closure(roots, n))));
        gen = after;
    }
    for e in js {
        ops.push((e.generation, Preload::Plot(e.viewcl.clone())));
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_chain_separates_histories() {
        let a = chain_generation(chain_generation(0, 1), 2);
        let b = chain_generation(chain_generation(0, 2), 1);
        assert_ne!(a, b, "tick order must be part of the key");
        assert_ne!(chain_generation(0, 1), chain_generation(0, 2));
    }

    #[test]
    fn preload_interleaves_journal_segments_with_ticks() {
        let g1 = chain_generation(0, 1);
        let g2 = chain_generation(g1, 2);
        let journal = vec![
            JournalEntry {
                generation: 0,
                viewcl: "a".into(),
            },
            JournalEntry {
                generation: g1,
                viewcl: "b".into(),
            },
            JournalEntry {
                generation: g2,
                viewcl: "c".into(),
            },
        ];
        let ticks = vec![(1, g1), (2, g2)];
        let ops = preload_ops(&journal, &ticks, &None);
        let shape: Vec<String> = ops
            .iter()
            .map(|(_, op)| match op {
                Preload::Plot(v) => format!("plot:{v}"),
                Preload::Stop(_) => "stop".into(),
            })
            .collect();
        assert_eq!(shape, ["plot:a", "stop", "plot:b", "stop", "plot:c"]);
    }
}
