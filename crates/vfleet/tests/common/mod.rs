//! Shared fixtures for the fleet integration tests: a recorded capture
//! of a multi-round figure corpus, and a client loop that collects the
//! graphs a fleet connection serves.

use ksim::workload::{build, WorkloadConfig};
use vbridge::{CacheConfig, Capture, LatencyProfile};
use visualinux::proto::VCommand;
use visualinux::{figures, Session};
use vserve::{Replica, SendMode};

/// The first `n` corpus figures' ViewCL sources.
pub fn fig_sources(n: usize) -> Vec<String> {
    figures::all()
        .iter()
        .take(n)
        .map(|f| f.viewcl.to_string())
        .collect()
}

/// Record a capture of `rounds + 1` generations over `figs`, in corpus
/// order: round 0, then (tick n, round n) for n = 1..=rounds — exactly
/// the request order a fleet client drives, so a replay engine's tape
/// lines up with its serving order.
pub fn record_capture(figs: &[String], rounds: u64) -> Capture {
    let mut s = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::free())
        .cache(CacheConfig::default())
        .record("fleet-capture.vrec") // in-memory; never flushed to disk
        .attach()
        .expect("record session");
    for round in 0..=rounds {
        if round > 0 {
            let roots = s.roots.clone();
            s.stop_event(|img| {
                ksim::tick::tick(img, &roots, round);
            })
            .expect("live stop");
        }
        for fig in figs {
            s.extract(fig).expect("record extract");
        }
    }
    s.capture().expect("capture")
}

/// Request every figure once on `conn` and return the served graphs (in
/// figure order), applying full ships and deltas alike through a
/// [`Replica`].
pub fn serve_round(
    conn: &vfleet::FleetConnection,
    replica: &mut Replica,
    figs: &[String],
) -> Vec<vgraph::Graph> {
    figs.iter()
        .map(|fig| {
            conn.send(&VCommand::VplotRequest {
                viewcl: fig.clone(),
            }, SendMode::Blocking)
            .expect("send");
            let line = conn.recv().expect("reply");
            replica.apply_line(&line).expect("apply");
            replica.graph(fig).expect("replica tracks the plot").clone()
        })
        .collect()
}
