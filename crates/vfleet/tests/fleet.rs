//! Fleet behavior: keyed routing over a transport, cross-session cache
//! sharing, mixed live/replay equivalence, and stats reconciliation.

mod common;

use common::{fig_sources, record_capture, serve_round};
use ksim::workload::WorkloadConfig;
use vbridge::LatencyProfile;
use vfleet::{Fleet, FleetConfig, FleetError, FleetRouter};
use visualinux::proto::{VCommand, VResponse};
use visualinux::SessionSpec;
use vserve::{byte_pair, Replica, WireClient, WireConfig, WirePump};

const FIGS: usize = 5;
const ROUNDS: u64 = 2;

#[test]
fn identical_replay_sessions_share_walks_across_engines() {
    let figs = fig_sources(FIGS);
    let cap = record_capture(&figs, ROUNDS);
    let fleet = Fleet::new(FleetConfig::default());
    fleet
        .add_session("a", SessionSpec::replay(cap.clone()))
        .unwrap();
    fleet.add_session("b", SessionSpec::replay(cap)).unwrap();
    assert_eq!(
        fleet.add_session(
            "b",
            SessionSpec::live(WorkloadConfig::default(), LatencyProfile::free())
        ),
        Err(FleetError::DuplicateSession("b".into()))
    );

    let ca = fleet.connect("a").unwrap();
    let cb = fleet.connect("b").unwrap();
    let (mut ra, mut rb) = (Replica::new(), Replica::new());
    for round in 0..=ROUNDS {
        if round > 0 {
            fleet.tick_all(round).unwrap();
        }
        // Engine a always serves first, so engine b's identical request
        // stream is answered entirely from the share group.
        let ga = serve_round(&ca, &mut ra, &figs);
        let gb = serve_round(&cb, &mut rb, &figs);
        assert_eq!(ga, gb, "round {round}: engines diverged");
    }
    drop(ca);
    drop(cb);

    let stats = fleet.shutdown();
    stats.reconcile().expect("fleet books balance");
    let served = (FIGS as u64) * (ROUNDS + 1);
    assert_eq!(stats.engine.walks, served, "engine a walks everything");
    assert_eq!(
        stats.engine.shared_hits, served,
        "engine b serves everything from the share group"
    );
    assert_eq!(stats.cache.hits, served);
    assert_eq!(stats.cache.published, served);
    assert_eq!(stats.cache.duplicates, 0);
    assert_eq!(stats.spawns, 2);
    assert_eq!(stats.respawns, 0);
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.attaches, 2);
}

#[test]
fn mixed_live_and_replay_sessions_serve_identical_graphs() {
    let figs = fig_sources(3);
    let cap = record_capture(&figs, 1);
    let fleet = Fleet::new(FleetConfig::default());
    fleet.add_session("tape", SessionSpec::replay(cap)).unwrap();
    fleet
        .add_session(
            "live",
            SessionSpec::live(WorkloadConfig::default(), LatencyProfile::free()),
        )
        .unwrap();

    let ct = fleet.connect("tape").unwrap();
    let cl = fleet.connect("live").unwrap();
    let (mut rt, mut rl) = (Replica::new(), Replica::new());
    for round in 0..=1 {
        if round > 0 {
            fleet.tick_all(round).unwrap();
        }
        let gt = serve_round(&ct, &mut rt, &figs);
        let gl = serve_round(&cl, &mut rl, &figs);
        assert_eq!(gt, gl, "round {round}: live and replay diverged");
    }
    drop(ct);
    drop(cl);

    let stats = fleet.shutdown();
    stats.reconcile().expect("fleet books balance");
    // Different spec fingerprints → different share groups → no hits.
    assert_eq!(stats.engine.shared_hits, 0);
    assert_eq!(stats.engine.walks, 3 * 2 * 2);
}

#[test]
fn vattach_routes_by_key_and_rejects_malformed_frames() {
    let figs = fig_sources(2);
    let cap = record_capture(&figs, 0);
    let fleet = std::sync::Arc::new(Fleet::new(FleetConfig::default()));
    fleet.add_session("s1", SessionSpec::replay(cap)).unwrap();

    let pump = WirePump::new(
        Box::new(FleetRouter::new(fleet.clone())),
        WireConfig::default(),
    );
    let ph = pump.handle();
    let pump_thread = std::thread::spawn(move || pump.run());
    let (client_io, server_io) = byte_pair(64);
    ph.add(Box::new(server_io)).unwrap();
    // The fleet endpoint negotiates the binary framing like any other:
    // routing frames travel length-prefixed after the hello/accept.
    let mut client = WireClient::binary(Box::new(client_io)).unwrap();

    let mut ask = |line: String| -> String {
        client.send_payload(&line).unwrap();
        client.recv().unwrap().expect("response")
    };
    // Malformed routing frame: not JSON.
    let r = ask("{ not json".into());
    assert!(r.contains("unparseable routing frame"), "{r}");
    // Out-of-order: a protocol command before any attach.
    let r = ask(VCommand::VplotRequest {
        viewcl: figs[0].clone(),
    }
    .to_json());
    assert!(r.contains("expected a vattach routing frame first"), "{r}");
    // Missing session key field.
    let r = ask("{\"command\":\"vattach\"}".into());
    assert!(r.contains("unparseable routing frame"), "{r}");
    // Unknown session key.
    let r = ask("{\"command\":\"vattach\",\"session\":\"nope\"}".into());
    assert!(r.contains("unknown session `nope`"), "{r}");
    // A well-formed attach finally routes...
    let r = ask(VCommand::Vattach {
        session: "s1".into(),
    }
    .to_json());
    assert!(matches!(
        VResponse::from_json(&r).unwrap(),
        VResponse::Ok { .. }
    ));
    // ...and the connection speaks the ordinary serve protocol.
    let r = ask(VCommand::VplotRequest {
        viewcl: figs[0].clone(),
    }
    .to_json());
    assert!(r.contains("\"command\":\"vplot\""), "{r}");
    // A duplicate attach is now an in-stream command: the engine answers
    // (single-session error), the route does not change.
    let r = ask(VCommand::Vattach {
        session: "s1".into(),
    }
    .to_json());
    assert!(r.contains("already routed"), "{r}");
    let r = ask(VCommand::VplotRequest {
        viewcl: figs[1].clone(),
    }
    .to_json());
    assert!(r.contains("\"command\":\"vplot\""), "{r}");

    drop(client);
    ph.shutdown();
    let wire = pump_thread.join().unwrap();
    wire.reconcile().expect("wire books balance");
    assert_eq!(wire.accepted, 1);
    assert_eq!(wire.hello_binary, 1);
    assert_eq!(wire.routing_retries, 4);
    let stats = fleet.shutdown();
    stats.reconcile().expect("fleet books balance");
    assert_eq!(
        stats.routing_errors, 4,
        "pre-attach rejections are routing errors: {stats:?}"
    );
    assert_eq!(stats.attaches, 1);
    // The duplicate vattach and the two plots reached the engine.
    assert_eq!(stats.engine.requests, 3);
    assert_eq!(stats.engine.errors, 1);
}
