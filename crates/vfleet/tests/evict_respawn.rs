//! Eviction/respawn determinism: evict a replay session mid-corpus,
//! respawn it from its capture + journal, and the re-served pane graphs
//! must be byte-identical to an uninterrupted run.

mod common;

use common::{fig_sources, record_capture, serve_round};
use ksim::workload::WorkloadConfig;
use vbridge::LatencyProfile;
use vfleet::{Fleet, FleetConfig};
use visualinux::proto::VCommand;
use visualinux::SessionSpec;
use vserve::{Replica, SendMode};

const FIGS: usize = 6;
const ROUNDS: u64 = 2;
/// How far into round 0 the interrupted run gets before eviction.
const CUT: usize = 3;

#[test]
fn evicted_replay_session_respawns_bit_identically() {
    let figs = fig_sources(FIGS);
    let cap = record_capture(&figs, ROUNDS);

    // Reference: one fleet, one engine, never interrupted.
    let reference = {
        let fleet = Fleet::new(FleetConfig::default());
        fleet
            .add_session("r", SessionSpec::replay(cap.clone()))
            .unwrap();
        let conn = fleet.connect("r").unwrap();
        let mut rep = Replica::new();
        let mut rounds = Vec::new();
        for round in 0..=ROUNDS {
            if round > 0 {
                fleet.tick_all(round).unwrap();
            }
            rounds.push(serve_round(&conn, &mut rep, &figs));
        }
        drop(conn);
        let stats = fleet.shutdown();
        stats.reconcile().expect("reference books balance");
        assert_eq!(stats.respawns, 0);
        rounds
    };

    // Interrupted: budget of one resident engine, plus a decoy live
    // session whose arrival forces the replay engine out mid-corpus.
    let fleet = Fleet::new(FleetConfig {
        max_resident: 1,
        ..FleetConfig::default()
    });
    fleet.add_session("r", SessionSpec::replay(cap)).unwrap();
    fleet
        .add_session(
            "decoy",
            SessionSpec::live(WorkloadConfig::default(), LatencyProfile::free()),
        )
        .unwrap();

    let mut served: Vec<Vec<vgraph::Graph>> = Vec::new();
    let mut round0 = Vec::new();
    {
        let conn = fleet.connect("r").unwrap();
        let mut rep = Replica::new();
        round0.extend(serve_round(&conn, &mut rep, &figs[..CUT]));
    } // connection dropped: the engine is idle and evictable

    // The decoy displaces the replay engine under the budget of one.
    assert!(fleet.is_resident("r"));
    let dconn = fleet.connect("decoy").unwrap();
    assert!(!fleet.is_resident("r"), "replay engine was not evicted");
    dconn
        .send(&VCommand::VplotRequest {
            viewcl: figs[0].clone(),
        }, SendMode::Blocking)
        .unwrap();
    dconn.recv().expect("decoy serves");
    drop(dconn);

    // Reconnect: the session respawns from capture + journal. The new
    // engine re-enacts the first incarnation's walks lazily, so the tape
    // continues exactly where the eviction cut it off.
    let conn = fleet.connect("r").unwrap();
    assert!(fleet.is_resident("r"));
    let mut rep = Replica::new();
    round0.extend(serve_round(&conn, &mut rep, &figs[CUT..]));
    served.push(round0);
    for round in 1..=ROUNDS {
        fleet.tick_all(round).unwrap();
        served.push(serve_round(&conn, &mut rep, &figs));
    }
    drop(conn);

    let stats = fleet.shutdown();
    stats.reconcile().expect("interrupted books balance");
    assert_eq!(stats.respawns, 1, "{stats:?}");
    // Two evictions: the replay engine (displaced by the decoy), then
    // the decoy (displaced right back by the reconnect).
    assert_eq!(stats.evictions, 2, "{stats:?}");
    assert_eq!(
        stats.engine.catchup_walks, CUT as u64,
        "the respawned engine re-enacts exactly the pre-eviction walks: {stats:?}"
    );

    // Graph-for-graph, the interrupted run served the same panes.
    assert_eq!(reference.len(), served.len());
    for (round, (want, got)) in reference.iter().zip(&served).enumerate() {
        for (i, (w, g)) in want.iter().zip(got).enumerate() {
            assert_eq!(w, g, "round {round}, figure {i} diverged after respawn");
        }
    }

    // The journal survives the respawn with full history: a *second*
    // eviction would still re-enact everything.
    let journal = fleet.journal("r");
    assert_eq!(journal.len(), FIGS * (ROUNDS as usize + 1));
}
