//! Structural invariant checking over the simulated kernel image.
//!
//! `kcheck` is the static-analysis half of the corruption story: it walks
//! typed memory through the metered [`vbridge::Target`] — exactly like a
//! distiller would — and validates the structural invariants the kernel's
//! containers maintain when healthy:
//!
//! * circular `list_head`s: `next->prev == self`, the walk returns to the
//!   head, and no cycle bypasses it;
//! * red-black trees: stored parent pointers match the walk, no red node
//!   has a red child, and in-order keys are monotone;
//! * maple trees: tagged-enode validity, parent back-pointers, and pivot
//!   monotonicity within the parent's `[min, max]` window;
//! * xarrays: internal-entry tags are plausible and shifts decrease;
//! * fd tables: the `open_fds` bitmap agrees with the `fd` array;
//! * refcounts: values stay inside a plausible window.
//!
//! Every checker is fault-tolerant: a wild pointer or poisoned node
//! becomes a typed [`Violation`] (kind, address, symbol-rooted path,
//! severity) instead of an error, so a single corruption cannot hide the
//! rest of the report. [`sweep`] drives all checkers from the well-known
//! symbols (`init_task`, `runqueues`, `super_blocks`, ...) the way
//! `vcheck` in the session layer does.

use std::collections::HashSet;

use ktypes::{TypeKind, TypeRegistry};
use vbridge::Target;

/// Upper bound on nodes visited per structure — a backstop against
/// pathological corruption, far above any workload population.
const MAX_SCAN: usize = 1 << 17;

/// Offset of `next` / `first` within `list_head`.
const LIST_NEXT: u64 = 0;
/// Offset of `prev` within `list_head`.
const LIST_PREV: u64 = 8;
/// Offsets within `struct rb_node` (`__rb_parent_color`, right, left).
const RB_RIGHT: u64 = 8;
/// `rb_left` offset.
const RB_LEFT: u64 = 16;
/// Red color bit value (kernel encoding: red = 0).
const RB_RED: u64 = 0;
/// Maple node size/alignment mask.
const MAPLE_NODE_MASK: u64 = 255;
/// Slots in a `maple_range_64` node.
const MAPLE_RANGE64_SLOTS: u64 = 16;
/// Slots in a `maple_arange_64` node.
const MAPLE_ARANGE64_SLOTS: u64 = 10;
/// `enum maple_type`: highest valid value (`maple_arange_64`).
const MAPLE_TYPE_MAX: u64 = 3;
/// `enum maple_type` value below which a node is a leaf.
const MAPLE_LEAF_LIMIT: u64 = 2;

/// How bad a violation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Suspicious but survivable (e.g. an implausible refcount).
    Warning,
    /// A broken structural invariant.
    Error,
}

/// The invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// `list_head` linkage broken (bad `prev`, NULL link, stray cycle).
    ListBroken,
    /// rb-node stored parent disagrees with the walk (or node unreadable).
    RbParent,
    /// A red rb-node has a red child.
    RbRedRed,
    /// In-order rb-tree keys are not monotone.
    RbOrder,
    /// Maple-tree pivots not monotone or outside the parent's window.
    MaplePivot,
    /// Maple tagged-enode invalid: bad type, bad parent link, dangling.
    MapleEnode,
    /// XArray slot carries an implausible or ill-shaped entry.
    XarraySlot,
    /// fd-table bitmap/array/count disagreement.
    FdTable,
    /// Refcount outside the plausible window.
    Refcount,
    /// PID hash linkage broken: dangling chain node, implausible pid
    /// number, or a stale task back-link (`thread_pid` disagrees with
    /// the pid whose task hlist names the task).
    PidLink,
}

impl ViolationKind {
    /// Coarse class name, matching `ksim::faults::FaultKind::class` so a
    /// fault-injection test can pair an injected fault with the violations
    /// it must produce.
    pub fn class(self) -> &'static str {
        match self {
            ViolationKind::ListBroken => "list",
            ViolationKind::RbParent | ViolationKind::RbRedRed | ViolationKind::RbOrder => "rbtree",
            ViolationKind::MaplePivot | ViolationKind::MapleEnode => "maple",
            ViolationKind::XarraySlot => "xarray",
            ViolationKind::FdTable => "fdtable",
            ViolationKind::Refcount => "refcount",
            ViolationKind::PidLink => "pid",
        }
    }

    /// Default severity for this kind.
    pub fn severity(self) -> Severity {
        match self {
            ViolationKind::FdTable | ViolationKind::Refcount => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// One broken invariant, anchored to the address that exposed it and the
/// symbol-rooted path the sweep took to reach it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// The address that exposed the breakage (node, slot, counter...).
    pub addr: u64,
    /// Walk path from a root symbol, e.g. `init_task.tasks[3].mm.mm_mt`.
    pub path: String,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable specifics.
    pub detail: String,
}

/// The outcome of a checking pass.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Everything found, in walk order.
    pub violations: Vec<Violation>,
    /// Number of checker invocations that ran.
    pub checkers_run: u64,
}

impl Report {
    /// Whether no invariant broke.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations whose kind maps to `class` (see [`ViolationKind::class`]).
    pub fn count_of(&self, class: &str) -> usize {
        self.violations
            .iter()
            .filter(|v| v.kind.class() == class)
            .count()
    }

    /// Sorted, deduplicated classes present in the report.
    pub fn classes(&self) -> Vec<&'static str> {
        let mut c: Vec<&'static str> = self.violations.iter().map(|v| v.kind.class()).collect();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// One-line summary for bench tables and logs.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!("0 violations ({} checkers)", self.checkers_run)
        } else {
            format!(
                "{} violations [{}] ({} checkers)",
                self.violations.len(),
                self.classes().join(", "),
                self.checkers_run
            )
        }
    }

    /// Check this report against a ground-truth expectation list — the
    /// contract every generated corpus scenario ships with:
    ///
    /// 1. every [`Expected`] finding is present (≥ 1 violation of its
    ///    class, at the exact address when one is pinned), and
    /// 2. nothing else is flagged: every violation's class is accounted
    ///    for by some expectation.
    ///
    /// An empty `expected` therefore asserts the report is clean. The
    /// error string names the first broken clause, with the report
    /// summary attached.
    pub fn verify_expected(&self, expected: &[Expected]) -> std::result::Result<(), String> {
        for e in expected {
            let hit = self
                .violations
                .iter()
                .any(|v| v.kind.class() == e.class && e.addr.is_none_or(|a| v.addr == a));
            if !hit {
                let at = match e.addr {
                    Some(a) => format!(" at {a:#x}"),
                    None => String::new(),
                };
                return Err(format!(
                    "expected a {} violation{at}, none found; report: {}",
                    e.class,
                    self.summary()
                ));
            }
        }
        for v in &self.violations {
            if !expected.iter().any(|e| e.class == v.kind.class()) {
                return Err(format!(
                    "unexpected {} violation at {:#x} ({}): {}",
                    v.kind.class(),
                    v.addr,
                    v.path,
                    v.detail
                ));
            }
        }
        Ok(())
    }
}

/// One ground-truth finding a corpus scenario promises: a violation of
/// `class` must be present, at exactly `addr` when pinned. See
/// [`Report::verify_expected`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expected {
    /// The checker class ([`ViolationKind::class`]) that must fire.
    pub class: String,
    /// The exact violation address, when the injection knows the checker
    /// reports the mutated address itself (refcounts, fd slots); `None`
    /// when the checker surfaces the damage elsewhere on the structure.
    pub addr: Option<u64>,
}

/// Resolved field offsets the sweep needs. Every member is optional so a
/// partially registered image (unit-test fixtures) degrades to fewer
/// checkers instead of an error.
#[derive(Debug, Default, Clone)]
struct Layout {
    tasks_off: Option<u64>,
    files_off: Option<u64>,
    mm_off: Option<u64>,
    run_node_off: Option<u64>,
    vruntime_off: Option<u64>,
    files_count_off: Option<u64>,
    fdt_off: Option<u64>,
    max_fds_off: Option<u64>,
    fd_off: Option<u64>,
    open_fds_off: Option<u64>,
    mm_mt_off: Option<u64>,
    mm_users_off: Option<u64>,
    mm_count_off: Option<u64>,
    ma_root_off: Option<u64>,
    f_count_off: Option<u64>,
    f_mapping_off: Option<u64>,
    i_pages_off: Option<u64>,
    xa_head_off: Option<u64>,
    xa_shift_off: Option<u64>,
    xa_slots_off: Option<u64>,
    timeline_off: Option<u64>,
    pid_chain_off: Option<u64>,
    pid_nr_off: Option<u64>,
    pid_tasks0_off: Option<u64>,
    pid_count_off: Option<u64>,
    pid_links_off: Option<u64>,
    thread_pid_off: Option<u64>,
}

fn off(types: &TypeRegistry, ty: &str, path: &str) -> Option<u64> {
    let id = types.find(ty)?;
    types.field_path(id, path).ok().map(|(o, _)| o)
}

impl Layout {
    fn resolve(types: &TypeRegistry) -> Layout {
        Layout {
            tasks_off: off(types, "task_struct", "tasks"),
            files_off: off(types, "task_struct", "files"),
            mm_off: off(types, "task_struct", "mm"),
            run_node_off: off(types, "task_struct", "se.run_node"),
            vruntime_off: off(types, "task_struct", "se.vruntime"),
            files_count_off: off(types, "files_struct", "count.counter"),
            fdt_off: off(types, "files_struct", "fdt"),
            max_fds_off: off(types, "fdtable", "max_fds"),
            fd_off: off(types, "fdtable", "fd"),
            open_fds_off: off(types, "fdtable", "open_fds"),
            mm_mt_off: off(types, "mm_struct", "mm_mt"),
            mm_users_off: off(types, "mm_struct", "mm_users.counter"),
            mm_count_off: off(types, "mm_struct", "mm_count.counter"),
            ma_root_off: off(types, "maple_tree", "ma_root"),
            f_count_off: off(types, "file", "f_count.counter"),
            f_mapping_off: off(types, "file", "f_mapping"),
            i_pages_off: off(types, "address_space", "i_pages"),
            xa_head_off: off(types, "xarray", "xa_head"),
            xa_shift_off: off(types, "xa_node", "shift"),
            xa_slots_off: off(types, "xa_node", "slots"),
            timeline_off: off(types, "rq", "cfs.tasks_timeline.rb_root.rb_node"),
            pid_chain_off: off(types, "pid", "numbers[0].pid_chain"),
            pid_nr_off: off(types, "pid", "numbers[0].nr"),
            pid_tasks0_off: off(types, "pid", "tasks[0]"),
            pid_count_off: off(types, "pid", "count.refs.counter"),
            pid_links_off: off(types, "task_struct", "pid_links[0]"),
            thread_pid_off: off(types, "task_struct", "thread_pid"),
        }
    }
}

/// Whether an entry stored in `ma_root`/a slot is a tagged internal node
/// pointer (kernel `xa_is_node`).
fn xa_is_node(entry: u64) -> bool {
    entry & 3 == 2 && entry > 4096
}

/// The invariant checker: a [`Target`] plus the offsets resolved from its
/// debug info. Individual checkers are exposed so the session layer can
/// scope them to a ViewQL selection; [`Checker::sweep`] runs all of them
/// from the root symbols.
pub struct Checker<'a, 't> {
    t: &'a Target<'t>,
    lay: Layout,
}

impl<'a, 't> Checker<'a, 't> {
    /// Build a checker for `target`, resolving offsets from its registry.
    pub fn new(target: &'a Target<'t>) -> Self {
        Checker {
            t: target,
            lay: Layout::resolve(target.types),
        }
    }

    fn u64_at(&self, addr: u64) -> Option<u64> {
        self.t.read_uint(addr, 8).ok()
    }

    fn push(
        &self,
        out: &mut Vec<Violation>,
        kind: ViolationKind,
        addr: u64,
        path: &str,
        detail: impl Into<String>,
    ) {
        out.push(Violation {
            kind,
            addr,
            path: path.to_string(),
            severity: kind.severity(),
            detail: detail.into(),
        });
    }

    /// Validate a circular `list_head` at `head`: every hop must satisfy
    /// `next->prev == self` and the walk must return to the head without
    /// revisiting a node. Returns the node addresses seen (best effort).
    pub fn check_list(&self, head: u64, path: &str, out: &mut Vec<Violation>) -> Vec<u64> {
        let mut nodes = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        seen.insert(head);
        let mut prev = head;
        let Some(mut cur) = self.u64_at(head + LIST_NEXT) else {
            self.push(
                out,
                ViolationKind::ListBroken,
                head,
                path,
                "list head is unreadable",
            );
            return nodes;
        };
        loop {
            if cur == 0 {
                self.push(
                    out,
                    ViolationKind::ListBroken,
                    prev,
                    path,
                    format!("NULL next link at {prev:#x}"),
                );
                break;
            }
            // Arriving at `cur` from `prev`: the back link must agree.
            let mut link = [0u8; 16];
            if self.t.read(cur, &mut link).is_err() {
                self.push(
                    out,
                    ViolationKind::ListBroken,
                    cur,
                    path,
                    format!("unreadable node at {cur:#x} (dangling next)"),
                );
                break;
            }
            let next = ktypes::read_uint(&link[LIST_NEXT as usize..8], 8);
            let back = ktypes::read_uint(&link[LIST_PREV as usize..16], 8);
            if back != prev {
                self.push(
                    out,
                    ViolationKind::ListBroken,
                    cur,
                    path,
                    format!("next->prev mismatch: {cur:#x}->prev is {back:#x}, expected {prev:#x}"),
                );
            }
            if cur == head {
                break; // closed the circle
            }
            if !seen.insert(cur) {
                self.push(
                    out,
                    ViolationKind::ListBroken,
                    cur,
                    path,
                    format!("cycle through {cur:#x} bypasses the list head"),
                );
                break;
            }
            nodes.push(cur);
            if nodes.len() > MAX_SCAN {
                self.push(
                    out,
                    ViolationKind::ListBroken,
                    cur,
                    path,
                    "traversal bound exceeded",
                );
                break;
            }
            prev = cur;
            cur = next;
        }
        nodes
    }

    /// Bounded backward walk over `prev` links, violation-free: used by the
    /// sweep to recover nodes a snipped forward chain no longer reaches.
    fn list_nodes_backward(&self, head: u64) -> Vec<u64> {
        let mut nodes = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        seen.insert(head);
        let mut cur = match self.u64_at(head + LIST_PREV) {
            Some(c) => c,
            None => return nodes,
        };
        while cur != head && cur != 0 && seen.insert(cur) && nodes.len() <= MAX_SCAN {
            nodes.push(cur);
            match self.u64_at(cur + LIST_PREV) {
                Some(p) => cur = p,
                None => break,
            }
        }
        nodes
    }

    /// Validate the red-black tree whose top node pointer lives at
    /// `root_slot`. Checks stored parents, red-red pairs, and — when
    /// `key_delta` is given — that in-order keys (a `u64` at
    /// `node + key_delta`) are non-decreasing.
    pub fn check_rbtree(
        &self,
        root_slot: u64,
        key_delta: Option<u64>,
        path: &str,
        out: &mut Vec<Violation>,
    ) {
        let Some(top) = self.u64_at(root_slot) else {
            self.push(
                out,
                ViolationKind::RbParent,
                root_slot,
                path,
                "rb_root is unreadable",
            );
            return;
        };
        if top == 0 {
            return;
        }
        struct Frame {
            node: u64,
            parent: u64,
            parent_red: bool,
            expanded: bool,
        }
        let mut stack = vec![Frame {
            node: top,
            parent: 0,
            parent_red: false,
            expanded: false,
        }];
        let mut seen: HashSet<u64> = HashSet::new();
        let mut last_key: Option<u64> = None;
        while let Some(f) = stack.pop() {
            if f.node == 0 {
                continue;
            }
            if f.expanded {
                if let Some(delta) = key_delta {
                    if let Some(key) = self.u64_at(f.node.wrapping_add(delta)) {
                        if let Some(prev) = last_key {
                            if key < prev {
                                self.push(
                                    out,
                                    ViolationKind::RbOrder,
                                    f.node,
                                    path,
                                    format!("in-order key {key} < predecessor {prev}"),
                                );
                            }
                        }
                        last_key = Some(key);
                    }
                }
                continue;
            }
            if !seen.insert(f.node) {
                self.push(
                    out,
                    ViolationKind::RbParent,
                    f.node,
                    path,
                    format!("cycle through rb node {:#x}", f.node),
                );
                continue;
            }
            if seen.len() > MAX_SCAN {
                self.push(
                    out,
                    ViolationKind::RbParent,
                    f.node,
                    path,
                    "traversal bound exceeded",
                );
                break;
            }
            let mut raw = [0u8; 24];
            if self.t.read(f.node, &mut raw).is_err() {
                self.push(
                    out,
                    ViolationKind::RbParent,
                    f.node,
                    path,
                    format!("unreadable rb node at {:#x}", f.node),
                );
                continue;
            }
            let pc = ktypes::read_uint(&raw[0..8], 8);
            let right = ktypes::read_uint(&raw[RB_RIGHT as usize..16], 8);
            let left = ktypes::read_uint(&raw[RB_LEFT as usize..24], 8);
            let stored_parent = pc & !3;
            if stored_parent != f.parent {
                self.push(
                    out,
                    ViolationKind::RbParent,
                    f.node,
                    path,
                    format!(
                        "stored parent {stored_parent:#x} disagrees with walk parent {:#x}",
                        f.parent
                    ),
                );
            }
            let red = pc & 1 == RB_RED;
            if red && f.parent_red {
                self.push(
                    out,
                    ViolationKind::RbRedRed,
                    f.node,
                    path,
                    format!("red node {:#x} has a red parent", f.node),
                );
            }
            stack.push(Frame {
                node: right,
                parent: f.node,
                parent_red: red,
                expanded: false,
            });
            stack.push(Frame {
                node: f.node,
                parent: f.parent,
                parent_red: f.parent_red,
                expanded: true,
            });
            stack.push(Frame {
                node: left,
                parent: f.node,
                parent_red: red,
                expanded: false,
            });
        }
    }

    /// Validate the maple tree rooted at the `maple_tree` struct at
    /// `tree`: enode tags, parent back-pointers, and pivot monotonicity
    /// within each node's `[min, max]` window.
    pub fn check_maple_tree(&self, tree: u64, path: &str, out: &mut Vec<Violation>) {
        let Some(ma_root_off) = self.lay.ma_root_off else {
            return;
        };
        let Some(root) = self.u64_at(tree + ma_root_off) else {
            self.push(
                out,
                ViolationKind::MapleEnode,
                tree,
                path,
                "maple_tree.ma_root is unreadable",
            );
            return;
        };
        if root == 0 || !xa_is_node(root) {
            return; // empty tree or single direct entry
        }
        let mut seen: HashSet<u64> = HashSet::new();
        // (enode, min, max, expected parent word masked check base: 0 = root)
        let mut stack: Vec<(u64, u64, u64, u64)> = vec![(root, 0, u64::MAX, 0)];
        while let Some((enode, min, max, parent_node)) = stack.pop() {
            let node = enode & !MAPLE_NODE_MASK;
            let ty = (enode >> 3) & 0x0f;
            if ty > MAPLE_TYPE_MAX {
                self.push(
                    out,
                    ViolationKind::MapleEnode,
                    node,
                    path,
                    format!("enode {enode:#x} carries invalid node type {ty}"),
                );
                continue;
            }
            if !seen.insert(node) {
                self.push(
                    out,
                    ViolationKind::MapleEnode,
                    node,
                    path,
                    format!("cycle through maple node {node:#x}"),
                );
                continue;
            }
            if seen.len() > MAX_SCAN {
                self.push(
                    out,
                    ViolationKind::MapleEnode,
                    node,
                    path,
                    "traversal bound exceeded",
                );
                break;
            }
            let mut raw = [0u8; 256];
            if self.t.read(node, &mut raw).is_err() {
                self.push(
                    out,
                    ViolationKind::MapleEnode,
                    node,
                    path,
                    format!("dangling enode: maple node {node:#x} is unreadable"),
                );
                continue;
            }
            let word = |i: u64| ktypes::read_uint(&raw[i as usize..i as usize + 8], 8);
            let parent = word(0);
            if parent_node == 0 {
                if parent & 1 != 1 || parent & !1 != tree {
                    self.push(
                        out,
                        ViolationKind::MapleEnode,
                        node,
                        path,
                        format!("root parent {parent:#x} does not mark the tree at {tree:#x}"),
                    );
                }
            } else if parent & !MAPLE_NODE_MASK != parent_node {
                self.push(
                    out,
                    ViolationKind::MapleEnode,
                    node,
                    path,
                    format!("parent {parent:#x} does not point back at {parent_node:#x}"),
                );
            }
            let leaf = ty < MAPLE_LEAF_LIMIT;
            let nslots = if ty == MAPLE_TYPE_MAX {
                MAPLE_ARANGE64_SLOTS
            } else {
                MAPLE_RANGE64_SLOTS
            };
            let pivot_off = 8u64;
            let slot_off = 8 + 8 * (nslots - 1);
            let mut lo = min;
            for i in 0..nslots {
                let slot = word(slot_off + 8 * i);
                let piv = if i + 1 < nslots {
                    word(pivot_off + 8 * i)
                } else {
                    max
                };
                if slot == 0 && piv == 0 && i > 0 {
                    break; // trailing empty slots
                }
                let hi = if piv == 0 && i > 0 { max } else { piv };
                if hi < lo {
                    self.push(
                        out,
                        ViolationKind::MaplePivot,
                        node + pivot_off + 8 * i,
                        path,
                        format!("pivot[{i}] = {hi:#x} not above predecessor (min {lo:#x})"),
                    );
                    break; // windows below are meaningless now
                }
                if hi > max {
                    self.push(
                        out,
                        ViolationKind::MaplePivot,
                        node + pivot_off + 8 * i,
                        path,
                        format!("pivot[{i}] = {hi:#x} exceeds parent bound {max:#x}"),
                    );
                    break;
                }
                if !leaf && slot != 0 {
                    if xa_is_node(slot) {
                        stack.push((slot, lo, hi, node));
                    } else {
                        self.push(
                            out,
                            ViolationKind::MapleEnode,
                            node + slot_off + 8 * i,
                            path,
                            format!("internal slot[{i}] = {slot:#x} is not a tagged enode"),
                        );
                    }
                }
                if piv == 0 && i > 0 {
                    break;
                }
                lo = hi.wrapping_add(1);
                if lo == 0 {
                    break;
                }
            }
        }
    }

    /// Validate the xarray at `xa` (address of a `struct xarray`).
    pub fn check_xarray(&self, xa: u64, path: &str, out: &mut Vec<Violation>) {
        let (Some(head_off), Some(shift_off), Some(slots_off)) = (
            self.lay.xa_head_off,
            self.lay.xa_shift_off,
            self.lay.xa_slots_off,
        ) else {
            return;
        };
        let Some(head) = self.u64_at(xa + head_off) else {
            self.push(
                out,
                ViolationKind::XarraySlot,
                xa,
                path,
                "xa_head is unreadable",
            );
            return;
        };
        if head == 0 {
            return;
        }
        if head & 3 == 2 && head <= 4096 {
            self.push(
                out,
                ViolationKind::XarraySlot,
                xa + head_off,
                path,
                format!("xa_head {head:#x} is node-tagged but implausible"),
            );
            return;
        }
        if !xa_is_node(head) {
            return; // single direct entry
        }
        let mut seen: HashSet<u64> = HashSet::new();
        let mut stack: Vec<(u64, u64)> = vec![(head & !3, 64)];
        while let Some((node, parent_shift)) = stack.pop() {
            if !seen.insert(node) {
                self.push(
                    out,
                    ViolationKind::XarraySlot,
                    node,
                    path,
                    format!("cycle through xa_node {node:#x}"),
                );
                continue;
            }
            if seen.len() > MAX_SCAN {
                self.push(
                    out,
                    ViolationKind::XarraySlot,
                    node,
                    path,
                    "traversal bound exceeded",
                );
                break;
            }
            let Ok(shift) = self.t.read_uint(node + shift_off, 1) else {
                self.push(
                    out,
                    ViolationKind::XarraySlot,
                    node,
                    path,
                    format!("unreadable xa_node at {node:#x}"),
                );
                continue;
            };
            if shift >= parent_shift {
                self.push(
                    out,
                    ViolationKind::XarraySlot,
                    node + shift_off,
                    path,
                    format!(
                        "xa_node shift {shift} does not decrease below parent ({parent_shift})"
                    ),
                );
                continue;
            }
            let mut raw = [0u8; 512];
            if self.t.read(node + slots_off, &mut raw).is_err() {
                self.push(
                    out,
                    ViolationKind::XarraySlot,
                    node + slots_off,
                    path,
                    format!("unreadable slots of xa_node {node:#x}"),
                );
                continue;
            }
            for slot in 0..64u64 {
                let entry = ktypes::read_uint(&raw[slot as usize * 8..slot as usize * 8 + 8], 8);
                if entry == 0 {
                    continue;
                }
                if entry & 3 == 2 && entry <= 4096 {
                    self.push(
                        out,
                        ViolationKind::XarraySlot,
                        node + slots_off + 8 * slot,
                        path,
                        format!("slot[{slot}] = {entry:#x} is node-tagged but implausible"),
                    );
                    continue;
                }
                if xa_is_node(entry) {
                    if shift == 0 {
                        self.push(
                            out,
                            ViolationKind::XarraySlot,
                            node + slots_off + 8 * slot,
                            path,
                            format!("leaf-level slot[{slot}] holds internal node {entry:#x}"),
                        );
                    } else {
                        stack.push((entry & !3, shift));
                    }
                }
            }
        }
    }

    /// Validate a `files_struct` at `files`: readable fd table, sane
    /// `max_fds`, `open_fds` bitmap agreeing with the `fd` array, and a
    /// plausible use count. Returns the open `struct file` addresses.
    pub fn check_fdtable(&self, files: u64, path: &str, out: &mut Vec<Violation>) -> Vec<u64> {
        let mut open = Vec::new();
        let (Some(count_off), Some(fdt_off), Some(max_fds_off), Some(fd_off), Some(open_fds_off)) = (
            self.lay.files_count_off,
            self.lay.fdt_off,
            self.lay.max_fds_off,
            self.lay.fd_off,
            self.lay.open_fds_off,
        ) else {
            return open;
        };
        if let Ok(count) = self.t.read_int(files + count_off, 4) {
            if !(1..=65536).contains(&count) {
                self.push(
                    out,
                    ViolationKind::FdTable,
                    files + count_off,
                    path,
                    format!("files_struct.count = {count} is implausible"),
                );
            }
        }
        let Some(fdt) = self.u64_at(files + fdt_off) else {
            self.push(
                out,
                ViolationKind::FdTable,
                files + fdt_off,
                path,
                "files_struct.fdt is unreadable",
            );
            return open;
        };
        if fdt == 0 {
            self.push(
                out,
                ViolationKind::FdTable,
                files + fdt_off,
                path,
                "files_struct.fdt is NULL",
            );
            return open;
        }
        let max_fds = match self.t.read_uint(fdt + max_fds_off, 4) {
            Ok(m) => m,
            Err(_) => {
                self.push(
                    out,
                    ViolationKind::FdTable,
                    fdt,
                    path,
                    format!("fdtable at {fdt:#x} is unreadable"),
                );
                return open;
            }
        };
        if max_fds == 0 || max_fds > 65536 {
            self.push(
                out,
                ViolationKind::FdTable,
                fdt + max_fds_off,
                path,
                format!("max_fds = {max_fds} is implausible"),
            );
            return open;
        }
        let (Some(fd_array), Some(bitmap_ptr)) =
            (self.u64_at(fdt + fd_off), self.u64_at(fdt + open_fds_off))
        else {
            self.push(
                out,
                ViolationKind::FdTable,
                fdt,
                path,
                "fd array / open_fds pointers unreadable",
            );
            return open;
        };
        // Compare the first bitmap word against the first 64 fd slots —
        // the whole table in this simulator (NR_OPEN_DEFAULT = 64).
        let n = max_fds.min(64);
        let Some(bitmap) = self.u64_at(bitmap_ptr) else {
            self.push(
                out,
                ViolationKind::FdTable,
                bitmap_ptr,
                path,
                "open_fds bitmap is unreadable",
            );
            return open;
        };
        for i in 0..n {
            let Some(f) = self.u64_at(fd_array + 8 * i) else {
                self.push(
                    out,
                    ViolationKind::FdTable,
                    fd_array + 8 * i,
                    path,
                    format!("fd[{i}] slot is unreadable"),
                );
                break;
            };
            let bit = bitmap >> i & 1 == 1;
            if bit != (f != 0) {
                self.push(
                    out,
                    ViolationKind::FdTable,
                    fd_array + 8 * i,
                    path,
                    format!(
                        "open_fds bit {i} is {} but fd[{i}] is {}",
                        if bit { "set" } else { "clear" },
                        if f != 0 { "non-NULL" } else { "NULL" }
                    ),
                );
            }
            if f != 0 {
                open.push(f);
            }
        }
        open
    }

    /// Validate a refcount-style counter of `size` bytes at `addr`.
    pub fn check_refcount(&self, addr: u64, size: usize, path: &str, out: &mut Vec<Violation>) {
        let Ok(v) = self.t.read_int(addr, size) else {
            self.push(
                out,
                ViolationKind::Refcount,
                addr,
                path,
                "refcount is unreadable",
            );
            return;
        };
        // A live object's count sits well below 2^32; zero or negative
        // means a use-after-free candidate, huge means a stray write.
        if !(1..=u32::MAX as i64).contains(&v) {
            self.push(
                out,
                ViolationKind::Refcount,
                addr,
                path,
                format!("refcount {v:#x} outside the plausible window"),
            );
        }
    }

    /// Per-task checks: the fd table (and every open file's refcount and
    /// page-cache xarray) plus the address space (maple tree, refcounts).
    /// Deduplication sets keep shared mm/files from being checked twice.
    #[allow(clippy::too_many_arguments)]
    fn check_task(
        &self,
        task: u64,
        path: &str,
        seen_files: &mut HashSet<u64>,
        seen_mm: &mut HashSet<u64>,
        seen_file_objs: &mut HashSet<u64>,
        report: &mut Report,
    ) {
        let out = &mut report.violations;
        if let (Some(files_off), Some(_)) = (self.lay.files_off, self.lay.fdt_off) {
            if let Some(files) = self.u64_at(task + files_off) {
                if files != 0 && seen_files.insert(files) {
                    report.checkers_run += 1;
                    let fpath = format!("{path}.files");
                    let open = self.check_fdtable(files, &fpath, out);
                    for (i, f) in open.into_iter().enumerate() {
                        if !seen_file_objs.insert(f) {
                            continue;
                        }
                        if let Some(fc) = self.lay.f_count_off {
                            report.checkers_run += 1;
                            self.check_refcount(
                                f + fc,
                                8,
                                &format!("{fpath}.fd[{i}].f_count"),
                                out,
                            );
                        }
                        if let (Some(map_off), Some(ip_off)) =
                            (self.lay.f_mapping_off, self.lay.i_pages_off)
                        {
                            if let Some(mapping) = self.u64_at(f + map_off) {
                                if mapping != 0 {
                                    report.checkers_run += 1;
                                    self.check_xarray(
                                        mapping + ip_off,
                                        &format!("{fpath}.fd[{i}].f_mapping.i_pages"),
                                        out,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        if let (Some(mm_off), Some(mm_mt_off)) = (self.lay.mm_off, self.lay.mm_mt_off) {
            if let Some(mm) = self.u64_at(task + mm_off) {
                if mm != 0 && seen_mm.insert(mm) {
                    report.checkers_run += 1;
                    self.check_maple_tree(mm + mm_mt_off, &format!("{path}.mm.mm_mt"), out);
                    if let Some(users) = self.lay.mm_users_off {
                        report.checkers_run += 1;
                        self.check_refcount(mm + users, 4, &format!("{path}.mm.mm_users"), out);
                    }
                    if let Some(count) = self.lay.mm_count_off {
                        report.checkers_run += 1;
                        self.check_refcount(mm + count, 4, &format!("{path}.mm.mm_count"), out);
                    }
                }
            }
        }
    }

    /// Run the checkers that apply to one object of C type `ctype` at
    /// `addr` — the scoped `vcheck` entry point, where the caller
    /// (typically a ViewQL `SELECT` over a plotted graph) decides which
    /// objects to check. Types without a registered checker run nothing.
    pub fn check_object(&self, addr: u64, ctype: &str, path: &str, report: &mut Report) {
        match ctype {
            "task_struct" => {
                let mut seen_files = HashSet::new();
                let mut seen_mm = HashSet::new();
                let mut seen_file_objs = HashSet::new();
                self.check_task(
                    addr,
                    path,
                    &mut seen_files,
                    &mut seen_mm,
                    &mut seen_file_objs,
                    report,
                );
            }
            "mm_struct" => {
                if let Some(mt) = self.lay.mm_mt_off {
                    report.checkers_run += 1;
                    self.check_maple_tree(
                        addr + mt,
                        &format!("{path}.mm_mt"),
                        &mut report.violations,
                    );
                }
                if let Some(users) = self.lay.mm_users_off {
                    report.checkers_run += 1;
                    self.check_refcount(
                        addr + users,
                        4,
                        &format!("{path}.mm_users"),
                        &mut report.violations,
                    );
                }
                if let Some(count) = self.lay.mm_count_off {
                    report.checkers_run += 1;
                    self.check_refcount(
                        addr + count,
                        4,
                        &format!("{path}.mm_count"),
                        &mut report.violations,
                    );
                }
            }
            "files_struct" => {
                report.checkers_run += 1;
                self.check_fdtable(addr, path, &mut report.violations);
            }
            "file" => {
                if let Some(fc) = self.lay.f_count_off {
                    report.checkers_run += 1;
                    self.check_refcount(
                        addr + fc,
                        8,
                        &format!("{path}.f_count"),
                        &mut report.violations,
                    );
                }
                if let (Some(map_off), Some(ip_off)) =
                    (self.lay.f_mapping_off, self.lay.i_pages_off)
                {
                    if let Some(mapping) = self.u64_at(addr + map_off) {
                        if mapping != 0 {
                            report.checkers_run += 1;
                            self.check_xarray(
                                mapping + ip_off,
                                &format!("{path}.f_mapping.i_pages"),
                                &mut report.violations,
                            );
                        }
                    }
                }
            }
            "maple_tree" => {
                report.checkers_run += 1;
                self.check_maple_tree(addr, path, &mut report.violations);
            }
            "xarray" => {
                report.checkers_run += 1;
                self.check_xarray(addr, path, &mut report.violations);
            }
            _ => {}
        }
    }

    /// Validate the PID hash table rooted at the `pid_hash` symbol: every
    /// bucket's hlist chain must be readable with consistent `pprev`
    /// back-pointers, every chained `struct pid` must carry a plausible
    /// number and live refcount, and every task on a pid's task hlist
    /// must point back at that pid through `thread_pid` (the link
    /// `detach_pid` breaks first when a pid goes stale).
    pub fn check_pid_hash(&self, report: &mut Report) {
        let Some(sym) = self.t.symbols.lookup("pid_hash") else {
            return;
        };
        let (Some(chain_off), Some(nr_off)) = (self.lay.pid_chain_off, self.lay.pid_nr_off) else {
            return;
        };
        let buckets = sym
            .ty
            .and_then(|t| match self.t.types.get(t).kind {
                TypeKind::Array { len, .. } => Some(len),
                _ => None,
            })
            .unwrap_or(0);
        let out = &mut report.violations;
        for bucket in 0..buckets {
            report.checkers_run += 1;
            let head = sym.addr + bucket * 8;
            let path = format!("pid_hash[{bucket}]");
            let Some(first) = self.u64_at(head) else {
                self.push(
                    out,
                    ViolationKind::PidLink,
                    head,
                    &path,
                    "bucket unreadable",
                );
                continue;
            };
            let mut node = first;
            let mut prev_slot = head; // where `node` was linked from
            let mut steps = 0;
            while node != 0 && steps < MAX_SCAN {
                steps += 1;
                let Some(next) = self.u64_at(node) else {
                    self.push(
                        out,
                        ViolationKind::PidLink,
                        node,
                        &path,
                        format!("unreadable pid chain node {node:#x} (dangling link)"),
                    );
                    break;
                };
                // hlist invariant: node->pprev points at the slot that
                // points at the node.
                match self.u64_at(node + 8) {
                    Some(pprev) if pprev == prev_slot => {}
                    Some(pprev) => self.push(
                        out,
                        ViolationKind::PidLink,
                        node + 8,
                        &path,
                        format!(
                            "pprev {pprev:#x} does not point at the linking slot {prev_slot:#x}"
                        ),
                    ),
                    None => self.push(
                        out,
                        ViolationKind::PidLink,
                        node + 8,
                        &path,
                        "pprev is unreadable",
                    ),
                }
                let pid = node.wrapping_sub(chain_off);
                match self.t.read_int(pid + nr_off, 4) {
                    Ok(nr) if (0..=4_194_304).contains(&nr) => {}
                    Ok(nr) => self.push(
                        out,
                        ViolationKind::PidLink,
                        pid + nr_off,
                        &path,
                        format!("pid number {nr} outside the plausible window"),
                    ),
                    Err(_) => self.push(
                        out,
                        ViolationKind::PidLink,
                        pid + nr_off,
                        &path,
                        "pid number is unreadable",
                    ),
                }
                if let Some(count_off) = self.lay.pid_count_off {
                    report.checkers_run += 1;
                    self.check_refcount(pid + count_off, 4, &format!("{path}.count"), out);
                }
                self.check_pid_task_links(pid, &path, out);
                prev_slot = node;
                node = next;
            }
        }
    }

    /// The task back-links of one `struct pid`: every task on
    /// `pid.tasks[PIDTYPE_PID]` must name this pid as its `thread_pid`.
    fn check_pid_task_links(&self, pid: u64, path: &str, out: &mut Vec<Violation>) {
        let (Some(tasks0_off), Some(links_off), Some(tp_off)) = (
            self.lay.pid_tasks0_off,
            self.lay.pid_links_off,
            self.lay.thread_pid_off,
        ) else {
            return;
        };
        let Some(mut link) = self.u64_at(pid + tasks0_off) else {
            self.push(
                out,
                ViolationKind::PidLink,
                pid + tasks0_off,
                path,
                "pid task hlist head unreadable",
            );
            return;
        };
        let mut steps = 0;
        while link != 0 && steps < MAX_SCAN {
            steps += 1;
            let task = link.wrapping_sub(links_off);
            match self.u64_at(task + tp_off) {
                Some(tp) if tp == pid => {}
                Some(tp) => self.push(
                    out,
                    ViolationKind::PidLink,
                    task + tp_off,
                    path,
                    format!(
                        "stale pid link: task {task:#x} thread_pid is {tp:#x}, \
                         but pid {pid:#x} still lists the task"
                    ),
                ),
                None => self.push(
                    out,
                    ViolationKind::PidLink,
                    task + tp_off,
                    path,
                    "task thread_pid is unreadable",
                ),
            }
            let Some(next) = self.u64_at(link) else {
                self.push(
                    out,
                    ViolationKind::PidLink,
                    link,
                    path,
                    format!("unreadable task link node {link:#x} (dangling link)"),
                );
                break;
            };
            link = next;
        }
    }

    /// Run every checker from the well-known root symbols.
    pub fn sweep(&self) -> Report {
        let mut report = Report::default();
        let mut seen_files = HashSet::new();
        let mut seen_mm = HashSet::new();
        let mut seen_file_objs = HashSet::new();

        // The global task list, plus per-task fd tables and address
        // spaces. A snipped forward chain is repaired by walking the
        // (usually intact) prev links and taking the union, so one list
        // fault cannot hide every per-task checker downstream.
        if let (Ok(init_task), Some(tasks_off)) = (
            self.t.symbol_value("init_task").and_then(|v| {
                v.address()
                    .ok_or_else(|| vbridge::BridgeError::Eval("init_task has no address".into()))
            }),
            self.lay.tasks_off,
        ) {
            let head = init_task + tasks_off;
            report.checkers_run += 1;
            let forward = self.check_list(head, "init_task.tasks", &mut report.violations);
            let mut nodes = forward;
            for n in self.list_nodes_backward(head) {
                if !nodes.contains(&n) {
                    nodes.push(n);
                }
            }
            self.check_task(
                init_task,
                "init_task",
                &mut seen_files,
                &mut seen_mm,
                &mut seen_file_objs,
                &mut report,
            );
            for (i, node) in nodes.iter().enumerate() {
                let task = node.wrapping_sub(tasks_off);
                self.check_task(
                    task,
                    &format!("init_task.tasks[{i}]"),
                    &mut seen_files,
                    &mut seen_mm,
                    &mut seen_file_objs,
                    &mut report,
                );
            }
        }

        // Per-CPU CFS timelines, ordered by vruntime.
        if let (Some(sym), Some(timeline_off)) =
            (self.t.symbols.lookup("runqueues"), self.lay.timeline_off)
        {
            let key_delta = match (self.lay.vruntime_off, self.lay.run_node_off) {
                (Some(v), Some(r)) => Some(v.wrapping_sub(r)),
                _ => None,
            };
            if let Some(arr_ty) = sym.ty {
                if let TypeKind::Array { elem, len } = self.t.types.get(arr_ty).kind {
                    let rq_size = self.t.types.size_of(elem);
                    for cpu in 0..len {
                        report.checkers_run += 1;
                        self.check_rbtree(
                            sym.addr + cpu * rq_size + timeline_off,
                            key_delta,
                            &format!("runqueues[{cpu}].cfs.tasks_timeline"),
                            &mut report.violations,
                        );
                    }
                }
            }
        }

        // Other global lists.
        for name in ["super_blocks", "slab_caches"] {
            if let Some(sym) = self.t.symbols.lookup(name) {
                report.checkers_run += 1;
                self.check_list(sym.addr, name, &mut report.violations);
            }
        }

        // The PID hash table (ULK Fig 3-6).
        self.check_pid_hash(&mut report);

        report
    }
}

/// Convenience entry point: build a [`Checker`] and run the full sweep.
pub fn sweep(target: &Target<'_>) -> Report {
    Checker::new(target).sweep()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::workload::{self, WorkloadConfig};
    use vbridge::LatencyProfile;

    fn sweep_workload(w: ksim::workload::Workload) -> Report {
        let (img, _t, _roots) = w.finish();
        let target = Target::new(&img.mem, &img.types, &img.symbols, LatencyProfile::free());
        sweep(&target)
    }

    #[test]
    fn clean_workload_has_zero_violations() {
        let w = workload::build(&WorkloadConfig::default());
        let report = sweep_workload(w);
        assert!(
            report.is_clean(),
            "clean image must report no violations, got: {:#?}",
            report.violations
        );
        assert!(report.checkers_run > 10, "sweep must actually run checkers");
    }

    #[test]
    fn clean_workload_is_seed_independent() {
        for seed in [1u64, 2, 3, 4] {
            let w = workload::build(&WorkloadConfig {
                seed,
                ..Default::default()
            });
            let report = sweep_workload(w);
            assert!(report.is_clean(), "seed {seed}: {:#?}", report.violations);
        }
    }

    #[test]
    fn snipped_task_list_is_flagged_with_symbol_rooted_path() {
        let mut w = workload::build(&WorkloadConfig::default());
        let t = w.types;
        let (tasks_off, _) = w.kb.types.field_path(t.task.task_struct, "tasks").unwrap();
        let victim = w.roots.all_tasks[3] + tasks_off;
        let prev = w.kb.mem.read_uint(victim + 8, 8).unwrap();
        let next = w.kb.mem.read_uint(victim, 8).unwrap();
        // Broken deletion: prev skips the victim, victim->next->prev does not.
        w.kb.mem.write_uint(prev, 8, next);
        let report = sweep_workload(w);
        assert!(report.count_of("list") >= 1, "{:#?}", report.violations);
        let v = report
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::ListBroken)
            .unwrap();
        assert!(v.path.starts_with("init_task.tasks"), "path: {}", v.path);
    }

    #[test]
    fn poisoned_maple_node_is_flagged() {
        use ksim::scenarios;
        let mut w = workload::build(&WorkloadConfig::default());
        let sr = scenarios::inject_stackrot(&mut w);
        scenarios::expire_rcu_grace_period(&mut w, &sr);
        let report = sweep_workload(w);
        assert!(
            report.count_of("maple") >= 1,
            "poisoned node must trip the maple checker: {:#?}",
            report.violations
        );
        assert!(report
            .violations
            .iter()
            .all(|v| !v.path.is_empty() && v.path.starts_with("init_task")));
    }

    #[test]
    fn every_corpus_fault_is_flagged_with_matching_class() {
        use ksim::faults::{self, ALL_FAULTS};
        for (i, kind) in ALL_FAULTS.iter().enumerate() {
            let mut w = workload::build(&WorkloadConfig::default());
            let f = faults::inject(&mut w, *kind, 40 + i as u64);
            let class = f.class();
            let report = sweep_workload(w);
            assert!(
                report.count_of(class) >= 1,
                "{kind:?} ({}) must trip the {class} checker, got: {}",
                f.note,
                report.summary()
            );
            assert!(
                report
                    .violations
                    .iter()
                    .all(|v| v.path.starts_with("init_task")
                        || v.path.starts_with("runqueues")
                        || v.path.starts_with("super_blocks")
                        || v.path.starts_with("slab_caches")
                        || v.path.starts_with("pid_hash")),
                "every violation path must be symbol-rooted: {:#?}",
                report.violations
            );
        }
    }

    #[test]
    fn report_summary_names_classes() {
        let mut r = Report {
            checkers_run: 5,
            ..Default::default()
        };
        assert_eq!(r.summary(), "0 violations (5 checkers)");
        r.violations.push(Violation {
            kind: ViolationKind::MaplePivot,
            addr: 0x100,
            path: "x".into(),
            severity: Severity::Error,
            detail: "d".into(),
        });
        assert!(r.summary().contains("maple"));
        assert_eq!(r.count_of("maple"), 1);
        assert_eq!(r.count_of("list"), 0);
    }
}
