//! Incremental pane re-extraction between stops.
//!
//! When the kernel runs briefly and stops again, most retained panes are
//! still correct: a scheduler tick touches a handful of `task_struct`
//! fields, not the VFS mount tree. `vincr` turns that observation into a
//! cost model:
//!
//! * the backend reports which byte ranges changed across the resume
//!   ([`vbridge::DirtyInfo`] — `ksim` knows exactly, a record wire tapes
//!   it, a replay wire reproduces it, anything else says `Unknown`);
//! * a [`TouchedIndex`] remembers which address spans each retained pane
//!   read during its last extraction (collected by
//!   `Target::set_touched_tracking`);
//! * [`decide`] intersects the two: a pane whose touched spans miss the
//!   dirty set keeps its retained graph verbatim (a *hit*), anything
//!   else re-walks — including everything, when dirty info is unknown
//!   (the degradation ladder's bottom rung is exactly the old
//!   whole-epoch behaviour);
//! * [`splice`] folds a re-walked pane back into its retained graph via
//!   [`vgraph::diff`]/[`vgraph::apply`], yielding the same
//!   [`vgraph::GraphDelta`] vserve ships to clients — so the wire cost
//!   of a refresh is proportional to what actually changed.
//!
//! The subsystem never *improves* fidelity claims by guessing: every
//! shortcut is justified by an exact dirty set, and the equivalence
//! suite checks the incremental result byte-identical to a fresh
//! extraction.

use std::collections::BTreeMap;

use vbridge::{DirtyInfo, DirtySet};
use vgraph::{diff, Graph, GraphDelta};

/// Why a pane could not be served from its retained graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewalkReason {
    /// The dirty set intersects a span the pane read last time.
    DirtyOverlap,
    /// The backend could not say what changed; correctness demands a
    /// full re-walk (the degradation ladder's bottom rung).
    UnknownDirty,
    /// No touched spans are on file for this pane (first extraction, or
    /// tracking was off) — nothing to prove a keep with.
    Untracked,
}

/// The per-pane refresh decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The retained graph is provably current: serve it as-is.
    Keep,
    /// Re-extract the pane, then [`splice`] it into the retained graph.
    Rewalk(RewalkReason),
}

impl Decision {
    /// Whether the retained graph survives.
    pub fn is_keep(&self) -> bool {
        matches!(self, Decision::Keep)
    }
}

/// Decide whether a retained pane survives the mutation described by
/// `dirty`. `touched` is the span set the pane read during its last
/// extraction, or `None` when no index entry exists.
pub fn decide(touched: Option<&DirtySet>, dirty: &DirtyInfo) -> Decision {
    let Some(touched) = touched else {
        return Decision::Rewalk(RewalkReason::Untracked);
    };
    match dirty {
        DirtyInfo::Unknown => Decision::Rewalk(RewalkReason::UnknownDirty),
        DirtyInfo::Known(set) => {
            if set.intersects(touched.ranges()) {
                Decision::Rewalk(RewalkReason::DirtyOverlap)
            } else {
                Decision::Keep
            }
        }
    }
}

/// Which address spans each retained pane read during its last
/// extraction, keyed by pane label. Spans are normalized ([`DirtySet`])
/// so the per-resume intersection is a cheap sorted-range walk.
#[derive(Debug, Default, Clone)]
pub struct TouchedIndex {
    panes: BTreeMap<String, DirtySet>,
}

impl TouchedIndex {
    /// An empty index.
    pub fn new() -> Self {
        TouchedIndex::default()
    }

    /// Replace `pane`'s span set with the freshly recorded accesses.
    pub fn record(&mut self, pane: &str, spans: impl IntoIterator<Item = (u64, u64)>) {
        self.panes
            .insert(pane.to_string(), DirtySet::from_ranges(spans));
    }

    /// The spans on file for `pane`, if any.
    pub fn get(&self, pane: &str) -> Option<&DirtySet> {
        self.panes.get(pane)
    }

    /// Drop `pane`'s entry (its retained graph was discarded).
    pub fn forget(&mut self, pane: &str) {
        self.panes.remove(pane);
    }

    /// Number of panes on file.
    pub fn len(&self) -> usize {
        self.panes.len()
    }

    /// Whether no panes are on file.
    pub fn is_empty(&self) -> bool {
        self.panes.is_empty()
    }

    /// Every `(pane, spans)` entry, in pane order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &DirtySet)> {
        self.panes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Union of every pane's spans — the addresses whose blocks must be
    /// invalidated before any pane re-walks (everything else in the
    /// snapshot cache is provably still byte-fresh only if clean, so
    /// callers intersect this with the dirty set instead).
    pub fn union(&self) -> DirtySet {
        DirtySet::from_ranges(self.panes.values().flat_map(|s| s.ranges().iter().copied()))
    }
}

/// A re-walked pane folded back into its retained graph.
#[derive(Debug, Clone)]
pub struct Spliced {
    /// The post-splice graph. Byte-identical (in wire form) to the
    /// fresh extraction — `apply(retained, diff(retained, fresh))`
    /// reconstructs `fresh` exactly; that invariant is what lets the
    /// incremental path claim fidelity.
    pub graph: Graph,
    /// The delta that carried the change — the same wire object vserve
    /// ships to clients, so refresh cost is proportional to mutation.
    pub delta: GraphDelta,
    /// Boxes carried over unchanged from the retained graph.
    pub carried: usize,
}

/// Splice a freshly re-walked pane into its retained predecessor.
///
/// Returns the delta alongside the reconstructed graph; an unchanged
/// pane yields an empty delta (`delta.summary.is_empty()`).
pub fn splice(retained: &Graph, fresh: &Graph) -> Spliced {
    let delta = diff::diff(retained, fresh);
    let graph = diff::apply(retained, &delta)
        .expect("splice: delta computed from these very graphs must apply");
    // Identity-persistent boxes minus the changed ones rode along.
    let carried = delta
        .remap
        .len()
        .saturating_sub(delta.summary.boxes_changed as usize);
    Spliced {
        graph,
        delta,
        carried,
    }
}

/// Outcome counters for one whole refresh (all panes of one stop).
/// Feed these to `Target::note_incr` so live runs and replays report
/// byte-identical `vincr_*` stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Panes served from their retained graph.
    pub hits: u64,
    /// Panes re-walked.
    pub rewalks: u64,
    /// Mutated bytes the backend reported (0 when unknown).
    pub dirty_bytes: u64,
}

impl RefreshStats {
    /// Record one pane's decision.
    pub fn note(&mut self, d: Decision) {
        match d {
            Decision::Keep => self.hits += 1,
            Decision::Rewalk(_) => self.rewalks += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ranges: &[(u64, u64)]) -> DirtySet {
        DirtySet::from_ranges(ranges.iter().copied())
    }

    #[test]
    fn decide_walks_the_degradation_ladder() {
        let touched = set(&[(0x1000, 64), (0x3000, 8)]);
        // Exact dirty info, no overlap: keep.
        let clean = DirtyInfo::Known(set(&[(0x2000, 8)]));
        assert_eq!(decide(Some(&touched), &clean), Decision::Keep);
        // Exact dirty info, overlap: rewalk.
        let hit = DirtyInfo::Known(set(&[(0x1038, 16)]));
        assert_eq!(
            decide(Some(&touched), &hit),
            Decision::Rewalk(RewalkReason::DirtyOverlap)
        );
        // Unknown dirty info: rewalk, always.
        assert_eq!(
            decide(Some(&touched), &DirtyInfo::Unknown),
            Decision::Rewalk(RewalkReason::UnknownDirty)
        );
        // No index entry: rewalk even when provably clean.
        assert_eq!(
            decide(None, &clean),
            Decision::Rewalk(RewalkReason::Untracked)
        );
    }

    #[test]
    fn touched_index_normalizes_and_unions() {
        let mut idx = TouchedIndex::new();
        idx.record("a", [(0x100, 8), (0x108, 8), (0x300, 4)]);
        idx.record("b", [(0x200, 16)]);
        assert_eq!(idx.get("a").unwrap().ranges(), &[(0x100, 16), (0x300, 4)]);
        assert_eq!(
            idx.union().ranges(),
            &[(0x100, 16), (0x200, 16), (0x300, 4)]
        );
        assert_eq!(idx.len(), 2);
        idx.forget("a");
        assert!(idx.get("a").is_none());
        // Re-recording replaces rather than accumulates.
        idx.record("b", [(0x500, 4)]);
        assert_eq!(idx.get("b").unwrap().ranges(), &[(0x500, 4)]);
    }

    #[test]
    fn splice_reconstructs_fresh_exactly() {
        let mut retained = Graph::new();
        let (a, _) = retained.intern(0x1000, "task", "task_struct", 64);
        let (b, _) = retained.intern(0x2000, "mm", "mm_struct", 32);
        retained.roots.push(a);
        retained.roots.push(b);

        let mut fresh = Graph::new();
        let (a2, _) = fresh.intern(0x1000, "task", "task_struct", 64);
        fresh.get_mut(a2).attrs.set("pid", serde_json::json!(42));
        let (b2, _) = fresh.intern(0x2000, "mm", "mm_struct", 32);
        fresh.roots.push(a2);
        fresh.roots.push(b2);

        let s = splice(&retained, &fresh);
        assert_eq!(s.graph.to_json(), fresh.to_json(), "byte-identical splice");
        assert!(!s.delta.summary.is_empty());
        assert_eq!(s.carried, 1, "the mm box rode along unchanged");

        // Unchanged pane: empty delta, everything carried.
        let s2 = splice(&fresh, &fresh);
        assert!(s2.delta.summary.is_empty());
        assert_eq!(s2.carried, 2);
    }

    #[test]
    fn refresh_stats_tally_decisions() {
        let mut st = RefreshStats::default();
        st.note(Decision::Keep);
        st.note(Decision::Rewalk(RewalkReason::DirtyOverlap));
        st.note(Decision::Keep);
        st.dirty_bytes = 20;
        assert_eq!(
            st,
            RefreshStats {
                hits: 2,
                rewalks: 1,
                dirty_bytes: 20
            }
        );
    }
}
