//! ViewCL recursive-descent parser.

use crate::ast::*;
use crate::lexer::{lex, SpannedTok, Tok};
use crate::{Result, VclError};

struct P {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl P {
    fn err(&self, msg: impl Into<String>) -> VclError {
        VclError::Parse {
            line: self.toks[self.pos].line,
            pos: self.toks[self.pos].pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(i) if i == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Ident(i) => Ok(i),
            t => Err(self.err(format!("expected identifier, found {t:?}"))),
        }
    }

    fn expect_spec(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Spec(s) => Ok(s),
            t => Err(self.err(format!("expected `<…>`, found {t:?}"))),
        }
    }

    // ---------------------------------------------------------- program --

    fn program(&mut self) -> Result<Program> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Ident(i) if i == "define" => {
                    self.pos += 1;
                    prog.defines.push(self.box_def()?);
                }
                Tok::Ident(i) if i == "plot" => {
                    self.pos += 1;
                    match self.bump() {
                        Tok::AtRef(name) => prog.stmts.push(Stmt::Plot(name)),
                        t => return Err(self.err(format!("plot expects `@name`, got {t:?}"))),
                    }
                }
                Tok::Ident(_) => {
                    let name = self.expect_ident()?;
                    self.expect_punct("=")?;
                    let rv = self.rvalue()?;
                    prog.stmts.push(Stmt::Assign(name, rv));
                }
                t => return Err(self.err(format!("unexpected {t:?} at top level"))),
            }
        }
        Ok(prog)
    }

    // ------------------------------------------------------------ boxes --

    fn box_def(&mut self) -> Result<BoxDef> {
        let name = self.expect_ident()?;
        self.expect_kw("as")?;
        self.expect_kw("Box")?;
        let ctype = self.expect_spec()?;
        let mut views = Vec::new();
        if self.eat_punct("[") {
            // Single default view.
            let items = self.items_until("]")?;
            self.expect_punct("]")?;
            let wheres = self.opt_where()?;
            views.push(ViewDef {
                name: "default".into(),
                parent: None,
                items,
                wheres,
            });
        } else if self.eat_punct("{") {
            while !self.eat_punct("}") {
                views.push(self.named_view()?);
            }
        } else {
            return Err(self.err("expected `[` or `{` after Box<...>"));
        }
        Ok(BoxDef { name, ctype, views })
    }

    fn named_view(&mut self) -> Result<ViewDef> {
        self.expect_punct(":")?;
        let first = self.expect_ident()?;
        let (parent, name) = if self.eat_punct("=>") {
            self.expect_punct(":")?;
            let child = self.expect_ident()?;
            (Some(first), child)
        } else {
            (None, first)
        };
        self.expect_punct("[")?;
        let items = self.items_until("]")?;
        self.expect_punct("]")?;
        let wheres = self.opt_where()?;
        Ok(ViewDef {
            name,
            parent,
            items,
            wheres,
        })
    }

    fn opt_where(&mut self) -> Result<Vec<(String, RValue)>> {
        if !self.eat_kw("where") {
            return Ok(Vec::new());
        }
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            out.push((name, self.rvalue()?));
        }
        Ok(out)
    }

    fn items_until(&mut self, close: &str) -> Result<Vec<ItemDef>> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Tok::Punct(p) if *p == close => break,
                Tok::Ident(i) if i == "Text" => {
                    self.pos += 1;
                    let decor = match self.peek() {
                        Tok::Spec(_) => Some(self.expect_spec()?),
                        _ => None,
                    };
                    let mut specs = vec![self.text_spec()?];
                    while self.eat_punct(",") {
                        specs.push(self.text_spec()?);
                    }
                    out.push(ItemDef::Text { decor, specs });
                }
                Tok::Ident(i) if i == "Link" => {
                    self.pos += 1;
                    let name = self.expect_ident()?;
                    self.expect_punct("->")?;
                    let target = self.rvalue()?;
                    out.push(ItemDef::Link { name, target });
                }
                Tok::Ident(i) if i == "Container" => {
                    self.pos += 1;
                    let name = self.expect_ident()?;
                    self.expect_punct(":")?;
                    let value = self.rvalue()?;
                    out.push(ItemDef::Container { name, value });
                }
                t => return Err(self.err(format!("unexpected {t:?} in item list"))),
            }
        }
        Ok(out)
    }

    /// Continue a dotted field path, consuming `.seg` and `[n]` parts.
    fn path_tail(&mut self, path: &mut String) -> Result<()> {
        loop {
            if self.eat_punct(".") {
                path.push('.');
                path.push_str(&self.expect_ident()?);
            } else if self.eat_punct("[") {
                let idx = match self.bump() {
                    Tok::Num(n) => n,
                    t => return Err(self.err(format!("expected index, got {t:?}"))),
                };
                self.expect_punct("]")?;
                path.push('[');
                path.push_str(&idx.to_string());
                path.push(']');
            } else {
                return Ok(());
            }
        }
    }

    /// `pid` | `se.vruntime` | `name: rvalue` | `name: field.path[0]`.
    fn text_spec(&mut self) -> Result<TextSpec> {
        let mut name = self.expect_ident()?;
        // Bare dotted/indexed path (no colon follows the first ident).
        if matches!(self.peek(), Tok::Punct(".") | Tok::Punct("[")) {
            self.path_tail(&mut name)?;
            return Ok(TextSpec {
                name: name.clone(),
                expr: None,
            });
        }
        if self.eat_punct(":") {
            // Either an rvalue or a bare field path.
            match self.peek() {
                Tok::Ident(_) => {
                    let mut path = self.expect_ident()?;
                    self.path_tail(&mut path)?;
                    return Ok(TextSpec {
                        name,
                        expr: Some(RValue::ThisPath(path)),
                    });
                }
                _ => {
                    let rv = self.rvalue()?;
                    return Ok(TextSpec {
                        name,
                        expr: Some(rv),
                    });
                }
            }
        }
        Ok(TextSpec { name, expr: None })
    }

    // ----------------------------------------------------------- rvalue --

    fn rvalue(&mut self) -> Result<RValue> {
        match self.peek().clone() {
            Tok::CExpr(e) => {
                self.pos += 1;
                Ok(RValue::CExpr(e))
            }
            Tok::AtRef(r) => {
                self.pos += 1;
                // `@x.forEach` continuation?
                if matches!(self.peek(), Tok::Punct("."))
                    && matches!(self.peek2(), Tok::Ident(i) if i == "forEach")
                {
                    return Err(self.err(
                        "`.forEach` applies to container constructors; wrap the source in one (e.g. RBTree(@x).forEach)",
                    ));
                }
                Ok(RValue::Ref(r))
            }
            Tok::Num(n) => {
                self.pos += 1;
                Ok(RValue::CExpr(n.to_string()))
            }
            Tok::Ident(i) if i == "NULL" => {
                self.pos += 1;
                Ok(RValue::Null)
            }
            Tok::Ident(i) if i == "switch" => {
                self.pos += 1;
                self.switch_expr()
            }
            Tok::Ident(i) if i == "Box" => {
                self.pos += 1;
                let label = match self.peek() {
                    Tok::Ident(l)
                        if !matches!(l.as_str(), "Text" | "Link" | "Container" | "where") =>
                    {
                        self.expect_ident()?
                    }
                    _ => "Box".to_string(),
                };
                self.expect_punct("[")?;
                let items = self.items_until("]")?;
                self.expect_punct("]")?;
                let wheres = self.opt_where()?;
                Ok(RValue::AnonBox {
                    label,
                    items,
                    wheres,
                })
            }
            Tok::Ident(i)
                if matches!(i.as_str(), "List" | "HList" | "RBTree" | "Array" | "XArray") =>
            {
                self.pos += 1;
                let kind = match i.as_str() {
                    "List" => CtorKind::List,
                    "HList" => CtorKind::HList,
                    "RBTree" => CtorKind::RBTree,
                    "Array" => CtorKind::Array,
                    _ => CtorKind::XArray,
                };
                // `Array.selectFrom(@root, Type)` special form.
                if kind == CtorKind::Array
                    && matches!(self.peek(), Tok::Punct("."))
                    && matches!(self.peek2(), Tok::Ident(m) if m == "selectFrom")
                {
                    self.pos += 2;
                    self.expect_punct("(")?;
                    let source = self.rvalue()?;
                    self.expect_punct(",")?;
                    let box_type = self.expect_ident()?;
                    self.expect_punct(")")?;
                    return Ok(RValue::SelectFrom {
                        source: Box::new(source),
                        box_type,
                    });
                }
                self.expect_punct("(")?;
                let mut args = vec![self.rvalue()?];
                while self.eat_punct(",") {
                    args.push(self.rvalue()?);
                }
                self.expect_punct(")")?;
                let for_each = self.opt_for_each()?.map(Box::new);
                Ok(RValue::Ctor {
                    kind,
                    args,
                    for_each,
                })
            }
            Tok::Ident(name) => {
                // Box instantiation: Name(arg) or Name<anchor>(arg).
                self.pos += 1;
                let anchor = match self.peek() {
                    Tok::Spec(_) => Some(self.expect_spec()?),
                    _ => None,
                };
                self.expect_punct("(")?;
                let arg = self.rvalue()?;
                self.expect_punct(")")?;
                Ok(RValue::Instantiate {
                    box_type: name,
                    anchor,
                    arg: Box::new(arg),
                })
            }
            t => Err(self.err(format!("unexpected {t:?} in value position"))),
        }
    }

    fn opt_for_each(&mut self) -> Result<Option<ForEach>> {
        if !(matches!(self.peek(), Tok::Punct("."))
            && matches!(self.peek2(), Tok::Ident(i) if i == "forEach"))
        {
            return Ok(None);
        }
        self.pos += 2;
        self.expect_punct("|")?;
        let param = self.expect_ident()?;
        self.expect_punct("|")?;
        self.expect_punct("{")?;
        let mut wheres = Vec::new();
        loop {
            match self.peek() {
                Tok::Ident(i) if i == "yield" => break,
                Tok::Ident(_) => {
                    let name = self.expect_ident()?;
                    self.expect_punct("=")?;
                    wheres.push((name, self.rvalue()?));
                }
                t => return Err(self.err(format!("expected binding or `yield`, got {t:?}"))),
            }
        }
        self.expect_kw("yield")?;
        let yield_expr = self.rvalue()?;
        self.expect_punct("}")?;
        Ok(Some(ForEach {
            param,
            wheres,
            yield_expr,
        }))
    }

    fn switch_expr(&mut self) -> Result<RValue> {
        let scrutinee = self.rvalue()?;
        self.expect_punct("{")?;
        let mut cases = Vec::new();
        let mut otherwise = None;
        loop {
            if self.eat_punct("}") {
                break;
            }
            if self.eat_kw("case") {
                let mut guards = vec![self.rvalue()?];
                while self.eat_punct(",") {
                    guards.push(self.rvalue()?);
                }
                self.expect_punct(":")?;
                let result = self.rvalue()?;
                cases.push((guards, result));
            } else if self.eat_kw("otherwise") {
                self.expect_punct(":")?;
                otherwise = Some(Box::new(self.rvalue()?));
            } else {
                return Err(self.err(format!(
                    "expected `case`, `otherwise` or `}}`, got {:?}",
                    self.peek()
                )));
            }
        }
        Ok(RValue::Switch {
            scrutinee: Box::new(scrutinee),
            cases,
            otherwise,
        })
    }
}

/// Parse a full ViewCL program.
pub fn parse_program(src: &str) -> Result<Program> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_intro_listing() {
        let src = r#"
// Declare a Box for a task_struct object
define Task as Box<task_struct> [
    Text pid, comm
    Text ppid: parent.pid
    Text<string> state: ${task_state(@this)}
    Text se.vruntime
]
root = ${cpu_rq(0)->cfs.tasks_timeline}
sched_tree = RBTree(@root).forEach |node| {
    yield Task<task_struct.se.run_node>(@node)
}
plot @sched_tree
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.defines.len(), 1);
        let d = &p.defines[0];
        assert_eq!(d.name, "Task");
        assert_eq!(d.ctype, "task_struct");
        assert_eq!(d.views.len(), 1);
        assert_eq!(d.views[0].items.len(), 4);
        match &d.views[0].items[0] {
            ItemDef::Text { decor, specs } => {
                assert!(decor.is_none());
                assert_eq!(specs.len(), 2);
                assert_eq!(specs[0].name, "pid");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.stmts.len(), 3);
        match &p.stmts[1] {
            Stmt::Assign(
                name,
                RValue::Ctor {
                    kind,
                    args,
                    for_each,
                },
            ) => {
                assert_eq!(name, "sched_tree");
                assert_eq!(*kind, CtorKind::RBTree);
                assert_eq!(args.len(), 1);
                let fe = for_each.as_ref().unwrap();
                assert_eq!(fe.param, "node");
                match &fe.yield_expr {
                    RValue::Instantiate {
                        box_type, anchor, ..
                    } => {
                        assert_eq!(box_type, "Task");
                        assert_eq!(anchor.as_deref(), Some("task_struct.se.run_node"));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.stmts[2], Stmt::Plot("sched_tree".into()));
    }

    #[test]
    fn parses_view_inheritance() {
        let src = r#"
define Task as Box<task_struct> {
    :default [
        Text pid, comm
    ]
    :default => :sched [
        Text se.vruntime
    ]
    :sched => :sched_rq [
        Link runqueue -> @rq
    ] where {
        rq = RQ(${cpu_rq(0)})
    }
}
"#;
        let p = parse_program(src).unwrap();
        let d = &p.defines[0];
        assert_eq!(d.views.len(), 3);
        assert_eq!(d.views[1].parent.as_deref(), Some("default"));
        assert_eq!(d.views[2].name, "sched_rq");
        assert_eq!(d.views[2].wheres.len(), 1);
    }

    #[test]
    fn parses_switch_and_anon_box() {
        let src = r#"
slots = Array(@node.mr64.slot).forEach |item| {
    slot = switch ${ma_slot_check(@item)} {
        case ${true}:
            VMArea(@item)
        case ${false}: NULL
        otherwise: NULL
    }
    yield Box [
        Link slot -> @slot
    ]
}
"#;
        let p = parse_program(src).unwrap();
        match &p.stmts[0] {
            Stmt::Assign(
                _,
                RValue::Ctor {
                    kind: CtorKind::Array,
                    for_each,
                    ..
                },
            ) => {
                let fe = for_each.as_ref().unwrap();
                assert_eq!(fe.wheres.len(), 1);
                assert!(matches!(fe.wheres[0].1, RValue::Switch { .. }));
                assert!(matches!(fe.yield_expr, RValue::AnonBox { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_select_from() {
        let src = "mm_as = Array.selectFrom(@mm_mt, VMArea)";
        let p = parse_program(src).unwrap();
        assert!(matches!(
            &p.stmts[0],
            Stmt::Assign(_, RValue::SelectFrom { box_type, .. }) if box_type == "VMArea"
        ));
    }

    #[test]
    fn error_reports_line() {
        let err = parse_program("a = @b\nplot plot").unwrap_err();
        match err {
            VclError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
