//! The ViewCL interpreter: program × target → object graph.

use std::collections::HashMap;

use ktypes::{CValue, TypeId};
use vbridge::{Evaluator, HelperRegistry, Target};
use vgraph::{Attrs, BoxId, ContainerKind, Graph, Item, ViewInst};

use crate::ast::*;
use crate::decor::{self, Decorator, FlagSets};
use crate::stdlib;
use crate::{Result, VclError};

/// A ViewCL runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// A C value (integer, pointer, lvalue, string).
    C(CValue),
    /// A plotted box.
    Box(BoxId),
    /// No value / no box.
    Null,
    /// A container of member boxes.
    Seq(Vec<BoxId>, ContainerKind),
}

type Scope = HashMap<String, Value>;

/// The interpreter. Owns the output graph; borrow the target and helper
/// registry for the duration of evaluation.
pub struct Interp<'t, 'img> {
    target: &'t Target<'img>,
    helpers: &'t HelperRegistry,
    /// Flag/emoji sets for decorators.
    pub flags: FlagSets,
    defines: HashMap<String, BoxDef>,
    /// The graph under construction.
    pub graph: Graph,
    globals: Scope,
}

impl<'t, 'img> Interp<'t, 'img> {
    /// Create an interpreter over `target` with `helpers` callable from
    /// `${...}` expressions.
    pub fn new(target: &'t Target<'img>, helpers: &'t HelperRegistry) -> Self {
        Interp {
            target,
            helpers,
            flags: FlagSets::with_builtins(),
            defines: HashMap::new(),
            graph: Graph::new(),
            globals: Scope::new(),
        }
    }

    /// Load a program's box definitions without executing statements
    /// (used for the predefined "standard library" of boxes, §2.2).
    pub fn load_defines(&mut self, program: &Program) {
        for d in &program.defines {
            self.defines.insert(d.name.clone(), d.clone());
        }
    }

    /// Execute a program: register its defines, run its statements.
    pub fn run(&mut self, program: &Program) -> Result<()> {
        self.load_defines(program);
        let mut scope = std::mem::take(&mut self.globals);
        for stmt in &program.stmts {
            match stmt {
                Stmt::Assign(name, rv) => {
                    let v = self.eval(rv, &scope)?;
                    scope.insert(name.clone(), v);
                }
                Stmt::Plot(name) => {
                    let v = scope
                        .get(name)
                        .ok_or_else(|| VclError::Eval(format!("plot: unknown `@{name}`")))?;
                    match v {
                        Value::Box(id) => self.graph.roots.push(*id),
                        Value::Seq(ids, _) => self.graph.roots.extend(ids.iter().copied()),
                        other => {
                            return Err(VclError::Eval(format!(
                                "plot: `@{name}` is not a box ({other:?})"
                            )))
                        }
                    }
                }
            }
        }
        self.globals = scope;
        Ok(())
    }

    /// Finish and take the graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    // -------------------------------------------------------- evaluation --

    fn evaluator(&self) -> Evaluator<'_, 'img> {
        Evaluator::new(self.target, self.helpers)
    }

    fn ctype_of(&self, name: &str) -> Result<TypeId> {
        self.target
            .types
            .find(name)
            .ok_or_else(|| VclError::Eval(format!("unknown C type `{name}`")))
    }

    /// Convert the ViewCL scope into the `@ref` environment of the
    /// C-expression evaluator.
    fn cenv(&self, scope: &Scope) -> HashMap<String, CValue> {
        let mut env = HashMap::new();
        for (k, v) in scope {
            let cv = match v {
                Value::C(c) => c.clone(),
                Value::Box(id) => {
                    let b = self.graph.get(*id);
                    match self.target.types.find(&b.ctype) {
                        Some(ty) if b.addr != 0 => CValue::LValue { addr: b.addr, ty },
                        _ => CValue::Int {
                            value: b.addr as i64,
                            ty: self.target.types.find("long").expect("long interned"),
                        },
                    }
                }
                Value::Null => CValue::Int {
                    value: 0,
                    ty: self.target.types.find("long").expect("long interned"),
                },
                Value::Seq(..) => continue,
            };
            env.insert(k.clone(), cv);
        }
        env
    }

    fn eval_cexpr(&self, src: &str, scope: &Scope) -> Result<CValue> {
        let env = self.cenv(scope);
        Ok(self.evaluator().eval_str_with(src, &env)?)
    }

    /// Evaluate an rvalue to a ViewCL value.
    pub fn eval(&mut self, rv: &RValue, scope: &Scope) -> Result<Value> {
        match rv {
            RValue::CExpr(src) => Ok(Value::C(self.eval_cexpr(src, scope)?)),
            RValue::Null => Ok(Value::Null),
            RValue::ThisPath(path) => {
                let v = self.eval_cexpr(&format!("@this.{path}"), scope)?;
                Ok(Value::C(v))
            }
            RValue::Ref(path) => {
                let (head, rest) = match path.split_once('.') {
                    Some((h, r)) => (h, Some(r)),
                    None => (path.as_str(), None),
                };
                // `[idx]` can be attached to the head too.
                let (head, head_idx) = match head.split_once('[') {
                    Some((h, _)) => (h, true),
                    None => (head, false),
                };
                let base = scope
                    .get(head)
                    .or_else(|| self.globals.get(head))
                    .cloned()
                    .ok_or_else(|| VclError::Eval(format!("unknown `@{head}`")))?;
                match (rest, head_idx) {
                    (None, false) => Ok(base),
                    _ => {
                        // Navigate the remainder through the C evaluator.
                        let mut tmp = scope.clone();
                        tmp.insert("__ref".into(), base);
                        let full = match path.split_once('.') {
                            Some((_, r)) => format!("@__ref.{r}"),
                            None => {
                                // Only an index on the head.
                                let idx = &path[path.find('[').unwrap()..];
                                format!("@__ref{idx}")
                            }
                        };
                        Ok(Value::C(self.eval_cexpr(&full, &tmp)?))
                    }
                }
            }
            RValue::Switch {
                scrutinee,
                cases,
                otherwise,
            } => {
                let s = self.eval(scrutinee, scope)?;
                let sv = self.value_as_int(&s)?;
                for (guards, result) in cases {
                    for g in guards {
                        let gv = self.eval(g, scope)?;
                        if self.value_as_int(&gv)? == sv {
                            return self.eval(result, scope);
                        }
                    }
                }
                match otherwise {
                    Some(o) => self.eval(o, scope),
                    None => Ok(Value::Null),
                }
            }
            RValue::Ctor {
                kind,
                args,
                for_each,
            } => self.eval_ctor(*kind, args, for_each.as_deref(), scope),
            RValue::SelectFrom { source, box_type } => {
                let src = self.eval(source, scope)?;
                let root = match src {
                    Value::Box(id) => id,
                    other => {
                        return Err(VclError::Eval(format!(
                            "selectFrom: source must be a box, got {other:?}"
                        )))
                    }
                };
                let mut members: Vec<BoxId> = self
                    .graph
                    .reachable(&[root])
                    .into_iter()
                    .filter(|id| self.graph.get(*id).label == *box_type)
                    .collect();
                // Order by the most natural sort key available.
                members.sort_by_key(|id| {
                    let b = self.graph.get(*id);
                    b.member_raw("vm_start", &self.graph)
                        .unwrap_or(b.addr as i64)
                });
                Ok(Value::Seq(members, ContainerKind::Sequence))
            }
            RValue::Instantiate {
                box_type,
                anchor,
                arg,
            } => {
                let v = self.eval(arg, scope)?;
                let addr = match &v {
                    Value::Null => return Ok(Value::Null),
                    Value::C(c) => {
                        // Scalar lvalues (e.g. a global pointer variable)
                        // convert to their value; aggregates use their
                        // address.
                        let c = self.evaluator().rvalue(c.clone())?;
                        match c {
                            CValue::LValue { addr, .. } => addr,
                            other => other.as_u64().unwrap_or(0),
                        }
                    }
                    Value::Box(id) => self.graph.get(*id).addr,
                    Value::Seq(..) => {
                        return Err(VclError::Eval(format!(
                            "{box_type}(…): cannot instantiate from a container"
                        )))
                    }
                };
                if addr == 0 {
                    return Ok(Value::Null);
                }
                let addr = match anchor {
                    Some(a) => {
                        let (ctype, member) = a.split_once('.').ok_or_else(|| {
                            VclError::Eval(format!("bad anchor `{a}`: need ctype.member"))
                        })?;
                        let ty = self.ctype_of(ctype)?;
                        let (off, _) = self
                            .target
                            .types
                            .field_path(ty, member)
                            .map_err(vbridge::BridgeError::from)?;
                        addr.wrapping_sub(off)
                    }
                    None => addr,
                };
                let def = self
                    .defines
                    .get(box_type)
                    .cloned()
                    .ok_or_else(|| VclError::Eval(format!("unknown box type `{box_type}`")))?;
                Ok(Value::Box(self.instantiate(&def, addr)?))
            }
            RValue::AnonBox {
                label,
                items,
                wheres,
            } => {
                let (id, _) = self.graph.intern(0, label, "", 0);
                let mut inner = scope.clone();
                for (name, rv) in wheres {
                    let v = self.eval(rv, &inner)?;
                    inner.insert(name.clone(), v);
                }
                let view_items = self.eval_items(items, &inner)?;
                self.graph.get_mut(id).views.push(ViewInst {
                    name: "default".into(),
                    items: view_items,
                });
                Ok(Value::Box(id))
            }
        }
    }

    fn value_as_int(&self, v: &Value) -> Result<i64> {
        match v {
            Value::C(c) => {
                let c = self.evaluator().rvalue(c.clone())?;
                c.as_int()
                    .or_else(|| c.address().map(|a| a as i64))
                    .ok_or_else(|| VclError::Eval("switch: non-integer value".into()))
            }
            Value::Null => Ok(0),
            Value::Box(id) => Ok(self.graph.get(*id).addr as i64),
            Value::Seq(..) => Err(VclError::Eval("switch: cannot compare containers".into())),
        }
    }

    fn eval_ctor(
        &mut self,
        kind: CtorKind,
        args: &[RValue],
        for_each: Option<&ForEach>,
        scope: &Scope,
    ) -> Result<Value> {
        let ctor_name = match kind {
            CtorKind::List => "List",
            CtorKind::HList => "HList",
            CtorKind::RBTree => "RBTree",
            CtorKind::Array => "Array",
            CtorKind::XArray => "XArray",
        };
        // One span per distiller invocation, labeled with the distiller
        // and the root symbol path it walks. Inclusive of the per-element
        // materialization below (nested ctors open nested spans).
        let label = match args.first() {
            Some(RValue::CExpr(src)) => format!("{ctor_name}({})", src.trim()),
            _ => format!("{ctor_name}(…)"),
        };
        let _span = vtrace::span(self.target.tracer(), vtrace::SpanKind::Distill, label);
        let mut cargs = Vec::with_capacity(args.len());
        for a in args {
            match self.eval(a, scope)? {
                Value::C(c) => cargs.push(c),
                Value::Box(id) => {
                    let b = self.graph.get(id);
                    let ty = self.target.types.find(&b.ctype);
                    match ty {
                        Some(ty) => cargs.push(CValue::LValue { addr: b.addr, ty }),
                        None => {
                            return Err(VclError::Eval("container source box has no C type".into()))
                        }
                    }
                }
                other => {
                    return Err(VclError::Eval(format!(
                        "container constructor argument must be a C value, got {other:?}"
                    )))
                }
            }
        }

        let long_ty = self.target.types.find("long").expect("long interned");
        let to_ints = |addrs: Vec<u64>| -> Vec<CValue> {
            addrs
                .into_iter()
                .map(|a| CValue::Int {
                    value: a as i64,
                    ty: long_ty,
                })
                .collect()
        };
        let (elems, trunc): (Vec<CValue>, Option<stdlib::Truncation>) = match kind {
            CtorKind::List => {
                let (nodes, t) = stdlib::list_nodes(self.target, &cargs[0])?;
                (to_ints(nodes), t)
            }
            CtorKind::HList => {
                let (nodes, t) = stdlib::hlist_nodes(self.target, &cargs[0])?;
                (to_ints(nodes), t)
            }
            CtorKind::RBTree => {
                let (nodes, t) = stdlib::rbtree_nodes(self.target, &cargs[0])?;
                (to_ints(nodes), t)
            }
            CtorKind::Array => stdlib::array_elems(self.target, &cargs)?,
            CtorKind::XArray => {
                let (entries, t) = stdlib::xarray_entries(self.target, &cargs[0])?;
                (to_ints(entries.into_iter().map(|(_, e)| e).collect()), t)
            }
        };
        let n_elems = elems.len();
        let ckind = match kind {
            CtorKind::HList => ContainerKind::Set,
            _ => ContainerKind::Sequence,
        };

        let mut members = Vec::new();
        match for_each {
            Some(fe) => {
                for elem in elems {
                    let mut inner = scope.clone();
                    inner.insert(fe.param.clone(), Value::C(elem));
                    for (name, rv) in &fe.wheres {
                        let v = self.eval(rv, &inner)?;
                        inner.insert(name.clone(), v);
                    }
                    match self.eval(&fe.yield_expr, &inner)? {
                        Value::Box(id) => members.push(id),
                        Value::Null => {}
                        Value::Seq(ids, _) => members.extend(ids),
                        Value::C(c) => {
                            // Yielding a raw value wraps it in a cell box.
                            members.push(self.cell_box(&c));
                        }
                    }
                }
            }
            None => {
                // No body: wrap each element in a display cell.
                for elem in elems {
                    members.push(self.cell_box(&elem));
                }
            }
        }
        if let Some(t) = trunc {
            members.push(self.diag_box(&t.describe(ctor_name, n_elems), t.addr));
        }
        Ok(Value::Seq(members, ckind))
    }

    /// A virtual diagnostic box appended to a truncated container so the
    /// damage shows up in the plot itself.
    fn diag_box(&mut self, msg: &str, addr: u64) -> BoxId {
        let (id, _) = self.graph.intern(0, "Diag", "", 0);
        let b = self.graph.get_mut(id);
        b.attrs
            .set("diagnostic", serde_json::Value::String(msg.to_string()));
        b.views.push(ViewInst {
            name: "default".into(),
            items: vec![Item::Text {
                name: "diagnostic".into(),
                value: msg.to_string(),
                raw: Some(addr as i64),
            }],
        });
        id
    }

    /// A virtual single-text box used for containers of raw values
    /// (e.g. maple-tree pivots).
    fn cell_box(&mut self, v: &CValue) -> BoxId {
        let (id, _) = self.graph.intern(0, "Cell", "", 0);
        let value = decor::render_default(self.target, v);
        self.graph.get_mut(id).views.push(ViewInst {
            name: "default".into(),
            items: vec![Item::Text {
                name: "value".into(),
                value,
                raw: decor::raw_for_query(v),
            }],
        });
        id
    }

    // ----------------------------------------------------- instantiation --

    /// Materialize a box for `def` at `addr`, evaluating all of its views.
    pub fn instantiate(&mut self, def: &BoxDef, addr: u64) -> Result<BoxId> {
        let cty = self.ctype_of(&def.ctype)?;
        let size = self.target.types.size_of(cty);
        let (id, fresh) = self.graph.intern(addr, &def.name, &def.ctype, size);
        if !fresh {
            return Ok(id);
        }

        let mut scope = Scope::new();
        scope.insert("this".into(), Value::C(CValue::LValue { addr, ty: cty }));

        // Evaluate every where binding once, in view-declaration order,
        // first binding of a name wins (shared across views).
        for view in &def.views {
            for (name, rv) in self.chain_wheres(def, &view.name)? {
                if scope.contains_key(&name) {
                    continue;
                }
                let v = self.eval(&rv, &scope)?;
                scope.insert(name, v);
            }
        }

        for view in &def.views {
            let items = self.chain_items(def, &view.name)?;
            let view_items = self.eval_items(&items, &scope)?;
            self.graph.get_mut(id).views.push(ViewInst {
                name: view.name.clone(),
                items: view_items,
            });
        }
        Ok(id)
    }

    /// Inheritance chain (root-first) of a view.
    fn chain<'d>(&self, def: &'d BoxDef, name: &str) -> Result<Vec<&'d ViewDef>> {
        let mut chain = Vec::new();
        let mut cur = Some(name.to_string());
        while let Some(n) = cur {
            let v = def
                .view(&n)
                .ok_or_else(|| VclError::Eval(format!("box `{}` has no view `:{n}`", def.name)))?;
            if chain.iter().any(|c: &&ViewDef| c.name == v.name) {
                return Err(VclError::Eval(format!(
                    "view inheritance cycle at `:{}` in `{}`",
                    v.name, def.name
                )));
            }
            chain.push(v);
            cur = v.parent.clone();
        }
        chain.reverse();
        Ok(chain)
    }

    fn chain_wheres(&self, def: &BoxDef, name: &str) -> Result<Vec<(String, RValue)>> {
        Ok(self
            .chain(def, name)?
            .into_iter()
            .flat_map(|v| v.wheres.iter().cloned())
            .collect())
    }

    fn chain_items(&self, def: &BoxDef, name: &str) -> Result<Vec<ItemDef>> {
        Ok(self
            .chain(def, name)?
            .into_iter()
            .flat_map(|v| v.items.iter().cloned())
            .collect())
    }

    fn eval_items(&mut self, items: &[ItemDef], scope: &Scope) -> Result<Vec<Item>> {
        let mut out = Vec::new();
        for item in items {
            match item {
                ItemDef::Text { decor, specs } => {
                    let dec = decor.as_deref().and_then(Decorator::parse);
                    for spec in specs {
                        out.push(self.eval_text(spec, dec.as_ref(), scope));
                    }
                }
                ItemDef::Link { name, target } => match self.eval(target, scope) {
                    Ok(Value::Box(id)) => out.push(Item::Link {
                        name: name.clone(),
                        target: id,
                    }),
                    Ok(Value::Null) => out.push(Item::NullLink { name: name.clone() }),
                    Ok(Value::C(c)) if !c.is_truthy() => {
                        out.push(Item::NullLink { name: name.clone() })
                    }
                    Ok(other) => {
                        return Err(VclError::Eval(format!(
                            "Link `{name}` target must be a box, got {other:?}"
                        )))
                    }
                    Err(_) => out.push(Item::NullLink { name: name.clone() }),
                },
                ItemDef::Container { name, value } => match self.eval(value, scope)? {
                    Value::Seq(members, kind) => out.push(Item::Container {
                        name: name.clone(),
                        kind,
                        members,
                        attrs: Attrs::default(),
                    }),
                    Value::Null => out.push(Item::Container {
                        name: name.clone(),
                        kind: ContainerKind::Sequence,
                        members: Vec::new(),
                        attrs: Attrs::default(),
                    }),
                    other => {
                        return Err(VclError::Eval(format!(
                            "Container `{name}` must be a sequence, got {other:?}"
                        )))
                    }
                },
            }
        }
        Ok(out)
    }

    fn eval_text(&mut self, spec: &TextSpec, dec: Option<&Decorator>, scope: &Scope) -> Item {
        let rendered = (|| -> Result<(String, Option<i64>)> {
            let value = match &spec.expr {
                None => self.eval_cexpr(&format!("@this.{}", spec.name), scope)?,
                Some(rv) => match self.eval(rv, scope)? {
                    Value::C(c) => c,
                    Value::Null => CValue::Int {
                        value: 0,
                        ty: self.target.types.find("long").expect("long interned"),
                    },
                    Value::Box(id) => CValue::Int {
                        value: self.graph.get(id).addr as i64,
                        ty: self.target.types.find("long").expect("long interned"),
                    },
                    Value::Seq(..) => {
                        return Err(VclError::Eval(format!(
                            "Text `{}` cannot render a container",
                            spec.name
                        )))
                    }
                },
            };
            let raw = decor::raw_for_query(&value);
            let text = match dec {
                Some(d) => d.render(self.target, &self.flags, &value),
                None => decor::render_default(self.target, &value),
            };
            Ok((text, raw))
        })();
        match rendered {
            Ok((value, raw)) => Item::Text {
                name: spec.name.clone(),
                value,
                raw,
            },
            Err(e) => Item::Text {
                name: spec.name.clone(),
                value: format!("<error: {e}>"),
                raw: None,
            },
        }
    }
}
