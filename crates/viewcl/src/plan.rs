//! The walk-plan IR: plan-mode extraction.
//!
//! The interpreter ([`crate::Interp`]) walks a pane's containers
//! recursively, discovering each pointer one metered round trip at a
//! time and sprinkling ad-hoc `Target::prefetch` hints. This module
//! lowers a pane program into an explicit DAG — object *seeds* (static
//! root expressions), container *walk nodes* (root spec, traversal
//! kind, per-element reads, expected fanout) and pointer *hops*
//! (`Link signal -> SignalStruct(${@this.signal})`) — and executes
//! that plan as a deterministic cache-warming pre-pass:
//!
//! 1. **Compile** ([`compile`]): scan the AST for constructors,
//!    classify each container root as a static C expression, a field
//!    of the enclosing box, or the loop element itself, and record the
//!    pointer hops between box types.
//! 2. **Schedule + discover** ([`execute`]): resolve roots wave by
//!    wave and run the discovery walks — concurrently over a
//!    [`SyncRead`](vbridge::SyncRead) view when the backend allows it
//!    ([`PlanMode::Parallel`]), or through the metered target in
//!    strict node order when the wire sequence is the contract
//!    ([`PlanMode::Serialized`], record/replay). Objects reached twice
//!    (threads sharing a `signal_struct`, inodes sharing a
//!    `super_block`) are visited once; the skipped work is counted as
//!    deduplicated walks.
//! 3. **Fetch**: merge every byte range a node will touch (link words
//!    plus the per-element field reads) into wire spans using the
//!    [`SpanPlanner`] cost model, and pull each span as one packet.
//!
//! The interpreter then runs unchanged over the warm cache, so plan
//! graphs are byte-identical to interp graphs by construction; the
//! plan only changes *how many packets* the extraction costs. Without
//! a cache there is nothing to warm and the plan degrades to the plain
//! interpreter walk ([`PlanMode::Disabled`]).

use std::collections::{HashMap, HashSet};

use ktypes::{CValue, TypeId, TypeKind, TypeRegistry};
use vbridge::{Evaluator, HelperRegistry, PlanMode, SpanPlanner, SyncRead, Target};

use crate::ast::{BoxDef, CtorKind, ForEach, ItemDef, Program, RValue, Stmt};

/// Backstop on traversal length, mirroring the stdlib distillers.
const MAX_ELEMS: usize = 100_000;

/// Backstop on plan depth (waves): recursive container definitions
/// terminate through walk/object dedup long before this.
const MAX_WAVES: usize = 32;

/// Where a walk node's root address comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RootSpec {
    /// A C expression with no scope references, evaluated once against
    /// the target (`${&init_task.tasks}`).
    Static(String),
    /// A field of the enclosing box (`${&@this.children}` → path
    /// `children`), resolved per object base.
    ElemField(String),
    /// The parent walk's element value itself (`HList(@bucket)`).
    Elem,
}

/// What the parent walk yields per element, and what the pane reads
/// off each yielded box.
#[derive(Debug, Clone, Default)]
pub struct ElemInfo {
    /// C struct tag of the yielded box (`task_struct`), when the yield
    /// instantiates a defined box type.
    pub ctype: Option<String>,
    /// `container_of` anchor (`ctype.member.path`): element box base =
    /// element address minus the anchor offset.
    pub anchor: Option<String>,
    /// Field paths the views read off each element box.
    pub reads: Vec<String>,
    /// Defined box type the yield instantiates; elements flow into
    /// that box's walks and hops.
    pub child_box: Option<String>,
    /// Walk nodes compiled directly from an anonymous yield body.
    pub children: Vec<usize>,
}

/// One node of the walk-plan DAG: a container traversal.
#[derive(Debug, Clone)]
pub struct WalkNode {
    /// Traversal kind.
    pub kind: CtorKind,
    /// Root classification.
    pub root: RootSpec,
    /// Per-element yield info, when statically known.
    pub elem: Option<ElemInfo>,
    /// Expected fanout (static estimate by kind); the scheduler runs
    /// high-fanout walks first within a wave.
    pub est_fanout: u32,
    /// Human label for trace spans (`List(&init_task.tasks)`).
    pub label: String,
}

/// A top-level box instantiation with a statically evaluable root:
/// `root = Task(${&init_task})`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Seed {
    /// The instantiated box type.
    pub box_type: String,
    /// Optional `container_of` anchor.
    pub anchor: Option<String>,
    /// The root C expression.
    pub src: String,
}

/// A pointer edge between box types: instantiating box `target_box`
/// from a field of the enclosing box (`Link mm -> MM(${@this.mm})`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// Field path off the source box.
    pub path: String,
    /// `true` when the source wrote `&@this.path` — the target is the
    /// field itself, no pointer load. Otherwise the field's type
    /// decides: pointer fields are loaded, aggregates are addressed.
    pub addr_of: bool,
    /// The instantiated box type.
    pub target_box: String,
    /// Optional `container_of` anchor on the instantiation.
    pub anchor: Option<String>,
}

/// Everything the plan knows about one defined box type.
#[derive(Debug, Clone, Default)]
pub struct BoxInfo {
    /// Underlying C struct tag.
    pub ctype: String,
    /// Field paths the views read off each object.
    pub reads: Vec<String>,
    /// Container walks inside the views (ids into [`WalkPlan::nodes`]).
    pub walks: Vec<usize>,
    /// Pointer edges to other box types.
    pub hops: Vec<Hop>,
}

/// A compiled pane program.
#[derive(Debug, Clone, Default)]
pub struct WalkPlan {
    /// All walk nodes, in compilation order.
    pub nodes: Vec<WalkNode>,
    /// Walk nodes rooted at top-level statements.
    pub top: Vec<usize>,
    /// Top-level box instantiations with static roots.
    pub seeds: Vec<Seed>,
    /// Per-box-type walks, hops and reads.
    pub boxes: HashMap<String, BoxInfo>,
}

impl WalkPlan {
    /// Whether the program contains any plannable entry point at all.
    pub fn is_empty(&self) -> bool {
        self.top.is_empty() && self.seeds.is_empty()
    }
}

fn fanout_estimate(kind: CtorKind) -> u32 {
    match kind {
        CtorKind::List | CtorKind::HList => 16,
        CtorKind::RBTree => 32,
        CtorKind::Array => 8,
        CtorKind::XArray => 64,
    }
}

fn ctor_name(kind: CtorKind) -> &'static str {
    match kind {
        CtorKind::List => "List",
        CtorKind::HList => "HList",
        CtorKind::RBTree => "RBTree",
        CtorKind::Array => "Array",
        CtorKind::XArray => "XArray",
    }
}

// ------------------------------------------------------------ compile --

/// Scope a constructor argument is classified in.
#[derive(Clone, Copy)]
enum Ctx<'a> {
    /// Top-level statement: static roots and seeds.
    Top,
    /// Inside the named box's views: `@this` is the object.
    BoxViews { box_name: &'a str },
    /// Inside a `.forEach |param|` body: `@param` is the element.
    Elem { param: &'a str },
}

struct Compiler<'p> {
    defines: HashMap<&'p str, &'p BoxDef>,
    plan: WalkPlan,
    in_progress: HashSet<String>,
}

/// Extract the dotted field path of a `&@this.a.b` / `@this.a.b`
/// expression (with the `&` flag), or `None` if the expression does
/// anything fancier (indexing, pointer hops, arithmetic): those roots
/// stay with the interpreter.
fn this_field_path(src: &str) -> Option<(String, bool)> {
    let s = src.trim();
    let (s, addr_of) = match s.strip_prefix('&') {
        Some(rest) => (rest.trim_start(), true),
        None => (s, false),
    };
    let path = s.strip_prefix("@this.")?;
    if path.is_empty()
        || !path
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
    {
        return None;
    }
    Some((path.to_string(), addr_of))
}

/// Collect every `@this.<dotted path>` mention inside a C expression —
/// the per-element field reads a view performs.
fn collect_this_reads(src: &str, out: &mut Vec<String>) {
    let mut rest = src;
    while let Some(i) = rest.find("@this.") {
        rest = &rest[i + "@this.".len()..];
        let end = rest
            .find(|c: char| !c.is_ascii_alphanumeric() && c != '_' && c != '.')
            .unwrap_or(rest.len());
        let path = rest[..end].trim_end_matches('.');
        if !path.is_empty() {
            out.push(path.to_string());
        }
        rest = &rest[end..];
    }
}

/// Collect the field reads an rvalue performs off `@this`.
fn rvalue_reads(rv: &RValue, out: &mut Vec<String>) {
    match rv {
        RValue::CExpr(src) => collect_this_reads(src, out),
        RValue::ThisPath(p) => out.push(p.clone()),
        RValue::Ref(path) => {
            if let Some(p) = path.strip_prefix("this.") {
                out.push(p.to_string());
            }
        }
        RValue::Null => {}
        RValue::Switch {
            scrutinee,
            cases,
            otherwise,
        } => {
            rvalue_reads(scrutinee, out);
            for (guards, res) in cases {
                for g in guards {
                    rvalue_reads(g, out);
                }
                rvalue_reads(res, out);
            }
            if let Some(o) = otherwise {
                rvalue_reads(o, out);
            }
        }
        RValue::Ctor { args, .. } => {
            for a in args {
                rvalue_reads(a, out);
            }
        }
        RValue::SelectFrom { source, .. } => rvalue_reads(source, out),
        RValue::Instantiate { arg, .. } => rvalue_reads(arg, out),
        RValue::AnonBox { items, wheres, .. } => {
            for (_, rv) in wheres {
                rvalue_reads(rv, out);
            }
            for item in items {
                item_reads(item, out);
            }
        }
    }
}

fn item_reads(item: &ItemDef, out: &mut Vec<String>) {
    match item {
        ItemDef::Text { specs, .. } => {
            for s in specs {
                match &s.expr {
                    None => out.push(s.name.clone()),
                    Some(rv) => rvalue_reads(rv, out),
                }
            }
        }
        ItemDef::Link { target, .. } => rvalue_reads(target, out),
        ItemDef::Container { value, .. } => rvalue_reads(value, out),
    }
}

impl<'p> Compiler<'p> {
    /// Classify a constructor's root argument in context, or `None`
    /// when the walk must stay with the interpreter.
    fn classify_root(&self, args: &[RValue], ctx: Ctx<'_>) -> Option<RootSpec> {
        // Multi-argument constructors (`Array(ptr, len)`) read their
        // length from the element, which the plan does not model.
        let arg = match args {
            [one] => one,
            _ => return None,
        };
        match (arg, ctx) {
            (RValue::CExpr(src), _) if !src.contains('@') => Some(RootSpec::Static(src.clone())),
            (RValue::CExpr(src), Ctx::BoxViews { .. }) => {
                this_field_path(src).map(|(p, _)| RootSpec::ElemField(p))
            }
            (RValue::Ref(name), Ctx::Elem { param }) if name == param => Some(RootSpec::Elem),
            _ => None,
        }
    }

    /// Scan an rvalue for plannable constructors, appending compiled
    /// walk-node ids to `out` and recording seeds/hops per context.
    fn scan(&mut self, rv: &RValue, ctx: Ctx<'_>, out: &mut Vec<usize>) {
        match rv {
            RValue::Ctor {
                kind,
                args,
                for_each,
            } => {
                let Some(root) = self.classify_root(args, ctx) else {
                    // Unplannable root: deeper walks depend on elements
                    // we cannot discover, so the whole subtree stays
                    // with the interpreter.
                    return;
                };
                let elem = for_each.as_deref().and_then(|fe| self.compile_for_each(fe));
                let label = match &root {
                    RootSpec::Static(src) => format!("{}({})", ctor_name(*kind), src.trim()),
                    RootSpec::ElemField(p) => format!("{}(@this.{p})", ctor_name(*kind)),
                    RootSpec::Elem => format!("{}(@elem)", ctor_name(*kind)),
                };
                self.plan.nodes.push(WalkNode {
                    kind: *kind,
                    root,
                    elem,
                    est_fanout: fanout_estimate(*kind),
                    label,
                });
                out.push(self.plan.nodes.len() - 1);
            }
            RValue::Switch {
                scrutinee,
                cases,
                otherwise,
            } => {
                self.scan(scrutinee, ctx, out);
                for (_, res) in cases {
                    self.scan(res, ctx, out);
                }
                if let Some(o) = otherwise {
                    self.scan(o, ctx, out);
                }
            }
            RValue::Instantiate {
                box_type,
                anchor,
                arg,
            } => {
                self.ensure_box(box_type);
                match (ctx, &**arg) {
                    // `root = Task(${&init_task})`: an object seed.
                    (Ctx::Top, RValue::CExpr(src)) if !src.contains('@') => {
                        self.plan.seeds.push(Seed {
                            box_type: box_type.clone(),
                            anchor: anchor.clone(),
                            src: src.clone(),
                        });
                    }
                    // `Link mm -> MM(${@this.mm})`: a pointer hop.
                    (Ctx::BoxViews { box_name }, arg) => {
                        let hop = match arg {
                            RValue::CExpr(src) => this_field_path(src),
                            RValue::Ref(path) => {
                                path.strip_prefix("this.").map(|p| (p.to_string(), false))
                            }
                            _ => None,
                        };
                        if let Some((path, addr_of)) = hop {
                            if let Some(info) = self.plan.boxes.get_mut(box_name) {
                                info.hops.push(Hop {
                                    path,
                                    addr_of,
                                    target_box: box_type.clone(),
                                    anchor: anchor.clone(),
                                });
                            }
                        }
                    }
                    _ => {}
                }
            }
            RValue::SelectFrom { source, .. } => {
                // `Array.selectFrom(src, T)` filters boxes its source
                // walk discovers; the filter itself reads no target
                // memory, so planning the source plans the pane. A
                // `@ref` source names a where-bound box whose walk was
                // planned at its definition site — recursing finds
                // nothing plannable there and the subtree stays with
                // the interpreter, same as any unplannable root.
                self.scan(source, ctx, out);
            }
            RValue::AnonBox { items, wheres, .. } => {
                for (_, rv) in wheres {
                    self.scan(rv, ctx, out);
                }
                for item in items {
                    self.scan_item(item, ctx, out);
                }
            }
            _ => {}
        }
    }

    fn scan_item(&mut self, item: &ItemDef, ctx: Ctx<'_>, out: &mut Vec<usize>) {
        match item {
            ItemDef::Text { specs, .. } => {
                for s in specs {
                    if let Some(rv) = &s.expr {
                        self.scan(rv, ctx, out);
                    }
                }
            }
            ItemDef::Link { target, .. } => self.scan(target, ctx, out),
            ItemDef::Container { value, .. } => self.scan(value, ctx, out),
        }
    }

    /// Compile the per-element yield of a `.forEach` body.
    fn compile_for_each(&mut self, fe: &ForEach) -> Option<ElemInfo> {
        let ctx = Ctx::Elem { param: &fe.param };
        let mut children = Vec::new();
        for (_, rv) in &fe.wheres {
            self.scan(rv, ctx, &mut children);
        }
        let mut info = ElemInfo {
            children,
            ..ElemInfo::default()
        };
        self.yield_shape(&fe.yield_expr, &fe.param, ctx, &mut info);
        Some(info)
    }

    fn yield_shape(&mut self, rv: &RValue, param: &str, ctx: Ctx<'_>, info: &mut ElemInfo) {
        match rv {
            RValue::Instantiate {
                box_type,
                anchor,
                arg,
            } => {
                self.ensure_box(box_type);
                // Element box bases are only computable when the yield
                // instantiates the loop element itself.
                let direct = matches!(&**arg, RValue::Ref(name) if name == param);
                if info.child_box.is_none() && direct {
                    if let Some(bi) = self.plan.boxes.get(box_type.as_str()) {
                        info.ctype = Some(bi.ctype.clone());
                        info.reads = bi.reads.clone();
                        info.anchor = anchor.clone();
                        info.child_box = Some(box_type.clone());
                    }
                }
            }
            RValue::Switch {
                cases, otherwise, ..
            } => {
                for (_, res) in cases {
                    self.yield_shape(res, param, ctx, info);
                }
                if let Some(o) = otherwise {
                    self.yield_shape(o, param, ctx, info);
                }
            }
            RValue::AnonBox { items, wheres, .. } => {
                for (_, rv) in wheres {
                    self.scan(rv, ctx, &mut info.children);
                }
                for item in items {
                    self.scan_item(item, ctx, &mut info.children);
                }
            }
            _ => {}
        }
    }

    /// Compile a box definition's views: its reads, container walks
    /// and pointer hops. Memoized; recursive yields (a Task whose
    /// children are Tasks) resolve by name at execution time.
    fn ensure_box(&mut self, name: &str) {
        if self.plan.boxes.contains_key(name) || self.in_progress.contains(name) {
            return;
        }
        let Some(def) = self.defines.get(name) else {
            return;
        };
        let def = *def;
        self.in_progress.insert(name.to_string());
        let mut reads = Vec::new();
        for view in &def.views {
            for (_, rv) in &view.wheres {
                rvalue_reads(rv, &mut reads);
            }
            for item in &view.items {
                item_reads(item, &mut reads);
            }
        }
        reads.sort();
        reads.dedup();
        self.plan.boxes.insert(
            name.to_string(),
            BoxInfo {
                ctype: def.ctype.clone(),
                reads,
                walks: Vec::new(),
                hops: Vec::new(),
            },
        );
        // Walks and hops are collected after the entry exists so that
        // hop recording (`scan` on the views) can attach to it.
        let mut walks = Vec::new();
        let ctx = Ctx::BoxViews { box_name: name };
        for view in &def.views {
            for (_, rv) in &view.wheres {
                self.scan(rv, ctx, &mut walks);
            }
            for item in &view.items {
                self.scan_item(item, ctx, &mut walks);
            }
        }
        self.in_progress.remove(name);
        if let Some(info) = self.plan.boxes.get_mut(name) {
            info.walks = walks;
        }
    }
}

/// Lower a pane program into its walk plan. Constructors whose roots
/// cannot be classified statically are simply absent from the plan —
/// the interpreter still walks them, so skipping costs performance,
/// never correctness.
pub fn compile(program: &Program) -> WalkPlan {
    let mut c = Compiler {
        defines: program
            .defines
            .iter()
            .map(|d| (d.name.as_str(), d))
            .collect(),
        plan: WalkPlan::default(),
        in_progress: HashSet::new(),
    };
    let mut top = Vec::new();
    for stmt in &program.stmts {
        if let Stmt::Assign(_, rv) = stmt {
            c.scan(rv, Ctx::Top, &mut top);
        }
    }
    c.plan.top = top;
    c.plan
}

// ------------------------------------------------------------ execute --

/// What one plan execution did, all derived from the deterministic
/// schedule (never from thread timing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanReport {
    /// Scheduling mode the plan ran under.
    pub parallel: bool,
    /// Walk instances executed.
    pub plan_nodes: u64,
    /// Work skipped because of sharing: walk instances whose traversal
    /// (same kind, same root) already ran, plus objects (box type +
    /// base address) reached again over a second pointer path.
    pub dedup_walks: u64,
    /// Scheduler waves that ran two or more walks concurrently.
    pub parallel_batches: u64,
    /// Wire packets spent on scheduled span fetches.
    pub span_packets: u64,
}

/// One scheduled walk instance: a node and its resolved root.
struct Job {
    node: usize,
    root: CValue,
}

/// A batch of object bases of one box type awaiting processing.
struct Batch {
    box_type: String,
    bases: Vec<u64>,
    /// Seeds and hop targets fetch their field reads here; elements
    /// produced by a walk had their reads fetched in the walk stage.
    fetch_reads: bool,
}

/// Discovery output of one walk: element values (node addresses, array
/// element addresses, or xarray entries) plus every byte range the
/// traversal touched.
#[derive(Default)]
struct Walked {
    elems: Vec<u64>,
    touched: Vec<(u64, u64)>,
}

/// The reads a discovery walk issues: metered through the target in
/// serialized mode, raw via the backend's sync view in parallel mode.
enum Disco<'x, 'img> {
    Metered(&'x Target<'img>),
    Raw(&'x dyn SyncRead),
}

impl Disco<'_, '_> {
    fn read_uint(&self, addr: u64, size: usize) -> Option<u64> {
        match self {
            Disco::Metered(t) => t.read_uint(addr, size).ok(),
            Disco::Raw(r) => {
                let mut buf = [0u8; 8];
                r.read_raw(addr, &mut buf[..size]).ok()?;
                Some(ktypes::read_uint(&buf, size))
            }
        }
    }
}

/// Pre-resolved xarray layout (registry lookups are free; doing them
/// once on the main thread keeps the walk closures read-only).
#[derive(Clone, Copy)]
struct XaOffsets {
    head: u64,
    shift: u64,
    slots: u64,
}

fn xa_offsets(types: &TypeRegistry) -> Option<XaOffsets> {
    let xarray = types.find("xarray")?;
    let xa_node = types.find("xa_node")?;
    Some(XaOffsets {
        head: types.field_path(xarray, "xa_head").ok()?.0,
        shift: types.field_path(xa_node, "shift").ok()?.0,
        slots: types.field_path(xa_node, "slots").ok()?.0,
    })
}

fn root_addr(v: &CValue) -> Option<u64> {
    v.address().or_else(|| v.as_u64())
}

/// Mirror of `stdlib::list_nodes` / `hlist_nodes` discovery: chase the
/// `->next` chain, recording each hop.
fn walk_chain(disco: &Disco<'_, '_>, head: u64, circular: bool) -> Walked {
    let mut w = Walked::default();
    let mut seen = HashSet::new();
    if circular {
        seen.insert(head);
    }
    w.touched.push((head, 8));
    let Some(mut cur) = disco.read_uint(head, 8) else {
        return w;
    };
    while cur != 0 && (!circular || cur != head) {
        if !seen.insert(cur) {
            break;
        }
        w.elems.push(cur);
        w.touched.push((cur, 8));
        match disco.read_uint(cur, 8) {
            Some(next) => cur = next,
            None => break,
        }
        if w.elems.len() >= MAX_ELEMS {
            break;
        }
    }
    w
}

/// Mirror of `stdlib::rbtree_nodes`: normalize the root, then in-order
/// walk reading both child pointers of every node.
fn walk_rbtree(disco: &Disco<'_, '_>, types: &TypeRegistry, root: &CValue) -> Walked {
    let mut w = Walked::default();
    let top = match root {
        CValue::LValue { addr, ty } => {
            let name = types.tag_name(*ty).unwrap_or("");
            match name {
                "rb_node" => Some(*addr),
                _ => {
                    w.touched.push((*addr, 8));
                    disco.read_uint(*addr, 8)
                }
            }
        }
        CValue::Ptr { addr, ty } => {
            let pointee = types.pointee(*ty).ok();
            let name = pointee.and_then(|p| types.tag_name(p)).unwrap_or("");
            match name {
                "rb_root_cached" | "rb_root" => {
                    w.touched.push((*addr, 8));
                    disco.read_uint(*addr, 8)
                }
                _ => Some(*addr),
            }
        }
        other => root_addr(other),
    };
    let Some(top) = top else { return w };
    let mut seen = HashSet::new();
    let mut stack: Vec<(u64, bool)> = if top == 0 { vec![] } else { vec![(top, false)] };
    while let Some((node, expanded)) = stack.pop() {
        if node == 0 {
            continue;
        }
        if expanded {
            w.elems.push(node);
            continue;
        }
        if !seen.insert(node) {
            break;
        }
        w.touched.push((node + 8, 16));
        let (Some(right), Some(left)) =
            (disco.read_uint(node + 8, 8), disco.read_uint(node + 16, 8))
        else {
            break;
        };
        if right != 0 {
            stack.push((right, false));
        }
        stack.push((node, true));
        if left != 0 {
            stack.push((left, false));
        }
        if w.elems.len() + stack.len() > MAX_ELEMS {
            break;
        }
    }
    w
}

/// Mirror of the single-lvalue arm of `stdlib::array_elems`: element
/// addresses of a C array.
fn walk_array(types: &TypeRegistry, root: &CValue) -> Walked {
    let mut w = Walked::default();
    let CValue::LValue { addr, ty } = root else {
        return w;
    };
    let TypeKind::Array { elem, len } = &types.get(*ty).kind else {
        return w;
    };
    let esz = types.size_of(*elem);
    if esz == 0 || *len == 0 {
        return w;
    }
    w.touched.push((*addr, esz * *len));
    for i in 0..*len {
        w.elems.push(addr + esz * i);
        if w.elems.len() >= MAX_ELEMS {
            break;
        }
    }
    w
}

/// Mirror of `stdlib::xarray_entries` discovery: entries in ascending
/// index order.
fn walk_xarray(disco: &Disco<'_, '_>, xa: u64, off: XaOffsets) -> Walked {
    let mut w = Walked::default();
    w.touched.push((xa + off.head, 8));
    let Some(head) = disco.read_uint(xa + off.head, 8) else {
        return w;
    };
    if head == 0 {
        return w;
    }
    if head & 3 != 2 || head <= 4096 {
        w.elems.push(head);
        return w;
    }
    let mut seen = HashSet::new();
    let mut stack: Vec<(u64, u64)> = vec![(head & !3, 0)];
    let mut entries: Vec<(u64, u64)> = Vec::new();
    while let Some((node, base)) = stack.pop() {
        if !seen.insert(node) {
            break;
        }
        w.touched.push((node + off.shift, 1));
        let Some(shift) = disco.read_uint(node + off.shift, 1) else {
            break;
        };
        w.touched.push((node + off.slots, 8 * 64));
        let mut ok = true;
        for slot in 0..64u64 {
            let Some(entry) = disco.read_uint(node + off.slots + 8 * slot, 8) else {
                ok = false;
                break;
            };
            if entry == 0 {
                continue;
            }
            let idx = base + (slot << shift);
            if entry & 3 == 2 && entry > 4096 && shift > 0 {
                stack.push((entry & !3, idx));
            } else {
                entries.push((idx, entry));
            }
        }
        if !ok {
            break;
        }
    }
    entries.sort_unstable_by_key(|&(idx, _)| idx);
    w.elems = entries.into_iter().map(|(_, e)| e).collect();
    w
}

fn discover(
    disco: &Disco<'_, '_>,
    types: &TypeRegistry,
    xa: Option<XaOffsets>,
    kind: CtorKind,
    root: &CValue,
) -> Walked {
    match kind {
        CtorKind::List | CtorKind::HList => match root_addr(root) {
            Some(head) => walk_chain(disco, head, kind == CtorKind::List),
            None => Walked::default(),
        },
        CtorKind::RBTree => walk_rbtree(disco, types, root),
        CtorKind::Array => walk_array(types, root),
        CtorKind::XArray => match (root_addr(root), xa) {
            (Some(addr), Some(off)) => walk_xarray(disco, addr, off),
            _ => Walked::default(),
        },
    }
}

/// A hop with its offsets resolved against the type registry.
struct ResolvedHop {
    off: u64,
    /// Load the pointer at `base + off`; otherwise the target is the
    /// field itself.
    deref: bool,
    anchor_off: u64,
    target_box: String,
}

/// A box type's layout, resolved once per execution.
struct BoxLayout {
    ctype: Option<TypeId>,
    reads: Vec<(u64, u64)>,
    hops: Vec<ResolvedHop>,
}

/// Resolve `ctype.member.path` anchors to their byte offset.
fn anchor_off(types: &TypeRegistry, anchor: Option<&str>) -> u64 {
    let Some((ctype, member)) = anchor.and_then(|a| a.split_once('.')) else {
        return 0;
    };
    types
        .find(ctype)
        .and_then(|ty| types.field_path(ty, member).ok())
        .map(|(off, _)| off)
        .unwrap_or(0)
}

/// Resolve field-read paths to `(offset, len)` pairs. A path crossing
/// a pointer resolves only up to the in-struct hop: try the full path,
/// fall back to its first segment.
fn resolve_reads(types: &TypeRegistry, ctype: TypeId, paths: &[String]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for path in paths {
        let resolved = types.field_path(ctype, path).ok().or_else(|| {
            let head = path.split('.').next()?;
            types.field_path(ctype, head).ok()
        });
        if let Some((off, fty)) = resolved {
            let len = types.size_of(fty).clamp(1, 8);
            out.push((off, len));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn box_layout(types: &TypeRegistry, info: &BoxInfo) -> BoxLayout {
    let ctype = types.find(&info.ctype);
    let reads = ctype
        .map(|ty| resolve_reads(types, ty, &info.reads))
        .unwrap_or_default();
    let mut hops = Vec::new();
    if let Some(ty) = ctype {
        for hop in &info.hops {
            let Ok((off, fty)) = types.field_path(ty, &hop.path) else {
                continue;
            };
            let deref = !hop.addr_of && matches!(types.get(fty).kind, TypeKind::Pointer(_));
            hops.push(ResolvedHop {
                off,
                deref,
                anchor_off: anchor_off(types, hop.anchor.as_deref()),
                target_box: hop.target_box.clone(),
            });
        }
    }
    BoxLayout { ctype, reads, hops }
}

/// Field layout of one walk node's element boxes.
struct ElemLayout {
    anchor_off: u64,
    reads: Vec<(u64, u64)>,
}

fn elem_layout(types: &TypeRegistry, info: &ElemInfo) -> ElemLayout {
    let reads = info
        .ctype
        .as_deref()
        .and_then(|c| types.find(c))
        .map(|ty| resolve_reads(types, ty, &info.reads))
        .unwrap_or_default();
    ElemLayout {
        anchor_off: anchor_off(types, info.anchor.as_deref()),
        reads,
    }
}

/// Execute a walk plan against a target: resolve seeds, run the
/// discovery walks wave by wave, follow pointer hops, fetch the
/// planner's merged spans, and record the plan counters on the target.
/// All failures (unresolvable roots, unreadable memory) skip work
/// rather than erroring — the interpreter that follows is the source
/// of truth.
pub fn execute(plan: &WalkPlan, target: &Target<'_>, helpers: &HelperRegistry) -> PlanReport {
    let mode = PlanMode::choose(target.cache_enabled(), target.sync_view().is_some());
    let mut report = PlanReport {
        parallel: mode == PlanMode::Parallel,
        ..PlanReport::default()
    };
    if mode == PlanMode::Disabled || plan.is_empty() {
        return report;
    }
    // From here on the plan owns prefetching: the distillers' ad-hoc
    // hints are suppressed for the rest of this extraction.
    target.set_plan_mode(true);
    let _plan_span = vtrace::span(
        target.tracer(),
        vtrace::SpanKind::Plan,
        format!(
            "plan({} nodes, {} seeds, {})",
            plan.nodes.len(),
            plan.seeds.len(),
            mode.as_str()
        ),
    );
    let types = target.types;
    let planner = SpanPlanner::for_profile(&target.profile());
    let xa = xa_offsets(types);
    let evaluator = Evaluator::new(target, helpers);
    let env: HashMap<String, CValue> = HashMap::new();
    let resolve_static = |src: &str| -> Option<CValue> { evaluator.eval_str_with(src, &env).ok() };
    // Main-thread reads (pointer hops): metered in serialized mode,
    // raw in parallel mode — either way sequential in schedule order.
    let main_disco = match mode {
        PlanMode::Parallel => Disco::Raw(target.sync_view().expect("parallel mode has sync view")),
        _ => Disco::Metered(target),
    };

    // Layouts resolved once (registry only, no wire traffic).
    let node_layouts: Vec<Option<ElemLayout>> = plan
        .nodes
        .iter()
        .map(|n| n.elem.as_ref().map(|e| elem_layout(types, e)))
        .collect();
    let mut box_layouts: HashMap<&str, BoxLayout> = HashMap::new();
    for (name, info) in &plan.boxes {
        box_layouts.insert(name.as_str(), box_layout(types, info));
    }

    let mut seen_walks: HashSet<(u8, u64)> = HashSet::new();
    let mut seen_objs: HashSet<(String, u64)> = HashSet::new();

    // Wave 0: top-level static walk roots plus object seeds.
    let mut frontier: Vec<Job> = Vec::new();
    for &id in &plan.top {
        if let RootSpec::Static(src) = &plan.nodes[id].root {
            if let Some(root) = resolve_static(src) {
                frontier.push(Job { node: id, root });
            }
        }
    }
    let mut batches: Vec<Batch> = Vec::new();
    for seed in &plan.seeds {
        let Some(addr) = resolve_static(&seed.src).as_ref().and_then(root_addr) else {
            continue;
        };
        batches.push(Batch {
            box_type: seed.box_type.clone(),
            bases: vec![addr.wrapping_sub(anchor_off(types, seed.anchor.as_deref()))],
            fetch_reads: true,
        });
    }

    let mut wave = 0;
    while (!frontier.is_empty() || !batches.is_empty()) && wave < MAX_WAVES {
        wave += 1;
        // Schedule: high expected fanout first (stable, so determinism
        // does not depend on the sort).
        frontier.sort_by_key(|j| std::cmp::Reverse(plan.nodes[j.node].est_fanout));
        // Dedup shared subwalks: same traversal kind, same resolved
        // root — one walk serves every pane that asked for it.
        let mut jobs: Vec<Job> = Vec::new();
        for job in frontier.drain(..) {
            let Some(addr) = root_addr(&job.root) else {
                continue;
            };
            if addr == 0 {
                continue;
            }
            if seen_walks.insert((plan.nodes[job.node].kind as u8, addr)) {
                jobs.push(job);
            } else {
                report.dedup_walks += 1;
            }
        }
        report.plan_nodes += jobs.len() as u64;
        if mode == PlanMode::Parallel && jobs.len() >= 2 {
            report.parallel_batches += 1;
        }

        // Discovery. Parallel mode overlaps the pointer chases across
        // worker threads over the raw sync view — the bytes all get
        // paid for below, where the merged spans are fetched in
        // deterministic job order on this thread.
        let walked: Vec<Walked> = match mode {
            PlanMode::Parallel => {
                let sv = target.sync_view().expect("parallel mode has a sync view");
                let n_workers = jobs.len().min(8);
                let mut results: Vec<Option<Walked>> = Vec::new();
                results.resize_with(jobs.len(), || None);
                let mut slots: Vec<(&Job, &mut Option<Walked>)> =
                    jobs.iter().zip(results.iter_mut()).collect();
                std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for chunk in chunked(std::mem::take(&mut slots), n_workers) {
                        handles.push(scope.spawn(move || {
                            let disco = Disco::Raw(sv);
                            for (job, slot) in chunk {
                                *slot = Some(discover(
                                    &disco,
                                    types,
                                    xa,
                                    plan.nodes[job.node].kind,
                                    &job.root,
                                ));
                            }
                        }));
                    }
                    for h in handles {
                        let _ = h.join();
                    }
                });
                results.into_iter().map(|r| r.unwrap_or_default()).collect()
            }
            _ => {
                let disco = Disco::Metered(target);
                jobs.iter()
                    .map(|job| {
                        let _span = vtrace::span(
                            target.tracer(),
                            vtrace::SpanKind::Plan,
                            format!("walk:{}", plan.nodes[job.node].label),
                        );
                        discover(&disco, types, xa, plan.nodes[job.node].kind, &job.root)
                    })
                    .collect()
            }
        };

        // Fetch: merge each job's touched ranges with its per-element
        // field reads and pull the spans, one packet per span, in job
        // order.
        for (job, w) in jobs.iter().zip(walked.iter()) {
            let node = &plan.nodes[job.node];
            let layout = &node_layouts[job.node];
            let mut ranges = w.touched.clone();
            if let Some(layout) = layout {
                for &elem in &w.elems {
                    let base = elem.wrapping_sub(layout.anchor_off);
                    if layout.reads.is_empty() {
                        ranges.push((base, 8));
                    } else {
                        for &(off, len) in &layout.reads {
                            ranges.push((base.wrapping_add(off), len));
                        }
                    }
                }
            }
            let _span = vtrace::span(
                target.tracer(),
                vtrace::SpanKind::Plan,
                format!("fetch:{} ({} elems)", node.label, w.elems.len()),
            );
            for (addr, len) in planner.merge(ranges) {
                report.span_packets += target.fetch_planned_span(addr, len);
            }
        }

        // Fan out: elements flow into the yielded box type's batch
        // (walks + hops) or spawn anonymous-body walks directly.
        let mut next: Vec<Job> = Vec::new();
        for (job, w) in jobs.iter().zip(walked.iter()) {
            let Some(elem) = &plan.nodes[job.node].elem else {
                continue;
            };
            let aoff = node_layouts[job.node]
                .as_ref()
                .map(|l| l.anchor_off)
                .unwrap_or(0);
            if let Some(b) = &elem.child_box {
                batches.push(Batch {
                    box_type: b.clone(),
                    bases: w.elems.iter().map(|e| e.wrapping_sub(aoff)).collect(),
                    fetch_reads: false,
                });
            }
            for &child_id in &elem.children {
                for &e in &w.elems {
                    let root = match &plan.nodes[child_id].root {
                        RootSpec::Elem => Some(CValue::Int {
                            value: e as i64,
                            ty: long_ty(types),
                        }),
                        RootSpec::Static(src) => resolve_static(src),
                        RootSpec::ElemField(_) => None,
                    };
                    if let Some(root) = root {
                        next.push(Job {
                            node: child_id,
                            root,
                        });
                    }
                }
            }
        }

        // Drain the object batches: each fresh (box type, base) spawns
        // the box's walks for the next wave, fetches its reads when
        // they were not covered by a walk, and follows its pointer
        // hops (which append further batches — drained this wave, so
        // hop chains settle without burning wave depth).
        let mut qi = 0;
        while qi < batches.len() {
            let batch = std::mem::replace(
                &mut batches[qi],
                Batch {
                    box_type: String::new(),
                    bases: Vec::new(),
                    fetch_reads: false,
                },
            );
            qi += 1;
            let Some(layout) = box_layouts.get(batch.box_type.as_str()) else {
                continue;
            };
            let info = &plan.boxes[&batch.box_type];
            let mut fresh: Vec<u64> = Vec::new();
            for &base in &batch.bases {
                if base == 0 {
                    continue;
                }
                if seen_objs.insert((batch.box_type.clone(), base)) {
                    fresh.push(base);
                } else {
                    // The object was already reached over another
                    // pointer path: its whole subtree is shared.
                    report.dedup_walks += 1.max(info.walks.len() as u64);
                }
            }
            if fresh.is_empty() {
                continue;
            }
            // Spawn the box's container walks per fresh object.
            for &walk_id in &info.walks {
                for &base in &fresh {
                    let root = match &plan.nodes[walk_id].root {
                        RootSpec::ElemField(path) => layout.ctype.and_then(|ty| {
                            let (off, fty) = types.field_path(ty, path).ok()?;
                            Some(CValue::LValue {
                                addr: base.wrapping_add(off),
                                ty: fty,
                            })
                        }),
                        RootSpec::Static(src) => resolve_static(src),
                        RootSpec::Elem => None,
                    };
                    if let Some(root) = root {
                        next.push(Job {
                            node: walk_id,
                            root,
                        });
                    }
                }
            }
            // Fetch the field reads of seed/hop objects.
            if batch.fetch_reads {
                let mut ranges: Vec<(u64, u64)> = Vec::new();
                for &base in &fresh {
                    if layout.reads.is_empty() {
                        ranges.push((base, 8));
                    } else {
                        for &(off, len) in &layout.reads {
                            ranges.push((base.wrapping_add(off), len));
                        }
                    }
                }
                let _span = vtrace::span(
                    target.tracer(),
                    vtrace::SpanKind::Plan,
                    format!("box:{} ({} objs)", batch.box_type, fresh.len()),
                );
                for (addr, len) in planner.merge(ranges) {
                    report.span_packets += target.fetch_planned_span(addr, len);
                }
            }
            // Follow pointer hops into further batches.
            for hop in &layout.hops {
                let mut bases = Vec::new();
                for &base in &fresh {
                    let field = base.wrapping_add(hop.off);
                    let tgt = if hop.deref {
                        match main_disco.read_uint(field, 8) {
                            Some(v) => v,
                            None => continue,
                        }
                    } else {
                        field
                    };
                    if tgt != 0 {
                        bases.push(tgt.wrapping_sub(hop.anchor_off));
                    }
                }
                if !bases.is_empty() {
                    batches.push(Batch {
                        box_type: hop.target_box.clone(),
                        bases,
                        fetch_reads: true,
                    });
                }
            }
        }
        batches.clear();
        frontier = next;
    }

    target.note_plan_walks(
        report.plan_nodes,
        report.dedup_walks,
        report.parallel_batches,
    );
    report
}

fn long_ty(types: &TypeRegistry) -> TypeId {
    types.find("long").expect("long interned")
}

/// Split `items` into at most `n` round-robin chunks (deterministic;
/// used only to bound worker-thread count, results are collected by
/// index).
fn chunked<T>(items: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let n = n.max(1);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    chunks.resize_with(n, Vec::new);
    for (i, item) in items.into_iter().enumerate() {
        chunks[i % n].push(item);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    const NESTED: &str = r#"
define Task as Box<task_struct> [
    Text pid, comm
    Link mm -> ${@this.mm}
    Container children: List(${&@this.children}).forEach |node| {
        yield Task<task_struct.sibling>(@node)
    }
]
tasks = List(${&init_task.tasks}).forEach |node| {
    yield Task<task_struct.tasks>(@node)
}
plot @tasks
"#;

    #[test]
    fn nested_recursive_program_compiles_to_linked_nodes() {
        let prog = parse_program(NESTED).unwrap();
        let plan = compile(&prog);
        assert_eq!(plan.top.len(), 1);
        let top = &plan.nodes[plan.top[0]];
        assert_eq!(top.kind, CtorKind::List);
        assert_eq!(top.root, RootSpec::Static("&init_task.tasks".into()));
        let elem = top.elem.as_ref().unwrap();
        assert_eq!(elem.ctype.as_deref(), Some("task_struct"));
        assert_eq!(elem.anchor.as_deref(), Some("task_struct.tasks"));
        assert!(elem.reads.contains(&"pid".to_string()));
        assert!(elem.reads.contains(&"mm".to_string()));
        assert_eq!(elem.child_box.as_deref(), Some("Task"));
        // The children walk inside Task links back to itself through
        // the box table, modelling unbounded recursion finitely.
        let task = &plan.boxes["Task"];
        assert_eq!(task.walks.len(), 1);
        let inner = &plan.nodes[task.walks[0]];
        assert_eq!(inner.root, RootSpec::ElemField("children".into()));
        assert_eq!(
            inner.elem.as_ref().unwrap().child_box.as_deref(),
            Some("Task")
        );
    }

    #[test]
    fn top_level_instantiate_becomes_a_seed() {
        let prog = parse_program(NESTED).unwrap();
        assert!(compile(&prog).seeds.is_empty());
        let src = r#"
define Task as Box<task_struct> [
    Text pid
    Container children: List(${&@this.children}).forEach |node| {
        yield Task<task_struct.sibling>(@node)
    }
]
root = Task(${&init_task})
plot @root
"#;
        let plan = compile(&parse_program(src).unwrap());
        assert!(plan.top.is_empty());
        assert_eq!(
            plan.seeds,
            vec![Seed {
                box_type: "Task".into(),
                anchor: None,
                src: "&init_task".into()
            }]
        );
        assert!(!plan.is_empty());
    }

    #[test]
    fn link_instantiations_compile_to_pointer_hops() {
        let src = r#"
define Signal as Box<signal_struct> [
    Text nr_threads
    Container shared_pending: List(${&@this.shared_pending.list}).forEach |n| {
        yield NULL
    }
]
define Task as Box<task_struct> [
    Text pid
    Link signal -> Signal(${@this.signal})
]
t = Task(${current_task})
plot @t
"#;
        let plan = compile(&parse_program(src).unwrap());
        let task = &plan.boxes["Task"];
        assert_eq!(
            task.hops,
            vec![Hop {
                path: "signal".into(),
                addr_of: false,
                target_box: "Signal".into(),
                anchor: None
            }]
        );
        let signal = &plan.boxes["Signal"];
        assert_eq!(signal.walks.len(), 1);
        assert_eq!(
            plan.nodes[signal.walks[0]].root,
            RootSpec::ElemField("shared_pending.list".into())
        );
    }

    #[test]
    fn foreach_param_roots_classify_as_elem() {
        let src = r#"
buckets = Array(${pid_hash}).forEach |bucket| {
    yield Box [
        Container chain: HList(@bucket).forEach |n| { yield NULL }
    ]
}
plot @buckets
"#;
        let prog = parse_program(src).unwrap();
        let plan = compile(&prog);
        assert_eq!(plan.top.len(), 1);
        let arr = &plan.nodes[plan.top[0]];
        assert_eq!(arr.kind, CtorKind::Array);
        let elem = arr.elem.as_ref().unwrap();
        assert!(elem.child_box.is_none());
        assert_eq!(elem.children.len(), 1);
        assert_eq!(plan.nodes[elem.children[0]].kind, CtorKind::HList);
        assert_eq!(plan.nodes[elem.children[0]].root, RootSpec::Elem);
    }

    #[test]
    fn unplannable_roots_are_skipped_not_errored() {
        let src = r#"
define Fd as Box<file> [ Text f_count ]
files = Array(${@this.fd}, ${@this.max_fds}).forEach |f| { yield Fd(@f) }
plot @files
"#;
        let prog = parse_program(src).unwrap();
        let plan = compile(&prog);
        // Two-arg array roots stay with the interpreter; the program
        // has no seed either.
        assert!(plan.is_empty());
    }

    #[test]
    fn select_from_plans_its_source_walk() {
        let src = r#"
define Task as Box<task_struct> [ Text pid ]
all = List(${&init_task.tasks}).forEach |n| {
    yield Task<task_struct.tasks>(@n)
}
picked = Array.selectFrom(List(${&init_task.tasks}).forEach |n| { yield NULL }, Task)
plot @picked
"#;
        let plan = compile(&parse_program(src).unwrap());
        // Both the standalone walk and the one inside selectFrom plan.
        assert_eq!(plan.top.len(), 2);
        assert!(plan
            .top
            .iter()
            .all(|&i| plan.nodes[i].kind == CtorKind::List));
    }

    #[test]
    fn select_from_ref_source_keeps_skip_path() {
        let src = r#"
define Task as Box<task_struct> [
    Text pid
    Container kids: List(${&@this.children}).forEach |n| { yield NULL }
]
t = Task(${&init_task})
picked = Array.selectFrom(@t, Task)
plot @picked
"#;
        let plan = compile(&parse_program(src).unwrap());
        // The `@t` source is a reference to an already-built box: the
        // selectFrom contributes no walk of its own, but the seed and
        // the box's inner walk still plan.
        assert!(plan.top.is_empty());
        assert_eq!(plan.seeds.len(), 1);
        assert_eq!(plan.boxes["Task"].walks.len(), 1);
    }

    #[test]
    fn this_field_path_rejects_fancy_expressions() {
        assert_eq!(
            this_field_path("&@this.children"),
            Some(("children".into(), true))
        );
        assert_eq!(
            this_field_path(" & @this.shared_pending.list"),
            Some(("shared_pending.list".into(), true))
        );
        assert_eq!(this_field_path("&@this.tasks[0]"), None);
        assert_eq!(this_field_path("@this.fd"), Some(("fd".into(), false)));
        assert_eq!(this_field_path("&@node->ma64.pivot"), None);
        assert_eq!(this_field_path("${x}"), None);
    }

    #[test]
    fn reads_collect_text_links_and_cexpr_mentions() {
        let src = r#"
define Zone as Box<zone> [
    Text name: ${@this.name}
    Text spanned_pages
    Link parent -> ${@this.parent->pid}
]
zs = List(${&zones}).forEach |n| { yield Zone<zone.lru>(@n) }
plot @zs
"#;
        let prog = parse_program(src).unwrap();
        let plan = compile(&prog);
        let elem = plan.nodes[plan.top[0]].elem.as_ref().unwrap();
        assert!(elem.reads.contains(&"name".to_string()));
        assert!(elem.reads.contains(&"spanned_pages".to_string()));
        assert!(elem.reads.contains(&"parent".to_string()));
    }
}
