//! ViewCL abstract syntax.

/// A parsed program: box definitions plus top-level statements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// `define Name as Box<ctype> …` declarations.
    pub defines: Vec<BoxDef>,
    /// Top-level assignments and `plot` statements, in order.
    pub stmts: Vec<Stmt>,
}

/// A `define Name as Box<ctype>` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxDef {
    /// Box-type name (`Task`).
    pub name: String,
    /// Underlying C struct tag (`task_struct`).
    pub ctype: String,
    /// Declared views; a bare `[ … ]` body becomes one `default` view.
    pub views: Vec<ViewDef>,
}

impl BoxDef {
    /// Find a view by name.
    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.iter().find(|v| v.name == name)
    }
}

/// One named view of a box definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    /// View name (`default`, `sched`, …).
    pub name: String,
    /// Parent view for `:parent => :name` inheritance.
    pub parent: Option<String>,
    /// Item declarations.
    pub items: Vec<ItemDef>,
    /// `where { a = …; b = … }` local bindings, in order.
    pub wheres: Vec<(String, RValue)>,
}

/// A display item inside a view.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemDef {
    /// `Text<decor> spec, spec, …`.
    Text {
        /// Optional display decorator (Table 1).
        decor: Option<String>,
        /// One or more text specs.
        specs: Vec<TextSpec>,
    },
    /// `Link name -> rvalue`.
    Link {
        /// Edge label.
        name: String,
        /// Target (must evaluate to a box or NULL).
        target: RValue,
    },
    /// `Container name: rvalue` (rvalue must evaluate to a sequence).
    Container {
        /// Container label.
        name: String,
        /// Member source.
        value: RValue,
    },
}

/// One text field: `pid` (path implies name) or `name: rvalue`.
#[derive(Debug, Clone, PartialEq)]
pub struct TextSpec {
    /// Display name.
    pub name: String,
    /// Value source; `None` means "read field path `name` off `@this`".
    pub expr: Option<RValue>,
}

/// Container constructors of the standard library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtorKind {
    /// Circular doubly linked `list_head`.
    List,
    /// `hlist_head` chain.
    HList,
    /// Red-black tree (accepts `rb_root`, `rb_root_cached` or `rb_node*`).
    RBTree,
    /// C array lvalue, or `(pointer, length)` pair.
    Array,
    /// Page-cache style xarray.
    XArray,
}

/// A right-hand-side value expression.
#[derive(Debug, Clone, PartialEq)]
pub enum RValue {
    /// `${ c-expression }`.
    CExpr(String),
    /// `@name` or `@name.field.path` — scope reference with optional
    /// member navigation.
    Ref(String),
    /// A bare field path off `@this` (text specs only).
    ThisPath(String),
    /// The literal `NULL` (no box).
    Null,
    /// `switch rvalue { case v, v: r … otherwise: r }`.
    Switch {
        /// Scrutinee.
        scrutinee: Box<RValue>,
        /// `(guards, result)` arms.
        cases: Vec<(Vec<RValue>, RValue)>,
        /// `otherwise` arm.
        otherwise: Option<Box<RValue>>,
    },
    /// `Ctor(args…)` with optional `.forEach |x| { … yield … }`.
    Ctor {
        /// Which container.
        kind: CtorKind,
        /// Constructor arguments.
        args: Vec<RValue>,
        /// The per-element body.
        for_each: Option<Box<ForEach>>,
    },
    /// `Array.selectFrom(@root, BoxType)` — distill reachable boxes.
    SelectFrom {
        /// Root value (box).
        source: Box<RValue>,
        /// Box-type label to collect.
        box_type: String,
    },
    /// `Name(arg)` / `Name<anchor.path>(arg)` — box instantiation.
    Instantiate {
        /// The defined box-type name.
        box_type: String,
        /// Optional `container_of` anchor: `ctype.member.path`.
        anchor: Option<String>,
        /// The object (or member) address expression.
        arg: Box<RValue>,
    },
    /// `Box [ items ] where { … }` — anonymous one-off box; an optional
    /// label (`Box List [ … ]`) names the virtual box for ViewQL.
    AnonBox {
        /// Display label (default `Box`).
        label: String,
        /// Items of the single default view.
        items: Vec<ItemDef>,
        /// Local bindings.
        wheres: Vec<(String, RValue)>,
    },
}

/// A `.forEach |param| { wheres… yield expr }` body.
#[derive(Debug, Clone, PartialEq)]
pub struct ForEach {
    /// The loop variable name (bound to each element).
    pub param: String,
    /// Bindings evaluated per element, before the yield.
    pub wheres: Vec<(String, RValue)>,
    /// The yielded expression (box / NULL / switch of those).
    pub yield_expr: RValue,
}

/// Top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name = rvalue`.
    Assign(String, RValue),
    /// `plot @name`.
    Plot(String),
}
