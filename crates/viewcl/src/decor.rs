//! Text decorators (paper Table 1): how a raw value is displayed.

use std::collections::HashMap;

use ktypes::{CValue, TypeKind};
use vbridge::Target;

/// A named set of bit flags for the `flag:<id>` decorator
/// (e.g. `vm` → `VM_READ | VM_WRITE | …`).
#[derive(Debug, Clone, Default)]
pub struct FlagSets {
    sets: HashMap<String, Vec<(String, u64)>>,
    emojis: HashMap<String, Vec<(u64, String)>>,
}

impl FlagSets {
    /// Create an empty registry with the built-in kernel sets.
    pub fn with_builtins() -> Self {
        let mut f = FlagSets::default();
        f.define(
            "vm",
            &[
                ("VM_READ", 0x1),
                ("VM_WRITE", 0x2),
                ("VM_EXEC", 0x4),
                ("VM_SHARED", 0x8),
                ("VM_GROWSDOWN", 0x100),
            ],
        );
        f.define(
            "page",
            &[
                ("PG_locked", 1 << 0),
                ("PG_uptodate", 1 << 2),
                ("PG_dirty", 1 << 3),
                ("PG_lru", 1 << 4),
            ],
        );
        f.define("pipe_buf", &[("PIPE_BUF_FLAG_CAN_MERGE", 0x10)]);
        f.define("swp", &[("SWP_USED", 0x1), ("SWP_WRITEOK", 0x2)]);
        f.define("task", &[("PF_KTHREAD", 0x0020_0000)]);
        // EMOJI sets: value → glyph (first match wins; `*` value 0 is the
        // fallback when nothing matched).
        f.define_emoji("lock", &[(1, "🔒"), (0, "🔓")]);
        f.define_emoji("state", &[(0, "🟢"), (1, "🟡"), (2, "🔴"), (4, "⏸️")]);
        f
    }

    /// Define or replace a flag set.
    pub fn define(&mut self, id: &str, flags: &[(&str, u64)]) {
        self.sets.insert(
            id.to_string(),
            flags.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        );
    }

    /// Define or replace an emoji mapping.
    pub fn define_emoji(&mut self, id: &str, map: &[(u64, &str)]) {
        self.emojis.insert(
            id.to_string(),
            map.iter().map(|(v, g)| (*v, g.to_string())).collect(),
        );
    }

    fn render_flags(&self, id: &str, value: u64) -> String {
        let Some(set) = self.sets.get(id) else {
            return format!("{value:#x}");
        };
        let names: Vec<&str> = set
            .iter()
            .filter(|(_, bit)| value & bit != 0)
            .map(|(n, _)| n.as_str())
            .collect();
        if names.is_empty() {
            "0".to_string()
        } else {
            names.join("|")
        }
    }

    fn render_emoji(&self, id: &str, value: u64) -> String {
        match self.emojis.get(id) {
            Some(map) => map
                .iter()
                .find(|(v, _)| *v == value)
                .map(|(_, g)| g.clone())
                .unwrap_or_else(|| format!("{value}")),
            None => format!("{value}"),
        }
    }
}

/// A parsed decorator, e.g. `u64:x`, `enum:maple_type`, `flag:vm`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decorator {
    /// Integer with a display base (`x` hex, `d` decimal, `b` binary, `o` octal).
    Int {
        /// Base character.
        base: char,
    },
    /// `bool`.
    Bool,
    /// `char`.
    Char,
    /// `enum:<type>` — render the enumerator name.
    Enum(String),
    /// `string` — the value is a `char *` / `char[]`; fetch the C string.
    Str,
    /// `raw_ptr` — raw pointer value in hex.
    RawPtr,
    /// `fptr` — resolve the function pointer to its symbol name.
    FunPtr,
    /// `flag:<id>` — render set bits as macro names.
    Flag(String),
    /// `emoji:<id>` — stateful glyph.
    Emoji(String),
}

impl Decorator {
    /// Parse the inside of `Text<…>`.
    pub fn parse(spec: &str) -> Option<Decorator> {
        let spec = spec.trim();
        Some(match spec {
            "bool" => Decorator::Bool,
            "char" => Decorator::Char,
            "string" => Decorator::Str,
            "raw_ptr" => Decorator::RawPtr,
            "fptr" => Decorator::FunPtr,
            _ => {
                let (head, tail) = spec.split_once(':')?;
                match head {
                    "enum" => Decorator::Enum(tail.to_string()),
                    "flag" => Decorator::Flag(tail.to_string()),
                    "emoji" => Decorator::Emoji(tail.to_string()),
                    // `u64:x`, `u32:d`, `int:b`, …
                    _ => Decorator::Int {
                        base: tail.chars().next()?,
                    },
                }
            }
        })
    }

    /// Render `value` under this decorator.
    pub fn render(&self, target: &Target<'_>, flags: &FlagSets, value: &CValue) -> String {
        let raw = raw_of(value);
        match self {
            Decorator::Int { base } => match base {
                'x' => format!("{:#x}", raw as u64),
                'b' => format!("{:#b}", raw as u64),
                'o' => format!("{:#o}", raw as u64),
                _ => format!("{raw}"),
            },
            Decorator::Bool => if raw != 0 { "true" } else { "false" }.to_string(),
            Decorator::Char => {
                let c = (raw as u8) as char;
                if c.is_ascii_graphic() || c == ' ' {
                    format!("'{c}'")
                } else {
                    format!("'\\x{:02x}'", raw as u8)
                }
            }
            Decorator::Enum(tyname) => {
                let name = target
                    .types
                    .find(tyname)
                    .and_then(|id| target.types.enum_def(id))
                    .and_then(|e| e.name_of(raw))
                    .map(str::to_string);
                name.unwrap_or_else(|| format!("{raw}"))
            }
            Decorator::Str => match value {
                CValue::Str(s) => s.clone(),
                CValue::LValue { addr, .. } | CValue::Ptr { addr, .. } => {
                    if *addr == 0 {
                        "(null)".to_string()
                    } else {
                        target
                            .read_cstr(*addr, 64)
                            .unwrap_or_else(|_| "<fault>".into())
                    }
                }
                _ => format!("{raw}"),
            },
            Decorator::RawPtr => format!("{:#x}", raw as u64),
            Decorator::FunPtr => {
                let addr = raw as u64;
                match target.symbols.name_at(addr) {
                    Some(n) => n.to_string(),
                    None if addr == 0 => "NULL".to_string(),
                    None => format!("{addr:#x}"),
                }
            }
            Decorator::Flag(id) => flags.render_flags(id, raw as u64),
            Decorator::Emoji(id) => flags.render_emoji(id, raw as u64),
        }
    }
}

/// Default rendering when no decorator is given.
pub fn render_default(target: &Target<'_>, value: &CValue) -> String {
    match value {
        CValue::Int { value, .. } => format!("{value}"),
        CValue::Ptr { addr, .. } => {
            if *addr == 0 {
                "NULL".into()
            } else {
                format!("{addr:#x}")
            }
        }
        CValue::LValue { addr, ty } => {
            // Scalar lvalues (a global integer like `jiffies`) print their
            // value, like GDB's `print`.
            match &target.types.get(*ty).kind {
                TypeKind::Prim(p) if p.size() > 0 => {
                    return match target.load(*addr, *ty) {
                        Ok(v) => render_default(target, &v),
                        Err(_) => "<fault>".into(),
                    };
                }
                TypeKind::Pointer(_) | TypeKind::Enum(_) => {
                    return match target.load(*addr, *ty) {
                        Ok(v) => render_default(target, &v),
                        Err(_) => "<fault>".into(),
                    };
                }
                _ => {}
            }
            // char arrays read as strings; other aggregates show type@addr.
            if let TypeKind::Array { elem, len } = &target.types.get(*ty).kind {
                if matches!(
                    &target.types.get(*elem).kind,
                    TypeKind::Prim(p) if *p == ktypes::Prim::Char || *p == ktypes::Prim::U8
                ) {
                    return target
                        .read_cstr(*addr, *len as usize)
                        .unwrap_or_else(|_| "<fault>".into());
                }
            }
            format!("{}@{addr:#x}", target.types.display_name(*ty))
        }
        CValue::Str(s) => s.clone(),
        CValue::Void => String::new(),
    }
}

fn raw_of(value: &CValue) -> i64 {
    value
        .as_int()
        .or_else(|| value.address().map(|a| a as i64))
        .unwrap_or(0)
}

/// The raw comparison value stored alongside the rendered text.
pub fn raw_for_query(value: &CValue) -> Option<i64> {
    match value {
        CValue::Int { value, .. } => Some(*value),
        CValue::Ptr { addr, .. } => Some(*addr as i64),
        CValue::LValue { addr, .. } => Some(*addr as i64),
        CValue::Str(_) | CValue::Void => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::workload::{build, WorkloadConfig};
    use vbridge::LatencyProfile;

    fn with_target<R>(f: impl FnOnce(&Target<'_>) -> R) -> R {
        let (img, _t, _r) = build(&WorkloadConfig::default()).finish();
        let target = Target::new(&img.mem, &img.types, &img.symbols, LatencyProfile::free());
        f(&target)
    }

    fn int(target: &Target<'_>, v: i64) -> CValue {
        CValue::Int {
            value: v,
            ty: target.types.find("long").unwrap(),
        }
    }

    #[test]
    fn parse_covers_table_1() {
        assert_eq!(
            Decorator::parse("u64:x"),
            Some(Decorator::Int { base: 'x' })
        );
        assert_eq!(Decorator::parse("bool"), Some(Decorator::Bool));
        assert_eq!(Decorator::parse("char"), Some(Decorator::Char));
        assert_eq!(
            Decorator::parse("enum:maple_type"),
            Some(Decorator::Enum("maple_type".into()))
        );
        assert_eq!(Decorator::parse("string"), Some(Decorator::Str));
        assert_eq!(Decorator::parse("raw_ptr"), Some(Decorator::RawPtr));
        assert_eq!(Decorator::parse("fptr"), Some(Decorator::FunPtr));
        assert_eq!(
            Decorator::parse("flag:vm"),
            Some(Decorator::Flag("vm".into()))
        );
        assert_eq!(
            Decorator::parse("emoji:lock"),
            Some(Decorator::Emoji("lock".into()))
        );
        assert_eq!(Decorator::parse(""), None);
    }

    #[test]
    fn integer_bases() {
        with_target(|t| {
            let f = FlagSets::with_builtins();
            let v = int(t, 255);
            assert_eq!(Decorator::Int { base: 'x' }.render(t, &f, &v), "0xff");
            assert_eq!(Decorator::Int { base: 'd' }.render(t, &f, &v), "255");
            assert_eq!(Decorator::Int { base: 'b' }.render(t, &f, &v), "0b11111111");
            assert_eq!(Decorator::Int { base: 'o' }.render(t, &f, &v), "0o377");
        });
    }

    #[test]
    fn bool_char_and_emoji() {
        with_target(|t| {
            let f = FlagSets::with_builtins();
            assert_eq!(Decorator::Bool.render(t, &f, &int(t, 0)), "false");
            assert_eq!(Decorator::Bool.render(t, &f, &int(t, 7)), "true");
            assert_eq!(Decorator::Char.render(t, &f, &int(t, b'A' as i64)), "'A'");
            assert_eq!(Decorator::Char.render(t, &f, &int(t, 1)), "'\\x01'");
            assert_eq!(
                Decorator::Emoji("lock".into()).render(t, &f, &int(t, 1)),
                "🔒"
            );
            assert_eq!(
                Decorator::Emoji("lock".into()).render(t, &f, &int(t, 0)),
                "🔓"
            );
        });
    }

    #[test]
    fn enum_names_resolve_through_registry() {
        with_target(|t| {
            let f = FlagSets::with_builtins();
            let d = Decorator::Enum("maple_type".into());
            assert_eq!(d.render(t, &f, &int(t, 1)), "maple_leaf_64");
            assert_eq!(d.render(t, &f, &int(t, 3)), "maple_arange_64");
            assert_eq!(
                d.render(t, &f, &int(t, 99)),
                "99",
                "unknown value prints raw"
            );
        });
    }

    #[test]
    fn flags_render_set_bits() {
        with_target(|t| {
            let f = FlagSets::with_builtins();
            let d = Decorator::Flag("vm".into());
            assert_eq!(d.render(t, &f, &int(t, 0x3)), "VM_READ|VM_WRITE");
            assert_eq!(d.render(t, &f, &int(t, 0)), "0");
            // Unknown set falls back to hex.
            let d = Decorator::Flag("nope".into());
            assert_eq!(d.render(t, &f, &int(t, 0x10)), "0x10");
        });
    }

    #[test]
    fn fptr_resolves_symbols() {
        with_target(|t| {
            let f = FlagSets::with_builtins();
            let addr = t.symbols.lookup("vmstat_update").unwrap().addr;
            let d = Decorator::FunPtr;
            assert_eq!(d.render(t, &f, &int(t, addr as i64)), "vmstat_update");
            assert_eq!(d.render(t, &f, &int(t, 0)), "NULL");
            assert_eq!(d.render(t, &f, &int(t, 0x1234)), "0x1234");
        });
    }

    #[test]
    fn default_render_loads_scalars_and_strings() {
        with_target(|t| {
            // jiffies is a u64 global: default render shows the value.
            let sym = t.symbols.lookup("jiffies").unwrap();
            let v = CValue::LValue {
                addr: sym.addr,
                ty: sym.ty.unwrap(),
            };
            let s = render_default(t, &v);
            assert!(s.parse::<u64>().is_ok(), "not a number: {s}");
            // init_task.comm is char[16]: default render reads the string.
            let task = t.symbols.lookup("init_task").unwrap();
            let task_ty = t.types.find("task_struct").unwrap();
            let (off, comm_ty) = t.types.field_path(task_ty, "comm").unwrap();
            let v = CValue::LValue {
                addr: task.addr + off,
                ty: comm_ty,
            };
            assert_eq!(render_default(t, &v), "swapper/0");
        });
    }
}
