//! ViewCL tokenizer.

use crate::{Result, VclError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// `@name(.path)*` reference (without the `@`).
    AtRef(String),
    /// `${ … }` C expression (inner text).
    CExpr(String),
    /// `<…>` specification (decorator, C type, anchor path; inner text).
    Spec(String),
    /// Integer literal.
    Num(i64),
    /// Punctuation.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
    /// Byte offset of the token's first character.
    pub pos: usize,
}

/// Tokenize a ViewCL source string.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Vec::new();
    let err = |line: u32, pos: usize, msg: &str| VclError::Parse {
        line,
        pos,
        msg: msg.to_string(),
    };

    macro_rules! push {
        ($t:expr, $pos:expr) => {
            out.push(SpannedTok {
                tok: $t,
                line,
                pos: $pos,
            })
        };
    }

    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '$' if i + 1 < b.len() && b[i + 1] == b'{' => {
                let start = i + 2;
                let mut depth = 1;
                let mut j = start;
                while j < b.len() && depth > 0 {
                    match b[j] {
                        b'{' => depth += 1,
                        b'}' => depth -= 1,
                        b'\n' => line += 1,
                        _ => {}
                    }
                    j += 1;
                }
                if depth != 0 {
                    return Err(err(line, i, "unterminated ${...}"));
                }
                push!(Tok::CExpr(src[start..j - 1].to_string()), i);
                i = j;
            }
            '@' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len()
                    && matches!(b[j] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_' )
                {
                    j += 1;
                }
                // Allow dotted paths: @node.mr64.slot — a dot must be
                // followed by an identifier character to be part of the
                // reference (so `@x.forEach` stops before `.forEach`).
                loop {
                    if j < b.len()
                        && b[j] == b'.'
                        && j + 1 < b.len()
                        && matches!(b[j + 1] as char, 'a'..='z' | 'A'..='Z' | '_')
                    {
                        let word_start = j + 1;
                        let mut k = word_start;
                        while k < b.len()
                            && matches!(b[k] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                        {
                            k += 1;
                        }
                        let word = &src[word_start..k];
                        if word == "forEach" || word == "selectFrom" {
                            break;
                        }
                        j = k;
                        // Optional [number] indices.
                        while j < b.len() && b[j] == b'[' {
                            let mut k = j + 1;
                            while k < b.len() && b[k] != b']' {
                                k += 1;
                            }
                            if k == b.len() {
                                return Err(err(line, j, "unterminated index in @ref"));
                            }
                            j = k + 1;
                        }
                    } else {
                        break;
                    }
                }
                if j == start {
                    return Err(err(line, i, "dangling `@`"));
                }
                push!(Tok::AtRef(src[start..j].to_string()), i);
                i = j;
            }
            '<' => {
                // Heuristic spec scan: take `<...>` as a Spec when the
                // contents look like a type/decorator/path (no newline,
                // only word chars, ':', '.', '*', and spaces).
                let mut j = i + 1;
                let mut ok = false;
                while j < b.len() {
                    let cc = b[j] as char;
                    if cc == '>' {
                        ok = true;
                        break;
                    }
                    if !(cc.is_ascii_alphanumeric()
                        || matches!(cc, '_' | ':' | '.' | '*' | ' ' | '[' | ']'))
                    {
                        break;
                    }
                    j += 1;
                }
                if ok {
                    push!(Tok::Spec(src[i + 1..j].trim().to_string()), i);
                    i = j + 1;
                } else {
                    push!(Tok::Punct("<"), i);
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                if c == '0' && i + 1 < b.len() && (b[i + 1] | 32) == b'x' {
                    i += 2;
                    while i < b.len() && (b[i] as char).is_ascii_hexdigit() {
                        i += 1;
                    }
                    let v = u64::from_str_radix(&src[start + 2..i], 16)
                        .map_err(|_| err(line, start, "bad hex literal"))?;
                    push!(Tok::Num(v as i64), start);
                } else {
                    while i < b.len() && (b[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let v: i64 = src[start..i]
                        .parse()
                        .map_err(|_| err(line, start, "bad literal"))?;
                    push!(Tok::Num(v), start);
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && matches!(b[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                {
                    i += 1;
                }
                push!(Tok::Ident(src[start..i].to_string()), start);
            }
            _ => {
                let two = if i + 1 < b.len() { &src[i..i + 2] } else { "" };
                if two == "->" {
                    push!(Tok::Punct("->"), i);
                    i += 2;
                    continue;
                }
                if two == "=>" {
                    push!(Tok::Punct("=>"), i);
                    i += 2;
                    continue;
                }
                let p: &'static str = match c {
                    '[' => "[",
                    ']' => "]",
                    '{' => "{",
                    '}' => "}",
                    '(' => "(",
                    ')' => ")",
                    ':' => ":",
                    ',' => ",",
                    '=' => "=",
                    '|' => "|",
                    '.' => ".",
                    '>' => ">",
                    _ => return Err(err(line, i, &format!("unexpected character `{c}`"))),
                };
                push!(Tok::Punct(p), i);
                i += 1;
            }
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
        pos: b.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn cexpr_and_refs() {
        let t = toks("root = ${cpu_rq(0)->cfs.tasks_timeline}");
        assert_eq!(
            t,
            vec![
                Tok::Ident("root".into()),
                Tok::Punct("="),
                Tok::CExpr("cpu_rq(0)->cfs.tasks_timeline".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn at_ref_stops_before_foreach() {
        let t = toks("@root.forEach |node|");
        assert_eq!(t[0], Tok::AtRef("root".into()));
        assert_eq!(t[1], Tok::Punct("."));
        assert_eq!(t[2], Tok::Ident("forEach".into()));
    }

    #[test]
    fn dotted_at_ref_with_index() {
        let t = toks("@node.mr64.slot[3]");
        assert_eq!(t[0], Tok::AtRef("node.mr64.slot[3]".into()));
    }

    #[test]
    fn specs_vs_comparison() {
        let t = toks("Box<task_struct>");
        assert_eq!(t[1], Tok::Spec("task_struct".into()));
        let t = toks("Text<u64:x> vm_start");
        assert_eq!(t[1], Tok::Spec("u64:x".into()));
        let t = toks("Task<task_struct.se.run_node>(@node)");
        assert_eq!(t[1], Tok::Spec("task_struct.se.run_node".into()));
    }

    #[test]
    fn comments_and_lines() {
        let spanned = lex("a = @b // comment\nplot @a").unwrap();
        let plot_line = spanned
            .iter()
            .find(|s| matches!(&s.tok, Tok::Ident(i) if i == "plot"))
            .unwrap()
            .line;
        assert_eq!(plot_line, 2);
    }

    #[test]
    fn nested_braces_in_cexpr() {
        let t = toks("x = ${foo({1,2})}");
        assert_eq!(t[2], Tok::CExpr("foo({1,2})".into()));
    }

    #[test]
    fn crlf_input_lexes_like_lf() {
        // Windows line endings: `\r` is plain whitespace, `\n` still
        // advances the line counter, and a comment swallows its `\r`.
        let unix = lex("a = @b\nplot @a\n").unwrap();
        let dos = lex("a = @b\r\nplot @a\r\n").unwrap();
        assert_eq!(
            unix.iter().map(|s| &s.tok).collect::<Vec<_>>(),
            dos.iter().map(|s| &s.tok).collect::<Vec<_>>()
        );
        assert_eq!(
            unix.iter().map(|s| s.line).collect::<Vec<_>>(),
            dos.iter().map(|s| s.line).collect::<Vec<_>>()
        );
        let commented = lex("a = @b // trailing\r\nplot @a").unwrap();
        let plot = commented
            .iter()
            .find(|s| matches!(&s.tok, Tok::Ident(i) if i == "plot"))
            .unwrap();
        assert_eq!(plot.line, 2);
    }

    #[test]
    fn trailing_comment_without_newline_hits_eof_cleanly() {
        let t = toks("plot @a // no newline after this comment");
        assert_eq!(
            t,
            vec![Tok::Ident("plot".into()), Tok::AtRef("a".into()), Tok::Eof]
        );
        // A file that is nothing but a comment lexes to EOF alone.
        assert_eq!(toks("// only a comment"), vec![Tok::Eof]);
    }
}
