//! ViewCL — the View Construction Language (paper §2.2, §4.1).
//!
//! ViewCL programs declare *what to plot*: `Box` definitions prune a C
//! struct down to the fields of interest (with multiple inheritable
//! views), dot-paths flatten indirection chains, and container
//! constructors (`List`, `RBTree`, `Array`, `XArray`, `HList`) distill
//! node-pointer structures into sequences/sets. Evaluating a program over
//! a [`vbridge::Target`] traverses the live object graph and produces a
//! [`vgraph::Graph`] for ViewQL and the visualizer.
//!
//! The concrete syntax follows the paper's listings:
//!
//! ```text
//! define Task as Box<task_struct> [
//!     Text pid, comm
//!     Text ppid: parent.pid
//!     Text<string> state: ${task_state(@this)}
//!     Text se.vruntime
//! ]
//! root = ${cpu_rq(0)->cfs.tasks_timeline}
//! sched_tree = RBTree(@root).forEach |node| {
//!     yield Task<task_struct.se.run_node>(@node)
//! }
//! plot @sched_tree
//! ```

mod ast;
mod decor;
mod interp;
mod lexer;
mod parser;
pub mod plan;
mod stdlib;

pub use ast::*;
pub use decor::{Decorator, FlagSets};
pub use interp::{Interp, Value};
pub use parser::parse_program;

/// Errors produced while parsing or evaluating ViewCL.
#[derive(Debug, Clone, PartialEq)]
pub enum VclError {
    /// Lexing/parsing failed.
    Parse {
        /// 1-based source line.
        line: u32,
        /// Byte offset of the offending token/character.
        pos: usize,
        /// Description.
        msg: String,
    },
    /// Evaluation failed.
    Eval(String),
    /// A bridge (target/expression) operation failed.
    Bridge(vbridge::BridgeError),
}

impl std::fmt::Display for VclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VclError::Parse { line, pos, msg } => write!(
                f,
                "viewcl parse error {} (line {line}): {msg}",
                vtrace::diag::at_byte(*pos)
            ),
            VclError::Eval(m) => write!(f, "viewcl evaluation error: {m}"),
            VclError::Bridge(e) => write!(f, "viewcl: {e}"),
        }
    }
}

impl std::error::Error for VclError {}

impl From<vbridge::BridgeError> for VclError {
    fn from(e: vbridge::BridgeError) -> Self {
        VclError::Bridge(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, VclError>;

/// Count the non-blank, non-comment source lines of a ViewCL program —
/// the LoC metric of the paper's Table 2.
pub fn loc_of(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}
