//! Standard-library container traversals (the *distill* operators).
//!
//! Each traversal reads raw target memory through the metered bridge, so
//! container walks contribute to the Table 4 cost model exactly like
//! GDB-driven walks do in the paper.
//!
//! All walks are corruption-tolerant: a cross-linked list, a dangling
//! `->next`, or a freed maple node stops the walk with a [`Truncation`]
//! instead of an error or an unbounded spin. The interpreter renders the
//! truncation as a diagnostic box so a corrupted image still produces a
//! plot — with the damage annotated — rather than no plot at all.

use std::collections::HashSet;

use ktypes::{CValue, TypeKind};
use vbridge::{ReadPlan, Target};

use crate::{Result, VclError};

/// Backstop bound on container traversal (visited-set cycle detection
/// catches corruption long before this; the bound guards pathological
/// images whose every node is distinct).
const MAX_ELEMS: usize = 1_000_000;

/// Why a container walk stopped before its natural end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncReason {
    /// A node was visited twice without passing through the head — a
    /// cross-link that bypasses the terminator.
    Cycle,
    /// A pointer led into unmapped memory (use-after-free, wild pointer).
    Fault,
    /// The `MAX_ELEMS` backstop fired.
    Bound,
}

/// A truncated traversal: where and why the walk gave up. The elements
/// collected up to that point are still returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Truncation {
    /// What stopped the walk.
    pub reason: TruncReason,
    /// The offending address (revisited node, unreadable node, or the
    /// last node examined).
    pub addr: u64,
}

impl Truncation {
    /// Human-readable diagnostic, e.g.
    /// `List truncated after 4 elems: cycle back to 0x2000`.
    pub fn describe(&self, what: &str, elems: usize) -> String {
        let why = match self.reason {
            TruncReason::Cycle => format!("cycle back to {:#x}", self.addr),
            TruncReason::Fault => format!("unreadable memory at {:#x}", self.addr),
            TruncReason::Bound => format!("element bound hit at {:#x}", self.addr),
        };
        format!("{what} truncated after {elems} elems: {why}")
    }
}

/// Result of an xarray walk: `(index, entry)` pairs in ascending index
/// order, plus the truncation diagnostic if the walk gave up early.
pub type XarrayWalk = (Vec<(u64, u64)>, Option<Truncation>);

fn addr_of(v: &CValue, what: &str) -> Result<u64> {
    v.address()
        .or_else(|| v.as_u64())
        .ok_or_else(|| VclError::Eval(format!("{what}: expected an address, got {v:?}")))
}

/// Walk a circular `list_head`, returning node addresses (head excluded)
/// and a truncation note if the list is corrupted.
pub fn list_nodes(
    target: &Target<'_>,
    head_val: &CValue,
) -> Result<(Vec<u64>, Option<Truncation>)> {
    let head = addr_of(head_val, "List")?;
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    seen.insert(head);
    let mut cur = match target.read_uint(head, 8) {
        Ok(v) => v,
        Err(_) => {
            return Ok((
                out,
                Some(Truncation {
                    reason: TruncReason::Fault,
                    addr: head,
                }),
            ))
        }
    };
    while cur != head && cur != 0 {
        if !seen.insert(cur) {
            return Ok((
                out,
                Some(Truncation {
                    reason: TruncReason::Cycle,
                    addr: cur,
                }),
            ));
        }
        out.push(cur);
        // The consumer is about to render the object embedding this
        // node: hint the bridge to pull the surrounding bytes (covers
        // the ->next hop below too). No-op on uncached targets.
        target.prefetch(cur, 128);
        let node = cur;
        cur = match target.read_uint(cur, 8) {
            Ok(v) => v,
            Err(_) => {
                return Ok((
                    out,
                    Some(Truncation {
                        reason: TruncReason::Fault,
                        addr: node,
                    }),
                ))
            }
        };
        if out.len() >= MAX_ELEMS {
            return Ok((
                out,
                Some(Truncation {
                    reason: TruncReason::Bound,
                    addr: cur,
                }),
            ));
        }
    }
    Ok((out, None))
}

/// Walk an `hlist_head`, returning node addresses and a truncation note
/// if the chain is corrupted.
pub fn hlist_nodes(
    target: &Target<'_>,
    head_val: &CValue,
) -> Result<(Vec<u64>, Option<Truncation>)> {
    let head = addr_of(head_val, "HList")?;
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    let mut cur = match target.read_uint(head, 8) {
        Ok(v) => v,
        Err(_) => {
            return Ok((
                out,
                Some(Truncation {
                    reason: TruncReason::Fault,
                    addr: head,
                }),
            ))
        }
    };
    while cur != 0 {
        if !seen.insert(cur) {
            return Ok((
                out,
                Some(Truncation {
                    reason: TruncReason::Cycle,
                    addr: cur,
                }),
            ));
        }
        out.push(cur);
        target.prefetch(cur, 128);
        let node = cur;
        cur = match target.read_uint(cur, 8) {
            Ok(v) => v,
            Err(_) => {
                return Ok((
                    out,
                    Some(Truncation {
                        reason: TruncReason::Fault,
                        addr: node,
                    }),
                ))
            }
        };
        if out.len() >= MAX_ELEMS {
            return Ok((
                out,
                Some(Truncation {
                    reason: TruncReason::Bound,
                    addr: cur,
                }),
            ));
        }
    }
    Ok((out, None))
}

/// In-order walk of a red-black tree. Accepts an `rb_root`,
/// `rb_root_cached`, `rb_node *` or raw node address. A parent-pointer
/// cycle or an unreadable node truncates the walk.
pub fn rbtree_nodes(
    target: &Target<'_>,
    root_val: &CValue,
) -> Result<(Vec<u64>, Option<Truncation>)> {
    // Normalize to the top rb_node address.
    let top = match root_val {
        CValue::LValue { addr, ty } => {
            let name = target.types.tag_name(*ty).unwrap_or("");
            match name {
                "rb_root_cached" | "rb_root" => target.read_uint(*addr, 8),
                "rb_node" => Ok(*addr),
                _ => target.read_uint(*addr, 8),
            }
        }
        CValue::Ptr { addr, ty } => {
            let pointee = target.types.pointee(*ty).ok();
            let name = pointee.and_then(|p| target.types.tag_name(p)).unwrap_or("");
            match name {
                "rb_root_cached" | "rb_root" => target.read_uint(*addr, 8),
                _ => Ok(*addr),
            }
        }
        other => Ok(addr_of(other, "RBTree")?),
    };
    let top = match top {
        Ok(t) => t,
        Err(_) => {
            let addr = addr_of(root_val, "RBTree").unwrap_or(0);
            return Ok((
                Vec::new(),
                Some(Truncation {
                    reason: TruncReason::Fault,
                    addr,
                }),
            ));
        }
    };
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    // Iterative in-order with an explicit stack (kernel trees can be deep).
    let mut stack: Vec<(u64, bool)> = if top == 0 { vec![] } else { vec![(top, false)] };
    while let Some((node, expanded)) = stack.pop() {
        if node == 0 {
            continue;
        }
        if expanded {
            out.push(node);
            continue;
        }
        if !seen.insert(node) {
            return Ok((
                out,
                Some(Truncation {
                    reason: TruncReason::Cycle,
                    addr: node,
                }),
            ));
        }
        // The two child pointers are adjacent: batch them so the bridge
        // coalesces the pair into one wire span.
        let mut plan = ReadPlan::new();
        plan.add(node + 8, 8);
        plan.add(node + 16, 8);
        let bufs = match target.read_many(&plan) {
            Ok(b) => b,
            Err(_) => {
                return Ok((
                    out,
                    Some(Truncation {
                        reason: TruncReason::Fault,
                        addr: node,
                    }),
                ))
            }
        };
        let right = ktypes::read_uint(&bufs[0], 8);
        let left = ktypes::read_uint(&bufs[1], 8);
        if right != 0 {
            stack.push((right, false));
        }
        stack.push((node, true));
        if left != 0 {
            stack.push((left, false));
        }
        if out.len() + stack.len() > MAX_ELEMS {
            return Ok((
                out,
                Some(Truncation {
                    reason: TruncReason::Bound,
                    addr: node,
                }),
            ));
        }
    }
    Ok((out, None))
}

/// Elements of a C array lvalue, or of a `(pointer, length)` pair. An
/// element load that faults truncates the result (the array may live in
/// a freed node).
pub fn array_elems(
    target: &Target<'_>,
    args: &[CValue],
) -> Result<(Vec<CValue>, Option<Truncation>)> {
    match args {
        [CValue::LValue { addr, ty }] => match &target.types.get(*ty).kind {
            TypeKind::Array { elem, len } => {
                let esz = target.types.size_of(*elem);
                // The whole array is about to be loaded element-wise.
                target.prefetch(*addr, esz * *len);
                let mut out = Vec::with_capacity(*len as usize);
                for i in 0..*len {
                    match target.load(addr + esz * i, *elem) {
                        Ok(v) => out.push(v),
                        Err(_) => {
                            return Ok((
                                out,
                                Some(Truncation {
                                    reason: TruncReason::Fault,
                                    addr: addr + esz * i,
                                }),
                            ))
                        }
                    }
                }
                Ok((out, None))
            }
            _ => Err(VclError::Eval(format!(
                "Array: `{}` is not an array",
                target.types.display_name(*ty)
            ))),
        },
        [ptr, len] => {
            let base = addr_of(ptr, "Array")?;
            let len = match len {
                CValue::LValue { addr, ty } if target.types.size_of(*ty) <= 8 => {
                    let size = target.types.size_of(*ty).max(1) as usize;
                    CValue::Int {
                        value: target.read_uint(*addr, size)? as i64,
                        ty: *ty,
                    }
                }
                other => other.clone(),
            };
            let n = len
                .as_u64()
                .ok_or_else(|| VclError::Eval("Array: length must be integer".into()))?;
            let elem_ty = match ptr {
                CValue::Ptr { ty, .. } => target.types.pointee(*ty).ok(),
                _ => None,
            };
            let mut out = Vec::with_capacity(n as usize);
            match elem_ty {
                Some(ty) if target.types.size_of(ty) > 0 => {
                    let esz = target.types.size_of(ty);
                    target.prefetch(base, esz * n);
                    for i in 0..n {
                        match target.load(base + esz * i, ty) {
                            Ok(v) => out.push(v),
                            Err(_) => {
                                return Ok((
                                    out,
                                    Some(Truncation {
                                        reason: TruncReason::Fault,
                                        addr: base + esz * i,
                                    }),
                                ))
                            }
                        }
                    }
                }
                _ => {
                    // Untyped: treat as an array of 8-byte words.
                    target.prefetch(base, 8 * n);
                    let word_ty = target
                        .types
                        .find("unsigned long")
                        .ok_or_else(|| VclError::Eval("u64 not interned".into()))?;
                    for i in 0..n {
                        match target.read_uint(base + 8 * i, 8) {
                            Ok(v) => out.push(CValue::Int {
                                value: v as i64,
                                ty: word_ty,
                            }),
                            Err(_) => {
                                return Ok((
                                    out,
                                    Some(Truncation {
                                        reason: TruncReason::Fault,
                                        addr: base + 8 * i,
                                    }),
                                ))
                            }
                        }
                    }
                }
            }
            Ok((out, None))
        }
        _ => Err(VclError::Eval("Array takes 1 or 2 arguments".into())),
    }
}

/// Walk an xarray (`struct xarray` lvalue), yielding `(index, entry)` for
/// every non-NULL stored entry. Corrupted interior nodes truncate the
/// walk rather than erroring.
pub fn xarray_entries(target: &Target<'_>, xa_val: &CValue) -> Result<XarrayWalk> {
    let xa = addr_of(xa_val, "XArray")?;
    let xarray_ty = target
        .types
        .find("xarray")
        .ok_or_else(|| VclError::Eval("xarray type not registered".into()))?;
    let (head_off, _) = target
        .types
        .field_path(xarray_ty, "xa_head")
        .map_err(vbridge::BridgeError::from)?;
    let mut out = Vec::new();
    let head = match target.read_uint(xa + head_off, 8) {
        Ok(h) => h,
        Err(_) => {
            return Ok((
                out,
                Some(Truncation {
                    reason: TruncReason::Fault,
                    addr: xa + head_off,
                }),
            ))
        }
    };
    if head == 0 {
        return Ok((out, None));
    }
    if head & 3 != 2 || head <= 4096 {
        out.push((0, head));
        return Ok((out, None));
    }
    let xa_node = target
        .types
        .find("xa_node")
        .ok_or_else(|| VclError::Eval("xa_node type not registered".into()))?;
    let (shift_off, _) = target
        .types
        .field_path(xa_node, "shift")
        .map_err(vbridge::BridgeError::from)?;
    let (slots_off, _) = target
        .types
        .field_path(xa_node, "slots")
        .map_err(vbridge::BridgeError::from)?;

    let mut seen = HashSet::new();
    let mut stack: Vec<(u64, u64)> = vec![(head & !3, 0)];
    let mut trunc = None;
    while let Some((node, base)) = stack.pop() {
        if !seen.insert(node) {
            trunc = Some(Truncation {
                reason: TruncReason::Cycle,
                addr: node,
            });
            break;
        }
        let shift = match target.read_uint(node + shift_off, 1) {
            Ok(s) => s,
            Err(_) => {
                trunc = Some(Truncation {
                    reason: TruncReason::Fault,
                    addr: node,
                });
                break;
            }
        };
        // All 64 slots will be inspected: hint the span, then batch the
        // slot reads so they coalesce into minimal wire packets.
        target.prefetch(node + slots_off, 8 * 64);
        let mut plan = ReadPlan::new();
        for slot in 0..64u64 {
            plan.add(node + slots_off + 8 * slot, 8);
        }
        let bufs = match target.read_many(&plan) {
            Ok(b) => b,
            Err(_) => {
                trunc = Some(Truncation {
                    reason: TruncReason::Fault,
                    addr: node,
                });
                break;
            }
        };
        for slot in 0..64u64 {
            let entry = ktypes::read_uint(&bufs[slot as usize], 8);
            if entry == 0 {
                continue;
            }
            let idx_base = base + (slot << shift);
            if entry & 3 == 2 && entry > 4096 && shift > 0 {
                stack.push((entry & !3, idx_base));
            } else {
                out.push((idx_base, entry));
            }
        }
    }
    out.sort_unstable_by_key(|&(idx, _)| idx);
    Ok((out, trunc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::image::KernelBuilder;
    use ksim::structops;
    use vbridge::{LatencyProfile, Target};

    struct Fx {
        kb: KernelBuilder,
    }

    fn fixture() -> Fx {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        // Register the vfs types so XArray walks have xa_node available.
        let _ = ksim::vfs::register_types(&mut kb.types, &common);
        let _ = ksim::pagecache::register_types(&mut kb.types, &common);
        kb.types.ensure_pointers();
        Fx { kb }
    }

    fn target(fx: &Fx) -> Target<'_> {
        Target::new(
            &fx.kb.mem,
            &fx.kb.types,
            &fx.kb.symbols,
            LatencyProfile::free(),
        )
    }

    fn long_val(fx: &Fx, v: u64) -> CValue {
        CValue::Int {
            value: v as i64,
            ty: fx.kb.types.find("long").unwrap(),
        }
    }

    #[test]
    fn corrupted_list_truncates_with_cycle_diagnostic() {
        let mut fx = fixture();
        // A list whose node points at itself (but is not the head): the
        // walk reports a cycle after the first element instead of
        // spinning until the element bound.
        fx.kb.mem.map(0x1000, 16);
        fx.kb.mem.map(0x2000, 16);
        structops::list_init(&mut fx.kb.mem, 0x1000);
        structops::list_add_tail(&mut fx.kb.mem, 0x2000, 0x1000);
        // Corrupt: node→next = node.
        fx.kb.mem.write_uint(0x2000, 8, 0x2000);
        let head = long_val(&fx, 0x1000);
        let t = target(&fx);
        let (nodes, trunc) = list_nodes(&t, &head).unwrap();
        assert_eq!(nodes, vec![0x2000]);
        let trunc = trunc.expect("cycle must be flagged");
        assert_eq!(trunc.reason, TruncReason::Cycle);
        assert_eq!(trunc.addr, 0x2000);
        // Detection costs O(cycle) reads, not O(MAX_ELEMS).
        assert!(t.stats().reads < 10, "cycle found in a handful of reads");
    }

    #[test]
    fn list_through_unmapped_node_truncates_with_fault() {
        let mut fx = fixture();
        fx.kb.mem.map(0x1000, 16);
        structops::list_init(&mut fx.kb.mem, 0x1000);
        // Head points into unmapped memory: a dangling ->next.
        fx.kb.mem.write_uint(0x1000, 8, 0xdead_0000);
        let head = long_val(&fx, 0x1000);
        let t = target(&fx);
        let (nodes, trunc) = list_nodes(&t, &head).unwrap();
        // The dangling node is still surfaced (its fields will render as
        // errors), and the truncation names it.
        assert_eq!(nodes, vec![0xdead_0000]);
        let trunc = trunc.expect("fault must be flagged");
        assert_eq!(trunc.reason, TruncReason::Fault);
        assert_eq!(trunc.addr, 0xdead_0000);
        assert!(t.stats().faults >= 1, "the wild read is metered");
    }

    #[test]
    fn cross_linked_rbtree_truncates_with_cycle() {
        let mut fx = fixture();
        // Three nodes; right child of the root points back at the root.
        for a in [0x5000u64, 0x5020, 0x5040] {
            fx.kb.mem.map(a, 24);
        }
        fx.kb.mem.write_uint(0x5000 + 16, 8, 0x5020); // root.left
        fx.kb.mem.write_uint(0x5000 + 8, 8, 0x5040); // root.right
        fx.kb.mem.write_uint(0x5040 + 8, 8, 0x5000); // right.right -> root!
        let t = target(&fx);
        let root = long_val(&fx, 0x5000);
        let (nodes, trunc) = rbtree_nodes(&t, &root).unwrap();
        assert!(nodes.len() <= 3);
        assert_eq!(trunc.unwrap().reason, TruncReason::Cycle);
    }

    #[test]
    fn two_arg_array_with_typed_pointer_loads_elements() {
        let mut fx = fixture();
        // An array of 3 u64s behind a pointer.
        fx.kb.mem.map(0x4000, 24);
        for i in 0..3u64 {
            fx.kb.mem.write_uint(0x4000 + 8 * i, 8, 100 + i);
        }
        let t = target(&fx);
        let u64_ty = t.types.find("unsigned long").unwrap();
        let pty = t.types.find_pointer_to(u64_ty).unwrap();
        let ptr = CValue::Ptr {
            addr: 0x4000,
            ty: pty,
        };
        let len = CValue::Int {
            value: 3,
            ty: u64_ty,
        };
        let (elems, trunc) = array_elems(&t, &[ptr, len]).unwrap();
        assert!(trunc.is_none());
        let got: Vec<i64> = elems.iter().filter_map(|e| e.as_int()).collect();
        assert_eq!(got, vec![100, 101, 102]);
    }

    #[test]
    fn array_into_unmapped_memory_truncates() {
        let mut fx = fixture();
        // The array straddles a page boundary with the tail page unmapped:
        // only the first 2 of 4 claimed elements are readable.
        let base = 0x5000 - 16;
        fx.kb.mem.map(0x4000, 4096);
        fx.kb.mem.write_uint(base, 8, 1);
        fx.kb.mem.write_uint(base + 8, 8, 2);
        let t = target(&fx);
        let u64_ty = t.types.find("unsigned long").unwrap();
        let pty = t.types.find_pointer_to(u64_ty).unwrap();
        let ptr = CValue::Ptr {
            addr: base,
            ty: pty,
        };
        let len = CValue::Int {
            value: 4,
            ty: u64_ty,
        };
        let (elems, trunc) = array_elems(&t, &[ptr, len]).unwrap();
        assert_eq!(elems.len(), 2);
        let trunc = trunc.unwrap();
        assert_eq!(trunc.reason, TruncReason::Fault);
        assert_eq!(trunc.addr, 0x5000);
    }

    #[test]
    fn rbtree_of_empty_root_is_empty() {
        let mut fx = fixture();
        fx.kb.mem.map(0x5000, 8); // rb_root with NULL rb_node
        let t = target(&fx);
        let root_ty = t.types.find("rb_root").unwrap();
        let root = CValue::LValue {
            addr: 0x5000,
            ty: root_ty,
        };
        let (nodes, trunc) = rbtree_nodes(&t, &root).unwrap();
        assert_eq!(nodes, Vec::<u64>::new());
        assert!(trunc.is_none());
    }

    #[test]
    fn traversals_meter_their_reads() {
        let mut fx = fixture();
        fx.kb.mem.map(0x1000, 16);
        structops::list_init(&mut fx.kb.mem, 0x1000);
        for i in 0..5u64 {
            let node = 0x2000 + i * 0x20;
            fx.kb.mem.map(node, 16);
            structops::list_add_tail(&mut fx.kb.mem, node, 0x1000);
        }
        let head = long_val(&fx, 0x1000);
        let t = target(&fx);
        let (nodes, trunc) = list_nodes(&t, &head).unwrap();
        assert_eq!(nodes.len(), 5);
        assert!(trunc.is_none());
        // One read per hop (5 nodes + the head re-entry) at minimum.
        assert!(t.stats().reads >= 6);
    }
}
