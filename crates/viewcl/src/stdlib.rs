//! Standard-library container traversals (the *distill* operators).
//!
//! Each traversal reads raw target memory through the metered bridge, so
//! container walks contribute to the Table 4 cost model exactly like
//! GDB-driven walks do in the paper.

use ktypes::{CValue, TypeKind};
use vbridge::{ReadPlan, Target};

use crate::{Result, VclError};

/// Upper bound on container traversal, to catch corrupted lists.
const MAX_ELEMS: usize = 1_000_000;

fn addr_of(v: &CValue, what: &str) -> Result<u64> {
    v.address()
        .or_else(|| v.as_u64())
        .ok_or_else(|| VclError::Eval(format!("{what}: expected an address, got {v:?}")))
}

/// Walk a circular `list_head`, returning node addresses (head excluded).
pub fn list_nodes(target: &Target<'_>, head_val: &CValue) -> Result<Vec<u64>> {
    let head = addr_of(head_val, "List")?;
    let mut out = Vec::new();
    let mut cur = target.read_uint(head, 8)?;
    while cur != head && cur != 0 {
        out.push(cur);
        // The consumer is about to render the object embedding this
        // node: hint the bridge to pull the surrounding bytes (covers
        // the ->next hop below too). No-op on uncached targets.
        target.prefetch(cur, 128);
        cur = target.read_uint(cur, 8)?;
        if out.len() > MAX_ELEMS {
            return Err(VclError::Eval(format!(
                "List at {head:#x} does not terminate"
            )));
        }
    }
    Ok(out)
}

/// Walk an `hlist_head`, returning node addresses.
pub fn hlist_nodes(target: &Target<'_>, head_val: &CValue) -> Result<Vec<u64>> {
    let head = addr_of(head_val, "HList")?;
    let mut out = Vec::new();
    let mut cur = target.read_uint(head, 8)?;
    while cur != 0 {
        out.push(cur);
        target.prefetch(cur, 128);
        cur = target.read_uint(cur, 8)?;
        if out.len() > MAX_ELEMS {
            return Err(VclError::Eval(format!(
                "HList at {head:#x} does not terminate"
            )));
        }
    }
    Ok(out)
}

/// In-order walk of a red-black tree. Accepts an `rb_root`,
/// `rb_root_cached`, `rb_node *` or raw node address.
pub fn rbtree_nodes(target: &Target<'_>, root_val: &CValue) -> Result<Vec<u64>> {
    // Normalize to the top rb_node address.
    let top = match root_val {
        CValue::LValue { addr, ty } => {
            let name = target.types.tag_name(*ty).unwrap_or("");
            match name {
                "rb_root_cached" | "rb_root" => target.read_uint(*addr, 8)?,
                "rb_node" => *addr,
                _ => target.read_uint(*addr, 8)?,
            }
        }
        CValue::Ptr { addr, ty } => {
            let pointee = target.types.pointee(*ty).ok();
            let name = pointee.and_then(|p| target.types.tag_name(p)).unwrap_or("");
            match name {
                "rb_root_cached" | "rb_root" => target.read_uint(*addr, 8)?,
                _ => *addr,
            }
        }
        other => addr_of(other, "RBTree")?,
    };
    let mut out = Vec::new();
    // Iterative in-order with an explicit stack (kernel trees can be deep).
    let mut stack: Vec<(u64, bool)> = if top == 0 { vec![] } else { vec![(top, false)] };
    while let Some((node, expanded)) = stack.pop() {
        if node == 0 {
            continue;
        }
        if expanded {
            out.push(node);
            continue;
        }
        // The two child pointers are adjacent: batch them so the bridge
        // coalesces the pair into one wire span.
        let mut plan = ReadPlan::new();
        plan.add(node + 8, 8);
        plan.add(node + 16, 8);
        let bufs = target.read_many(&plan)?;
        let right = ktypes::read_uint(&bufs[0], 8);
        let left = ktypes::read_uint(&bufs[1], 8);
        if right != 0 {
            stack.push((right, false));
        }
        stack.push((node, true));
        if left != 0 {
            stack.push((left, false));
        }
        if out.len() + stack.len() > MAX_ELEMS {
            return Err(VclError::Eval("RBTree traversal exploded".into()));
        }
    }
    Ok(out)
}

/// Elements of a C array lvalue, or of a `(pointer, length)` pair.
pub fn array_elems(target: &Target<'_>, args: &[CValue]) -> Result<Vec<CValue>> {
    match args {
        [CValue::LValue { addr, ty }] => match &target.types.get(*ty).kind {
            TypeKind::Array { elem, len } => {
                let esz = target.types.size_of(*elem);
                // The whole array is about to be loaded element-wise.
                target.prefetch(*addr, esz * *len);
                let mut out = Vec::with_capacity(*len as usize);
                for i in 0..*len {
                    out.push(target.load(addr + esz * i, *elem)?);
                }
                Ok(out)
            }
            _ => Err(VclError::Eval(format!(
                "Array: `{}` is not an array",
                target.types.display_name(*ty)
            ))),
        },
        [ptr, len] => {
            let base = addr_of(ptr, "Array")?;
            let len = match len {
                CValue::LValue { addr, ty } if target.types.size_of(*ty) <= 8 => {
                    let size = target.types.size_of(*ty).max(1) as usize;
                    CValue::Int {
                        value: target.read_uint(*addr, size)? as i64,
                        ty: *ty,
                    }
                }
                other => other.clone(),
            };
            let n = len
                .as_u64()
                .ok_or_else(|| VclError::Eval("Array: length must be integer".into()))?;
            let elem_ty = match ptr {
                CValue::Ptr { ty, .. } => target.types.pointee(*ty).ok(),
                _ => None,
            };
            let mut out = Vec::with_capacity(n as usize);
            match elem_ty {
                Some(ty) if target.types.size_of(ty) > 0 => {
                    let esz = target.types.size_of(ty);
                    target.prefetch(base, esz * n);
                    for i in 0..n {
                        out.push(target.load(base + esz * i, ty)?);
                    }
                }
                _ => {
                    // Untyped: treat as an array of 8-byte words.
                    target.prefetch(base, 8 * n);
                    for i in 0..n {
                        let v = target.read_uint(base + 8 * i, 8)?;
                        out.push(CValue::Int {
                            value: v as i64,
                            ty: target
                                .types
                                .find("unsigned long")
                                .ok_or_else(|| VclError::Eval("u64 not interned".into()))?,
                        });
                    }
                }
            }
            Ok(out)
        }
        _ => Err(VclError::Eval("Array takes 1 or 2 arguments".into())),
    }
}

/// Walk an xarray (`struct xarray` lvalue), yielding `(index, entry)` for
/// every non-NULL stored entry.
pub fn xarray_entries(target: &Target<'_>, xa_val: &CValue) -> Result<Vec<(u64, u64)>> {
    let xa = addr_of(xa_val, "XArray")?;
    let xarray_ty = target
        .types
        .find("xarray")
        .ok_or_else(|| VclError::Eval("xarray type not registered".into()))?;
    let (head_off, _) = target
        .types
        .field_path(xarray_ty, "xa_head")
        .map_err(vbridge::BridgeError::from)?;
    let head = target.read_uint(xa + head_off, 8)?;
    let mut out = Vec::new();
    if head == 0 {
        return Ok(out);
    }
    if head & 3 != 2 || head <= 4096 {
        out.push((0, head));
        return Ok(out);
    }
    let xa_node = target
        .types
        .find("xa_node")
        .ok_or_else(|| VclError::Eval("xa_node type not registered".into()))?;
    let (shift_off, _) = target
        .types
        .field_path(xa_node, "shift")
        .map_err(vbridge::BridgeError::from)?;
    let (slots_off, _) = target
        .types
        .field_path(xa_node, "slots")
        .map_err(vbridge::BridgeError::from)?;

    fn walk(
        target: &Target<'_>,
        node: u64,
        base: u64,
        shift_off: u64,
        slots_off: u64,
        out: &mut Vec<(u64, u64)>,
    ) -> Result<()> {
        let shift = target.read_uint(node + shift_off, 1)?;
        // All 64 slots will be inspected: hint the span, then batch the
        // slot reads so they coalesce into minimal wire packets.
        target.prefetch(node + slots_off, 8 * 64);
        let mut plan = ReadPlan::new();
        for slot in 0..64u64 {
            plan.add(node + slots_off + 8 * slot, 8);
        }
        let bufs = target.read_many(&plan)?;
        for slot in 0..64u64 {
            let entry = ktypes::read_uint(&bufs[slot as usize], 8);
            if entry == 0 {
                continue;
            }
            let idx_base = base + (slot << shift);
            if entry & 3 == 2 && entry > 4096 && shift > 0 {
                walk(target, entry & !3, idx_base, shift_off, slots_off, out)?;
            } else {
                out.push((idx_base, entry));
            }
        }
        Ok(())
    }
    walk(target, head & !3, 0, shift_off, slots_off, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::image::KernelBuilder;
    use ksim::structops;
    use vbridge::{LatencyProfile, Target};

    struct Fx {
        kb: KernelBuilder,
    }

    fn fixture() -> Fx {
        let mut kb = KernelBuilder::new();
        let common = kb.common;
        // Register the vfs types so XArray walks have xa_node available.
        let _ = ksim::vfs::register_types(&mut kb.types, &common);
        let _ = ksim::pagecache::register_types(&mut kb.types, &common);
        kb.types.ensure_pointers();
        Fx { kb }
    }

    fn target(fx: &Fx) -> Target<'_> {
        Target::new(
            &fx.kb.mem,
            &fx.kb.types,
            &fx.kb.symbols,
            LatencyProfile::free(),
        )
    }

    fn long_val(fx: &Fx, v: u64) -> CValue {
        CValue::Int {
            value: v as i64,
            ty: fx.kb.types.find("long").unwrap(),
        }
    }

    #[test]
    fn corrupted_list_is_detected_not_hung() {
        let mut fx = fixture();
        // A list whose node points at itself (but is not the head): the
        // bounded walk errors out instead of spinning.
        fx.kb.mem.map(0x1000, 16);
        fx.kb.mem.map(0x2000, 16);
        structops::list_init(&mut fx.kb.mem, 0x1000);
        structops::list_add_tail(&mut fx.kb.mem, 0x2000, 0x1000);
        // Corrupt: node→next = node.
        fx.kb.mem.write_uint(0x2000, 8, 0x2000);
        let head = long_val(&fx, 0x1000);
        let t = target(&fx);
        assert!(list_nodes(&t, &head).is_err(), "must not loop forever");
    }

    #[test]
    fn list_through_unmapped_node_reports_the_fault() {
        let mut fx = fixture();
        fx.kb.mem.map(0x1000, 16);
        structops::list_init(&mut fx.kb.mem, 0x1000);
        // Head points into unmapped memory: a dangling ->next.
        fx.kb.mem.write_uint(0x1000, 8, 0xdead_0000);
        let head = long_val(&fx, 0x1000);
        let t = target(&fx);
        match list_nodes(&t, &head) {
            Err(VclError::Bridge(vbridge::BridgeError::Mem(_))) => {}
            other => panic!("expected a memory fault, got {other:?}"),
        }
    }

    #[test]
    fn two_arg_array_with_typed_pointer_loads_elements() {
        let mut fx = fixture();
        // An array of 3 u64s behind a pointer.
        fx.kb.mem.map(0x4000, 24);
        for i in 0..3u64 {
            fx.kb.mem.write_uint(0x4000 + 8 * i, 8, 100 + i);
        }
        let t = target(&fx);
        let u64_ty = t.types.find("unsigned long").unwrap();
        let pty = t.types.find_pointer_to(u64_ty).unwrap();
        let ptr = CValue::Ptr {
            addr: 0x4000,
            ty: pty,
        };
        let len = CValue::Int {
            value: 3,
            ty: u64_ty,
        };
        let elems = array_elems(&t, &[ptr, len]).unwrap();
        let got: Vec<i64> = elems.iter().filter_map(|e| e.as_int()).collect();
        assert_eq!(got, vec![100, 101, 102]);
    }

    #[test]
    fn rbtree_of_empty_root_is_empty() {
        let mut fx = fixture();
        fx.kb.mem.map(0x5000, 8); // rb_root with NULL rb_node
        let t = target(&fx);
        let root_ty = t.types.find("rb_root").unwrap();
        let root = CValue::LValue {
            addr: 0x5000,
            ty: root_ty,
        };
        assert_eq!(rbtree_nodes(&t, &root).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn traversals_meter_their_reads() {
        let mut fx = fixture();
        fx.kb.mem.map(0x1000, 16);
        structops::list_init(&mut fx.kb.mem, 0x1000);
        for i in 0..5u64 {
            let node = 0x2000 + i * 0x20;
            fx.kb.mem.map(node, 16);
            structops::list_add_tail(&mut fx.kb.mem, node, 0x1000);
        }
        let head = long_val(&fx, 0x1000);
        let t = target(&fx);
        let nodes = list_nodes(&t, &head).unwrap();
        assert_eq!(nodes.len(), 5);
        // One read per hop (5 nodes + the head re-entry) at minimum.
        assert!(t.stats().reads >= 6);
    }
}
