//! End-to-end ViewCL: the paper's listings evaluated against the
//! simulated kernel image.

use ksim::workload::{self, WorkloadConfig};
use ktypes::CValue;
use vbridge::{Evaluator, HelperRegistry, LatencyProfile, Target};
use vgraph::Item;
use viewcl::{parse_program, Interp};

struct Fx {
    img: ksim::KernelImage,
    types: ksim::workload::AllTypes,
    roots: ksim::workload::WorkloadRoots,
}

fn fx() -> Fx {
    let (img, types, roots) = workload::build(&WorkloadConfig::default()).finish();
    Fx { img, types, roots }
}

fn helpers(fx: &Fx) -> HelperRegistry {
    let mut h = HelperRegistry::new();
    let rq_base = fx.roots.rq_base;
    let rq_size = fx.roots.rq_size;
    let rq_ty = fx.img.types.find("rq").unwrap();
    h.register("cpu_rq", move |t, args| {
        let cpu = args[0].as_u64().unwrap_or(0);
        let pty = t.types.find_pointer_to(rq_ty).unwrap();
        Ok(CValue::Ptr {
            addr: rq_base + cpu * rq_size,
            ty: pty,
        })
    });
    let task_ty = fx.types.task.task_struct;
    h.register("task_state", move |t, args| {
        let addr = args[0].address().unwrap_or(0);
        let (off, _) = t.types.field_path(task_ty, "__state").unwrap();
        let s = t.read_uint(addr + off, 4)?;
        Ok(CValue::Str(
            match s {
                0 => "R",
                1 => "S",
                2 => "D",
                4 => "T",
                _ => "?",
            }
            .to_string(),
        ))
    });
    h
}

#[test]
fn intro_listing_plots_the_cfs_runqueue() {
    let fx = fx();
    let target = Target::new(
        &fx.img.mem,
        &fx.img.types,
        &fx.img.symbols,
        LatencyProfile::free(),
    );
    let h = helpers(&fx);
    let program = parse_program(
        r#"
define Task as Box<task_struct> [
    Text pid, comm
    Text ppid: parent.pid
    Text<string> state: ${task_state(@this)}
    Text se.vruntime
]
root = ${cpu_rq(0)->cfs.tasks_timeline}
sched_tree = RBTree(@root).forEach |node| {
    yield Task<task_struct.se.run_node>(@node)
}
plot @sched_tree
"#,
    )
    .unwrap();
    let mut interp = Interp::new(&target, &h);
    interp.run(&program).unwrap();
    let g = interp.into_graph();

    // CPU 0 runs the three even workers (pids 100, 120, 140) plus some
    // threads; check every plotted box is a Task with the right fields.
    let tasks: Vec<_> = g.boxes().iter().filter(|b| b.label == "Task").collect();
    assert!(!tasks.is_empty(), "runqueue must not be empty");
    for t in &tasks {
        let view = t.active_view().unwrap();
        let names: Vec<&str> = view.items.iter().map(|i| i.name()).collect();
        assert_eq!(names, vec!["pid", "comm", "ppid", "state", "se.vruntime"]);
        // state is decorated as a string.
        match t.item("state").unwrap() {
            Item::Text { value, .. } => {
                assert!(["R", "S", "D", "T", "?"].contains(&value.as_str()))
            }
            other => panic!("unexpected {other:?}"),
        }
        match t.item("comm").unwrap() {
            Item::Text { value, .. } => assert!(value.starts_with("worker-")),
            other => panic!("unexpected {other:?}"),
        }
    }
    // In-order by vruntime: raw values ascend.
    let vrs: Vec<i64> = tasks
        .iter()
        .map(|t| match t.item("se.vruntime").unwrap() {
            Item::Text { raw, .. } => raw.unwrap(),
            _ => unreachable!(),
        })
        .collect();
    let mut sorted = vrs.clone();
    sorted.sort_unstable();
    assert_eq!(vrs, sorted, "rb-tree in-order must ascend by vruntime");
}

#[test]
fn view_inheritance_and_multiple_views() {
    let fx = fx();
    let target = Target::new(
        &fx.img.mem,
        &fx.img.types,
        &fx.img.symbols,
        LatencyProfile::free(),
    );
    let h = helpers(&fx);
    let init = fx.roots.init_task;
    let program = parse_program(&format!(
        r#"
define Task as Box<task_struct> {{
    :default [
        Text pid, comm
    ]
    :default => :sched [
        Text se.vruntime
    ]
}}
t = Task(${{{init}}})
plot @t
"#
    ))
    .unwrap();
    let mut interp = Interp::new(&target, &h);
    interp.run(&program).unwrap();
    let g = interp.into_graph();
    let b = g.get(g.roots[0]);
    assert_eq!(b.views.len(), 2);
    assert_eq!(b.views[0].items.len(), 2);
    // :sched = :default + vruntime.
    assert_eq!(b.views[1].name, "sched");
    assert_eq!(b.views[1].items.len(), 3);
    assert_eq!(b.views[1].items[2].name(), "se.vruntime");
}

#[test]
fn list_container_of_walk_process_children() {
    let fx = fx();
    let target = Target::new(
        &fx.img.mem,
        &fx.img.types,
        &fx.img.symbols,
        LatencyProfile::free(),
    );
    let h = helpers(&fx);
    let program = parse_program(
        r#"
define Task as Box<task_struct> [
    Text pid, comm
    Container children: List(${&init_task.children}).forEach |node| {
        yield Task<task_struct.sibling>(@node)
    }
]
root = Task(${&init_task})
plot @root
"#,
    )
    .unwrap();
    let mut interp = Interp::new(&target, &h);
    interp.run(&program).unwrap();
    let g = interp.into_graph();
    let root = g.get(g.roots[0]);
    match root.item("children").unwrap() {
        Item::Container { members, .. } => {
            // init's children: kthreads + 5 leaders + 5 threads.
            assert_eq!(members.len(), 16);
            let pids: Vec<i64> = members
                .iter()
                .map(|m| g.get(*m).member_raw("pid", &g).unwrap())
                .collect();
            assert!(pids.contains(&100));
            assert!(pids.contains(&2));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn switch_and_null_links() {
    let fx = fx();
    let target = Target::new(
        &fx.img.mem,
        &fx.img.types,
        &fx.img.symbols,
        LatencyProfile::free(),
    );
    let h = helpers(&fx);
    // Kernel threads have mm == NULL; user tasks have a real mm.
    let program = parse_program(
        r#"
define MM as Box<mm_struct> [
    Text map_count
]
define Task as Box<task_struct> [
    Text pid
    Link mm -> switch ${@this.mm != NULL} {
        case ${true}: MM(${@this.mm})
        case ${false}: NULL
    }
]
tasks = List(${&init_task.tasks}).forEach |node| {
    yield Task<task_struct.tasks>(@node)
}
plot @tasks
"#,
    )
    .unwrap();
    let mut interp = Interp::new(&target, &h);
    interp.run(&program).unwrap();
    let g = interp.into_graph();
    let mut real = 0;
    let mut null = 0;
    for b in g.boxes().iter().filter(|b| b.label == "Task") {
        match b.item("mm").unwrap() {
            Item::Link { .. } => real += 1,
            Item::NullLink { .. } => null += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(real, 10, "5 leaders + 5 threads have mm");
    assert!(null >= 6, "kthreads have no mm");
}

#[test]
fn decorators_render_flags_hex_and_fptr() {
    let fx = fx();
    let target = Target::new(
        &fx.img.mem,
        &fx.img.types,
        &fx.img.symbols,
        LatencyProfile::free(),
    );
    let h = helpers(&fx);
    // Grab one file-backed VMA from process 0's mm via the C evaluator.
    let ev = Evaluator::new(&target, &h);
    let leader = fx.roots.leaders[0];
    let mm = ev
        .eval_str(&format!("((struct task_struct *){leader})->mm"))
        .unwrap()
        .as_u64()
        .unwrap();
    let entries = {
        let (root_off, _) = fx
            .img
            .types
            .field_path(fx.types.mm.mm_struct, "mm_mt.ma_root")
            .unwrap();
        let root = fx.img.mem.read_uint(mm + root_off, 8).unwrap();
        ksim::maple::walk_entries(&fx.img.mem, root)
    };
    let vma = entries[0].value;

    let program = parse_program(&format!(
        r#"
define VMA as Box<vm_area_struct> [
    Text<u64:x> vm_start, vm_end
    Text<flag:vm> vm_flags
]
v = VMA(${{{vma}}})
plot @v
"#
    ))
    .unwrap();
    let mut interp = Interp::new(&target, &h);
    interp.run(&program).unwrap();
    let g = interp.into_graph();
    let b = g.get(g.roots[0]);
    match b.item("vm_start").unwrap() {
        Item::Text { value, .. } => assert!(value.starts_with("0x"), "hex decorator: {value}"),
        _ => unreachable!(),
    }
    match b.item("vm_flags").unwrap() {
        Item::Text { value, .. } => {
            assert!(value.contains("VM_READ"), "flag decorator: {value}")
        }
        _ => unreachable!(),
    }
}

#[test]
fn boxes_are_deduplicated_across_paths() {
    let fx = fx();
    let target = Target::new(
        &fx.img.mem,
        &fx.img.types,
        &fx.img.symbols,
        LatencyProfile::free(),
    );
    let h = helpers(&fx);
    // Threads share one mm; both paths must reach the same MM box.
    let program = parse_program(
        r#"
define MM as Box<mm_struct> [
    Text map_count
]
define Task as Box<task_struct> [
    Text pid
    Link mm -> MM(${@this.mm})
]
tasks = List(${&init_task.tasks}).forEach |node| {
    t = ${container_of(@node, struct task_struct, tasks)}
    yield switch ${((struct task_struct *)@t)->mm != NULL} {
        case ${true}: Task(@t)
        otherwise: NULL
    }
}
plot @tasks
"#,
    )
    .unwrap();
    let mut interp = Interp::new(&target, &h);
    interp.run(&program).unwrap();
    let g = interp.into_graph();
    let n_tasks = g.boxes().iter().filter(|b| b.label == "Task").count();
    let n_mms = g.boxes().iter().filter(|b| b.label == "MM").count();
    assert_eq!(n_tasks, 10);
    assert_eq!(n_mms, 5, "threads share their leader's mm box");
}

#[test]
fn metered_extraction_accumulates_cost() {
    let fx = fx();
    let target = Target::new(
        &fx.img.mem,
        &fx.img.types,
        &fx.img.symbols,
        LatencyProfile::gdb_qemu(),
    );
    let h = helpers(&fx);
    let program = parse_program(
        r#"
define Task as Box<task_struct> [
    Text pid, comm
]
tasks = List(${&init_task.tasks}).forEach |node| {
    yield Task<task_struct.tasks>(@node)
}
plot @tasks
"#,
    )
    .unwrap();
    let mut interp = Interp::new(&target, &h);
    interp.run(&program).unwrap();
    let stats = target.stats();
    assert!(stats.reads > 30, "walking 16 tasks needs many reads");
    assert!(stats.virtual_ns > 0);
    let g = interp.into_graph();
    let objs = g.boxes().iter().filter(|b| b.addr != 0).count() as u64;
    // Per-object cost in the QEMU profile lands in Table 4's band.
    let ms_per_obj = stats.virtual_ns as f64 / 1e6 / objs as f64;
    assert!(
        (0.05..2.0).contains(&ms_per_obj),
        "per-object cost {ms_per_obj} ms out of band"
    );
}

#[test]
fn error_paths_are_reported_not_panicked() {
    let fx = fx();
    let target = Target::new(
        &fx.img.mem,
        &fx.img.types,
        &fx.img.symbols,
        LatencyProfile::free(),
    );
    let h = helpers(&fx);

    // Unknown box type in instantiation.
    let p = parse_program("t = NoSuchBox(${&init_task})\nplot @t").unwrap();
    let mut i = Interp::new(&target, &h);
    assert!(i.run(&p).is_err());

    // Unknown C type behind a define.
    let p = parse_program("define X as Box<no_such_struct> [ Text a ]\nx = X(${1000})\nplot @x")
        .unwrap();
    let mut i = Interp::new(&target, &h);
    assert!(i.run(&p).is_err());

    // Plotting something that is not a box.
    let p = parse_program("v = ${1 + 1}\nplot @v").unwrap();
    let mut i = Interp::new(&target, &h);
    assert!(i.run(&p).is_err());

    // View inheritance cycle.
    let p = parse_program(
        "define T as Box<task_struct> {\n    :a => :b [ Text pid ]\n    :b => :a [ Text tgid ]\n}\nt = T(${&init_task})\nplot @t",
    )
    .unwrap();
    let mut i = Interp::new(&target, &h);
    let err = i.run(&p).unwrap_err();
    assert!(format!("{err}").contains("cycle"), "{err}");

    // Unknown scope variable.
    let p = parse_program("plot @nothing").unwrap();
    let mut i = Interp::new(&target, &h);
    assert!(i.run(&p).is_err());
}

#[test]
fn text_items_soft_fail_on_bad_memory() {
    let fx = fx();
    let target = Target::new(
        &fx.img.mem,
        &fx.img.types,
        &fx.img.symbols,
        LatencyProfile::free(),
    );
    let h = helpers(&fx);
    // A box anchored at an unmapped address: texts degrade to errors, the
    // plot itself survives (a debugger must render what it can).
    let p = parse_program(
        "define T as Box<task_struct> [ Text pid, comm ]\nt = T(${0xdead0000})\nplot @t",
    )
    .unwrap();
    let mut i = Interp::new(&target, &h);
    i.run(&p).unwrap();
    let g = i.into_graph();
    let b = g.get(g.roots[0]);
    match b.item("pid").unwrap() {
        Item::Text { value, .. } => assert!(value.starts_with("<error"), "{value}"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn cost_scales_with_traversal_depth() {
    let fx = fx();
    let target = Target::new(
        &fx.img.mem,
        &fx.img.types,
        &fx.img.symbols,
        LatencyProfile::gdb_qemu(),
    );
    let h = helpers(&fx);
    let shallow =
        parse_program("define T as Box<task_struct> [ Text pid ]\nt = T(${&init_task})\nplot @t")
            .unwrap();
    let mut i = Interp::new(&target, &h);
    i.run(&shallow).unwrap();
    let shallow_reads = target.stats().reads;
    target.reset_stats();

    let deep = parse_program(
        r#"
define T as Box<task_struct> [
    Text pid
    Container children: List(${&@this.children}).forEach |n| {
        yield T<task_struct.sibling>(@n)
    }
]
t = T(${&init_task})
plot @t
"#,
    )
    .unwrap();
    let mut i = Interp::new(&target, &h);
    i.run(&deep).unwrap();
    let deep_reads = target.stats().reads;
    assert!(
        deep_reads > shallow_reads * 5,
        "recursive walk must read much more: {shallow_reads} vs {deep_reads}"
    );
}
