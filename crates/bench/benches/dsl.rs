//! Criterion benches for the DSL layers in isolation: ViewCL parsing,
//! ViewQL parse+execute, rendering, and vchat synthesis.

use criterion::{criterion_group, criterion_main, Criterion};
use ksim::workload::{build, WorkloadConfig};
use vbridge::LatencyProfile;
use visualinux::{figures, Session};

fn bench_dsl(c: &mut Criterion) {
    // ViewCL parsing of the largest program.
    let fig = figures::by_id("fig9-2").unwrap();
    c.bench_function("viewcl/parse_fig9-2", |b| {
        b.iter(|| std::hint::black_box(viewcl::parse_program(fig.viewcl).unwrap()))
    });

    // ViewQL on an extracted graph.
    let session = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::free())
        .attach()
        .unwrap();
    let (graph, _) = session
        .extract(figures::by_id("fig3-4").unwrap().viewcl)
        .unwrap();
    let program = "a = SELECT task_struct FROM * WHERE mm == NULL\nUPDATE a WITH collapsed: true";
    c.bench_function("viewql/select_update_fig3-4", |b| {
        b.iter(|| {
            let mut g = graph.clone();
            let mut e = vql::Engine::new();
            e.run(&mut g, program).unwrap();
            std::hint::black_box(g.len())
        })
    });

    // Renderers.
    c.bench_function("render/text_fig3-4", |b| {
        b.iter(|| std::hint::black_box(vrender::to_text(&graph).len()))
    });
    c.bench_function("render/svg_fig3-4", |b| {
        b.iter(|| std::hint::black_box(vrender::to_svg(&graph).len()))
    });

    // vchat synthesis.
    let schema = vchat::Schema::of(&graph);
    c.bench_function("vchat/synthesize", |b| {
        let synth = vchat::Synthesizer::new(schema.clone());
        b.iter(|| {
            std::hint::black_box(
                synth
                    .synthesize("shrink tasks that have no address space")
                    .unwrap()
                    .len(),
            )
        })
    });
}

criterion_group!(benches, bench_dsl);
criterion_main!(benches);
