//! Criterion benches: real wall-clock cost of ViewCL extraction for every
//! Table 4 figure (one bench group per transport profile; the profile
//! only changes virtual-time accounting, so wall clock measures the
//! interpreter itself).

use criterion::{criterion_group, criterion_main, Criterion};
use ksim::workload::{build, WorkloadConfig};
use vbridge::LatencyProfile;
use visualinux::{figures, Session};

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract");
    group.sample_size(20);
    let session = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::free())
        .attach()
        .unwrap();
    for id in bench::TABLE4_FIGURES {
        let fig = figures::by_id(id).unwrap();
        group.bench_function(id, |b| {
            b.iter(|| {
                let (graph, _stats) = session.extract(fig.viewcl).expect("extracts");
                std::hint::black_box(graph.len())
            })
        });
    }
    group.finish();
}

fn bench_workload_build(c: &mut Criterion) {
    c.bench_function("workload/build_default", |b| {
        b.iter(|| {
            let w = build(&WorkloadConfig::default());
            std::hint::black_box(w.roots.all_tasks.len())
        })
    });
}

criterion_group!(benches, bench_extraction, bench_workload_build);
criterion_main!(benches);
