//! Wall-clock cost of the snapshot block cache itself.
//!
//! Virtual-time wins are measured by `table4`/`ablation`; this bench
//! answers the complementary question — how much *real* interpreter time
//! the cached read path costs or saves per extraction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vbridge::{CacheConfig, LatencyProfile};
use visualinux::figures;

fn bench_cache(c: &mut Criterion) {
    let fig = figures::by_id("fig3-4").unwrap();
    let mut g = c.benchmark_group("cache");
    g.sample_size(20);

    let uncached = bench::attach(LatencyProfile::free());
    g.bench_function("fig3-4 uncached", |b| {
        b.iter(|| black_box(uncached.extract(fig.viewcl).unwrap()))
    });

    // Cold: every extraction starts from an invalidated cache.
    let mut cold = bench::attach_cached(LatencyProfile::free(), CacheConfig::default());
    g.bench_function("fig3-4 cached cold", |b| {
        b.iter(|| {
            cold.resume();
            black_box(cold.extract(fig.viewcl).unwrap())
        })
    });

    // Warm: blocks stay resident across iterations.
    let warm = bench::attach_cached(LatencyProfile::free(), CacheConfig::default());
    let _ = warm.extract(fig.viewcl).unwrap();
    g.bench_function("fig3-4 cached warm", |b| {
        b.iter(|| black_box(warm.extract(fig.viewcl).unwrap()))
    });

    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
