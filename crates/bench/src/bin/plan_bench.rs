//! `plan_bench` — interp-mode vs plan-mode extraction cost, per figure.
//!
//! Both sessions run cached on the same workload; every figure is
//! measured cold (the cache is invalidated between figures) so the
//! numbers show what the walk-plan scheduler saves on the wire, not
//! what the cache remembers. Wall-clock is real time for the whole
//! extraction (plan pre-pass included on the plan side); packets and
//! virtual time come from `TargetStats`.
//!
//! ```text
//! cargo run --release -p bench --bin plan_bench
//! ```
//!
//! Emits `BENCH_plan.json` (override with `$BENCH_PLAN_OUT`) with the
//! per-figure packets / virtual_ns / wall_ns under both modes and both
//! latency profiles, plus the plan counters. Exits non-zero if any
//! figure's plan-mode graph drifts from the interp graph, or if no
//! multi-walk figure under KGDB reaches a 2x packet reduction — the
//! floor the planner is sold on.
//!
//! (`plan_nodes` counts executed walk instances, `dedup_walks` the
//! traversals and shared objects skipped by deduplication,
//! `parallel_batches` the scheduler waves that ran >= 2 walks
//! concurrently.)

use std::time::Instant;

use bench::{attach, attach_cached, attach_plan, TablePrinter, TABLE4_FIGURES};
use vbridge::{CacheConfig, LatencyProfile};
use visualinux::figures;

/// One execution mode's cold-extraction cost for one figure.
#[derive(serde::Serialize, Clone, Copy)]
struct ModeCost {
    packets: u64,
    virtual_ns: u64,
    wall_ns: u64,
}

/// One figure's row in `BENCH_plan.json`.
#[derive(serde::Serialize)]
struct FigureDoc {
    figure: &'static str,
    interp: ModeCost,
    plan: ModeCost,
    packet_ratio: f64,
    plan_nodes: u64,
    dedup_walks: u64,
    parallel_batches: u64,
}

/// One latency profile's section.
#[derive(serde::Serialize)]
struct ProfileDoc {
    profile: &'static str,
    figures: Vec<FigureDoc>,
}

/// The whole `BENCH_plan.json` document.
#[derive(serde::Serialize)]
struct BenchDoc {
    bench: &'static str,
    uncached_interp_kgdb_packets: Vec<(String, u64)>,
    profiles: Vec<ProfileDoc>,
}

fn run_profile(name: &'static str, profile: LatencyProfile, drift: &mut Vec<String>) -> ProfileDoc {
    let mut interp = attach_cached(profile, CacheConfig::default());
    let mut plan = attach_plan(profile, CacheConfig::default());
    let mut rows = Vec::new();
    for id in TABLE4_FIGURES {
        let fig = figures::by_id(id).expect("figure exists");
        interp.resume();
        let t0 = Instant::now();
        let (g_i, s_i) = interp.extract(fig.viewcl).expect("figure extracts");
        let wall_i = t0.elapsed().as_nanos() as u64;
        plan.resume();
        let t0 = Instant::now();
        let (g_p, s_p) = plan.extract(fig.viewcl).expect("figure extracts");
        let wall_p = t0.elapsed().as_nanos() as u64;
        if g_i.to_json() != g_p.to_json() {
            drift.push(format!("{name}/{id}: plan graph differs from interp"));
        }
        rows.push(FigureDoc {
            figure: id,
            interp: ModeCost {
                packets: s_i.target.reads,
                virtual_ns: s_i.target.virtual_ns,
                wall_ns: wall_i,
            },
            plan: ModeCost {
                packets: s_p.target.reads,
                virtual_ns: s_p.target.virtual_ns,
                wall_ns: wall_p,
            },
            packet_ratio: s_i.target.reads as f64 / s_p.target.reads.max(1) as f64,
            plan_nodes: s_p.target.plan_nodes,
            dedup_walks: s_p.target.dedup_walks,
            parallel_batches: s_p.target.parallel_batches,
        });
    }
    ProfileDoc {
        profile: name,
        figures: rows,
    }
}

fn main() {
    println!("plan_bench: cold cached extraction, interp vs walk-plan scheduler\n");
    let mut drift: Vec<String> = Vec::new();
    let profiles = vec![
        run_profile("gdb_qemu", LatencyProfile::gdb_qemu(), &mut drift),
        run_profile("kgdb_rpi400", LatencyProfile::kgdb_rpi400(), &mut drift),
    ];

    // Context column: what the same figures cost with no cache at all
    // (the paper's baseline) on the slow transport.
    let uncached: Vec<(String, u64)> = {
        let s = attach(LatencyProfile::kgdb_rpi400());
        TABLE4_FIGURES
            .iter()
            .map(|id| {
                let fig = figures::by_id(id).expect("figure exists");
                let (_, st) = s.extract(fig.viewcl).expect("figure extracts");
                (id.to_string(), st.target.reads)
            })
            .collect()
    };

    for p in &profiles {
        println!("profile: {}\n", p.profile);
        let t = TablePrinter::new(&[11, 9, 9, 7, 10, 10, 7, 7, 7]);
        t.row(
            &[
                "figure", "i-pkts", "p-pkts", "pkt-x", "i-vms", "p-vms", "nodes", "dedup", "par",
            ]
            .map(String::from),
        );
        t.sep();
        for f in &p.figures {
            t.row(&[
                f.figure.to_string(),
                f.interp.packets.to_string(),
                f.plan.packets.to_string(),
                format!("{:.1}x", f.packet_ratio),
                format!("{:.1}", f.interp.virtual_ns as f64 / 1e6),
                format!("{:.1}", f.plan.virtual_ns as f64 / 1e6),
                f.plan_nodes.to_string(),
                f.dedup_walks.to_string(),
                f.parallel_batches.to_string(),
            ]);
        }
        t.sep();
        println!();
    }

    // Floor check: at least one multi-walk figure on the slow transport
    // must halve its packet count under the planner.
    let kgdb = profiles
        .iter()
        .find(|p| p.profile == "kgdb_rpi400")
        .expect("kgdb profile measured");
    let best = kgdb
        .figures
        .iter()
        .filter(|f| f.plan_nodes >= 2)
        .max_by(|a, b| a.packet_ratio.total_cmp(&b.packet_ratio));
    match best {
        Some(f) => {
            println!(
                "floor check: best multi-walk KGDB figure {} cuts packets {:.1}x (floor: 2x) {}",
                f.figure,
                f.packet_ratio,
                if f.packet_ratio >= 2.0 {
                    "[in band]"
                } else {
                    "[OUT OF BAND]"
                }
            );
            if f.packet_ratio < 2.0 {
                drift.push(format!(
                    "no multi-walk KGDB figure reaches a 2x packet cut (best: {} at {:.2}x)",
                    f.figure, f.packet_ratio
                ));
            }
        }
        None => drift.push("no KGDB figure executed a multi-walk plan".to_string()),
    }

    let out = std::env::var("BENCH_PLAN_OUT").unwrap_or_else(|_| "BENCH_plan.json".to_string());
    let doc = BenchDoc {
        bench: "plan",
        uncached_interp_kgdb_packets: uncached,
        profiles,
    };
    std::fs::write(&out, serde_json::to_string_pretty(&doc).expect("encode")).expect("write");
    println!("wrote {out}");

    if !drift.is_empty() {
        eprintln!("\nPLAN/INTERP DRIFT:");
        for d in &drift {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
}
