//! Table 2 harness: "revive" the 21 ULK figures on the simulated Linux
//! 6.1 image and compare ViewCL effort with the paper.

use bench::{attach, TablePrinter};
use vbridge::LatencyProfile;
use visualinux::{figures, PlotSpec};

fn main() {
    let mut session = attach(LatencyProfile::free());
    println!("Table 2: representative ULK figures ported to (simulated) Linux 6.1\n");
    let t = TablePrinter::new(&[4, 11, 42, 9, 9, 8, 7, 7, 5]);
    t.row(
        &[
            "#",
            "figure",
            "description",
            "loc(rs)",
            "loc(ppr)",
            "objects",
            "links",
            "membr",
            "drift",
        ]
        .map(String::from),
    );
    t.sep();

    let mut ok = 0;
    for (i, fig) in figures::all().iter().enumerate() {
        let ours = viewcl::loc_of(fig.viewcl);
        match session.plot(PlotSpec::Source(fig.viewcl)) {
            Ok(pane) => {
                ok += 1;
                let s = session.plot_stats(pane).unwrap();
                let paper = if fig.paper_loc == 0 {
                    "-".to_string()
                } else {
                    fig.paper_loc.to_string()
                };
                t.row(&[
                    format!("{}", i + 1),
                    fig.ulk.to_string(),
                    fig.title.to_string(),
                    ours.to_string(),
                    paper,
                    s.graph.objects.to_string(),
                    s.graph.links.to_string(),
                    s.graph.memberships.to_string(),
                    fig.delta.glyph().to_string(),
                ]);
            }
            Err(e) => {
                t.row(&[
                    format!("{}", i + 1),
                    fig.ulk.to_string(),
                    fig.title.to_string(),
                    ours.to_string(),
                    fig.paper_loc.to_string(),
                    format!("ERROR: {e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
            }
        }
    }
    t.sep();
    println!("\n{ok}/21 figures extracted successfully (paper claim C1).");
    println!("drift legend: o negligible | (.) vars changed | (|) fields/relations changed | (*) structure replaced");
}
