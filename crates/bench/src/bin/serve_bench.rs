//! `serve_bench` — throughput of the concurrent pane server (vserve)
//! and the session fleet (vfleet).
//!
//! Default mode: N clients (default 4) hammer one shared server with the
//! full figure corpus across several stop events: round 0 ships full
//! plots, later rounds exercise delta sync. Real wall-clock, per latency
//! profile (the profiles only shape virtual time, but they also shape
//! payload mix via identical graphs — both are reported).
//!
//! Fleet mode (`--fleet`): the corpus is recorded once into a `.vrec`
//! capture, then served twice — by a single-engine fleet (baseline) and
//! by an N-engine fleet of identical replay sessions sharing one
//! extraction store. Because identical captures share walks (and tape
//! spans, and generation deltas), aggregate throughput must scale ≥ 2x
//! over the baseline; the run exits non-zero otherwise (the CI
//! regression gate). Fleet runs use their own per-engine client count
//! (`--fleet-clients`, default 2): the load generators share this
//! machine with the engines, so piling on clients measures scheduler
//! contention, not engine scaling.
//!
//! Soak mode (`--soak`): 256 binary-framed wire connections (default;
//! `--soak-clients`) hammer one evented `WirePump` + engine with the
//! figure corpus, once without and once with a deliberately *stalled*
//! client that queues the whole corpus and never reads a reply. The
//! pump must cap the zombie's lane (`WireStats::stalled_skips > 0`)
//! and healthy aggregate req/s must stay within 10% of the zombie-free
//! baseline; the run exits non-zero otherwise (the CI `wire` gate).
//!
//! ```text
//! cargo run -p bench --bin serve_bench              # 4 clients, 3 stops
//! cargo run -p bench --bin serve_bench -- --clients 8 --stops 5
//! cargo run -p bench --bin serve_bench -- --fleet --engines 4 --fleet-clients 2
//! cargo run -p bench --bin serve_bench -- --soak --soak-clients 256
//! ```
//!
//! Emits `BENCH_serve.json` (override with `$BENCH_SERVE_OUT`) with
//! requests/sec, per-request p50/p95 wall-clock latency, the worst
//! single client's p95/max latency, coalesce rate, and
//! delta_bytes_saved per profile — plus, under `--fleet`, the
//! baseline/fleet comparison with aggregate req/s and scaling, and,
//! under `--soak`, the baseline/stalled comparison with per-run
//! `WireStats`. Exits non-zero if any `ServeStats`/`FleetStats` fail
//! to reconcile, or if a fleet/soak gate is missed.

use std::sync::{mpsc, Arc, Barrier};
use std::thread;
use std::time::Instant;

use bench::TablePrinter;
use ksim::workload::{build, WorkloadConfig};
use vbridge::{CacheConfig, Capture, LatencyProfile};
use vfleet::{Fleet, FleetConfig, FleetStats};
use visualinux::proto::{VCommand, VERSION};
use visualinux::{figures, Session, SessionSpec};
use vserve::framing::{hello_frame, parse_verdict, BinaryFraming, DecodeBuf, Framing};
use vserve::{
    byte_pair, Io, Replica, SendMode, ServeConfig, ServeStats, Server, ServerHandle,
    SingleSession, WireClient, WireConfig, WirePump, WireStats,
};

/// How much faster an N-engine replay fleet must aggregate over one
/// engine for the run to pass.
const FLEET_SCALING_GATE: f64 = 2.0;

/// How much healthy aggregate throughput may drop when one stalled
/// client joins the soak (`--soak`) before the run fails.
const SOAK_DEGRADATION_GATE: f64 = 0.10;

struct ProfileResult {
    name: &'static str,
    clients: usize,
    stops: usize,
    elapsed_s: f64,
    stats: ServeStats,
    /// Per-plot-request wall-clock latencies, one vector per client.
    per_client_ns: Vec<Vec<u64>>,
}

/// The p-th percentile (nearest-rank) of a sorted latency sample.
fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0 * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1e6
}

/// Pooled + per-client-worst-case latency figures from per-client
/// samples. Pooled percentiles hide a single starved client; the worst
/// client's own p95/max is what that client actually experienced.
struct Latencies {
    p50_ms: f64,
    p95_ms: f64,
    worst_client_p95_ms: f64,
    worst_client_max_ms: f64,
}

fn latencies(per_client_ns: &[Vec<u64>]) -> Latencies {
    let mut pooled: Vec<u64> = per_client_ns.iter().flatten().copied().collect();
    pooled.sort_unstable();
    let mut worst_p95 = 0.0f64;
    let mut worst_max = 0.0f64;
    for client in per_client_ns {
        let mut sorted = client.clone();
        sorted.sort_unstable();
        worst_p95 = worst_p95.max(percentile_ms(&sorted, 95.0));
        worst_max = worst_max.max(percentile_ms(&sorted, 100.0));
    }
    Latencies {
        p50_ms: percentile_ms(&pooled, 50.0),
        p95_ms: percentile_ms(&pooled, 95.0),
        worst_client_p95_ms: worst_p95,
        worst_client_max_ms: worst_max,
    }
}

/// One profile's row in `BENCH_serve.json`.
#[derive(serde::Serialize)]
struct ProfileDoc {
    profile: &'static str,
    clients: usize,
    stops: usize,
    elapsed_s: f64,
    requests: u64,
    requests_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    worst_client_p95_ms: f64,
    worst_client_max_ms: f64,
    coalesce_rate: f64,
    delta_bytes_saved: u64,
    stats: ServeStats,
}

/// One fleet run (baseline or N engines) in `BENCH_serve.json`.
#[derive(serde::Serialize)]
struct FleetRunDoc {
    engines: usize,
    clients_per_engine: usize,
    requests: u64,
    elapsed_s: f64,
    requests_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    worst_client_p95_ms: f64,
    worst_client_max_ms: f64,
    stats: FleetStats,
}

/// The `--fleet` comparison in `BENCH_serve.json`.
#[derive(serde::Serialize)]
struct FleetDoc {
    stops: usize,
    baseline: FleetRunDoc,
    fleet: FleetRunDoc,
    /// fleet req/s over baseline req/s.
    scaling: f64,
    scaling_gate: f64,
}

/// One soak run (with or without the stalled client) in
/// `BENCH_serve.json`.
#[derive(serde::Serialize)]
struct SoakRunDoc {
    healthy_clients: usize,
    stalled_clients: usize,
    requests: u64,
    elapsed_s: f64,
    requests_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    worst_client_p95_ms: f64,
    worst_client_max_ms: f64,
    wire: WireStats,
}

/// The `--soak` comparison in `BENCH_serve.json`.
#[derive(serde::Serialize)]
struct SoakDoc {
    frames_per_client: usize,
    baseline: SoakRunDoc,
    stalled: SoakRunDoc,
    /// Fractional healthy-throughput drop with the stalled client in.
    degradation: f64,
    degradation_gate: f64,
}

/// The whole `BENCH_serve.json` document.
#[derive(serde::Serialize)]
struct BenchDoc {
    bench: &'static str,
    clients: usize,
    stops: usize,
    figures: usize,
    profiles: Vec<ProfileDoc>,
    #[serde(skip_serializing_if = "Option::is_none")]
    fleet: Option<FleetDoc>,
    #[serde(skip_serializing_if = "Option::is_none")]
    soak: Option<SoakDoc>,
}

fn run_profile(
    name: &'static str,
    profile: LatencyProfile,
    clients: usize,
    stops: usize,
) -> ProfileResult {
    let figs = Arc::new(figures::all());
    let (_, _, roots) = build(&WorkloadConfig::default()).finish();

    let (tx, rx) = mpsc::channel();
    let engine = thread::spawn(move || {
        let session = Session::builder(build(&WorkloadConfig::default()))
            .profile(profile)
            .cache(CacheConfig::default())
            .attach()
            .unwrap();
        let mut server = Server::new(session, ServeConfig::default());
        tx.send(server.handle()).unwrap();
        server.run();
        server.stats()
    });
    let handle: ServerHandle = rx.recv().unwrap();

    // Connect everyone up front so the idle-exit engine outlives the
    // fastest client, then rendezvous between rounds so stop events are
    // strictly ordered after every client's round-k replies.
    let conns: Vec<_> = (0..clients).map(|_| handle.connect()).collect();
    let barrier = Arc::new(Barrier::new(clients));
    let started = Instant::now();
    let workers: Vec<_> = conns
        .into_iter()
        .enumerate()
        .map(|(i, conn)| {
            let figs = figs.clone();
            let barrier = barrier.clone();
            let handle = handle.clone();
            let roots = roots.clone();
            thread::spawn(move || {
                let mut replica = Replica::new();
                let mut latencies_ns = Vec::new();
                for round in 0..=stops as u64 {
                    for fig in figs.iter() {
                        let sent = Instant::now();
                        conn.send(&VCommand::VplotRequest {
                            viewcl: fig.viewcl.to_string(),
                        }, SendMode::Blocking)
                        .expect("send");
                        let line = conn.recv().expect("reply");
                        latencies_ns.push(sent.elapsed().as_nanos() as u64);
                        replica.apply_line(&line).expect("apply");
                        if let Some(ack) = replica.ack(fig.viewcl) {
                            conn.send(&ack, SendMode::Blocking).expect("ack");
                            conn.recv().expect("ack reply");
                        }
                    }
                    barrier.wait();
                    if round < stops as u64 {
                        if i == 0 {
                            let roots = roots.clone();
                            handle
                                .stop_event(move |img| {
                                    ksim::tick::tick(img, &roots, round + 1);
                                })
                                .expect("stop event");
                        }
                        barrier.wait();
                    }
                }
                conn.close();
                latencies_ns
            })
        })
        .collect();
    let per_client_ns: Vec<Vec<u64>> = workers
        .into_iter()
        .map(|w| w.join().expect("client"))
        .collect();
    let elapsed_s = started.elapsed().as_secs_f64();
    let stats = engine.join().expect("engine");
    ProfileResult {
        name,
        clients,
        stops,
        elapsed_s,
        stats,
        per_client_ns,
    }
}

/// Record the full corpus x (stops + 1) generations into an in-memory
/// capture, in the exact order fleet clients will request it. Recorded
/// without the snapshot cache: every read goes to the tape, so replay
/// walks carry their full weight — the cost the share group exists to
/// eliminate.
fn record_corpus(stops: usize) -> Capture {
    let mut s = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .record("serve_bench.vrec")
        .attach()
        .expect("record session");
    for round in 0..=stops as u64 {
        if round > 0 {
            let roots = s.roots.clone();
            s.stop_event(|img| {
                ksim::tick::tick(img, &roots, round);
            })
            .expect("live stop");
        }
        for fig in figures::all() {
            s.extract(fig.viewcl).expect("record extract");
        }
    }
    s.capture().expect("capture")
}

struct FleetRunResult {
    engines: usize,
    clients_per_engine: usize,
    elapsed_s: f64,
    stats: FleetStats,
    per_client_ns: Vec<Vec<u64>>,
}

/// Serve the recorded corpus from `engines` identical replay sessions,
/// `clients_per_engine` clients each, with lock-step rounds and fleet
/// ticks between them.
fn run_fleet(
    cap: &Capture,
    engines: usize,
    clients_per_engine: usize,
    stops: usize,
) -> FleetRunResult {
    let figs = Arc::new(figures::all());
    // Clients pipeline a whole round before draining replies, so the
    // queues must hold one full corpus per client — otherwise a client
    // blocked mid-batch and an engine blocked on that client's full
    // outbox would starve each other.
    let fleet = Arc::new(Fleet::new(FleetConfig {
        max_resident: engines,
        serve: ServeConfig {
            request_queue: clients_per_engine * figs.len() + 8,
            client_queue: figs.len() + 8,
            ..ServeConfig::default()
        },
    }));
    for e in 0..engines {
        fleet
            .add_session(&format!("replay-{e}"), SessionSpec::replay(cap.clone()))
            .expect("register");
    }
    let conns: Vec<_> = (0..engines)
        .flat_map(|e| {
            let fleet = &fleet;
            (0..clients_per_engine)
                .map(move |_| fleet.connect(&format!("replay-{e}")).expect("connect"))
        })
        .collect();

    let total = conns.len();
    let barrier = Arc::new(Barrier::new(total));
    let started = Instant::now();
    let workers: Vec<_> = conns
        .into_iter()
        .enumerate()
        .map(|(i, conn)| {
            let figs = figs.clone();
            let barrier = barrier.clone();
            let fleet = fleet.clone();
            thread::spawn(move || {
                // Lightweight load generator: receive the payload bytes
                // but skip the client-side replica apply — the fleet
                // runs measure serving throughput, and parsing on the
                // load-generator thread would serialize with the engines
                // on this machine. Each round is pipelined (batch-send,
                // then drain): a synchronous round trip per request
                // would measure scheduler ping-pong, not serving.
                let mut latencies_ns = Vec::new();
                for round in 0..=stops as u64 {
                    let mut sent_at = Vec::with_capacity(figs.len());
                    for fig in figs.iter() {
                        sent_at.push(Instant::now());
                        conn.send(&VCommand::VplotRequest {
                            viewcl: fig.viewcl.to_string(),
                        }, SendMode::Blocking)
                        .expect("send");
                    }
                    for sent in sent_at {
                        let line = conn.recv().expect("reply");
                        latencies_ns.push(sent.elapsed().as_nanos() as u64);
                        assert!(
                            line.starts_with("{\"command\":\"vplot"),
                            "unexpected reply: {line}"
                        );
                    }
                    barrier.wait();
                    if round < stops as u64 {
                        if i == 0 {
                            fleet.tick_all(round + 1).expect("tick");
                        }
                        barrier.wait();
                    }
                }
                drop(conn);
                latencies_ns
            })
        })
        .collect();
    let per_client_ns: Vec<Vec<u64>> = workers
        .into_iter()
        .map(|w| w.join().expect("client"))
        .collect();
    let elapsed_s = started.elapsed().as_secs_f64();
    let stats = fleet.shutdown();
    FleetRunResult {
        engines,
        clients_per_engine,
        elapsed_s,
        stats,
        per_client_ns,
    }
}

struct SoakRunResult {
    healthy: usize,
    stalled: usize,
    requests: u64,
    elapsed_s: f64,
    per_client_ns: Vec<Vec<u64>>,
    wire: WireStats,
    stats: ServeStats,
}

/// Soak the evented wire pump: `healthy` binary-framed clients each
/// walk the figure corpus `frames + 1` requests deep, synchronously,
/// while `stalled` extra clients queue the whole corpus several times
/// over and then never read a byte of their replies. The pump must cap
/// each stalled lane (a few buffered chunks, then `outbuf_limit`, then
/// admission control) and keep round-robining the healthy lanes —
/// aggregate healthy throughput is the measure.
fn run_soak(healthy: usize, stalled: usize, frames: usize) -> SoakRunResult {
    let viewcls: Vec<String> = figures::all()
        .iter()
        .map(|f| f.viewcl.to_string())
        .collect();
    let (tx, rx) = mpsc::channel();
    let engine = thread::spawn(move || {
        let session = Session::builder(build(&WorkloadConfig::default()))
            .profile(LatencyProfile::free())
            .cache(CacheConfig::default())
            .attach()
            .unwrap();
        let mut server = Server::new(
            session,
            ServeConfig {
                exit_when_idle: false,
                ..ServeConfig::default()
            },
        );
        tx.send(server.handle()).unwrap();
        server.run();
        server.stats()
    });
    let handle: ServerHandle = rx.recv().unwrap();
    let pump = WirePump::new(
        Box::new(SingleSession::new(handle.clone())),
        WireConfig {
            // Low enough that a stalled client's plot replies (one
            // corpus of full plots is ~225 KiB) hit the cap — the stall
            // path proper, not just admission control.
            outbuf_limit: 96 << 10,
            ..WireConfig::default()
        },
    );
    let ph = pump.handle();
    let pump_thread = thread::spawn(move || pump.run());

    // Warm the walk memo identically in both runs before the clock
    // starts: the stalled client queues the whole corpus, so without
    // this it would pre-pay the 21 walks only in the stalled run and
    // bias the baseline comparison.
    let warm = handle.connect();
    for viewcl in &viewcls {
        warm.send(
            &VCommand::VplotRequest {
                viewcl: viewcl.clone(),
            },
            SendMode::Blocking,
        )
        .expect("warmup send");
        warm.recv().expect("warmup reply");
    }
    warm.close();

    // The stalled clients first: a manual binary handshake, then four
    // passes over the whole figure corpus batched into a *single*
    // write, then silence — not one reply byte is ever read. Batching
    // matters: once the lane stalls the pump stops reading it, so a
    // zombie must never again depend on its sends draining. Keep the
    // io handles alive so the lanes stay open (and stalled) all run.
    // The tiny byte channel means a couple of reply chunks fit, then
    // the pump's writes would block, its lane out-buffer fills to the
    // cap, and the stall machinery takes over.
    let zombies: Vec<Box<dyn Io>> = (0..stalled)
        .map(|_| {
            let (mut io, srv_io) = byte_pair(2);
            ph.add(Box::new(srv_io)).expect("pump add");
            let mut done = 0;
            let hello = hello_frame(VERSION);
            while done < hello.len() {
                match io.write(&hello[done..]) {
                    Ok(n) => done += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::yield_now(),
                    Err(e) => panic!("stalled hello: {e}"),
                }
            }
            let mut verdict = DecodeBuf::new();
            let mut chunk = [0u8; 64];
            loop {
                match parse_verdict(&mut verdict, VERSION) {
                    Ok(Some(())) => break,
                    Ok(None) => {}
                    Err(e) => panic!("stalled handshake: {e}"),
                }
                match io.read(&mut chunk) {
                    Ok(0) => panic!("pump closed the stalled lane during handshake"),
                    Ok(n) => verdict.extend(&chunk[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::yield_now(),
                    Err(e) => panic!("stalled verdict: {e}"),
                }
            }
            let framing = BinaryFraming::default();
            let mut bulk = Vec::new();
            for i in 0..4 * viewcls.len() {
                let cmd = VCommand::VplotRequest {
                    viewcl: viewcls[i % viewcls.len()].clone(),
                };
                framing.encode(&cmd.to_json(), &mut bulk);
            }
            let mut done = 0;
            while done < bulk.len() {
                match io.write(&bulk[done..]) {
                    Ok(n) => done += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::yield_now(),
                    Err(e) => panic!("stalled bulk send: {e}"),
                }
            }
            Box::new(io) as Box<dyn Io>
        })
        .collect();

    // 256 wire connections do not get 256 OS threads: on a small (even
    // single-core) runner, thread thrash — not the pump — would
    // dominate and starve everything. A few worker threads each
    // multiplex a slice of connections, batch-sending a round and then
    // draining it, so every connection still keeps a request in flight
    // concurrently and the pump still juggles `healthy` live lanes.
    let threads = healthy.min(8);
    // The bench thread joins the rendezvous too, so the clock starts
    // when the last handshake lands, not when the spawn loop ends.
    let barrier = Arc::new(Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let conns = healthy / threads + usize::from(t < healthy % threads);
            let ios: Vec<_> = (0..conns)
                .map(|_| {
                    let (io, srv_io) = byte_pair(64);
                    ph.add(Box::new(srv_io)).expect("pump add");
                    io
                })
                .collect::<Vec<_>>();
            let viewcls = viewcls.clone();
            let barrier = barrier.clone();
            thread::spawn(move || {
                let mut clients: Vec<WireClient> = ios
                    .into_iter()
                    .map(|io| WireClient::binary(Box::new(io)).expect("handshake"))
                    .collect();
                barrier.wait();
                let mut latencies_ns: Vec<Vec<u64>> = vec![Vec::new(); clients.len()];
                for i in 0..=frames {
                    let viewcl = &viewcls[i % viewcls.len()];
                    let round = Instant::now();
                    for c in clients.iter_mut() {
                        c.send(&VCommand::VplotRequest {
                            viewcl: viewcl.clone(),
                        })
                        .expect("send");
                    }
                    for (c, lat) in clients.iter_mut().zip(latencies_ns.iter_mut()) {
                        let reply = c.recv().expect("recv").expect("plot reply");
                        assert!(reply.contains("vplot"), "{reply}");
                        lat.push(round.elapsed().as_nanos() as u64);
                    }
                }
                latencies_ns
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    let per_client_ns: Vec<Vec<u64>> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("healthy client"))
        .collect();
    let elapsed_s = started.elapsed().as_secs_f64();

    drop(zombies);
    handle.shutdown();
    let stats = engine.join().expect("engine");
    ph.shutdown();
    let wire = pump_thread.join().expect("pump");
    SoakRunResult {
        healthy,
        stalled,
        requests: (healthy * (frames + 1)) as u64,
        elapsed_s,
        per_client_ns,
        wire,
        stats,
    }
}

fn soak_run_doc(r: &SoakRunResult) -> SoakRunDoc {
    let lat = latencies(&r.per_client_ns);
    SoakRunDoc {
        healthy_clients: r.healthy,
        stalled_clients: r.stalled,
        requests: r.requests,
        elapsed_s: r.elapsed_s,
        requests_per_sec: r.requests as f64 / r.elapsed_s,
        p50_ms: lat.p50_ms,
        p95_ms: lat.p95_ms,
        worst_client_p95_ms: lat.worst_client_p95_ms,
        worst_client_max_ms: lat.worst_client_max_ms,
        wire: r.wire,
    }
}

fn fleet_run_doc(r: &FleetRunResult) -> FleetRunDoc {
    let lat = latencies(&r.per_client_ns);
    FleetRunDoc {
        engines: r.engines,
        clients_per_engine: r.clients_per_engine,
        requests: r.stats.engine.requests,
        elapsed_s: r.elapsed_s,
        requests_per_sec: r.stats.engine.requests as f64 / r.elapsed_s,
        p50_ms: lat.p50_ms,
        p95_ms: lat.p95_ms,
        worst_client_p95_ms: lat.worst_client_p95_ms,
        worst_client_max_ms: lat.worst_client_max_ms,
        stats: r.stats,
    }
}

fn main() {
    let mut clients = 4usize;
    let mut stops = 3usize;
    let mut fleet_mode = false;
    let mut engines = 4usize;
    let mut fleet_clients = 2usize;
    let mut soak_mode = false;
    let mut soak_clients = 256usize;
    let mut soak_frames = 24usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--soak" => soak_mode = true,
            "--soak-clients" => {
                soak_clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--soak-clients N")
            }
            "--soak-frames" => {
                soak_frames = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--soak-frames N")
            }
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients N")
            }
            "--stops" => stops = args.next().and_then(|v| v.parse().ok()).expect("--stops N"),
            "--fleet" => fleet_mode = true,
            "--engines" => {
                engines = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--engines N")
            }
            "--fleet-clients" => {
                fleet_clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--fleet-clients N")
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: \
                     serve_bench [--clients N] [--stops N] [--fleet] [--engines N] \
                     [--fleet-clients N] [--soak] [--soak-clients N] [--soak-frames N]"
                );
                std::process::exit(2);
            }
        }
    }

    println!(
        "serve_bench: {clients} clients x {} figures x {stops} stop events\n",
        figures::all().len()
    );
    let results = [
        run_profile("gdb_qemu", LatencyProfile::gdb_qemu(), clients, stops),
        run_profile("kgdb_rpi400", LatencyProfile::kgdb_rpi400(), clients, stops),
    ];

    let t = TablePrinter::new(&[13, 9, 11, 9, 9, 9, 10, 9, 11, 13]);
    t.row(
        &[
            "profile",
            "requests",
            "req/s",
            "p50-ms",
            "p95-ms",
            "worst-ms",
            "walks",
            "coalesce",
            "deltas",
            "bytes saved",
        ]
        .map(String::from),
    );
    t.sep();
    let mut profiles = Vec::new();
    let mut failed = false;
    for r in &results {
        let s = &r.stats;
        if let Err(e) = s.reconcile() {
            eprintln!("{}: ServeStats do not reconcile: {e}", r.name);
            failed = true;
        }
        let rps = s.requests as f64 / r.elapsed_s;
        let lat = latencies(&r.per_client_ns);
        t.row(&[
            r.name.to_string(),
            s.requests.to_string(),
            format!("{rps:.0}"),
            format!("{:.2}", lat.p50_ms),
            format!("{:.2}", lat.p95_ms),
            format!("{:.2}", lat.worst_client_max_ms),
            s.walks.to_string(),
            format!("{:.1}%", s.coalesce_rate() * 100.0),
            s.deltas_sent.to_string(),
            s.delta_bytes_saved.to_string(),
        ]);
        profiles.push(ProfileDoc {
            profile: r.name,
            clients: r.clients,
            stops: r.stops,
            elapsed_s: r.elapsed_s,
            requests: s.requests,
            requests_per_sec: rps,
            p50_ms: lat.p50_ms,
            p95_ms: lat.p95_ms,
            worst_client_p95_ms: lat.worst_client_p95_ms,
            worst_client_max_ms: lat.worst_client_max_ms,
            coalesce_rate: s.coalesce_rate(),
            delta_bytes_saved: s.delta_bytes_saved,
            stats: *s,
        });
    }
    t.sep();

    let fleet = if fleet_mode {
        println!("\nrecording the corpus capture for the fleet runs...");
        let cap = record_corpus(stops);
        println!("fleet baseline: 1 engine x {fleet_clients} clients");
        let baseline = run_fleet(&cap, 1, fleet_clients, stops);
        println!("fleet run: {engines} engines x {fleet_clients} clients each");
        let big = run_fleet(&cap, engines, fleet_clients, stops);
        for (name, r) in [("baseline", &baseline), ("fleet", &big)] {
            if let Err(e) = r.stats.reconcile() {
                eprintln!("{name}: FleetStats do not reconcile: {e}");
                failed = true;
            }
        }
        let bdoc = fleet_run_doc(&baseline);
        let fdoc = fleet_run_doc(&big);
        let scaling = fdoc.requests_per_sec / bdoc.requests_per_sec;
        println!(
            "\nfleet: {} req/s over baseline {} req/s -> scaling {scaling:.2}x \
             (gate {FLEET_SCALING_GATE:.1}x); shared hits {}, walks {}",
            fdoc.requests_per_sec as u64,
            bdoc.requests_per_sec as u64,
            fdoc.stats.engine.shared_hits,
            fdoc.stats.engine.walks,
        );
        if scaling < FLEET_SCALING_GATE {
            eprintln!("fleet scaling {scaling:.2}x under the {FLEET_SCALING_GATE:.1}x gate");
            failed = true;
        }
        Some(FleetDoc {
            stops,
            baseline: bdoc,
            fleet: fdoc,
            scaling,
            scaling_gate: FLEET_SCALING_GATE,
        })
    } else {
        None
    };

    let soak = if soak_mode {
        println!("\nsoak baseline: {soak_clients} healthy wire clients, none stalled");
        let baseline = run_soak(soak_clients, 0, soak_frames);
        println!("soak run: {soak_clients} healthy wire clients + 1 stalled");
        let hostile = run_soak(soak_clients, 1, soak_frames);
        for (name, r) in [("soak baseline", &baseline), ("soak", &hostile)] {
            if let Err(e) = r.wire.reconcile() {
                eprintln!("{name}: WireStats do not reconcile: {e}");
                failed = true;
            }
            if let Err(e) = r.stats.reconcile() {
                eprintln!("{name}: ServeStats do not reconcile: {e}");
                failed = true;
            }
        }
        if hostile.wire.stalled_skips == 0 {
            eprintln!("soak: the stalled client never tripped the stall cap");
            failed = true;
        }
        let bdoc = soak_run_doc(&baseline);
        let sdoc = soak_run_doc(&hostile);
        let degradation = 1.0 - sdoc.requests_per_sec / bdoc.requests_per_sec;
        println!(
            "soak: healthy {} req/s with the stalled client vs {} req/s without \
             -> degradation {:.1}% (gate {:.0}%); {} stalled-lane skips",
            sdoc.requests_per_sec as u64,
            bdoc.requests_per_sec as u64,
            degradation * 100.0,
            SOAK_DEGRADATION_GATE * 100.0,
            hostile.wire.stalled_skips,
        );
        if degradation > SOAK_DEGRADATION_GATE {
            eprintln!(
                "soak degradation {:.1}% over the {:.0}% gate",
                degradation * 100.0,
                SOAK_DEGRADATION_GATE * 100.0
            );
            failed = true;
        }
        Some(SoakDoc {
            frames_per_client: soak_frames,
            baseline: bdoc,
            stalled: sdoc,
            degradation,
            degradation_gate: SOAK_DEGRADATION_GATE,
        })
    } else {
        None
    };

    let out = std::env::var("BENCH_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let doc = BenchDoc {
        bench: "serve",
        clients,
        stops,
        figures: figures::all().len(),
        profiles,
        fleet,
        soak,
    };
    std::fs::write(&out, serde_json::to_string_pretty(&doc).expect("encode")).expect("write");
    println!("\nwrote {out}");
    if failed {
        std::process::exit(1);
    }
}
