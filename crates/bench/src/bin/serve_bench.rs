//! `serve_bench` — throughput of the concurrent pane server (vserve).
//!
//! N clients (default 4) hammer one shared server with the full figure
//! corpus across several stop events: round 0 ships full plots, later
//! rounds exercise delta sync. Real wall-clock, per latency profile
//! (the profiles only shape virtual time, but they also shape payload
//! mix via identical graphs — both are reported).
//!
//! ```text
//! cargo run -p bench --bin serve_bench              # 4 clients, 3 stops
//! cargo run -p bench --bin serve_bench -- --clients 8 --stops 5
//! ```
//!
//! Emits `BENCH_serve.json` (override with `$BENCH_SERVE_OUT`) with
//! requests/sec, per-request p50/p95 wall-clock latency, coalesce
//! rate, and delta_bytes_saved per profile.
//! Exits non-zero if any profile's `ServeStats` fail to reconcile.

use std::sync::{mpsc, Arc, Barrier};
use std::thread;
use std::time::Instant;

use bench::TablePrinter;
use ksim::workload::{build, WorkloadConfig};
use vbridge::{CacheConfig, LatencyProfile};
use visualinux::proto::VCommand;
use visualinux::{figures, Session};
use vserve::{Replica, ServeConfig, ServeStats, Server, ServerHandle};

struct ProfileResult {
    name: &'static str,
    clients: usize,
    stops: usize,
    elapsed_s: f64,
    stats: ServeStats,
    /// Per-plot-request wall-clock latencies, all clients pooled.
    latencies_ns: Vec<u64>,
}

/// The p-th percentile (nearest-rank) of an unsorted latency sample.
fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0 * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1e6
}

/// One profile's row in `BENCH_serve.json`.
#[derive(serde::Serialize)]
struct ProfileDoc {
    profile: &'static str,
    clients: usize,
    stops: usize,
    elapsed_s: f64,
    requests: u64,
    requests_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    coalesce_rate: f64,
    delta_bytes_saved: u64,
    stats: ServeStats,
}

/// The whole `BENCH_serve.json` document.
#[derive(serde::Serialize)]
struct BenchDoc {
    bench: &'static str,
    clients: usize,
    stops: usize,
    figures: usize,
    profiles: Vec<ProfileDoc>,
}

fn run_profile(
    name: &'static str,
    profile: LatencyProfile,
    clients: usize,
    stops: usize,
) -> ProfileResult {
    let figs = Arc::new(figures::all());
    let (_, _, roots) = build(&WorkloadConfig::default()).finish();

    let (tx, rx) = mpsc::channel();
    let engine = thread::spawn(move || {
        let session = Session::builder(build(&WorkloadConfig::default()))
            .profile(profile)
            .cache(CacheConfig::default())
            .attach()
            .unwrap();
        let mut server = Server::new(session, ServeConfig::default());
        tx.send(server.handle()).unwrap();
        server.run();
        server.stats()
    });
    let handle: ServerHandle = rx.recv().unwrap();

    // Connect everyone up front so the idle-exit engine outlives the
    // fastest client, then rendezvous between rounds so stop events are
    // strictly ordered after every client's round-k replies.
    let conns: Vec<_> = (0..clients).map(|_| handle.connect()).collect();
    let barrier = Arc::new(Barrier::new(clients));
    let started = Instant::now();
    let workers: Vec<_> = conns
        .into_iter()
        .enumerate()
        .map(|(i, conn)| {
            let figs = figs.clone();
            let barrier = barrier.clone();
            let handle = handle.clone();
            let roots = roots.clone();
            thread::spawn(move || {
                let mut replica = Replica::new();
                let mut latencies_ns = Vec::new();
                for round in 0..=stops as u64 {
                    for fig in figs.iter() {
                        let sent = Instant::now();
                        conn.send(&VCommand::VplotRequest {
                            viewcl: fig.viewcl.to_string(),
                        })
                        .expect("send");
                        let line = conn.recv().expect("reply");
                        latencies_ns.push(sent.elapsed().as_nanos() as u64);
                        replica.apply_line(&line).expect("apply");
                        if let Some(ack) = replica.ack(fig.viewcl) {
                            conn.send(&ack).expect("ack");
                            conn.recv().expect("ack reply");
                        }
                    }
                    barrier.wait();
                    if round < stops as u64 {
                        if i == 0 {
                            let roots = roots.clone();
                            handle
                                .stop_event(move |img| {
                                    ksim::tick::tick(img, &roots, round + 1);
                                })
                                .expect("stop event");
                        }
                        barrier.wait();
                    }
                }
                conn.close();
                latencies_ns
            })
        })
        .collect();
    let mut latencies_ns: Vec<u64> = Vec::new();
    for w in workers {
        latencies_ns.extend(w.join().expect("client"));
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let stats = engine.join().expect("engine");
    latencies_ns.sort_unstable();
    ProfileResult {
        name,
        clients,
        stops,
        elapsed_s,
        stats,
        latencies_ns,
    }
}

fn main() {
    let mut clients = 4usize;
    let mut stops = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients N")
            }
            "--stops" => stops = args.next().and_then(|v| v.parse().ok()).expect("--stops N"),
            other => {
                eprintln!("unknown flag {other}; usage: serve_bench [--clients N] [--stops N]");
                std::process::exit(2);
            }
        }
    }

    println!(
        "serve_bench: {clients} clients x {} figures x {stops} stop events\n",
        figures::all().len()
    );
    let results = [
        run_profile("gdb_qemu", LatencyProfile::gdb_qemu(), clients, stops),
        run_profile("kgdb_rpi400", LatencyProfile::kgdb_rpi400(), clients, stops),
    ];

    let t = TablePrinter::new(&[13, 9, 11, 9, 9, 10, 9, 11, 13]);
    t.row(
        &[
            "profile",
            "requests",
            "req/s",
            "p50-ms",
            "p95-ms",
            "walks",
            "coalesce",
            "deltas",
            "bytes saved",
        ]
        .map(String::from),
    );
    t.sep();
    let mut profiles = Vec::new();
    let mut failed = false;
    for r in &results {
        let s = &r.stats;
        if let Err(e) = s.reconcile() {
            eprintln!("{}: ServeStats do not reconcile: {e}", r.name);
            failed = true;
        }
        let rps = s.requests as f64 / r.elapsed_s;
        let p50 = percentile_ms(&r.latencies_ns, 50.0);
        let p95 = percentile_ms(&r.latencies_ns, 95.0);
        t.row(&[
            r.name.to_string(),
            s.requests.to_string(),
            format!("{rps:.0}"),
            format!("{p50:.2}"),
            format!("{p95:.2}"),
            s.walks.to_string(),
            format!("{:.1}%", s.coalesce_rate() * 100.0),
            s.deltas_sent.to_string(),
            s.delta_bytes_saved.to_string(),
        ]);
        profiles.push(ProfileDoc {
            profile: r.name,
            clients: r.clients,
            stops: r.stops,
            elapsed_s: r.elapsed_s,
            requests: s.requests,
            requests_per_sec: rps,
            p50_ms: p50,
            p95_ms: p95,
            coalesce_rate: s.coalesce_rate(),
            delta_bytes_saved: s.delta_bytes_saved,
            stats: *s,
        });
    }
    t.sep();

    let out = std::env::var("BENCH_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let doc = BenchDoc {
        bench: "serve",
        clients,
        stops,
        figures: figures::all().len(),
        profiles,
    };
    std::fs::write(&out, serde_json::to_string_pretty(&doc).expect("encode")).expect("write");
    println!("\nwrote {out}");
    if failed {
        std::process::exit(1);
    }
}
