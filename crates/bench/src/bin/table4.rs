//! Table 4 harness: visualization cost of every figure under the two
//! debugging transports, in deterministic virtual time.
//!
//! Columns per transport: total ms | ms per object | ms per KiB of data
//! structure — the same three the paper reports. Absolute values are the
//! cost model's; the claims preserved are the *shape*: the KGDB/QEMU
//! per-object ratio (~50x), the per-KB band, and the figure ranking.

use bench::{attach, attach_cached, attach_incr, attach_plan, TablePrinter, TABLE4_FIGURES};
use vbridge::{CacheConfig, LatencyProfile};
use visualinux::{figures, PlotSpec};

struct Row {
    id: &'static str,
    qemu: (f64, f64, f64),
    kgdb: (f64, f64, f64),
    /// (cold total ms, warm total ms, warm wire packets, cold wire
    /// packets) on KGDB with the snapshot block cache; absent under
    /// `--no-cache`.
    cached: Option<(f64, f64, u64, u64)>,
    /// (cold total ms, cold wire packets) on cached KGDB with the
    /// walk-plan scheduler; absent under `--no-cache`.
    plan: Option<(f64, u64)>,
    /// (post-stop refresh total ms, post-stop wire packets) on cached
    /// KGDB with incremental refresh, after one scheduler tick; absent
    /// under `--no-cache`.
    incr: Option<(f64, u64)>,
}

fn measure(profile: LatencyProfile) -> Vec<(f64, f64, f64, u64)> {
    let mut session = attach(profile);
    TABLE4_FIGURES
        .iter()
        .map(|id| {
            let pane = session.plot(PlotSpec::Figure(id)).expect("figure extracts");
            let s = session.plot_stats(pane).unwrap();
            (
                s.total_ms(),
                s.ms_per_object(),
                s.ms_per_kb(),
                s.target.reads,
            )
        })
        .collect()
}

fn measure_cached(profile: LatencyProfile) -> Vec<(f64, f64, u64, u64)> {
    let mut session = attach_cached(profile, CacheConfig::default());
    TABLE4_FIGURES
        .iter()
        .map(|id| {
            let fig = figures::by_id(id).expect("figure exists");
            // Cold: each figure starts from an invalidated cache.
            session.resume();
            let (_, cold) = session.extract(fig.viewcl).expect("figure extracts");
            let (_, warm) = session.extract(fig.viewcl).expect("figure extracts");
            (
                cold.total_ms(),
                warm.total_ms(),
                warm.target.reads,
                cold.target.reads,
            )
        })
        .collect()
}

fn measure_plan(profile: LatencyProfile) -> Vec<(f64, u64)> {
    let mut session = attach_plan(profile, CacheConfig::default());
    TABLE4_FIGURES
        .iter()
        .map(|id| {
            let fig = figures::by_id(id).expect("figure exists");
            session.resume();
            let (_, cold) = session.extract(fig.viewcl).expect("figure extracts");
            (cold.total_ms(), cold.target.reads)
        })
        .collect()
}

/// Incremental refresh column: populate every figure, take one
/// scheduler tick, then measure the post-stop re-extraction. The whole
/// run is traced, and the session's cumulative per-extraction
/// `TargetStats` must reconcile with the vtrace clock *bit-for-bit* —
/// kept panes bill exactly nothing, re-walked panes bill exactly what
/// their spans recorded — or the run fails (exit 1).
fn measure_incr(profile: LatencyProfile) -> Vec<(f64, u64)> {
    use vtrace::Counters;

    let mut session = attach_incr(profile, CacheConfig::default());
    session.enable_tracing();
    let bill = |s: &vbridge::TargetStats| Counters {
        packets: s.reads,
        bytes: s.bytes,
        virtual_ns: s.virtual_ns,
        cache_hits: s.cache_hits,
        faults: s.faults,
    };
    let mut acc = Counters::default();
    for id in TABLE4_FIGURES {
        let fig = figures::by_id(id).expect("figure exists");
        let (_, s) = session.extract(fig.viewcl).expect("figure extracts");
        acc = acc.plus(bill(&s.target));
    }
    let roots = session.roots.clone();
    session
        .stop_event(|img| {
            ksim::tick::tick(img, &roots, 1);
        })
        .expect("live stop");
    let mut rows = Vec::new();
    for id in TABLE4_FIGURES {
        let fig = figures::by_id(id).expect("figure exists");
        let (_, s) = session.extract(fig.viewcl).expect("figure extracts");
        acc = acc.plus(bill(&s.target));
        rows.push((s.total_ms(), s.target.reads));
    }
    let clock = session.tracer().expect("tracing is on").clock();
    if acc != clock {
        eprintln!("INCR/VTRACE RECONCILIATION DRIFT:");
        eprintln!("  per-extraction stats {acc:?} != tracer clock {clock:?}");
        std::process::exit(1);
    }
    rows
}

/// `--trace` mode: replot every Table-4 figure with vtrace on and print
/// the per-stage cost attribution (exclusive spans, grouped by stage).
/// The stage rows of each figure must sum to its aggregate columns
/// *bit-for-bit* — same integer nanoseconds, packets, bytes, cache hits
/// and faults as `TargetStats` — or the run fails. The full span forest
/// is written as Chrome `trace_event` JSON to `$VTRACE_OUT`
/// (default `table4-trace.json`).
fn run_trace() {
    use vtrace::{Counters, SpanKind};

    let mut session = attach(LatencyProfile::kgdb_rpi400());
    session.enable_tracing();
    println!("Table 4 (--trace): per-stage attribution, KGDB profile (virtual time)\n");
    let t = TablePrinter::new(&[11, 10, 10, 10, 9, 11, 8, 6]);
    t.row(
        &[
            "figure",
            "parse-ms",
            "walk-ms",
            "distill-ms",
            "rest-ms",
            "total-ms",
            "pkts",
            "flt",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>(),
    );
    t.sep();

    let ms = |ns: u64| ns as f64 / 1e6;
    let mut drift: Vec<String> = Vec::new();
    for id in TABLE4_FIGURES {
        let pane = session.plot(PlotSpec::Figure(id)).expect("figure extracts");
        let stats = session.plot_stats(pane).unwrap().target;
        let trace = session.vtrace(pane).expect("tracing is on");
        if let Err(e) = trace.check_well_formed() {
            drift.push(format!("{id}: ill-formed span tree: {e}"));
        }

        // Exclusive (own) cost per pipeline stage.
        let mut parse = Counters::default();
        let mut walk = Counters::default();
        let mut distill = Counters::default();
        let mut rest = Counters::default();
        for sp in trace.flatten() {
            let own = sp.own();
            match sp.kind {
                SpanKind::Parse => parse = parse.plus(own),
                SpanKind::Interp => walk = walk.plus(own),
                SpanKind::Distill => distill = distill.plus(own),
                _ => rest = rest.plus(own),
            }
        }
        let sum = parse.plus(walk).plus(distill).plus(rest);

        // Bit-for-bit reconciliation: stage rows vs the span-tree root
        // vs the bridge's own TargetStats.
        let tot = trace.totals();
        if sum != tot {
            drift.push(format!("{id}: stage sum {sum:?} != span totals {tot:?}"));
        }
        let from_stats = Counters {
            packets: stats.reads,
            bytes: stats.bytes,
            virtual_ns: stats.virtual_ns,
            cache_hits: stats.cache_hits,
            faults: stats.faults,
        };
        if tot != from_stats {
            drift.push(format!(
                "{id}: span totals {tot:?} != TargetStats {from_stats:?}"
            ));
        }

        t.row(&[
            id.to_string(),
            format!("{:.2}", ms(parse.virtual_ns)),
            format!("{:.1}", ms(walk.virtual_ns)),
            format!("{:.1}", ms(distill.virtual_ns)),
            format!("{:.2}", ms(rest.virtual_ns)),
            format!("{:.1}", ms(tot.virtual_ns)),
            format!("{}", tot.packets),
            format!("{}", tot.faults),
        ]);
    }
    t.sep();

    let out = std::env::var("VTRACE_OUT").unwrap_or_else(|_| "table4-trace.json".to_string());
    std::fs::write(&out, session.export_chrome_trace()).expect("write chrome trace");
    println!("\nchrome trace:   {out} (load in chrome://tracing or ui.perfetto.dev)");

    if drift.is_empty() {
        println!(
            "reconciliation: all {} figures' per-stage rows sum to their \
             aggregates bit-for-bit [clean]",
            TABLE4_FIGURES.len()
        );
    } else {
        eprintln!("\nTRACE/STAT RECONCILIATION DRIFT:");
        for d in &drift {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
}

/// `--serve` mode: replay the Table-4 corpus through the concurrent
/// pane server (2 clients, one stop event) and print the serving
/// footnote: requests, coalesce rate, and delta-sync savings. Every
/// walk the server claims must reconcile with what the bridge actually
/// did: `ServeStats::reconcile` must pass and the `walk_*` counters
/// must equal the session tracer's cumulative clock bit-for-bit, or
/// the run fails (exit 1).
fn run_serve() {
    use ksim::workload::{build, WorkloadConfig};
    use std::sync::mpsc;
    use visualinux::proto::VCommand;
    use vserve::{Replica, SendMode, ServeConfig, Server};
    use vtrace::Counters;

    println!("Table 4 (--serve): serving footnote, KGDB profile (virtual time)\n");
    let (_, _, roots) = build(&WorkloadConfig::default()).finish();

    let (tx, rx) = mpsc::channel();
    let engine = std::thread::spawn(move || {
        let mut session = attach_cached(LatencyProfile::kgdb_rpi400(), CacheConfig::default());
        session.enable_tracing();
        let mut server = Server::new(session, ServeConfig::default());
        tx.send(server.handle()).unwrap();
        server.run();
        let clock = server.session().tracer().expect("tracing stays on").clock();
        (server.stats(), clock)
    });
    let handle = rx.recv().unwrap();

    // Two clients, strictly phased: both plot every figure (client B's
    // round coalesces onto A's walks), one scheduler tick, both replot
    // (deltas where they pay off).
    let conns: Vec<_> = (0..2).map(|_| handle.connect()).collect();
    let mut replicas = [Replica::new(), Replica::new()];
    for round in 0..2u64 {
        for (conn, replica) in conns.iter().zip(replicas.iter_mut()) {
            for id in TABLE4_FIGURES {
                let fig = figures::by_id(id).expect("figure exists");
                conn.send(&VCommand::VplotRequest {
                    viewcl: fig.viewcl.to_string(),
                }, SendMode::Blocking)
                .expect("send");
                replica
                    .apply_line(&conn.recv().expect("reply"))
                    .expect("apply");
            }
        }
        if round == 0 {
            let roots = roots.clone();
            handle
                .stop_event(move |img| {
                    ksim::tick::tick(img, &roots, 1);
                })
                .expect("stop event");
        }
    }
    drop(conns);
    let (stats, clock) = engine.join().expect("engine");

    let n = TABLE4_FIGURES.len() as u64;
    println!("serving footnote (2 clients x {n} figures, 2 rounds around one stop event):");
    println!(
        "  requests:       {} plot requests, {} bridge walks, {} coalesced ({:.0}% coalesce rate)",
        stats.plot_requests,
        stats.walks,
        stats.coalesced,
        stats.coalesce_rate() * 100.0
    );
    println!(
        "  delta sync:     {} fulls / {} deltas shipped, {} bytes saved vs always-full",
        stats.fulls_sent, stats.deltas_sent, stats.delta_bytes_saved
    );
    println!(
        "  walk cost:      {} packets, {} bytes, {:.1} ms virtual time",
        stats.walk_packets,
        stats.walk_bytes,
        stats.walk_virtual_ns as f64 / 1e6
    );

    // Reconciliation: the server's books, and the books vs the bridge.
    let mut drift: Vec<String> = Vec::new();
    if let Err(e) = stats.reconcile() {
        drift.push(format!("ServeStats inconsistent: {e}"));
    }
    let from_serve = Counters {
        packets: stats.walk_packets,
        bytes: stats.walk_bytes,
        virtual_ns: stats.walk_virtual_ns,
        cache_hits: stats.walk_cache_hits,
        faults: stats.walk_faults,
    };
    if from_serve != clock {
        drift.push(format!(
            "walk counters {from_serve:?} != tracer clock {clock:?}"
        ));
    }
    if drift.is_empty() {
        println!(
            "  reconciliation: serve books balance and walk counters match \
             the tracer clock bit-for-bit [clean]"
        );
    } else {
        eprintln!("\nSERVE/STAT RECONCILIATION DRIFT:");
        for d in &drift {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
}

/// `--replay` mode: record the cached-KGDB measurement sequence into a
/// `.vrec` wire capture, then re-run the same sequence from the capture
/// alone (zero live image access) and print both columns side by side.
/// Every figure's cold and warm packet/byte counts must reproduce
/// *bit-for-bit* — same `TargetStats` modulo the backend tag — or the
/// run fails (exit 1).
fn run_replay() {
    use ksim::workload::{build, WorkloadConfig};
    use vbridge::Capture;
    use visualinux::Session;

    let path = std::env::var("VREC_OUT").unwrap_or_else(|_| "table4-replay.vrec".to_string());
    println!("Table 4 (--replay): cached KGDB column, live vs wire-capture replay\n");

    // Live pass, recording: the exact measure_cached() sequence.
    let mut live = Session::builder(build(&WorkloadConfig::default()))
        .profile(LatencyProfile::kgdb_rpi400())
        .cache(CacheConfig::default())
        .record(&path)
        .attach()
        .expect("live attach cannot fail");
    let mut live_stats = Vec::new();
    for id in TABLE4_FIGURES {
        let fig = figures::by_id(id).expect("figure exists");
        live.resume();
        let (_, cold) = live.extract(fig.viewcl).expect("figure extracts");
        let (_, warm) = live.extract(fig.viewcl).expect("figure extracts");
        live_stats.push((cold.target, warm.target));
    }
    let saved = live.save_recording().expect("write capture");

    // Replay pass: same sequence, served purely from the capture.
    let cap = Capture::load(&saved).expect("reload capture");
    let events = cap.events.len();
    let mut rep = Session::replay(cap).attach().expect("replay attach");
    assert_eq!(
        rep.image().mem.mapped_pages(),
        0,
        "replay session must not hold live memory"
    );
    let mut rep_stats = Vec::new();
    for id in TABLE4_FIGURES {
        let fig = figures::by_id(id).expect("figure exists");
        rep.resume();
        let (_, cold) = rep.extract(fig.viewcl).expect("figure replays");
        let (_, warm) = rep.extract(fig.viewcl).expect("figure replays");
        rep_stats.push((cold.target, warm.target));
    }

    let t = TablePrinter::new(&[11, 10, 11, 10, 11, 8]);
    t.row(
        &[
            "figure",
            "cold-pkts",
            "cold-bytes",
            "warm-pkts",
            "warm-bytes",
            "status",
        ]
        .map(String::from),
    );
    t.sep();
    let mut drift: Vec<String> = Vec::new();
    for (i, id) in TABLE4_FIGURES.iter().enumerate() {
        let (lc, lw) = live_stats[i];
        let (rc, rw) = rep_stats[i];
        // Bit-for-bit: everything but the backend tag must match.
        let cold_ok = vbridge::TargetStats {
            backend: lc.backend,
            ..rc
        } == lc;
        let warm_ok = vbridge::TargetStats {
            backend: lw.backend,
            ..rw
        } == lw;
        if !cold_ok {
            drift.push(format!("{id}: cold live {lc:?} != replay {rc:?}"));
        }
        if !warm_ok {
            drift.push(format!("{id}: warm live {lw:?} != replay {rw:?}"));
        }
        t.row(&[
            id.to_string(),
            rc.reads.to_string(),
            rc.bytes.to_string(),
            rw.reads.to_string(),
            rw.bytes.to_string(),
            if cold_ok && warm_ok {
                "[ok]"
            } else {
                "[DRIFT]"
            }
            .to_string(),
        ]);
    }
    t.sep();

    let leftover = rep
        .replay_state()
        .map(|s| s.remaining())
        .unwrap_or_default();
    if leftover != 0 {
        drift.push(format!("{leftover} recorded wire events never replayed"));
    }
    println!(
        "\ncapture: {} ({events} wire events); replay backend: {}",
        saved.display(),
        rep.backend_kind().as_str()
    );
    if drift.is_empty() {
        println!(
            "reconciliation: all {} figures' cold and warm TargetStats \
             reproduce bit-for-bit from the capture [clean]",
            TABLE4_FIGURES.len()
        );
    } else {
        eprintln!("\nREPLAY/LIVE RECONCILIATION DRIFT:");
        for d in &drift {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
}

fn main() {
    if std::env::args().any(|a| a == "--serve") {
        return run_serve();
    }
    if std::env::args().any(|a| a == "--replay") {
        return run_replay();
    }
    if std::env::args().any(|a| a == "--trace") {
        return run_trace();
    }
    let no_cache = std::env::args().any(|a| a == "--no-cache");
    println!("Table 4: performance of plotting the ULK figures (virtual time)\n");
    let qemu = measure(LatencyProfile::gdb_qemu());
    let kgdb = measure(LatencyProfile::kgdb_rpi400());
    let (cached, plan, incr) = if no_cache {
        (Vec::new(), Vec::new(), Vec::new())
    } else {
        (
            measure_cached(LatencyProfile::kgdb_rpi400()),
            measure_plan(LatencyProfile::kgdb_rpi400()),
            measure_incr(LatencyProfile::kgdb_rpi400()),
        )
    };
    let rows: Vec<Row> = TABLE4_FIGURES
        .iter()
        .enumerate()
        .map(|(i, id)| Row {
            id,
            qemu: (qemu[i].0, qemu[i].1, qemu[i].2),
            kgdb: (kgdb[i].0, kgdb[i].1, kgdb[i].2),
            cached: cached.get(i).copied(),
            plan: plan.get(i).copied(),
            incr: incr.get(i).copied(),
        })
        .collect();

    let mut header = vec![
        "#", "figure", "qemu-ms", "/obj", "/KB", "kgdb-ms", "/obj", "/KB",
    ];
    let mut widths = vec![4, 11, 10, 9, 9, 12, 10, 10];
    if !no_cache {
        header.extend([
            "cold-ms", "warm-ms", "pkt-x", "plan-ms", "plan-x", "incr-ms", "incr-x",
        ]);
        widths.extend([10, 9, 7, 9, 7, 9, 7]);
    }
    let t = TablePrinter::new(&widths);
    t.row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    t.sep();
    for (i, r) in rows.iter().enumerate() {
        let mut cells = vec![
            format!("{}", i + 1),
            r.id.to_string(),
            format!("{:.1}", r.qemu.0),
            format!("{:.2}", r.qemu.1),
            format!("{:.1}", r.qemu.2),
            format!("{:.1}", r.kgdb.0),
            format!("{:.2}", r.kgdb.1),
            format!("{:.1}", r.kgdb.2),
        ];
        if let Some((cold, warm, warm_pkts, cold_pkts)) = r.cached {
            cells.push(format!("{cold:.1}"));
            cells.push(format!("{warm:.1}"));
            cells.push(format!(
                "{:.0}x",
                kgdb[i].3 as f64 / (warm_pkts.max(1)) as f64
            ));
            if let Some((plan_ms, plan_pkts)) = r.plan {
                // Plan column: the walk-plan scheduler's cold packet
                // cut over the plain cached cold extraction.
                cells.push(format!("{plan_ms:.1}"));
                cells.push(format!(
                    "{:.1}x",
                    cold_pkts as f64 / plan_pkts.max(1) as f64
                ));
            }
            if let Some((incr_ms, incr_pkts)) = r.incr {
                // Incr column: the refresh cost after one scheduler
                // tick vs a cold cached re-extraction — kept panes
                // show 0 packets.
                cells.push(format!("{incr_ms:.1}"));
                cells.push(format!(
                    "{:.0}x",
                    cold_pkts as f64 / incr_pkts.max(1) as f64
                ));
            }
        }
        t.row(&cells);
    }
    t.sep();

    // Shape checks mirrored from the paper's observations.
    let ratio: Vec<f64> = rows
        .iter()
        .filter(|r| r.qemu.1 > 0.0)
        .map(|r| r.kgdb.1 / r.qemu.1)
        .collect();
    let mean_ratio = ratio.iter().sum::<f64>() / ratio.len() as f64;
    let max_q = rows.iter().map(|r| r.qemu.0).fold(0.0, f64::max);
    let uint64_kgdb = LatencyProfile::kgdb_rpi400().cost_ns(8) as f64 / 1e6;

    println!("\nshape checks vs. the paper:");
    println!(
        "  per-object KGDB/QEMU ratio: {mean_ratio:.0}x   (paper: ~50x slower)   {}",
        band(mean_ratio, 30.0, 120.0)
    );
    println!(
        "  KGDB uint64 retrieval:      {uint64_kgdb:.1} ms (paper: ~5 ms)          {}",
        band(uint64_kgdb, 4.0, 6.5)
    );
    println!(
        "  largest QEMU plot:          {max_q:.0} ms  (paper: 10-326 ms band)   {}",
        band(max_q, 10.0, 400.0)
    );
    let kb_band = rows
        .iter()
        .filter(|r| (250.0..1500.0).contains(&r.kgdb.2))
        .count();
    println!(
        "  KGDB ms/KB order of mag.:   {kb_band}/{} rows in 0.25-1.5 s/KB (paper: 0.81-1.41 s/KB)",
        rows.len()
    );
    // Ranking: hash-table-heavy plots must be among the slowest, small
    // single-struct plots among the fastest (paper's Fig 3-6 vs 12-3).
    let slowest = rows
        .iter()
        .max_by(|a, b| a.kgdb.0.total_cmp(&b.kgdb.0))
        .map(|r| r.id)
        .unwrap_or("");
    let fastest = rows
        .iter()
        .min_by(|a, b| a.kgdb.0.total_cmp(&b.kgdb.0))
        .map(|r| r.id)
        .unwrap_or("");
    println!(
        "  slowest/fastest KGDB plot:  {slowest} / {fastest} (paper: Fig 3-6 / Fig 12-3-class)"
    );
    if !no_cache {
        let i34 = TABLE4_FIGURES
            .iter()
            .position(|id| *id == "fig3-4")
            .unwrap();
        let (_, warm_ms, warm_pkts, _) = cached[i34];
        let ns_x = kgdb[i34].0 / warm_ms.max(f64::MIN_POSITIVE);
        let pkt_x = kgdb[i34].3 as f64 / warm_pkts.max(1) as f64;
        let ns_disp = if warm_ms > 0.0 {
            format!("{ns_x:.0}x")
        } else {
            // A fully-warm plot sends no packets at all.
            ">1000x".to_string()
        };
        println!(
            "  warm cache, fig3-4 (KGDB):  {ns_disp} faster, {pkt_x:.0}x fewer packets (floor: 5x / 3x)  {}",
            if ns_x >= 5.0 && pkt_x >= 3.0 {
                "[in band]"
            } else {
                "[OUT OF BAND]"
            }
        );
        // Walk-plan scheduler: at least one multi-pane figure must
        // halve its cold packet count vs the plain cached extraction.
        let plan_x = cached
            .iter()
            .zip(plan.iter())
            .map(|(&(_, _, _, cold_pkts), &(_, plan_pkts))| {
                cold_pkts as f64 / plan_pkts.max(1) as f64
            })
            .fold(0.0, f64::max);
        println!(
            "  walk planner, best figure:  {plan_x:.1}x fewer cold packets (floor: 2x)        {}",
            if plan_x >= 2.0 {
                "[in band]"
            } else {
                "[OUT OF BAND]"
            }
        );
        // Incremental refresh: one scheduler tick must leave the
        // corpus-wide re-extraction bill far below a cold re-walk of
        // every pane (the vincr pitch; `incr_bench` gates the floor).
        let cold_total: u64 = cached.iter().map(|&(_, _, _, p)| p).sum();
        let incr_total: u64 = incr.iter().map(|&(_, p)| p).sum();
        let incr_x = cold_total as f64 / incr_total.max(1) as f64;
        println!(
            "  incr refresh, corpus:       {incr_x:.0}x fewer post-tick packets (floor: 5x)    {}",
            if incr_x >= 5.0 {
                "[in band]"
            } else {
                "[OUT OF BAND]"
            }
        );
    }

    // Image integrity: the cost rows above are only comparable if every
    // figure plotted a healthy image — no wild reads chased by a
    // distiller, and a clean kcheck sweep.
    let session = attach(LatencyProfile::free());
    let report = session.vcheck();
    let mut faults = 0u64;
    {
        let mut probe = attach(LatencyProfile::free());
        for id in TABLE4_FIGURES {
            let pane = probe.plot(PlotSpec::Figure(id)).expect("figure extracts");
            faults += probe.plot_stats(pane).unwrap().target.faults;
        }
    }
    println!("\nimage integrity:");
    println!(
        "  distiller wild reads:       {faults} faulting packets across all figures {}",
        if faults == 0 {
            "[clean]"
        } else {
            "[CORRUPTED]"
        }
    );
    println!(
        "  kcheck sweep:               {} {}",
        report.summary(),
        if report.is_clean() {
            "[clean]"
        } else {
            "[CORRUPTED]"
        }
    );
}

fn band(v: f64, lo: f64, hi: f64) -> &'static str {
    if (lo..=hi).contains(&v) {
        "[in band]"
    } else {
        "[OUT OF BAND]"
    }
}
