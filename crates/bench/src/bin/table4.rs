//! Table 4 harness: visualization cost of every figure under the two
//! debugging transports, in deterministic virtual time.
//!
//! Columns per transport: total ms | ms per object | ms per KiB of data
//! structure — the same three the paper reports. Absolute values are the
//! cost model's; the claims preserved are the *shape*: the KGDB/QEMU
//! per-object ratio (~50x), the per-KB band, and the figure ranking.

use bench::{attach, TablePrinter, TABLE4_FIGURES};
use vbridge::LatencyProfile;

struct Row {
    id: &'static str,
    qemu: (f64, f64, f64),
    kgdb: (f64, f64, f64),
}

fn measure(profile: LatencyProfile) -> Vec<(f64, f64, f64)> {
    let mut session = attach(profile);
    TABLE4_FIGURES
        .iter()
        .map(|id| {
            let pane = session.vplot_figure(id).expect("figure extracts");
            let s = session.plot_stats(pane).unwrap();
            (s.total_ms(), s.ms_per_object(), s.ms_per_kb())
        })
        .collect()
}

fn main() {
    println!("Table 4: performance of plotting the ULK figures (virtual time)\n");
    let qemu = measure(LatencyProfile::gdb_qemu());
    let kgdb = measure(LatencyProfile::kgdb_rpi400());
    let rows: Vec<Row> = TABLE4_FIGURES
        .iter()
        .zip(qemu.iter().zip(kgdb.iter()))
        .map(|(id, (q, k))| Row {
            id,
            qemu: *q,
            kgdb: *k,
        })
        .collect();

    let t = TablePrinter::new(&[4, 11, 10, 9, 9, 12, 10, 10]);
    t.row(
        &[
            "#", "figure", "qemu-ms", "/obj", "/KB", "kgdb-ms", "/obj", "/KB",
        ]
        .map(String::from),
    );
    t.sep();
    for (i, r) in rows.iter().enumerate() {
        t.row(&[
            format!("{}", i + 1),
            r.id.to_string(),
            format!("{:.1}", r.qemu.0),
            format!("{:.2}", r.qemu.1),
            format!("{:.1}", r.qemu.2),
            format!("{:.1}", r.kgdb.0),
            format!("{:.2}", r.kgdb.1),
            format!("{:.1}", r.kgdb.2),
        ]);
    }
    t.sep();

    // Shape checks mirrored from the paper's observations.
    let ratio: Vec<f64> = rows
        .iter()
        .filter(|r| r.qemu.1 > 0.0)
        .map(|r| r.kgdb.1 / r.qemu.1)
        .collect();
    let mean_ratio = ratio.iter().sum::<f64>() / ratio.len() as f64;
    let max_q = rows.iter().map(|r| r.qemu.0).fold(0.0, f64::max);
    let uint64_kgdb = LatencyProfile::kgdb_rpi400().cost_ns(8) as f64 / 1e6;

    println!("\nshape checks vs. the paper:");
    println!(
        "  per-object KGDB/QEMU ratio: {mean_ratio:.0}x   (paper: ~50x slower)   {}",
        band(mean_ratio, 30.0, 120.0)
    );
    println!(
        "  KGDB uint64 retrieval:      {uint64_kgdb:.1} ms (paper: ~5 ms)          {}",
        band(uint64_kgdb, 4.0, 6.5)
    );
    println!(
        "  largest QEMU plot:          {max_q:.0} ms  (paper: 10-326 ms band)   {}",
        band(max_q, 10.0, 400.0)
    );
    let kb_band = rows
        .iter()
        .filter(|r| (250.0..1500.0).contains(&r.kgdb.2))
        .count();
    println!(
        "  KGDB ms/KB order of mag.:   {kb_band}/{} rows in 0.25-1.5 s/KB (paper: 0.81-1.41 s/KB)",
        rows.len()
    );
    // Ranking: hash-table-heavy plots must be among the slowest, small
    // single-struct plots among the fastest (paper's Fig 3-6 vs 12-3).
    let slowest = rows
        .iter()
        .max_by(|a, b| a.kgdb.0.total_cmp(&b.kgdb.0))
        .map(|r| r.id)
        .unwrap_or("");
    let fastest = rows
        .iter()
        .min_by(|a, b| a.kgdb.0.total_cmp(&b.kgdb.0))
        .map(|r| r.id)
        .unwrap_or("");
    println!(
        "  slowest/fastest KGDB plot:  {slowest} / {fastest} (paper: Fig 3-6 / Fig 12-3-class)"
    );
}

fn band(v: f64, lo: f64, hi: f64) -> &'static str {
    if (lo..=hi).contains(&v) {
        "[in band]"
    } else {
        "[OUT OF BAND]"
    }
}
