//! Table 4 harness: visualization cost of every figure under the two
//! debugging transports, in deterministic virtual time.
//!
//! Columns per transport: total ms | ms per object | ms per KiB of data
//! structure — the same three the paper reports. Absolute values are the
//! cost model's; the claims preserved are the *shape*: the KGDB/QEMU
//! per-object ratio (~50x), the per-KB band, and the figure ranking.

use bench::{attach, attach_cached, TablePrinter, TABLE4_FIGURES};
use vbridge::{CacheConfig, LatencyProfile};
use visualinux::figures;

struct Row {
    id: &'static str,
    qemu: (f64, f64, f64),
    kgdb: (f64, f64, f64),
    /// (cold total ms, warm total ms, warm wire packets) on KGDB with
    /// the snapshot block cache; absent under `--no-cache`.
    cached: Option<(f64, f64, u64)>,
}

fn measure(profile: LatencyProfile) -> Vec<(f64, f64, f64, u64)> {
    let mut session = attach(profile);
    TABLE4_FIGURES
        .iter()
        .map(|id| {
            let pane = session.vplot_figure(id).expect("figure extracts");
            let s = session.plot_stats(pane).unwrap();
            (
                s.total_ms(),
                s.ms_per_object(),
                s.ms_per_kb(),
                s.target.reads,
            )
        })
        .collect()
}

fn measure_cached(profile: LatencyProfile) -> Vec<(f64, f64, u64)> {
    let mut session = attach_cached(profile, CacheConfig::default());
    TABLE4_FIGURES
        .iter()
        .map(|id| {
            let fig = figures::by_id(id).expect("figure exists");
            // Cold: each figure starts from an invalidated cache.
            session.resume();
            let (_, cold) = session.extract(fig.viewcl).expect("figure extracts");
            let (_, warm) = session.extract(fig.viewcl).expect("figure extracts");
            (cold.total_ms(), warm.total_ms(), warm.target.reads)
        })
        .collect()
}

fn main() {
    let no_cache = std::env::args().any(|a| a == "--no-cache");
    println!("Table 4: performance of plotting the ULK figures (virtual time)\n");
    let qemu = measure(LatencyProfile::gdb_qemu());
    let kgdb = measure(LatencyProfile::kgdb_rpi400());
    let cached = if no_cache {
        Vec::new()
    } else {
        measure_cached(LatencyProfile::kgdb_rpi400())
    };
    let rows: Vec<Row> = TABLE4_FIGURES
        .iter()
        .enumerate()
        .map(|(i, id)| Row {
            id,
            qemu: (qemu[i].0, qemu[i].1, qemu[i].2),
            kgdb: (kgdb[i].0, kgdb[i].1, kgdb[i].2),
            cached: cached.get(i).copied(),
        })
        .collect();

    let mut header = vec![
        "#", "figure", "qemu-ms", "/obj", "/KB", "kgdb-ms", "/obj", "/KB",
    ];
    let mut widths = vec![4, 11, 10, 9, 9, 12, 10, 10];
    if !no_cache {
        header.extend(["cold-ms", "warm-ms", "pkt-x"]);
        widths.extend([10, 9, 7]);
    }
    let t = TablePrinter::new(&widths);
    t.row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    t.sep();
    for (i, r) in rows.iter().enumerate() {
        let mut cells = vec![
            format!("{}", i + 1),
            r.id.to_string(),
            format!("{:.1}", r.qemu.0),
            format!("{:.2}", r.qemu.1),
            format!("{:.1}", r.qemu.2),
            format!("{:.1}", r.kgdb.0),
            format!("{:.2}", r.kgdb.1),
            format!("{:.1}", r.kgdb.2),
        ];
        if let Some((cold, warm, warm_pkts)) = r.cached {
            cells.push(format!("{cold:.1}"));
            cells.push(format!("{warm:.1}"));
            cells.push(format!(
                "{:.0}x",
                kgdb[i].3 as f64 / (warm_pkts.max(1)) as f64
            ));
        }
        t.row(&cells);
    }
    t.sep();

    // Shape checks mirrored from the paper's observations.
    let ratio: Vec<f64> = rows
        .iter()
        .filter(|r| r.qemu.1 > 0.0)
        .map(|r| r.kgdb.1 / r.qemu.1)
        .collect();
    let mean_ratio = ratio.iter().sum::<f64>() / ratio.len() as f64;
    let max_q = rows.iter().map(|r| r.qemu.0).fold(0.0, f64::max);
    let uint64_kgdb = LatencyProfile::kgdb_rpi400().cost_ns(8) as f64 / 1e6;

    println!("\nshape checks vs. the paper:");
    println!(
        "  per-object KGDB/QEMU ratio: {mean_ratio:.0}x   (paper: ~50x slower)   {}",
        band(mean_ratio, 30.0, 120.0)
    );
    println!(
        "  KGDB uint64 retrieval:      {uint64_kgdb:.1} ms (paper: ~5 ms)          {}",
        band(uint64_kgdb, 4.0, 6.5)
    );
    println!(
        "  largest QEMU plot:          {max_q:.0} ms  (paper: 10-326 ms band)   {}",
        band(max_q, 10.0, 400.0)
    );
    let kb_band = rows
        .iter()
        .filter(|r| (250.0..1500.0).contains(&r.kgdb.2))
        .count();
    println!(
        "  KGDB ms/KB order of mag.:   {kb_band}/{} rows in 0.25-1.5 s/KB (paper: 0.81-1.41 s/KB)",
        rows.len()
    );
    // Ranking: hash-table-heavy plots must be among the slowest, small
    // single-struct plots among the fastest (paper's Fig 3-6 vs 12-3).
    let slowest = rows
        .iter()
        .max_by(|a, b| a.kgdb.0.total_cmp(&b.kgdb.0))
        .map(|r| r.id)
        .unwrap_or("");
    let fastest = rows
        .iter()
        .min_by(|a, b| a.kgdb.0.total_cmp(&b.kgdb.0))
        .map(|r| r.id)
        .unwrap_or("");
    println!(
        "  slowest/fastest KGDB plot:  {slowest} / {fastest} (paper: Fig 3-6 / Fig 12-3-class)"
    );
    if !no_cache {
        let i34 = TABLE4_FIGURES
            .iter()
            .position(|id| *id == "fig3-4")
            .unwrap();
        let (_, warm_ms, warm_pkts) = cached[i34];
        let ns_x = kgdb[i34].0 / warm_ms.max(f64::MIN_POSITIVE);
        let pkt_x = kgdb[i34].3 as f64 / warm_pkts.max(1) as f64;
        let ns_disp = if warm_ms > 0.0 {
            format!("{ns_x:.0}x")
        } else {
            // A fully-warm plot sends no packets at all.
            ">1000x".to_string()
        };
        println!(
            "  warm cache, fig3-4 (KGDB):  {ns_disp} faster, {pkt_x:.0}x fewer packets (floor: 5x / 3x)  {}",
            if ns_x >= 5.0 && pkt_x >= 3.0 {
                "[in band]"
            } else {
                "[OUT OF BAND]"
            }
        );
    }

    // Image integrity: the cost rows above are only comparable if every
    // figure plotted a healthy image — no wild reads chased by a
    // distiller, and a clean kcheck sweep.
    let session = attach(LatencyProfile::free());
    let report = session.vcheck();
    let mut faults = 0u64;
    {
        let mut probe = attach(LatencyProfile::free());
        for id in TABLE4_FIGURES {
            let pane = probe.vplot_figure(id).expect("figure extracts");
            faults += probe.plot_stats(pane).unwrap().target.faults;
        }
    }
    println!("\nimage integrity:");
    println!(
        "  distiller wild reads:       {faults} faulting packets across all figures {}",
        if faults == 0 {
            "[clean]"
        } else {
            "[CORRUPTED]"
        }
    );
    println!(
        "  kcheck sweep:               {} {}",
        report.summary(),
        if report.is_clean() {
            "[clean]"
        } else {
            "[CORRUPTED]"
        }
    );
}

fn band(v: f64, lo: f64, hi: f64) -> &'static str {
    if (lo..=hi).contains(&v) {
        "[in band]"
    } else {
        "[OUT OF BAND]"
    }
}
