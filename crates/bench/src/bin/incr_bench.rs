//! `incr_bench` — post-stop re-extraction cost: full re-walk vs vincr.
//!
//! Both sessions extract every Table 4 figure, take one scheduler tick
//! (a single-task stop: the tick mutates a handful of task_struct
//! fields), then re-extract the whole corpus. The full session re-walks
//! everything from a bumped cache epoch — the pre-incremental behavior.
//! The incremental session intersects the stop's dirty ranges with each
//! pane's touched-span index: panes the tick provably missed are served
//! retained (zero wire packets), the rest re-walk over a cache that
//! only dropped the intersecting blocks.
//!
//! ```text
//! cargo run --release -p bench --bin incr_bench
//! ```
//!
//! Emits `BENCH_incr.json` (override with `$BENCH_INCR_OUT`) with the
//! per-figure post-stop packets / virtual_ns / wall_ns under both
//! refresh strategies and both latency profiles, plus the keep/re-walk
//! split and dirty bytes. Exits non-zero if any figure's incremental
//! graph drifts from the fresh one, or if the KGDB corpus-wide
//! packet reduction falls below the 5x floor the subsystem is sold on.

use std::time::Instant;

use bench::{attach_cached, attach_incr, TablePrinter, TABLE4_FIGURES};
use vbridge::{CacheConfig, LatencyProfile};
use visualinux::{figures, Session};

/// One refresh strategy's post-stop cost for one figure.
#[derive(serde::Serialize, Clone, Copy)]
struct RefreshCost {
    packets: u64,
    virtual_ns: u64,
    wall_ns: u64,
}

/// One figure's row in `BENCH_incr.json`.
#[derive(serde::Serialize)]
struct FigureDoc {
    figure: &'static str,
    full: RefreshCost,
    incr: RefreshCost,
    packet_ratio: f64,
    kept: bool,
    dirty_bytes: u64,
}

/// One latency profile's section.
#[derive(serde::Serialize)]
struct ProfileDoc {
    profile: &'static str,
    figures: Vec<FigureDoc>,
    total_full_packets: u64,
    total_incr_packets: u64,
    corpus_packet_ratio: f64,
    keeps: u64,
    rewalks: u64,
}

/// The whole `BENCH_incr.json` document.
#[derive(serde::Serialize)]
struct BenchDoc {
    bench: &'static str,
    profiles: Vec<ProfileDoc>,
}

/// Extract every corpus figure once (populating retained graphs and
/// touched-span indexes on the incremental side).
fn populate(session: &Session) {
    for id in TABLE4_FIGURES {
        let fig = figures::by_id(id).expect("figure exists");
        session.extract(fig.viewcl).expect("figure extracts");
    }
}

/// One scheduler tick delivered as a stop event.
fn tick_stop(session: &mut Session) {
    let roots = session.roots.clone();
    session
        .stop_event(|img| {
            ksim::tick::tick(img, &roots, 1);
        })
        .expect("live stop");
}

fn run_profile(name: &'static str, profile: LatencyProfile, drift: &mut Vec<String>) -> ProfileDoc {
    let mut full = attach_cached(profile, CacheConfig::default());
    let mut incr = attach_incr(profile, CacheConfig::default());
    populate(&full);
    populate(&incr);
    tick_stop(&mut full);
    tick_stop(&mut incr);

    let mut rows = Vec::new();
    let (mut keeps, mut rewalks) = (0u64, 0u64);
    for id in TABLE4_FIGURES {
        let fig = figures::by_id(id).expect("figure exists");
        let t0 = Instant::now();
        let (g_f, s_f) = full.extract(fig.viewcl).expect("figure extracts");
        let wall_f = t0.elapsed().as_nanos() as u64;
        let t0 = Instant::now();
        let (g_i, s_i) = incr.extract(fig.viewcl).expect("figure extracts");
        let wall_i = t0.elapsed().as_nanos() as u64;
        if g_f.to_json() != g_i.to_json() {
            drift.push(format!("{name}/{id}: incremental graph differs from fresh"));
        }
        keeps += s_i.target.vincr_hits;
        rewalks += s_i.target.vincr_rewalks;
        rows.push(FigureDoc {
            figure: id,
            full: RefreshCost {
                packets: s_f.target.reads,
                virtual_ns: s_f.target.virtual_ns,
                wall_ns: wall_f,
            },
            incr: RefreshCost {
                packets: s_i.target.reads,
                virtual_ns: s_i.target.virtual_ns,
                wall_ns: wall_i,
            },
            packet_ratio: s_f.target.reads as f64 / s_i.target.reads.max(1) as f64,
            kept: s_i.target.vincr_hits > 0,
            dirty_bytes: s_i.target.dirty_bytes,
        });
    }
    let total_full: u64 = rows.iter().map(|r| r.full.packets).sum();
    let total_incr: u64 = rows.iter().map(|r| r.incr.packets).sum();
    ProfileDoc {
        profile: name,
        figures: rows,
        total_full_packets: total_full,
        total_incr_packets: total_incr,
        corpus_packet_ratio: total_full as f64 / total_incr.max(1) as f64,
        keeps,
        rewalks,
    }
}

fn main() {
    println!("incr_bench: post-stop re-extraction, full re-walk vs incremental refresh\n");
    let mut drift: Vec<String> = Vec::new();
    let profiles = vec![
        run_profile("gdb_qemu", LatencyProfile::gdb_qemu(), &mut drift),
        run_profile("kgdb_rpi400", LatencyProfile::kgdb_rpi400(), &mut drift),
    ];

    for p in &profiles {
        println!("profile: {}\n", p.profile);
        let t = TablePrinter::new(&[11, 9, 9, 8, 10, 10, 6, 7]);
        t.row(
            &[
                "figure", "f-pkts", "i-pkts", "pkt-x", "f-vms", "i-vms", "kept", "dirty-B",
            ]
            .map(String::from),
        );
        t.sep();
        for f in &p.figures {
            t.row(&[
                f.figure.to_string(),
                f.full.packets.to_string(),
                f.incr.packets.to_string(),
                format!("{:.1}x", f.packet_ratio),
                format!("{:.1}", f.full.virtual_ns as f64 / 1e6),
                format!("{:.1}", f.incr.virtual_ns as f64 / 1e6),
                if f.kept { "yes" } else { "no" }.to_string(),
                f.dirty_bytes.to_string(),
            ]);
        }
        t.sep();
        println!(
            "corpus: {} -> {} packets ({:.1}x), {} panes kept / {} re-walked\n",
            p.total_full_packets, p.total_incr_packets, p.corpus_packet_ratio, p.keeps, p.rewalks
        );
    }

    // Floor check: on the slow transport, one single-task tick must cut
    // the corpus-wide post-stop packet bill at least 5x — the subsystem
    // only earns its complexity if refresh cost tracks the mutation,
    // not the view.
    let kgdb = profiles
        .iter()
        .find(|p| p.profile == "kgdb_rpi400")
        .expect("kgdb profile measured");
    println!(
        "floor check: KGDB corpus packet cut {:.1}x (floor: 5x) {}",
        kgdb.corpus_packet_ratio,
        if kgdb.corpus_packet_ratio >= 5.0 {
            "[in band]"
        } else {
            "[OUT OF BAND]"
        }
    );
    if kgdb.corpus_packet_ratio < 5.0 {
        drift.push(format!(
            "post-stop packet reduction below the 5x floor ({:.2}x)",
            kgdb.corpus_packet_ratio
        ));
    }
    // Both arms must be live: a tick that invalidated everything (or
    // nothing) would make the ratio meaningless.
    if kgdb.keeps == 0 {
        drift.push("no pane was served retained after the tick".to_string());
    }
    if kgdb.rewalks == 0 {
        drift.push("no pane re-walked after the tick".to_string());
    }

    let out = std::env::var("BENCH_INCR_OUT").unwrap_or_else(|_| "BENCH_incr.json".to_string());
    let doc = BenchDoc {
        bench: "incr",
        profiles,
    };
    std::fs::write(&out, serde_json::to_string_pretty(&doc).expect("encode")).expect("write");
    println!("wrote {out}");

    if !drift.is_empty() {
        eprintln!("\nINCR/FRESH DRIFT:");
        for d in &drift {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
}
