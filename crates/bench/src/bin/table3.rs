//! Table 3 harness: the 10 debugging objectives — hand-written ViewQL
//! line counts and vchat synthesis success (paper claim C2 + §4.2).

use bench::{attach, TablePrinter};
use ksim::workload::{build, WorkloadConfig};
use vbridge::LatencyProfile;
use visualinux::{figures, PlotSpec, Session};

fn main() {
    println!("Table 3: debugging objectives for ViewQL usability evaluation\n");
    let t = TablePrinter::new(&[11, 58, 8, 10, 10]);
    t.row(&["figure", "objective", "vql-loc", "applies", "vchat"].map(String::from));
    t.sep();

    let mut synth_ok = 0;
    let mut total = 0;
    for fig in figures::all() {
        let Some(obj) = &fig.objective else { continue };
        total += 1;

        // Hand-written ViewQL applies cleanly.
        let mut s = attach(LatencyProfile::free());
        let pane = s
            .plot(PlotSpec::Source(fig.viewcl))
            .expect("figure extracts");
        let applies = s.vctrl_refine(pane, obj.viewql).is_ok();

        // vchat synthesis has the same effect on a fresh plot.
        let mut s2 = Session::builder(build(&WorkloadConfig::default()))
            .profile(LatencyProfile::free())
            .attach()
            .unwrap();
        let p2 = s2
            .plot(PlotSpec::Source(fig.viewcl))
            .expect("figure extracts");
        let chat = match s2.vchat(p2, obj.description, true) {
            Ok(_) => {
                synth_ok += 1;
                "ok"
            }
            Err(_) => "FAIL",
        };

        let desc: String = obj.description.chars().take(56).collect();
        t.row(&[
            fig.ulk.to_string(),
            desc,
            vql::loc_of(obj.viewql).to_string(),
            if applies { "yes" } else { "NO" }.to_string(),
            chat.to_string(),
        ]);
    }
    t.sep();
    println!("\nvchat (rule-based LLM stand-in): {synth_ok}/{total} objectives synthesized");
    println!("(the paper reports DeepSeek-V2 at 10/10; see DESIGN.md for the substitution)");
}
