//! `vrec`: record and replay the full figure corpus as a `.vrec` wire
//! capture.
//!
//! * `vrec record <out.vrec> [--profile free|qemu|kgdb] [--cache]` —
//!   attach a recording session, extract all 21 library figures (with a
//!   `resume()` between figures so each starts cold), embed a per-figure
//!   manifest (packets, bytes, virtual time, graph hash) in the capture
//!   header, and save.
//! * `vrec replay <in.vrec>` — rebuild a session from the capture alone
//!   (zero live image access), re-extract the manifest's figures in the
//!   recorded order, and fail (exit 1) unless every figure reproduces
//!   its packets, bytes, virtual time and graph hash bit-for-bit.

use serde_json::{Map, Number, Value};

use bench::TablePrinter;
use vbridge::{CacheConfig, Capture, LatencyProfile};
use visualinux::{figures, Session};

/// FNV-1a over the rendered graph JSON: a stable, dependency-free
/// fingerprint for byte-identity checks.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One manifest row: what the recording session measured for a figure.
struct FigRow {
    id: String,
    reads: u64,
    bytes: u64,
    virtual_ns: u64,
    hash: u64,
}

impl FigRow {
    fn to_meta(&self) -> Value {
        let mut m = Map::new();
        m.insert("id".into(), Value::String(self.id.clone()));
        m.insert("reads".into(), Value::Number(Number::from_u64(self.reads)));
        m.insert("bytes".into(), Value::Number(Number::from_u64(self.bytes)));
        m.insert(
            "virtual_ns".into(),
            Value::Number(Number::from_u64(self.virtual_ns)),
        );
        m.insert("hash".into(), Value::String(format!("{:016x}", self.hash)));
        Value::Object(m)
    }

    fn from_meta(v: &Value) -> Option<FigRow> {
        Some(FigRow {
            id: v.get("id")?.as_str()?.to_string(),
            reads: v.get("reads")?.as_u64()?,
            bytes: v.get("bytes")?.as_u64()?,
            virtual_ns: v.get("virtual_ns")?.as_u64()?,
            hash: u64::from_str_radix(v.get("hash")?.as_str()?, 16).ok()?,
        })
    }
}

fn parse_profile(args: &[String]) -> LatencyProfile {
    match args
        .iter()
        .position(|a| a == "--profile")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("free") => LatencyProfile::free(),
        Some("qemu") => LatencyProfile::gdb_qemu(),
        Some("kgdb") | None => LatencyProfile::kgdb_rpi400(),
        Some(other) => {
            eprintln!("unknown profile `{other}` (expected free|qemu|kgdb)");
            std::process::exit(2);
        }
    }
}

fn record(path: &str, args: &[String]) {
    let profile = parse_profile(args);
    let mut builder = Session::builder(ksim::workload::build(
        &ksim::workload::WorkloadConfig::default(),
    ))
    .profile(profile)
    .record(path);
    if args.iter().any(|a| a == "--cache") {
        builder = builder.cache(CacheConfig::default());
    }
    let mut session = builder.attach().expect("live attach cannot fail");

    println!("vrec record: {} figures -> {path}\n", figures::all().len());
    let t = TablePrinter::new(&[11, 8, 10, 11, 18]);
    t.row(&["figure", "pkts", "bytes", "virt-ms", "graph-hash"].map(String::from));
    t.sep();

    let mut manifest = Vec::new();
    for fig in figures::all() {
        session.resume();
        let (graph, stats) = session.extract(fig.viewcl).expect(fig.id);
        let row = FigRow {
            id: fig.id.to_string(),
            reads: stats.target.reads,
            bytes: stats.target.bytes,
            virtual_ns: stats.target.virtual_ns,
            hash: fnv1a(graph.to_json().as_bytes()),
        };
        t.row(&[
            row.id.clone(),
            row.reads.to_string(),
            row.bytes.to_string(),
            format!("{:.1}", row.virtual_ns as f64 / 1e6),
            format!("{:016x}", row.hash),
        ]);
        manifest.push(row);
    }
    t.sep();

    // Fold the manifest into the capture header next to the embedded
    // workload config, then write the `.vrec` ourselves (the session
    // would save an identical wire tape, minus the manifest).
    let mut cap = session.capture().expect("recording session has a tape");
    if let Value::Object(meta) = &mut cap.meta {
        meta.insert(
            "figures".into(),
            Value::Array(manifest.iter().map(FigRow::to_meta).collect()),
        );
    }
    cap.save(std::path::Path::new(path)).expect("write capture");
    println!(
        "\nwrote {path}: {} wire events, {} figures in manifest",
        cap.events.len(),
        manifest.len()
    );
}

fn replay(path: &str) {
    let cap = match Capture::load(std::path::Path::new(path)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("vrec replay: cannot load {path}: {e}");
            std::process::exit(2);
        }
    };
    let manifest: Vec<FigRow> = cap
        .meta
        .get("figures")
        .and_then(|v| v.as_array())
        .map(|rows| rows.iter().filter_map(FigRow::from_meta).collect())
        .unwrap_or_default();
    if manifest.is_empty() {
        eprintln!("vrec replay: {path} has no figure manifest (meta.figures)");
        std::process::exit(2);
    }
    let mut session = match Session::replay(cap).attach() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("vrec replay: cannot attach: {e}");
            std::process::exit(2);
        }
    };
    assert_eq!(
        session.image().mem.mapped_pages(),
        0,
        "replay session must not hold live memory"
    );

    println!(
        "vrec replay: {} figures from {path} (zero live image access)\n",
        manifest.len()
    );
    let t = TablePrinter::new(&[11, 8, 10, 11, 18, 9]);
    t.row(&["figure", "pkts", "bytes", "virt-ms", "graph-hash", "status"].map(String::from));
    t.sep();

    let mut drift: Vec<String> = Vec::new();
    for want in &manifest {
        session.resume();
        let fig = match figures::by_id(&want.id) {
            Some(f) => f,
            None => {
                drift.push(format!("{}: unknown figure id in manifest", want.id));
                continue;
            }
        };
        match session.extract(fig.viewcl) {
            Ok((graph, stats)) => {
                let got = FigRow {
                    id: want.id.clone(),
                    reads: stats.target.reads,
                    bytes: stats.target.bytes,
                    virtual_ns: stats.target.virtual_ns,
                    hash: fnv1a(graph.to_json().as_bytes()),
                };
                let ok = got.reads == want.reads
                    && got.bytes == want.bytes
                    && got.virtual_ns == want.virtual_ns
                    && got.hash == want.hash;
                if !ok {
                    drift.push(format!(
                        "{}: recorded pkts={} bytes={} ns={} hash={:016x}, \
                         replayed pkts={} bytes={} ns={} hash={:016x}",
                        want.id,
                        want.reads,
                        want.bytes,
                        want.virtual_ns,
                        want.hash,
                        got.reads,
                        got.bytes,
                        got.virtual_ns,
                        got.hash
                    ));
                }
                t.row(&[
                    got.id.clone(),
                    got.reads.to_string(),
                    got.bytes.to_string(),
                    format!("{:.1}", got.virtual_ns as f64 / 1e6),
                    format!("{:016x}", got.hash),
                    if ok { "[ok]" } else { "[DRIFT]" }.to_string(),
                ]);
            }
            Err(e) => drift.push(format!("{}: replay failed: {e}", want.id)),
        }
    }
    t.sep();

    let leftover = session
        .replay_state()
        .map(|s| s.remaining())
        .unwrap_or_default();
    if leftover != 0 {
        drift.push(format!("{leftover} recorded wire events never replayed"));
    }

    if drift.is_empty() {
        println!(
            "\nreplay verdict: all {} figures reproduced packets, bytes, \
             virtual time and graph hashes bit-for-bit [clean]",
            manifest.len()
        );
    } else {
        eprintln!("\nREPLAY DRIFT:");
        for d in &drift {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") if args.len() >= 2 => record(&args[1], &args[2..]),
        Some("replay") if args.len() >= 2 => replay(&args[1]),
        _ => {
            eprintln!(
                "usage: vrec record <out.vrec> [--profile free|qemu|kgdb] [--cache]\n       vrec replay <in.vrec>"
            );
            std::process::exit(2);
        }
    }
}
