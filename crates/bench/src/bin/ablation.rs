//! Ablation: quantify the three simplification operators of §2.1 —
//! *prune*, *flatten*, *distill* — by plotting the same state with and
//! without each one and comparing extraction cost and plot size.

use bench::{attach, attach_cached, TablePrinter};
use vbridge::{CacheConfig, LatencyProfile};
use visualinux::{PlotSpec, Session};

struct Meas {
    objects: u64,
    texts: u64,
    reads: u64,
    ms: f64,
}

fn measure(session: &mut Session, src: &str) -> Meas {
    let pane = session.plot(PlotSpec::Source(src)).expect("plot");
    let s = session.plot_stats(pane).unwrap();
    let g = session.graph(pane).unwrap();
    let texts = g
        .boxes()
        .iter()
        .flat_map(|b| &b.views)
        .flat_map(|v| &v.items)
        .filter(|i| matches!(i, vgraph::Item::Text { .. }))
        .count() as u64;
    Meas {
        objects: s.graph.objects,
        texts,
        reads: s.target.reads,
        ms: s.total_ms(),
    }
}

/// Every field of our task_struct as Text — "just print the object".
const UNPRUNED_TASKS: &str = r#"
define Task as Box<task_struct> [
    Text __state, flags, on_cpu, cpu, on_rq
    Text prio, static_prio, normal_prio
    Text se.load.weight, se.load.inv_weight, se.on_rq
    Text se.exec_start, se.sum_exec_runtime, se.vruntime, se.prev_sum_exec_runtime
    Text exit_state, exit_code, pid, tgid
    Text utime, stime, start_time
    Text<string> comm
    Text<raw_ptr> stack
    Text<raw_ptr> mm, active_mm, real_parent, parent, group_leader
    Text<raw_ptr> thread_pid, fs, files, signal, sighand
]
tasks = List(${&init_task.tasks}).forEach |n| {
    yield Task<task_struct.tasks>(@n)
}
plot @tasks
"#;

/// The paper's pruned box: four fields.
const PRUNED_TASKS: &str = r#"
define Task as Box<task_struct> [
    Text pid, comm
    Text<string> state: ${task_state(@this)}
    Text se.vruntime
]
tasks = List(${&init_task.tasks}).forEach |n| {
    yield Task<task_struct.tasks>(@n)
}
plot @tasks
"#;

/// Unflattened: every intermediate object on the task→socket path is a
/// box of its own (file table, fd table, file, socket wrapper).
const UNFLATTENED_SOCKETS: &str = r#"
define Sock as Box<sock> [
    Text dport: __sk_common.skc_dport
]
define Socket as Box<socket> [
    Text type
    Link sk -> Sock(${@this.sk})
]
define File as Box<file> [
    Text<u64:x> f_mode
    Link private_data -> Socket(${@this.private_data})
]
define FdTable as Box<fdtable> [
    Text max_fds
    Link sock_file -> File(${@this.fd[5]})
]
define Files as Box<files_struct> [
    Text next_fd
    Link fdt -> FdTable(${@this.fdt})
]
define Task as Box<task_struct> [
    Text pid
    Link files -> Files(${@this.files})
]
t = Task(${current_task})
plot @t
"#;

/// Flattened: one dot-path expression skips three kernel objects.
const FLATTENED_SOCKETS: &str = r#"
define Sock as Box<sock> [
    Text dport: __sk_common.skc_dport
]
define Task as Box<task_struct> [
    Text pid
    Link socket -> Sock(${((struct socket *)@this.files->fdt->fd[5]->private_data)->sk})
]
t = Task(${current_task})
plot @t
"#;

/// `--trace` mode: rerun the ablation plots with vtrace on and show
/// where the saved packets come from, stage by stage (exclusive spans).
/// Fails (exit 1) if any plot's stage rows stop summing to its
/// `TargetStats` aggregates bit-for-bit. Chrome trace JSON goes to
/// `$VTRACE_OUT` (default `ablation-trace.json`).
fn run_trace() {
    use vtrace::{Counters, SpanKind};

    let mut session = attach(LatencyProfile::gdb_qemu());
    session.enable_tracing();
    println!("Ablation (--trace): per-stage attribution, QEMU profile (virtual time)\n");
    let t = TablePrinter::new(&[30, 10, 12, 9, 11, 8]);
    t.row(
        &[
            "configuration",
            "walk-ms",
            "distill-ms",
            "rest-ms",
            "total-ms",
            "pkts",
        ]
        .map(String::from),
    );
    t.sep();

    let ms = |ns: u64| ns as f64 / 1e6;
    let mut drift: Vec<String> = Vec::new();
    let plots = [
        ("prune OFF (all 31 fields)", UNPRUNED_TASKS),
        ("prune ON  (paper's 4 fields)", PRUNED_TASKS),
        ("flatten OFF (5 hops plotted)", UNFLATTENED_SOCKETS),
        ("flatten ON  (1 dot-path link)", FLATTENED_SOCKETS),
        (
            "distill (fig9-2 maple tree)",
            visualinux::figures::by_id("fig9-2").unwrap().viewcl,
        ),
    ];
    for (name, src) in plots {
        let pane = session.plot(PlotSpec::Source(src)).expect("plot");
        let stats = session.plot_stats(pane).unwrap().target;
        let trace = session.vtrace(pane).expect("tracing is on");
        if let Err(e) = trace.check_well_formed() {
            drift.push(format!("{name}: ill-formed span tree: {e}"));
        }
        let mut walk = Counters::default();
        let mut distill = Counters::default();
        let mut rest = Counters::default();
        for sp in trace.flatten() {
            let own = sp.own();
            match sp.kind {
                SpanKind::Interp => walk = walk.plus(own),
                SpanKind::Distill => distill = distill.plus(own),
                _ => rest = rest.plus(own),
            }
        }
        let tot = trace.totals();
        if walk.plus(distill).plus(rest) != tot {
            drift.push(format!("{name}: stage sum != span totals"));
        }
        let from_stats = Counters {
            packets: stats.reads,
            bytes: stats.bytes,
            virtual_ns: stats.virtual_ns,
            cache_hits: stats.cache_hits,
            faults: stats.faults,
        };
        if tot != from_stats {
            drift.push(format!(
                "{name}: span totals {tot:?} != TargetStats {from_stats:?}"
            ));
        }
        t.row(&[
            name.to_string(),
            format!("{:.2}", ms(walk.virtual_ns)),
            format!("{:.2}", ms(distill.virtual_ns)),
            format!("{:.2}", ms(rest.virtual_ns)),
            format!("{:.2}", ms(tot.virtual_ns)),
            format!("{}", tot.packets),
        ]);
    }
    t.sep();

    let out = std::env::var("VTRACE_OUT").unwrap_or_else(|_| "ablation-trace.json".to_string());
    std::fs::write(&out, session.export_chrome_trace()).expect("write chrome trace");
    println!("\nchrome trace:   {out}");
    if drift.is_empty() {
        println!(
            "reconciliation: all {} plots match TargetStats bit-for-bit [clean]",
            plots.len()
        );
    } else {
        eprintln!("\nTRACE/STAT RECONCILIATION DRIFT:");
        for d in &drift {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
}

fn main() {
    if std::env::args().any(|a| a == "--trace") {
        return run_trace();
    }
    println!("Ablation: the prune / flatten / distill operators (§2.1)\n");
    let t = TablePrinter::new(&[34, 9, 8, 8, 9]);
    t.row(&["configuration", "objects", "texts", "reads", "ms(qemu)"].map(String::from));
    t.sep();

    let mut session = attach(LatencyProfile::gdb_qemu());

    let a = measure(&mut session, UNPRUNED_TASKS);
    let b = measure(&mut session, PRUNED_TASKS);
    for (name, m) in [
        ("prune OFF (all 31 fields)", &a),
        ("prune ON  (paper's 4 fields)", &b),
    ] {
        t.row(&[
            name.to_string(),
            m.objects.to_string(),
            m.texts.to_string(),
            m.reads.to_string(),
            format!("{:.1}", m.ms),
        ]);
    }
    println!(
        "  -> prune cuts {:.0}% of reads and {:.0}% of displayed text\n",
        100.0 * (1.0 - b.reads as f64 / a.reads as f64),
        100.0 * (1.0 - b.texts as f64 / a.texts as f64),
    );

    let c = measure(&mut session, UNFLATTENED_SOCKETS);
    let d = measure(&mut session, FLATTENED_SOCKETS);
    for (name, m) in [
        ("flatten OFF (5 hops plotted)", &c),
        ("flatten ON  (1 dot-path link)", &d),
    ] {
        t.row(&[
            name.to_string(),
            m.objects.to_string(),
            m.texts.to_string(),
            m.reads.to_string(),
            format!("{:.1}", m.ms),
        ]);
    }
    println!(
        "  -> flatten removes {} intermediate boxes from the plot\n",
        c.objects - d.objects
    );

    // Distill: structural maple tree vs the selectFrom interval list.
    let fig = visualinux::figures::by_id("fig9-2").unwrap();
    let pane = session.plot(PlotSpec::Source(fig.viewcl)).unwrap();
    session
        .vctrl_refine(
            pane,
            "m = SELECT mm_struct FROM *\nUPDATE m WITH view: show_mt",
        )
        .unwrap();
    let g = session.graph(pane).unwrap();
    let structural: u64 = g
        .boxes()
        .iter()
        .filter(|b| b.label == "MapleNode" || b.label == "Cell")
        .count() as u64;
    let distilled: u64 = g
        .boxes()
        .iter()
        .filter(|b| b.ctype == "vm_area_struct")
        .count() as u64;
    t.row(&[
        "distill OFF (tree + pivot cells)".to_string(),
        format!("{}", structural + distilled),
        String::new(),
        String::new(),
        String::new(),
    ]);
    t.row(&[
        "distill ON  (sorted VMA list)".to_string(),
        distilled.to_string(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    t.sep();
    println!(
        "  -> distill shows the same {distilled} intervals without {structural} structural boxes"
    );

    // Bridge cache: stack the three mechanisms one by one on the slow
    // transport. Two cold plots: the task list (Table 4's worst row,
    // dominated by list prefetch) and the page cache (xarray slot walks,
    // where read coalescing bites).
    println!("\nBridge cache mechanisms (KGDB, cold extraction)\n");
    let run = |id: &str, cfg: Option<CacheConfig>, plan: bool| {
        let fig = visualinux::figures::by_id(id).unwrap();
        let s = match (cfg, plan) {
            (None, _) => attach(LatencyProfile::kgdb_rpi400()),
            (Some(c), false) => attach_cached(LatencyProfile::kgdb_rpi400(), c),
            (Some(c), true) => bench::attach_plan(LatencyProfile::kgdb_rpi400(), c),
        };
        let (_, st) = s.extract(fig.viewcl).expect("plot");
        (st.target.reads, st.total_ms())
    };
    let ladder = [
        ("cache OFF (paper's baseline)", None, false),
        (
            "+ block cache only",
            Some(CacheConfig {
                coalesce: false,
                prefetch: false,
                ..CacheConfig::default()
            }),
            false,
        ),
        (
            "+ read coalescing",
            Some(CacheConfig {
                prefetch: false,
                ..CacheConfig::default()
            }),
            false,
        ),
        (
            "+ distiller prefetch (full)",
            Some(CacheConfig::default()),
            false,
        ),
        (
            "+ walk planner (plan mode)",
            Some(CacheConfig::default()),
            true,
        ),
    ];
    let t = TablePrinter::new(&[34, 12, 10, 12, 10]);
    t.row(
        &[
            "configuration",
            "3-4 pkts",
            "3-4 ms",
            "16-2 pkts",
            "16-2 ms",
        ]
        .map(String::from),
    );
    t.sep();
    let mut base_ms = 0.0;
    let mut full_ms = 0.0;
    for (name, cfg, plan) in ladder {
        let (r34, ms34) = run("fig3-4", cfg, plan);
        let (r162, ms162) = run("fig16-2", cfg, plan);
        if cfg.is_none() {
            base_ms = ms34;
        }
        full_ms = ms34;
        t.row(&[
            name.to_string(),
            r34.to_string(),
            format!("{ms34:.1}"),
            r162.to_string(),
            format!("{ms162:.1}"),
        ]);
    }
    t.sep();
    println!(
        "  -> the full cache cuts a cold KGDB task-list plot {:.0}x",
        base_ms / full_ms
    );

    // Corruption tolerance: what plotting a damaged image costs. The
    // cross-linked task list truncates with a diagnostic box instead of
    // erroring (or spinning to the element bound), and the kcheck sweep
    // names the damage.
    println!("\nCorruption tolerance (QEMU, task-list plot + kcheck sweep)\n");
    let t = TablePrinter::new(&[34, 9, 8, 8, 12]);
    t.row(&["configuration", "reads", "faults", "diags", "violations"].map(String::from));
    t.sep();
    use ksim::faults::{self, FaultKind};
    use ksim::workload::{build, WorkloadConfig};
    let mut clean_reads = 0;
    let mut bad_reads = 0;
    for (name, fault) in [
        ("image clean", None),
        ("task list cross-linked", Some(FaultKind::ListCrossLink)),
    ] {
        let mut w = build(&WorkloadConfig::default());
        if let Some(k) = fault {
            faults::inject(&mut w, k, 2);
        }
        let mut s = Session::builder(w)
            .profile(LatencyProfile::gdb_qemu())
            .attach()
            .unwrap();
        let pane = s
            .plot(PlotSpec::Source(PRUNED_TASKS))
            .expect("plot survives");
        let st = s.plot_stats(pane).unwrap();
        let diags = s
            .graph(pane)
            .unwrap()
            .boxes()
            .iter()
            .filter(|b| b.label == "Diag")
            .count();
        let report = s.vcheck();
        if fault.is_none() {
            clean_reads = st.target.reads;
        } else {
            bad_reads = st.target.reads;
        }
        t.row(&[
            name.to_string(),
            st.target.reads.to_string(),
            st.target.faults.to_string(),
            diags.to_string(),
            report.summary(),
        ]);
    }
    t.sep();
    println!(
        "  -> the corrupted plot costs {:.1}x the clean one (bound: 2x) and the damage is named",
        bad_reads as f64 / clean_reads.max(1) as f64
    );
}
