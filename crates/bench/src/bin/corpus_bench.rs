//! `corpus_bench` — the scenario corpus measured end to end.
//!
//! For the clean scale rungs (~100 / ~1k / ~10k tasks) it measures image
//! build time, the scoped evaluation probe (the paper's Figure 9-2: one
//! process's address space) against the deliberately population-linear
//! full task-list plot, and the full `kcheck` sweep. For every fault and
//! CVE member it verifies the declared ground truth and round-trips the
//! recorded capture through a byte-identity replay.
//!
//! ```text
//! cargo run --release -p bench --bin corpus_bench
//! ```
//!
//! Emits `BENCH_corpus.json` (override with `$BENCH_CORPUS_OUT`). Exits
//! non-zero when the corpus contract breaks:
//!
//! * the scoped probe's packets at the 10k rung exceed 1.5x the 100
//!   rung's (the sublinearity floor this subsystem is sold on),
//! * the full-pane control fails to grow >= 20x over the same range
//!   (which would mean the meter, not the scoping, produced the flat
//!   line),
//! * any corpus member's ground truth fails, or its capture does not
//!   replay to the live graph.

use std::time::Instant;

use bench::TablePrinter;
use kgen::{check_ground_truth, record_scenario, replay_probe, scoped_probe, FULL_PROBE};
use ksim::corpus;
use visualinux::{PlotSpec, Session};

/// One probe's cost on one rung.
#[derive(serde::Serialize, Clone, Copy)]
struct ProbeCost {
    packets: u64,
    walks: u64,
    wall_ms: f64,
}

/// One clean scale rung's row.
#[derive(serde::Serialize)]
struct RungDoc {
    scenario: String,
    tasks: u64,
    objects: u64,
    build_ms: f64,
    scoped: ProbeCost,
    full: ProbeCost,
    sweep_ms: f64,
    sweep_clean: bool,
}

/// One fault/CVE member's row.
#[derive(serde::Serialize)]
struct MemberDoc {
    scenario: String,
    fingerprint: u64,
    expected_findings: usize,
    ground_truth_ok: bool,
    capture_bytes: u64,
    replay_ok: bool,
}

/// The whole `BENCH_corpus.json` document.
#[derive(serde::Serialize)]
struct BenchDoc {
    bench: &'static str,
    rungs: Vec<RungDoc>,
    members: Vec<MemberDoc>,
    scoped_packet_ratio_10k_over_100: f64,
    full_packet_ratio_10k_over_100: f64,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    println!("corpus_bench: scenario corpus — scale rungs, ground truth, replay\n");
    let mut failures: Vec<String> = Vec::new();

    // --- Clean scale rungs ----------------------------------------------
    let mut rungs = Vec::new();
    for name in ["clean-100", "clean-1k", "clean-10k"] {
        let spec = corpus::by_name(name).expect("rung exists");
        let tasks = spec.tasks() as u64;
        let t0 = Instant::now();
        let (builder, _) = Session::from_scenario(&spec);
        let mut s = builder.attach().expect("live attach");
        let build_ms = ms(t0);

        let t1 = Instant::now();
        let scoped_pane = s.plot(PlotSpec::Source(scoped_probe())).expect("probe");
        let scoped_wall = ms(t1);
        let sst = s.plot_stats(scoped_pane).expect("stats");

        let t2 = Instant::now();
        let full_pane = s.plot(PlotSpec::Source(FULL_PROBE)).expect("control");
        let full_wall = ms(t2);
        let fst = s.plot_stats(full_pane).expect("stats");

        let t3 = Instant::now();
        let report = s.vcheck();
        let sweep_ms = ms(t3);
        if !report.is_clean() {
            failures.push(format!("{name}: sweep not clean: {}", report.summary()));
        }
        rungs.push(RungDoc {
            scenario: name.to_string(),
            tasks,
            objects: fst.graph.objects,
            build_ms,
            scoped: ProbeCost {
                packets: sst.target.reads,
                walks: sst.graph.objects,
                wall_ms: scoped_wall,
            },
            full: ProbeCost {
                packets: fst.target.reads,
                walks: fst.graph.objects,
                wall_ms: full_wall,
            },
            sweep_ms,
            sweep_clean: report.is_clean(),
        });
    }

    let t = TablePrinter::new(&[10, 7, 9, 9, 9, 10, 9, 9]);
    t.row(
        &[
            "rung",
            "tasks",
            "build-ms",
            "sc-pkts",
            "sc-walks",
            "full-pkts",
            "full-ms",
            "sweep-ms",
        ]
        .map(String::from),
    );
    t.sep();
    for r in &rungs {
        t.row(&[
            r.scenario.clone(),
            r.tasks.to_string(),
            format!("{:.1}", r.build_ms),
            r.scoped.packets.to_string(),
            r.scoped.walks.to_string(),
            r.full.packets.to_string(),
            format!("{:.1}", r.full.wall_ms),
            format!("{:.1}", r.sweep_ms),
        ]);
    }
    t.sep();
    println!();

    // --- Sublinearity gate ----------------------------------------------
    let scoped_ratio = rungs[2].scoped.packets as f64 / rungs[0].scoped.packets.max(1) as f64;
    let full_ratio = rungs[2].full.packets as f64 / rungs[0].full.packets.max(1) as f64;
    println!(
        "scoped packets 10k/100: {scoped_ratio:.2}x (floor: <= 1.5x) {}",
        if scoped_ratio <= 1.5 {
            "[in band]"
        } else {
            "[OUT OF BAND]"
        }
    );
    println!(
        "full packets   10k/100: {full_ratio:.1}x (floor: >= 20x) {}\n",
        if full_ratio >= 20.0 {
            "[in band]"
        } else {
            "[OUT OF BAND]"
        }
    );
    if scoped_ratio > 1.5 {
        failures.push(format!(
            "scoped probe is not sublinear: {scoped_ratio:.2}x packets across a 99x population"
        ));
    }
    if full_ratio < 20.0 {
        failures.push(format!(
            "full-pane control grew only {full_ratio:.1}x — the flat scoped line proves nothing"
        ));
    }

    // --- Fault / CVE members: ground truth + replay ---------------------
    let mut members = Vec::new();
    for spec in corpus::corpus()
        .into_iter()
        .filter(|s| !s.injections.is_empty())
    {
        let truth = check_ground_truth(&spec);
        if let Err(e) = &truth {
            failures.push(e.clone());
        }
        let capture = record_scenario(&spec);
        let bytes = capture.to_json().len() as u64;
        let (builder, _) = Session::from_scenario(&spec);
        let live = builder.attach().expect("live attach");
        let (live_graph, _) = live.extract(scoped_probe()).expect("probe extracts");
        let replay_ok = replay_probe(capture).as_deref() == Ok(live_graph.to_json().as_str());
        if !replay_ok {
            failures.push(format!(
                "{}: capture does not replay to the live graph",
                spec.name
            ));
        }
        members.push(MemberDoc {
            scenario: spec.name.clone(),
            fingerprint: spec.fingerprint(),
            expected_findings: spec.build().expected.len(),
            ground_truth_ok: truth.is_ok(),
            capture_bytes: bytes,
            replay_ok,
        });
    }

    let t = TablePrinter::new(&[26, 10, 8, 9, 7]);
    t.row(&["member", "expected", "truth", "vrec-KB", "replay"].map(String::from));
    t.sep();
    for m in &members {
        t.row(&[
            m.scenario.clone(),
            m.expected_findings.to_string(),
            if m.ground_truth_ok { "ok" } else { "FAIL" }.to_string(),
            format!("{:.1}", m.capture_bytes as f64 / 1024.0),
            if m.replay_ok { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    t.sep();
    println!();

    let out = std::env::var("BENCH_CORPUS_OUT").unwrap_or_else(|_| "BENCH_corpus.json".to_string());
    let doc = BenchDoc {
        bench: "corpus",
        rungs,
        members,
        scoped_packet_ratio_10k_over_100: scoped_ratio,
        full_packet_ratio_10k_over_100: full_ratio,
    };
    std::fs::write(&out, serde_json::to_string_pretty(&doc).expect("encode")).expect("write");
    println!("wrote {out}");

    if !failures.is_empty() {
        eprintln!("\nCORPUS CONTRACT FAILURES:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
