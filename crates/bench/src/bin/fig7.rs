//! Figure 7 harness: the Dirty Pipe object graph — page caches of all
//! files and pipes of the current thread, with the §5.3 ViewQL isolating
//! the one page shared between a file and a pipe.
//!
//! Writes `target/figures/fig7.{txt,dot,svg}`.

use vbridge::LatencyProfile;
use visualinux::casestudies;

fn main() {
    let report = casestudies::dirty_pipe(LatencyProfile::free()).expect("case study runs");
    let text = report.session.render_text(report.pane).unwrap();
    std::fs::create_dir_all("target/figures").expect("mkdir");
    std::fs::write("target/figures/fig7.txt", &text).expect("write txt");
    std::fs::write(
        "target/figures/fig7.dot",
        report.session.render_dot(report.pane).unwrap(),
    )
    .expect("write dot");
    std::fs::write(
        "target/figures/fig7.svg",
        report.session.render_svg(report.pane).unwrap(),
    )
    .expect("write svg");

    println!("{text}");
    println!("Figure 7 (Dirty Pipe, CVE-2022-0847):");
    println!(
        "  pages visible after ViewQL: {} (expected: exactly the shared page)",
        report.visible_pages.len()
    );
    println!(
        "  shared page:                {:#x} (ground truth {:#x})",
        report.visible_pages.first().copied().unwrap_or(0),
        report.injected.shared_page
    );
    println!(
        "  CAN_MERGE flag displayed:   {}",
        if report.can_merge_flagged {
            "yes — the bug is visible"
        } else {
            "NO"
        }
    );
    println!("  outputs: target/figures/fig7.{{txt,dot,svg}}");
    assert_eq!(report.visible_pages, vec![report.injected.shared_page]);
    assert!(report.can_merge_flagged);
}
