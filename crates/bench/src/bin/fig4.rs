//! Figure 4 harness: the maple tree of a process address space, after the
//! §3.1 ViewQL simplification (collapse slot lists, trim writable VMAs).
//!
//! Writes `target/figures/fig4.{txt,dot,svg}` and prints the text plot.

use bench::attach;
use vbridge::LatencyProfile;
use visualinux::PlotSpec;

fn main() {
    let mut session = attach(LatencyProfile::free());
    let pane = session
        .plot(PlotSpec::Figure("fig9-2"))
        .expect("figure extracts");

    // Show the maple-tree view, then the paper's §3.1 ViewQL.
    session
        .vctrl_refine(
            pane,
            "m = SELECT mm_struct FROM *\nUPDATE m WITH view: show_mt",
        )
        .expect("view switch");
    session
        .vctrl_refine(
            pane,
            r#"
// Collapse the slots field of all maple_node objects
slots = SELECT maple_node.slots FROM *
UPDATE slots WITH collapsed: true
// Make all writable memory areas invisible
writable_vmas = SELECT vm_area_struct FROM * WHERE is_writable == true
UPDATE writable_vmas WITH trimmed: true
"#,
        )
        .expect("§3.1 ViewQL");

    let g = session.graph(pane).unwrap();
    let nodes = g.boxes().iter().filter(|b| b.label == "MapleNode").count();
    let visible_vmas = g
        .boxes()
        .iter()
        .filter(|b| b.ctype == "vm_area_struct" && !b.attrs.trimmed)
        .count();
    let trimmed_vmas = g
        .boxes()
        .iter()
        .filter(|b| b.ctype == "vm_area_struct" && b.attrs.trimmed)
        .count();

    let text = session.render_text(pane).unwrap();
    std::fs::create_dir_all("target/figures").expect("mkdir");
    std::fs::write("target/figures/fig4.txt", &text).expect("write txt");
    std::fs::write("target/figures/fig4.dot", session.render_dot(pane).unwrap())
        .expect("write dot");
    std::fs::write("target/figures/fig4.svg", session.render_svg(pane).unwrap())
        .expect("write svg");

    println!("{text}");
    println!("Figure 4 (maple tree of the current task's address space):");
    println!("  maple nodes plotted:     {nodes}");
    println!("  read-only VMAs visible:  {visible_vmas}");
    println!("  writable VMAs trimmed:   {trimmed_vmas}");
    println!("  outputs: target/figures/fig4.{{txt,dot,svg}}");
    assert!(
        nodes >= 2 && visible_vmas > 0 && trimmed_vmas > 0,
        "figure shape"
    );
}
