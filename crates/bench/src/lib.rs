//! Benchmark and reproduction harnesses for the paper's evaluation (§5).
//!
//! Binaries (run with `cargo run -p bench --bin <name>`):
//!
//! * `table2` — Table 2: the 21 ULK figures, our LoC vs. the paper's,
//!   extracted object/link counts, drift class.
//! * `table3` — Table 3: the 10 debugging objectives, hand-written ViewQL
//!   LoC, and vchat synthesis results.
//! * `table4` — Table 4: per-figure extraction cost under the GDB-QEMU
//!   and KGDB-rpi400 latency profiles (total ms / ms-per-object /
//!   ms-per-KB, virtual time).
//! * `fig4` — the maple-tree plot of Figure 4 (ASCII + DOT + SVG files).
//! * `fig7` — the Dirty Pipe object graph of Figure 7.
//! * `plan_bench` — interp-mode vs plan-mode cold extraction cost per
//!   figure and latency profile, emitted as `BENCH_plan.json`.
//! * `incr_bench` — post-stop re-extraction cost, full re-walk vs
//!   vincr incremental refresh, emitted as `BENCH_incr.json`.
//! * `vrec` — record the full figure corpus into a `.vrec` wire capture
//!   (`vrec record out.vrec`), or re-run it from the capture alone and
//!   verify packets/bytes/hashes bit-for-bit (`vrec replay out.vrec`).
//!
//! Criterion benches (`cargo bench -p bench`) measure real wall-clock
//! interpreter performance on the same plots.

use ksim::workload::{build, WorkloadConfig};
use vbridge::{CacheConfig, LatencyProfile};
use visualinux::Session;

/// The figure ids measured in Table 4, in the paper's row order
/// (19-1 and 19-2 merged like the paper's "Fig 19-1/2" row).
pub const TABLE4_FIGURES: [&str; 20] = [
    "fig3-4",
    "fig3-6",
    "fig4-5",
    "fig6-1",
    "fig7-1",
    "fig8-2",
    "fig8-4",
    "fig9-2",
    "fig11-1",
    "fig12-3",
    "fig13-3",
    "fig14-3",
    "fig15-1",
    "fig16-2",
    "fig17-1",
    "fig17-6",
    "fig19-1",
    "workqueue",
    "proc2vfs",
    "socketconn",
];

/// Build the evaluation workload and attach a session.
pub fn attach(profile: LatencyProfile) -> Session {
    Session::builder(build(&WorkloadConfig::default()))
        .profile(profile)
        .attach()
        .unwrap()
}

/// Build the evaluation workload and attach a session with the snapshot
/// block cache enabled.
pub fn attach_cached(profile: LatencyProfile, cfg: CacheConfig) -> Session {
    Session::builder(build(&WorkloadConfig::default()))
        .profile(profile)
        .cache(cfg)
        .attach()
        .unwrap()
}

/// Build the evaluation workload and attach a cached session running in
/// plan-driven execution mode (walk-plan pre-pass before the interp).
pub fn attach_plan(profile: LatencyProfile, cfg: CacheConfig) -> Session {
    Session::builder(build(&WorkloadConfig::default()))
        .profile(profile)
        .cache(cfg)
        .plan()
        .attach()
        .unwrap()
}

/// Build the evaluation workload and attach a cached session with
/// incremental refresh (vincr) enabled: stops report dirty ranges and
/// re-extraction keeps panes the dirty set provably missed.
pub fn attach_incr(profile: LatencyProfile, cfg: CacheConfig) -> Session {
    Session::builder(build(&WorkloadConfig::default()))
        .profile(profile)
        .cache(cfg)
        .incremental()
        .attach()
        .unwrap()
}

/// Markdown-ish table printer with fixed-width columns.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Create a printer with the given column widths.
    pub fn new(widths: &[usize]) -> Self {
        TablePrinter {
            widths: widths.to_vec(),
        }
    }

    /// Print one row.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(12);
            line.push_str(&format!("{c:<w$}  "));
        }
        println!("{}", line.trim_end());
    }

    /// Print a separator.
    pub fn sep(&self) {
        let total: usize = self.widths.iter().map(|w| w + 2).sum();
        println!("{}", "-".repeat(total));
    }
}
