//! Semantic graph deltas between consecutive stops of the same pane.
//!
//! The visualizer protocol re-ships the full [`Graph`] on every stop
//! event; for a breakpoint in a hot path almost nothing changed. This
//! module computes a [`GraphDelta`] against the previously-shipped graph
//! so the server can send only the boxes whose content moved.
//!
//! Box *identity* across extractions is semantic, not positional: a real
//! box is identified by `(addr, label)` — the same key the interner uses —
//! and a virtual box (addr 0) by `(label, occurrence index)`. `BoxId`s are
//! positional per graph and shift freely between stops, so the delta
//! carries an explicit old→new id remap; a box whose neighbours were
//! renumbered but whose content is otherwise untouched costs two integers
//! on the wire, not a re-serialized subtree.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::graph::{BoxId, BoxNode, Graph, Item};

/// Aggregate description of what changed (boxes/edges added, removed,
/// text values rewritten) — the human-readable face of a delta.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaSummary {
    /// Boxes present in the new graph with no identity in the base.
    pub boxes_added: u32,
    /// Base boxes whose identity vanished.
    pub boxes_removed: u32,
    /// Identity-persistent boxes whose content differs.
    pub boxes_changed: u32,
    /// Edges (links + container memberships) new in this stop.
    pub edges_added: u32,
    /// Edges gone since the base.
    pub edges_removed: u32,
    /// Text items of persistent boxes whose display value changed.
    pub texts_changed: u32,
}

impl DeltaSummary {
    /// True when the two graphs were semantically identical.
    pub fn is_empty(&self) -> bool {
        *self == DeltaSummary::default()
    }
}

/// The wire delta: everything a client needs to rebuild the new graph
/// from the base it already holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphDelta {
    /// Box count of the base graph (consistency check on apply).
    pub base_len: u32,
    /// Box count of the new graph.
    pub new_len: u32,
    /// `(old id, new id)` for every box whose identity persists — kept
    /// *and* changed boxes. Base boxes absent from this map were removed.
    pub remap: Vec<(u32, u32)>,
    /// Full new content for changed and added boxes (ids are new ids).
    /// Persistent boxes not listed here are carried over from the base
    /// with their edge targets rewritten through `remap`.
    pub boxes: Vec<BoxNode>,
    /// Roots of the new graph.
    pub roots: Vec<BoxId>,
    /// What changed, in human terms.
    pub summary: DeltaSummary,
}

/// Why a delta could not be applied to a base graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// The base graph does not have the box count the delta was made for.
    BaseMismatch { expected: u32, got: u32 },
    /// An id in the delta is out of range or claimed twice.
    BadId(String),
    /// A carried-over box links to a base box with no new identity.
    UnmappedEdge { from: u32, to: u32 },
    /// After carrying over and patching, some new-graph slot stayed empty.
    MissingBox(u32),
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::BaseMismatch { expected, got } => {
                write!(f, "delta made for a {expected}-box base, applied to {got}")
            }
            DiffError::BadId(what) => write!(f, "bad id in delta: {what}"),
            DiffError::UnmappedEdge { from, to } => {
                write!(f, "carried-over box {from} points at removed box {to}")
            }
            DiffError::MissingBox(id) => write!(f, "no content for new box {id}"),
        }
    }
}

impl std::error::Error for DiffError {}

impl GraphDelta {
    /// Serialize to the JSON wire format.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("delta serialization cannot fail")
    }

    /// Deserialize from the JSON wire format.
    pub fn from_json(s: &str) -> serde_json::Result<GraphDelta> {
        serde_json::from_str(s)
    }
}

/// Semantic identity of one box: `(addr, label, virtual-occurrence)`.
/// Real boxes are unique per `(addr, label)` by interning; virtual boxes
/// (addr 0) are numbered per label in graph order.
type Key = (u64, String, u32);

fn keys_of(g: &Graph) -> Vec<Key> {
    let mut virt: HashMap<&str, u32> = HashMap::new();
    g.boxes()
        .iter()
        .map(|b| {
            if b.addr != 0 {
                (b.addr, b.label.clone(), 0)
            } else {
                let occ = virt.entry(b.label.as_str()).or_insert(0);
                let k = (0, b.label.clone(), *occ);
                *occ += 1;
                k
            }
        })
        .collect()
}

/// Rewrite every edge of `node` through `old2new`. Returns `None` when an
/// edge points at a box with no new identity (the caller must then ship
/// the node in full — though in practice such a node's new content always
/// differs anyway, since the edge cannot survive the target's removal).
fn remap_node(node: &BoxNode, new_id: BoxId, old2new: &HashMap<u32, u32>) -> Option<BoxNode> {
    let mut out = node.clone();
    out.id = new_id;
    for view in &mut out.views {
        for item in &mut view.items {
            match item {
                Item::Link { target, .. } => {
                    *target = BoxId(*old2new.get(&target.0)?);
                }
                Item::Container { members, .. } => {
                    for m in members.iter_mut() {
                        *m = BoxId(*old2new.get(&m.0)?);
                    }
                }
                _ => {}
            }
        }
    }
    Some(out)
}

/// Edge signatures of a graph in semantic-key space, with multiplicity —
/// used only for the summary counts.
fn edge_sigs(g: &Graph, keys: &[Key]) -> HashMap<(Key, String, Key), i64> {
    let mut sigs = HashMap::new();
    for b in g.boxes() {
        for view in &b.views {
            for item in &view.items {
                let targets: Vec<BoxId> = match item {
                    Item::Link { target, .. } => vec![*target],
                    Item::Container { members, .. } => members.clone(),
                    _ => continue,
                };
                for t in targets {
                    let sig = (
                        keys[b.id.0 as usize].clone(),
                        item.name().to_string(),
                        keys[t.0 as usize].clone(),
                    );
                    *sigs.entry(sig).or_insert(0) += 1;
                }
            }
        }
    }
    sigs
}

fn count_text_changes(old: &BoxNode, new: &BoxNode) -> u32 {
    let mut n = 0;
    for ov in &old.views {
        let Some(nv) = new.views.iter().find(|v| v.name == ov.name) else {
            continue;
        };
        for oi in &ov.items {
            if let Item::Text { name, value, .. } = oi {
                for ni in &nv.items {
                    if let Item::Text {
                        name: nn,
                        value: nval,
                        ..
                    } = ni
                    {
                        if nn == name && nval != value {
                            n += 1;
                        }
                    }
                }
            }
        }
    }
    n
}

/// Compute the delta that turns `base` into `new`.
pub fn diff(base: &Graph, new: &Graph) -> GraphDelta {
    let base_keys = keys_of(base);
    let new_keys = keys_of(new);
    let base_index: HashMap<&Key, u32> = base_keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k, i as u32))
        .collect();

    // old→new id map over every persistent identity.
    let mut old2new: HashMap<u32, u32> = HashMap::new();
    for (new_id, key) in new_keys.iter().enumerate() {
        if let Some(&old_id) = base_index.get(key) {
            old2new.insert(old_id, new_id as u32);
        }
    }

    let mut summary = DeltaSummary {
        boxes_removed: (base.len() - old2new.len()) as u32,
        ..DeltaSummary::default()
    };
    let mut remap: Vec<(u32, u32)> = old2new.iter().map(|(&o, &n)| (o, n)).collect();
    remap.sort_unstable();

    let mut boxes: Vec<BoxNode> = Vec::new();
    for (new_id, key) in new_keys.iter().enumerate() {
        let nb = &new.boxes()[new_id];
        match base_index.get(key) {
            Some(&old_id) => {
                let carried = remap_node(
                    &base.boxes()[old_id as usize],
                    BoxId(new_id as u32),
                    &old2new,
                );
                match carried {
                    Some(c) if c == *nb => {} // kept: costs only the remap pair
                    _ => {
                        summary.boxes_changed += 1;
                        summary.texts_changed +=
                            count_text_changes(&base.boxes()[old_id as usize], nb);
                        boxes.push(nb.clone());
                    }
                }
            }
            None => {
                summary.boxes_added += 1;
                boxes.push(nb.clone());
            }
        }
    }

    // Edge churn, for the summary only.
    let old_sigs = edge_sigs(base, &base_keys);
    let new_sigs = edge_sigs(new, &new_keys);
    for (sig, n) in &new_sigs {
        let old_n = old_sigs.get(sig).copied().unwrap_or(0);
        summary.edges_added += (n - old_n).max(0) as u32;
    }
    for (sig, n) in &old_sigs {
        let new_n = new_sigs.get(sig).copied().unwrap_or(0);
        summary.edges_removed += (n - new_n).max(0) as u32;
    }

    GraphDelta {
        base_len: base.len() as u32,
        new_len: new.len() as u32,
        remap,
        boxes,
        roots: new.roots.clone(),
        summary,
    }
}

/// Apply a delta to the base it was computed against, reconstructing the
/// new graph exactly (same boxes, ids, roots — byte-identical wire form).
pub fn apply(base: &Graph, delta: &GraphDelta) -> Result<Graph, DiffError> {
    if base.len() as u32 != delta.base_len {
        return Err(DiffError::BaseMismatch {
            expected: delta.base_len,
            got: base.len() as u32,
        });
    }
    let mut slots: Vec<Option<BoxNode>> = vec![None; delta.new_len as usize];
    let mut old2new: HashMap<u32, u32> = HashMap::new();
    let mut new_ids: HashSet<u32> = HashSet::new();
    for &(o, n) in &delta.remap {
        if o >= delta.base_len || n >= delta.new_len {
            return Err(DiffError::BadId(format!("remap ({o}, {n})")));
        }
        if old2new.insert(o, n).is_some() || !new_ids.insert(n) {
            return Err(DiffError::BadId(format!("duplicate in remap ({o}, {n})")));
        }
    }

    // Patched and added boxes ship in full.
    let mut patched: HashSet<u32> = HashSet::new();
    for b in &delta.boxes {
        if b.id.0 >= delta.new_len {
            return Err(DiffError::BadId(format!("box {}", b.id.0)));
        }
        if !patched.insert(b.id.0) {
            return Err(DiffError::BadId(format!("box {} shipped twice", b.id.0)));
        }
        slots[b.id.0 as usize] = Some(b.clone());
    }

    // Everything else persists from the base, edges rewritten.
    for (&o, &n) in &old2new {
        if patched.contains(&n) {
            continue;
        }
        let node = remap_node(&base.boxes()[o as usize], BoxId(n), &old2new)
            .ok_or(DiffError::UnmappedEdge { from: o, to: n })?;
        slots[n as usize] = Some(node);
    }

    let mut boxes = Vec::with_capacity(delta.new_len as usize);
    for (i, slot) in slots.into_iter().enumerate() {
        boxes.push(slot.ok_or(DiffError::MissingBox(i as u32))?);
    }
    for r in &delta.roots {
        if r.0 >= delta.new_len {
            return Err(DiffError::BadId(format!("root {}", r.0)));
        }
    }
    Ok(Graph::from_parts(boxes, delta.roots.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Attrs, ContainerKind, ViewInst};

    fn text(name: &str, value: &str, raw: i64) -> Item {
        Item::Text {
            name: name.into(),
            value: value.into(),
            raw: Some(raw),
        }
    }

    /// A three-task graph shaped like a tiny scheduler plot.
    fn stop(vruntimes: &[(u64, i64)], extra_child: bool) -> Graph {
        let mut g = Graph::new();
        let (root, _) = g.intern(0, "Runqueue", "", 0);
        let mut kids = Vec::new();
        for &(addr, vr) in vruntimes {
            let (t, _) = g.intern(addr, "Task", "task_struct", 0x1000);
            g.get_mut(t).views.push(ViewInst {
                name: "default".into(),
                items: vec![
                    text("pid", &format!("{}", addr & 0xff), (addr & 0xff) as i64),
                    text("vruntime", &format!("{vr}"), vr),
                ],
            });
            kids.push(t);
        }
        if extra_child {
            let (t, _) = g.intern(0x9000, "Task", "task_struct", 0x1000);
            g.get_mut(t).views.push(ViewInst {
                name: "default".into(),
                items: vec![text("pid", "90", 90)],
            });
            kids.push(t);
        }
        g.get_mut(root).views.push(ViewInst {
            name: "default".into(),
            items: vec![Item::Container {
                name: "tasks".into(),
                kind: ContainerKind::Sequence,
                members: kids,
                attrs: Attrs::default(),
            }],
        });
        g.roots.push(root);
        g
    }

    #[test]
    fn identical_graphs_yield_empty_delta() {
        let g = stop(&[(0x1100, 10), (0x1200, 20)], false);
        let d = diff(&g, &g);
        assert!(d.summary.is_empty(), "{:?}", d.summary);
        assert!(d.boxes.is_empty());
        assert_eq!(d.remap.len(), g.len());
        let back = apply(&g, &d).unwrap();
        assert_eq!(back.to_json(), g.to_json());
    }

    #[test]
    fn text_change_ships_only_the_changed_box() {
        let a = stop(&[(0x1100, 10), (0x1200, 20)], false);
        let b = stop(&[(0x1100, 10), (0x1200, 25)], false);
        let d = diff(&a, &b);
        assert_eq!(d.summary.boxes_changed, 1);
        assert_eq!(d.summary.texts_changed, 1);
        assert_eq!(d.summary.boxes_added, 0);
        assert_eq!(d.summary.boxes_removed, 0);
        assert_eq!(d.boxes.len(), 1, "only the mutated task ships");
        let back = apply(&a, &d).unwrap();
        assert_eq!(back.to_json(), b.to_json());
        assert!(
            d.to_json().len() < b.to_json().len(),
            "delta smaller than full graph"
        );
    }

    #[test]
    fn add_and_remove_are_detected() {
        let a = stop(&[(0x1100, 10), (0x1200, 20)], false);
        let b = stop(&[(0x1100, 10)], true);
        let d = diff(&a, &b);
        assert_eq!(d.summary.boxes_added, 1, "0x9000 appeared");
        assert_eq!(d.summary.boxes_removed, 1, "0x1200 vanished");
        // The container's member list changed, so the root is changed too.
        assert_eq!(d.summary.boxes_changed, 1);
        assert!(d.summary.edges_added >= 1);
        assert!(d.summary.edges_removed >= 1);
        let back = apply(&a, &d).unwrap();
        assert_eq!(back.to_json(), b.to_json());
    }

    #[test]
    fn id_shuffle_costs_only_remap_pairs() {
        // Same semantic content, boxes discovered in a different order:
        // nothing ships in full, only the id correspondence.
        let a = stop(&[(0x1100, 10), (0x1200, 20)], false);
        let b = stop(&[(0x1200, 20), (0x1100, 10)], false);
        let d = diff(&a, &b);
        assert_eq!(d.summary.boxes_added, 0);
        assert_eq!(d.summary.boxes_removed, 0);
        // The container lists the same members in a different order — that
        // IS a content change of the root, but the tasks themselves ride
        // the remap for free.
        assert!(d.boxes.len() <= 1);
        let back = apply(&a, &d).unwrap();
        assert_eq!(back.to_json(), b.to_json());
    }

    #[test]
    fn delta_survives_the_wire() {
        let a = stop(&[(0x1100, 10), (0x1200, 20)], false);
        let b = stop(&[(0x1100, 11), (0x1200, 20)], true);
        let d = diff(&a, &b);
        let d2 = GraphDelta::from_json(&d.to_json()).unwrap();
        assert_eq!(d, d2);
        assert_eq!(apply(&a, &d2).unwrap().to_json(), b.to_json());
    }

    #[test]
    fn apply_rejects_wrong_base() {
        let a = stop(&[(0x1100, 10), (0x1200, 20)], false);
        let b = stop(&[(0x1100, 10), (0x1200, 25)], false);
        let d = diff(&a, &b);
        let wrong = stop(&[(0x1100, 10)], false);
        assert_eq!(
            apply(&wrong, &d),
            Err(DiffError::BaseMismatch {
                expected: a.len() as u32,
                got: wrong.len() as u32
            })
        );
    }

    #[test]
    fn apply_rejects_corrupt_deltas() {
        let a = stop(&[(0x1100, 10), (0x1200, 20)], false);
        let b = stop(&[(0x1100, 10), (0x1200, 25)], false);
        let good = diff(&a, &b);

        let mut d = good.clone();
        d.remap.push((0, 99));
        assert!(matches!(apply(&a, &d), Err(DiffError::BadId(_))));

        let mut d = good.clone();
        d.remap.push((1, 1));
        assert!(matches!(apply(&a, &d), Err(DiffError::BadId(_))));

        // An *added* box has no base identity to fall back on: dropping
        // its shipped content must fail (a changed box would silently
        // regress to base content instead, which `remap` makes legal).
        let grown = stop(&[(0x1100, 10), (0x1200, 20)], true);
        let mut d = diff(&a, &grown);
        d.boxes.retain(|b| b.addr != 0x9000);
        assert!(matches!(apply(&a, &d), Err(DiffError::MissingBox(_))));
    }

    #[test]
    fn virtual_boxes_match_by_occurrence() {
        let mk = |vals: &[i64]| {
            let mut g = Graph::new();
            for v in vals {
                let (b, _) = g.intern(0, "V", "", 0);
                g.get_mut(b).views.push(ViewInst {
                    name: "default".into(),
                    items: vec![text("v", &v.to_string(), *v)],
                });
                g.roots.push(b);
            }
            g
        };
        let a = mk(&[1, 2, 3]);
        let b = mk(&[1, 9, 3]);
        let d = diff(&a, &b);
        assert_eq!(d.summary.boxes_changed, 1, "only the middle V changed");
        assert_eq!(d.boxes.len(), 1);
        assert_eq!(apply(&a, &d).unwrap().to_json(), b.to_json());
        // Shrinking the population removes the tail occurrence.
        let c = mk(&[1, 2]);
        let d = diff(&a, &c);
        assert_eq!(d.summary.boxes_removed, 1);
        assert_eq!(apply(&a, &d).unwrap().to_json(), c.to_json());
    }
}
