//! Graph statistics, the denominators of Table 4.

use serde::{Deserialize, Serialize};

use crate::graph::Graph;

/// Aggregate statistics of an extracted graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of boxes (objects), including virtual boxes.
    pub objects: u64,
    /// Number of non-virtual kernel objects.
    pub kernel_objects: u64,
    /// Total bytes of the underlying kernel objects.
    pub bytes: u64,
    /// Number of link edges.
    pub links: u64,
    /// Number of container memberships.
    pub memberships: u64,
}

impl GraphStats {
    /// Compute statistics for a graph.
    pub fn of(g: &Graph) -> GraphStats {
        let mut s = GraphStats {
            objects: g.len() as u64,
            ..Default::default()
        };
        for b in g.boxes() {
            if b.addr != 0 {
                s.kernel_objects += 1;
                s.bytes += b.size;
            }
            for v in &b.views {
                for item in &v.items {
                    match item {
                        crate::graph::Item::Link { .. } => s.links += 1,
                        crate::graph::Item::Container { members, .. } => {
                            s.memberships += members.len() as u64
                        }
                        _ => {}
                    }
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Attrs, ContainerKind, Item, ViewInst};

    #[test]
    fn stats_count_objects_bytes_edges() {
        let mut g = Graph::new();
        let (a, _) = g.intern(0x1000, "A", "task_struct", 64);
        let (b, _) = g.intern(0x2000, "B", "mm_struct", 32);
        let (v, _) = g.intern(0, "Virt", "", 0);
        g.get_mut(a).views.push(ViewInst {
            name: "default".into(),
            items: vec![
                Item::Link {
                    name: "x".into(),
                    target: b,
                },
                Item::Container {
                    name: "c".into(),
                    kind: ContainerKind::Sequence,
                    members: vec![b, v],
                    attrs: Attrs::default(),
                },
            ],
        });
        let s = GraphStats::of(&g);
        assert_eq!(s.objects, 3);
        assert_eq!(s.kernel_objects, 2);
        assert_eq!(s.bytes, 96);
        assert_eq!(s.links, 1);
        assert_eq!(s.memberships, 2);
    }
}
