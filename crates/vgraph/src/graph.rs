//! Graph data model.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

/// Handle to a box within its [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BoxId(pub u32);

/// How a container's members are logically related (the result of the
/// *distill* operation, §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContainerKind {
    /// An ordered sequence (lists, rb-tree in-order, sorted VMAs).
    Sequence,
    /// An unordered set (hash tables).
    Set,
}

/// One item of a view: a text line, an edge, or a member collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Item {
    /// A displayed scalar.
    Text {
        /// Display name (field name or ViewCL-defined name).
        name: String,
        /// Decorated display string (e.g. `0xffff8880…`, `vmstat_update`).
        value: String,
        /// Raw integer value for ViewQL `WHERE` comparisons.
        raw: Option<i64>,
    },
    /// An edge to another box.
    Link {
        /// Link label.
        name: String,
        /// Target box.
        target: BoxId,
    },
    /// A link whose target was NULL (kept for display as `∅`).
    NullLink {
        /// Link label.
        name: String,
    },
    /// A collection of member boxes.
    Container {
        /// Container label.
        name: String,
        /// Sequence or set.
        kind: ContainerKind,
        /// Member boxes in order.
        members: Vec<BoxId>,
        /// Display attributes private to this item (ViewQL can select
        /// `type.member` and collapse just the container).
        attrs: Attrs,
    },
}

impl Item {
    /// The item's display name.
    pub fn name(&self) -> &str {
        match self {
            Item::Text { name, .. }
            | Item::Link { name, .. }
            | Item::NullLink { name }
            | Item::Container { name, .. } => name,
        }
    }
}

/// Display attributes, the domain of ViewQL `UPDATE` (§2.3, §4.2).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Attrs {
    /// Which view to display (`None` = default).
    pub view: Option<String>,
    /// Remove the object and its descendants from the plot.
    pub trimmed: bool,
    /// Display as a small click-to-expand button.
    pub collapsed: bool,
    /// Container plotting direction (`horizontal` default, or `vertical`).
    pub direction: Option<String>,
    /// Free-form attributes (forward compatibility with new front-ends).
    /// A `BTreeMap` so serialization order is insertion-independent —
    /// deltas and golden comparisons need byte-stable wire output.
    pub extra: BTreeMap<String, serde_json::Value>,
}

impl Attrs {
    /// Set an attribute by name, coercing the JSON value; unknown names
    /// land in `extra`.
    pub fn set(&mut self, key: &str, value: serde_json::Value) {
        match key {
            "view" => self.view = value.as_str().map(|s| s.to_string()),
            "trimmed" => self.trimmed = as_truthy(&value),
            "collapsed" => self.collapsed = as_truthy(&value),
            "direction" => self.direction = value.as_str().map(|s| s.to_string()),
            _ => {
                self.extra.insert(key.to_string(), value);
            }
        }
    }
}

fn as_truthy(v: &serde_json::Value) -> bool {
    match v {
        serde_json::Value::Bool(b) => *b,
        serde_json::Value::Number(n) => n.as_i64().unwrap_or(0) != 0,
        serde_json::Value::String(s) => s == "true" || s == "1",
        _ => false,
    }
}

/// One named view of a box (§2.2: a customized layout to plot an object).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewInst {
    /// View name (`default` unless declared otherwise).
    pub name: String,
    /// Items in declaration order.
    pub items: Vec<Item>,
}

/// A vertex: one plotted kernel object (or virtual box).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxNode {
    /// Stable id within the graph.
    pub id: BoxId,
    /// ViewCL box-type label (`Task`, `MapleNode`, …).
    pub label: String,
    /// Underlying C type tag (`task_struct`, …; empty for virtual boxes).
    pub ctype: String,
    /// Object address (0 for virtual boxes).
    pub addr: u64,
    /// Object size in bytes (0 for virtual boxes).
    pub size: u64,
    /// All materialized views, first is the default.
    pub views: Vec<ViewInst>,
    /// Display attributes.
    pub attrs: Attrs,
}

impl BoxNode {
    /// The view selected by `attrs.view`, falling back to the first.
    pub fn active_view(&self) -> Option<&ViewInst> {
        match &self.attrs.view {
            Some(name) => self
                .views
                .iter()
                .find(|v| &v.name == name)
                .or_else(|| self.views.first()),
            None => self.views.first(),
        }
    }

    /// Look up an item by name across all views (ViewQL member access).
    pub fn item(&self, name: &str) -> Option<&Item> {
        self.views
            .iter()
            .flat_map(|v| &v.items)
            .find(|i| i.name() == name)
    }

    /// The raw comparison value of a member: text raw, link target address
    /// marker, or `None`.
    pub fn member_raw(&self, name: &str, graph: &Graph) -> Option<i64> {
        match self.item(name)? {
            Item::Text { raw, .. } => *raw,
            Item::Link { target, .. } => Some(graph.get(*target).addr as i64),
            Item::NullLink { .. } => Some(0),
            Item::Container { members, .. } => Some(members.len() as i64),
        }
    }
}

/// The object graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    boxes: Vec<BoxNode>,
    /// Plot roots (the `plot` statements' arguments).
    pub roots: Vec<BoxId>,
    #[serde(skip)]
    by_key: HashMap<(u64, String), BoxId>,
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        // `by_key` is derived from `boxes`, so it carries no extra state.
        self.boxes == other.boxes && self.roots == other.roots
    }
}

impl Graph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a graph from raw parts, restoring the intern index.
    /// Box ids must match their position in `boxes`.
    pub fn from_parts(boxes: Vec<BoxNode>, roots: Vec<BoxId>) -> Graph {
        let mut g = Graph {
            boxes,
            roots,
            by_key: HashMap::new(),
        };
        for b in &g.boxes {
            if b.addr != 0 {
                g.by_key.insert((b.addr, b.label.clone()), b.id);
            }
        }
        g
    }

    /// Intern a box for `(addr, label)`; returns `(id, true)` when newly
    /// created. Virtual boxes (addr 0) are never deduplicated.
    pub fn intern(&mut self, addr: u64, label: &str, ctype: &str, size: u64) -> (BoxId, bool) {
        if addr != 0 {
            if let Some(&id) = self.by_key.get(&(addr, label.to_string())) {
                return (id, false);
            }
        }
        let id = BoxId(self.boxes.len() as u32);
        self.boxes.push(BoxNode {
            id,
            label: label.to_string(),
            ctype: ctype.to_string(),
            addr,
            size,
            views: Vec::new(),
            attrs: Attrs::default(),
        });
        if addr != 0 {
            self.by_key.insert((addr, label.to_string()), id);
        }
        (id, true)
    }

    /// Get a box.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this graph.
    pub fn get(&self, id: BoxId) -> &BoxNode {
        &self.boxes[id.0 as usize]
    }

    /// Get a box mutably.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this graph.
    pub fn get_mut(&mut self, id: BoxId) -> &mut BoxNode {
        &mut self.boxes[id.0 as usize]
    }

    /// All boxes.
    pub fn boxes(&self) -> &[BoxNode] {
        &self.boxes
    }

    /// Mutable access to all boxes.
    pub fn boxes_mut(&mut self) -> &mut [BoxNode] {
        &mut self.boxes
    }

    /// Number of boxes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether the graph has no boxes.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Ids of the boxes a box points at (links + container members).
    pub fn neighbors(&self, id: BoxId) -> Vec<BoxId> {
        let mut out = Vec::new();
        for view in &self.get(id).views {
            for item in &view.items {
                match item {
                    Item::Link { target, .. } => out.push(*target),
                    Item::Container { members, .. } => out.extend(members.iter().copied()),
                    _ => {}
                }
            }
        }
        out
    }

    /// Transitive closure of `seeds` over links and containers
    /// (ViewQL's `REACHABLE`).
    pub fn reachable(&self, seeds: &[BoxId]) -> Vec<BoxId> {
        let mut seen = vec![false; self.boxes.len()];
        let mut stack: Vec<BoxId> = seeds.to_vec();
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if seen[id.0 as usize] {
                continue;
            }
            seen[id.0 as usize] = true;
            out.push(id);
            stack.extend(self.neighbors(id));
        }
        out.sort_unstable();
        out
    }

    /// Serialize to the JSON wire format (the visualizer protocol).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("graph serialization cannot fail")
    }

    /// Deserialize from the JSON wire format.
    pub fn from_json(s: &str) -> serde_json::Result<Graph> {
        let g: Graph = serde_json::from_str(s)?;
        Ok(Graph::from_parts(g.boxes, g.roots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let (a, _) = g.intern(0x1000, "Task", "task_struct", 100);
        let (b, _) = g.intern(0x2000, "Task", "task_struct", 100);
        let (c, _) = g.intern(0x3000, "MM", "mm_struct", 50);
        g.get_mut(a).views.push(ViewInst {
            name: "default".into(),
            items: vec![
                Item::Text {
                    name: "pid".into(),
                    value: "1".into(),
                    raw: Some(1),
                },
                Item::Link {
                    name: "mm".into(),
                    target: c,
                },
                Item::Container {
                    name: "children".into(),
                    kind: ContainerKind::Sequence,
                    members: vec![b],
                    attrs: Attrs::default(),
                },
            ],
        });
        g.get_mut(b).views.push(ViewInst {
            name: "default".into(),
            items: vec![Item::Text {
                name: "pid".into(),
                value: "2".into(),
                raw: Some(2),
            }],
        });
        g.roots.push(a);
        g
    }

    #[test]
    fn interning_deduplicates_by_addr_and_label() {
        let mut g = Graph::new();
        let (a, fresh_a) = g.intern(0x1000, "Task", "task_struct", 10);
        let (b, fresh_b) = g.intern(0x1000, "Task", "task_struct", 10);
        assert_eq!(a, b);
        assert!(fresh_a);
        assert!(!fresh_b);
        // Same address, different box type is a distinct vertex.
        let (c, _) = g.intern(0x1000, "TaskSched", "task_struct", 10);
        assert_ne!(a, c);
        // Virtual boxes never deduplicate.
        let (v1, _) = g.intern(0, "V", "", 0);
        let (v2, _) = g.intern(0, "V", "", 0);
        assert_ne!(v1, v2);
    }

    #[test]
    fn reachable_closure() {
        let g = sample();
        let r = g.reachable(&[BoxId(0)]);
        assert_eq!(r.len(), 3, "root reaches everything");
        let r = g.reachable(&[BoxId(1)]);
        assert_eq!(r, vec![BoxId(1)]);
    }

    #[test]
    fn member_raw_variants() {
        let g = sample();
        let a = g.get(BoxId(0));
        assert_eq!(a.member_raw("pid", &g), Some(1));
        assert_eq!(a.member_raw("mm", &g), Some(0x3000));
        assert_eq!(a.member_raw("children", &g), Some(1));
        assert_eq!(a.member_raw("nope", &g), None);
    }

    #[test]
    fn attrs_set_coerces() {
        let mut a = Attrs::default();
        a.set("view", serde_json::json!("sched"));
        a.set("trimmed", serde_json::json!(true));
        a.set("collapsed", serde_json::json!("true"));
        a.set("direction", serde_json::json!("vertical"));
        a.set("custom_thing", serde_json::json!(42));
        assert_eq!(a.view.as_deref(), Some("sched"));
        assert!(a.trimmed);
        assert!(a.collapsed);
        assert_eq!(a.direction.as_deref(), Some("vertical"));
        assert_eq!(a.extra["custom_thing"], serde_json::json!(42));
    }

    #[test]
    fn active_view_respects_attr() {
        let mut g = sample();
        g.get_mut(BoxId(0)).views.push(ViewInst {
            name: "sched".into(),
            items: vec![],
        });
        assert_eq!(g.get(BoxId(0)).active_view().unwrap().name, "default");
        g.get_mut(BoxId(0)).attrs.view = Some("sched".into());
        assert_eq!(g.get(BoxId(0)).active_view().unwrap().name, "sched");
        // Unknown view falls back to first.
        g.get_mut(BoxId(0)).attrs.view = Some("nope".into());
        assert_eq!(g.get(BoxId(0)).active_view().unwrap().name, "default");
    }

    #[test]
    fn serialization_is_insertion_order_independent() {
        // Regression for the delta-sync prerequisite: the wire bytes of a
        // graph must not depend on the order display attributes were set.
        let build = |keys: &[&str]| {
            let mut g = sample();
            for (i, k) in keys.iter().enumerate() {
                g.get_mut(BoxId(0))
                    .attrs
                    .set(k, serde_json::json!(i as i64));
            }
            g
        };
        let a = build(&["zeta", "alpha", "mid"]);
        let mut b = build(&["mid", "zeta", "alpha"]);
        // Overwrite so the *values* also match, only insertion order differs.
        b.get_mut(BoxId(0))
            .attrs
            .set("zeta", serde_json::json!(0i64));
        b.get_mut(BoxId(0))
            .attrs
            .set("alpha", serde_json::json!(1i64));
        b.get_mut(BoxId(0))
            .attrs
            .set("mid", serde_json::json!(2i64));
        assert_eq!(a.to_json(), b.to_json());
        // And serialization is a pure function of content: repeated calls
        // and a round trip both reproduce the bytes exactly.
        assert_eq!(a.to_json(), a.to_json());
        let rt = Graph::from_json(&a.to_json()).unwrap();
        assert_eq!(rt.to_json(), a.to_json());
        assert_eq!(rt, a);
    }

    #[test]
    fn from_parts_restores_intern_index() {
        let g = sample();
        let mut g2 = Graph::from_parts(g.boxes().to_vec(), g.roots.clone());
        assert_eq!(g, g2);
        let (id, fresh) = g2.intern(0x1000, "Task", "task_struct", 100);
        assert_eq!(id, BoxId(0));
        assert!(!fresh);
    }

    #[test]
    fn json_round_trip() {
        let g = sample();
        let s = g.to_json();
        let g2 = Graph::from_json(&s).unwrap();
        assert_eq!(g.len(), g2.len());
        assert_eq!(g.roots, g2.roots);
        assert_eq!(g.get(BoxId(0)).views, g2.get(BoxId(0)).views);
        // The intern index was rebuilt.
        let mut g2 = g2;
        let (id, fresh) = g2.intern(0x1000, "Task", "task_struct", 100);
        assert_eq!(id, BoxId(0));
        assert!(!fresh);
    }
}

#[cfg(test)]
mod prop_tests {
    //! Properties of the reachability closure used by ViewQL.

    use super::*;
    use proptest::prelude::*;

    /// A random DAG-ish graph: n boxes, random links.
    fn arb_graph() -> impl Strategy<Value = Graph> {
        (
            2usize..40,
            proptest::collection::vec((0usize..40, 0usize..40), 0..80),
        )
            .prop_map(|(n, edges)| {
                let mut g = Graph::new();
                for i in 0..n {
                    let (id, _) = g.intern(0x1000 + i as u64 * 0x100, "N", "node", 8);
                    g.get_mut(id).views.push(ViewInst {
                        name: "default".into(),
                        items: vec![],
                    });
                }
                for (a, b) in edges {
                    if a < n && b < n {
                        let target = BoxId(b as u32);
                        g.get_mut(BoxId(a as u32)).views[0].items.push(Item::Link {
                            name: "e".into(),
                            target,
                        });
                    }
                }
                g
            })
    }

    proptest! {
        #[test]
        fn prop_reachable_is_idempotent_and_monotone(g in arb_graph()) {
            let seeds = vec![BoxId(0)];
            let r1 = g.reachable(&seeds);
            let r2 = g.reachable(&r1);
            prop_assert_eq!(&r1, &r2, "closure is a fixpoint");
            prop_assert!(r1.contains(&BoxId(0)), "seeds are included");
            // Monotone: closing over a superset yields a superset.
            let mut bigger = seeds.clone();
            bigger.push(BoxId(1));
            let r3 = g.reachable(&bigger);
            prop_assert!(r1.iter().all(|x| r3.contains(x)));
        }

        #[test]
        fn prop_neighbors_subset_of_reachable(g in arb_graph()) {
            for b in g.boxes() {
                let r = g.reachable(&[b.id]);
                for n in g.neighbors(b.id) {
                    prop_assert!(r.contains(&n));
                }
            }
        }
    }
}
