//! The extracted kernel object graph.
//!
//! Evaluating a ViewCL program over a target yields a `Graph` G(V, E):
//! vertices are [`BoxNode`]s (kernel objects, or virtual boxes the program
//! synthesized), edges are [`Item::Link`]s and [`Item::Container`]
//! memberships (§2.2–2.3 of the paper). ViewQL operates on this graph by
//! toggling display [`Attrs`]; the renderer consumes it; the pane protocol
//! serializes it as JSON (the payload of the paper's HTTP POST between the
//! GDB extension and the visualizer).

pub mod diff;
mod graph;
mod stats;

pub use diff::{DeltaSummary, DiffError, GraphDelta};
pub use graph::{Attrs, BoxId, BoxNode, ContainerKind, Graph, Item, ViewInst};
pub use stats::GraphStats;
