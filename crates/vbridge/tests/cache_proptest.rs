//! Property: the snapshot block cache is invisible to callers. Any
//! sequence of bridge operations — reads of every flavor, C strings,
//! batches, prefetch hints, epoch bumps — produces identical data *and*
//! identical faults through a cached target as through an uncached one.

use proptest::prelude::*;
use vbridge::{BlockCache, CacheConfig, LatencyProfile, ReadPlan, Target};

/// One step of a random bridge workout. Offsets are relative to the
/// workload's `init_task` page so sequences hit a mix of mapped bytes,
/// page tails, and (with `wild`) wholly unmapped memory.
#[derive(Debug, Clone)]
enum Op {
    Read { off: u64, wild: bool, len: usize },
    Uint { off: u64, wild: bool, size: usize },
    Int { off: u64, wild: bool, size: usize },
    Cstr { off: u64, wild: bool, max: usize },
    Prefetch { off: u64, wild: bool, len: u64 },
    Many { offs: Vec<u64> },
    Bump,
}

fn size_strategy() -> BoxedStrategy<usize> {
    prop_oneof![Just(1usize), Just(2), Just(4), Just(8)].boxed()
}

fn op_strategy() -> BoxedStrategy<Op> {
    prop_oneof![
        (0u64..0x3000, any::<bool>(), 1usize..64).prop_map(|(off, wild, len)| Op::Read {
            off,
            wild,
            len
        }),
        (0u64..0x3000, any::<bool>(), size_strategy()).prop_map(|(off, wild, size)| Op::Uint {
            off,
            wild,
            size
        }),
        (0u64..0x3000, any::<bool>(), size_strategy()).prop_map(|(off, wild, size)| Op::Int {
            off,
            wild,
            size
        }),
        (0u64..0x3000, any::<bool>(), 1usize..200).prop_map(|(off, wild, max)| Op::Cstr {
            off,
            wild,
            max
        }),
        (0u64..0x3000, any::<bool>(), 0u64..600).prop_map(|(off, wild, len)| Op::Prefetch {
            off,
            wild,
            len
        }),
        proptest::collection::vec(0u64..0x1000, 0..12).prop_map(|offs| Op::Many { offs }),
        Just(Op::Bump),
    ]
    .boxed()
}

const WILD_BASE: u64 = 0xdead_0000_0000;

fn resolve(base: u64, off: u64, wild: bool) -> u64 {
    if wild {
        WILD_BASE + off
    } else {
        base + off
    }
}

proptest! {
    #[test]
    fn random_sequences_match_uncached(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        block_size_log2 in 3u32..=12,
    ) {
        let (img, _t, roots) =
            ksim::workload::build(&ksim::workload::WorkloadConfig::default()).finish();
        let base = roots.init_task & !0xfff;
        let cache = BlockCache::new(CacheConfig::with_block_size(1u64 << block_size_log2));
        let plain = Target::new(&img.mem, &img.types, &img.symbols, LatencyProfile::free());
        let cached = Target::with_cache(
            &img.mem,
            &img.types,
            &img.symbols,
            LatencyProfile::free(),
            &cache,
        );
        for op in &ops {
            match op {
                Op::Read { off, wild, len } => {
                    let addr = resolve(base, *off, *wild);
                    let mut a = vec![0u8; *len];
                    let mut b = vec![0u8; *len];
                    let ra = plain.read(addr, &mut a);
                    let rb = cached.read(addr, &mut b);
                    prop_assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
                    prop_assert_eq!(&a, &b);
                }
                Op::Uint { off, wild, size } => {
                    let addr = resolve(base, *off, *wild);
                    prop_assert_eq!(
                        format!("{:?}", plain.read_uint(addr, *size)),
                        format!("{:?}", cached.read_uint(addr, *size))
                    );
                }
                Op::Int { off, wild, size } => {
                    let addr = resolve(base, *off, *wild);
                    prop_assert_eq!(
                        format!("{:?}", plain.read_int(addr, *size)),
                        format!("{:?}", cached.read_int(addr, *size))
                    );
                }
                Op::Cstr { off, wild, max } => {
                    let addr = resolve(base, *off, *wild);
                    prop_assert_eq!(
                        format!("{:?}", plain.read_cstr(addr, *max)),
                        format!("{:?}", cached.read_cstr(addr, *max))
                    );
                }
                Op::Prefetch { off, wild, len } => {
                    // Hints never change observable behavior (and never
                    // fault, even on unmapped spans).
                    cached.prefetch(resolve(base, *off, *wild), *len);
                    plain.prefetch(resolve(base, *off, *wild), *len);
                }
                Op::Many { offs } => {
                    let mut plan = ReadPlan::new();
                    for o in offs {
                        plan.add(base + o, 8);
                    }
                    prop_assert_eq!(
                        format!("{:?}", plain.read_many(&plan)),
                        format!("{:?}", cached.read_many(&plan))
                    );
                }
                Op::Bump => cached.bump_epoch(),
            }
        }
        // Accounting sanity: cache hits are free, so every wire packet on
        // the cached side is either a block fetch or a doomed fault span —
        // never more than the block-granularity worst case of the sequence.
        let s = cached.stats();
        let bs = 1u64 << block_size_log2;
        // An unaligned span of `n` bytes touches at most n/bs + 2 blocks;
        // each request in a batch pays for its own blocks when nothing
        // merges.
        let blocks = |span: u64| span / bs + 2;
        let worst: u64 = ops
            .iter()
            .map(|op| match op {
                Op::Read { len, .. } => blocks(*len as u64),
                Op::Uint { size, .. } | Op::Int { size, .. } => blocks(*size as u64),
                Op::Cstr { max, .. } => blocks(*max as u64 + 1),
                Op::Prefetch { len, .. } => blocks((*len).min(4096)),
                Op::Many { offs } => offs.len() as u64 * blocks(8),
                Op::Bump => 0,
            })
            .sum();
        prop_assert!(
            s.reads <= worst,
            "cached side paid {} packets, block-granularity worst case is {} (bs={bs}, ops={ops:?})",
            s.reads,
            worst
        );
    }
}
