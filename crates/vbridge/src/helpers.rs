//! Registered helper functions — the "GDB script" layer.
//!
//! The paper ships ~500 lines of GDB scripts exposing kernel functions
//! that are invisible to the debugger (static inlines, macros):
//! `cpu_rq()`, `mte_to_node()`, `task_state()` and friends. Here those
//! are Rust closures registered by name; `${...}` expressions call them
//! like C functions.

use std::collections::HashMap;
use std::rc::Rc;

use ktypes::CValue;

use crate::target::Target;
use crate::Result;

/// A helper callable from C expressions.
pub type HelperFn = Rc<dyn Fn(&Target<'_>, &[CValue]) -> Result<CValue>>;

/// Name → helper map.
#[derive(Default, Clone)]
pub struct HelperRegistry {
    map: HashMap<String, HelperFn>,
}

impl HelperRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `f` under `name` (replacing any previous registration).
    pub fn register<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&Target<'_>, &[CValue]) -> Result<CValue> + 'static,
    {
        self.map.insert(name.into(), Rc::new(f));
    }

    /// Look up a helper.
    pub fn get(&self, name: &str) -> Option<&HelperFn> {
        self.map.get(name)
    }

    /// Number of registered helpers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no helpers are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Registered helper names (unsorted).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(|s| s.as_str())
    }
}

impl std::fmt::Debug for HelperRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.names().collect();
        names.sort_unstable();
        f.debug_struct("HelperRegistry")
            .field("helpers", &names)
            .finish()
    }
}
